// Experiment F1 — Figure 1: task agents. Enumerates the coarse task
// descriptions (the RDA transaction and the "typical application" with its
// internal loop) and benchmarks the agent interface: significant events go
// through the scheduler, insignificant loop steps run at local speed.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "agents/task_agent.h"
#include "bench_util.h"

namespace cdes {
namespace {

void PrintModel(const TaskModel& model) {
  std::printf("task model '%s' (initial: %s, loop: %s)\n",
              model.name().c_str(), model.initial().c_str(),
              model.HasLoop() ? "yes" : "no");
  for (const TaskTransition& t : model.transitions()) {
    const char* control = t.control == TransitionControl::kControllable
                              ? "controllable"
                              : t.control == TransitionControl::kTriggerable
                                    ? "triggerable"
                                    : "uncontrollable";
    std::printf("  %-8s --%-7s--> %-10s (%s)\n", t.from.c_str(),
                t.event.c_str(), t.to.c_str(), control);
  }
}

void PrintFigure1() {
  std::printf("==== Figure 1: common task agents ====\n");
  PrintModel(TaskModel::RdaTransaction("rda"));
  std::printf("\n");
  PrintModel(TaskModel::TypicalApplication("application"));
  std::printf("\n");
}

void BM_AgentHappyPath(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &net);
    TaskAgent buy(TaskModel::RdaTransaction("buy"), &ctx, &sched);
    (void)buy.MapEvent("start", "s_buy");
    (void)buy.MapEvent("commit", "c_buy");
    TaskAgent book(TaskModel::RdaTransaction("book"), &ctx, &sched);
    (void)book.MapEvent("start", "s_book");
    (void)book.MapEvent("commit", "c_book");
    state.ResumeTiming();
    (void)buy.Attempt("start");
    sim.Run();
    (void)book.Attempt("commit");
    sim.Run();
    (void)buy.Attempt("commit");
    sim.Run();
    benchmark::DoNotOptimize(buy.state());
  }
  state.SetLabel("two RDA agents through the distributed scheduler");
}
BENCHMARK(BM_AgentHappyPath);

void BM_InsignificantLoopSteps(benchmark::State& state) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  Network net(&sim, 2, nopts);
  GuardScheduler sched(&ctx, parsed.value(), &net);
  TaskAgent app(TaskModel::TypicalApplication("app"), &ctx, &sched);
  (void)app.Attempt("start");
  for (auto _ : state) {
    CDES_CHECK(app.Attempt("step").ok());
  }
  state.SetLabel("invisible loop step, no scheduler involvement (section 5.2)");
}
BENCHMARK(BM_InsignificantLoopSteps);

void BM_ModelCycleDetection(benchmark::State& state) {
  TaskModel app = TaskModel::TypicalApplication("app");
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.HasLoop());
  }
}
BENCHMARK(BM_ModelCycleDetection);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("agents");
  return 0;
}
