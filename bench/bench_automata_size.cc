// Experiment C3 — §6's critique of the prior automata approach [2]: "It
// avoids generating product automata, but the individual automata
// themselves can be quite large." We compare, per dependency family and
// size: the precompiled automaton (states + transitions) against the
// synthesized guard representation (hash-consed guard nodes per literal),
// plus build-time benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "algebra/generator.h"
#include "common/strings.h"
#include "guards/context.h"
#include "sched/automata_scheduler.h"
#include "bench_util.h"

namespace cdes {
namespace {

size_t GuardNodeCount(const Guard* g, std::set<const Guard*>* seen) {
  if (!seen->insert(g).second) return 0;
  size_t n = 1;
  for (const Guard* c : g->children()) n += GuardNodeCount(c, seen);
  return n;
}

struct SizeRow {
  size_t n;
  size_t automaton_states;
  size_t automaton_transitions;
  size_t guard_nodes;  // distinct DAG nodes across all literals' guards
};

SizeRow MeasureOrderedIfAll(size_t n) {
  WorkflowContext ctx;
  std::vector<SymbolId> symbols;
  for (size_t i = 0; i < n; ++i) {
    symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
  }
  const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
  DependencyAutomaton automaton =
      BuildDependencyAutomaton(ctx.residuator(), d);
  std::set<const Guard*> seen;
  size_t guard_nodes = 0;
  for (SymbolId s : symbols) {
    for (EventLiteral l :
         {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
      guard_nodes += GuardNodeCount(ctx.synthesizer()->Synthesize(d, l),
                                    &seen);
    }
  }
  return SizeRow{n, automaton.states.size(), automaton.transitions.size(),
                 guard_nodes};
}

SizeRow MeasureChain(size_t n) {
  WorkflowContext ctx;
  std::vector<SymbolId> symbols;
  for (size_t i = 0; i < n; ++i) {
    symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
  }
  const Expr* d = Chain(ctx.exprs(), symbols);
  DependencyAutomaton automaton =
      BuildDependencyAutomaton(ctx.residuator(), d);
  std::set<const Guard*> seen;
  size_t guard_nodes = 0;
  for (SymbolId s : symbols) {
    for (EventLiteral l :
         {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
      guard_nodes += GuardNodeCount(ctx.synthesizer()->Synthesize(d, l),
                                    &seen);
    }
  }
  return SizeRow{n, automaton.states.size(), automaton.transitions.size(),
                 guard_nodes};
}

void PrintSizes() {
  std::printf("==== Automata size [2] vs guard representation ====\n");
  std::printf("family: ordered-if-all (n-ary D_<: ~e1+...+~en + e1...en)\n");
  std::printf("%-4s %14s %14s %14s\n", "n", "DFA states", "DFA trans",
              "guard nodes");
  for (size_t n : {2, 3, 4, 5, 6}) {
    SizeRow row = MeasureOrderedIfAll(n);
    std::printf("%-4zu %14zu %14zu %14zu\n", row.n, row.automaton_states,
                row.automaton_transitions, row.guard_nodes);
  }
  std::printf("\nfamily: chain (e1.e2...en — all in order)\n");
  std::printf("%-4s %14s %14s %14s\n", "n", "DFA states", "DFA trans",
              "guard nodes");
  for (size_t n : {2, 4, 8, 12}) {
    SizeRow row = MeasureChain(n);
    std::printf("%-4zu %14zu %14zu %14zu\n", row.n, row.automaton_states,
                row.automaton_transitions, row.guard_nodes);
  }
  std::printf("\n");
}

void BM_BuildAutomatonOrderedIfAll(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols;
    for (size_t i = 0; i < n; ++i) {
      symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
    }
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    state.ResumeTiming();
    DependencyAutomaton automaton =
        BuildDependencyAutomaton(ctx.residuator(), d);
    benchmark::DoNotOptimize(automaton.states.size());
  }
}
BENCHMARK(BM_BuildAutomatonOrderedIfAll)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_SynthesizeAllGuardsOrderedIfAll(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols;
    for (size_t i = 0; i < n; ++i) {
      symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
    }
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    state.ResumeTiming();
    for (SymbolId s : symbols) {
      benchmark::DoNotOptimize(
          ctx.synthesizer()->Synthesize(d, EventLiteral::Positive(s)));
      benchmark::DoNotOptimize(
          ctx.synthesizer()->Synthesize(d, EventLiteral::Complement(s)));
    }
  }
}
BENCHMARK(BM_SynthesizeAllGuardsOrderedIfAll)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintSizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("automata_size");
  return 0;
}
