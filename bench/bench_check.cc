// Reachability-checker benchmark: exploration throughput (states/sec) and
// the ample-set partial-order reduction factor on a workload built to
// reward it — four independent KleinPrecedes pairs over 8 symbols, where
// naive exploration interleaves all four clusters and the reduction
// explores them one entanglement class at a time. The headline numbers
// land in BENCH_check.json (check_* gauges) for CI artifact diffing.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "algebra/generator.h"
#include "analysis/model_checker.h"
#include "common/strings.h"
#include "guards/context.h"
#include "spec/parser.h"
#include "bench_util.h"

namespace cdes {
namespace {

// Four independent e<f pairs: the entanglement partition keeps each pair
// in its own class, so POR explores ~one cluster ordering instead of the
// product of all four.
ParsedWorkflow IndependentPairs(WorkflowContext* ctx, size_t pairs) {
  ParsedWorkflow w;
  w.name = "pairs";
  for (size_t i = 0; i < pairs; ++i) {
    SymbolId e = ctx->alphabet()->Intern(StrCat("e", i));
    SymbolId f = ctx->alphabet()->Intern(StrCat("f", i));
    w.spec.Add(StrCat("prec", i), KleinPrecedes(ctx->exprs(), e, f));
  }
  return w;
}

analysis::ModelCheckStats RunOnce(bool por) {
  WorkflowContext ctx;
  ParsedWorkflow w = IndependentPairs(&ctx, 4);
  analysis::ModelCheckOptions options;
  options.partial_order_reduction = por;
  analysis::CheckResult result = analysis::CheckWorkflow(&ctx, w, options);
  CDES_CHECK(!result.stats.bounded) << result.stats.bound_reason;
  CDES_CHECK(result.diagnostics.empty());
  return result.stats;
}

void BM_CheckIndependentPairsNaive(benchmark::State& state) {
  size_t states = 0;
  uint64_t micros = 0;
  for (auto _ : state) {
    analysis::ModelCheckStats stats = RunOnce(/*por=*/false);
    states = stats.states_explored;
    micros += stats.elapsed_micros;
    benchmark::DoNotOptimize(stats.transitions);
  }
  state.counters["states"] = static_cast<double>(states);
  if (micros > 0) {
    state.counters["states_per_sec"] = static_cast<double>(states) *
                                       state.iterations() * 1e6 /
                                       static_cast<double>(micros);
  }
}
BENCHMARK(BM_CheckIndependentPairsNaive)->Unit(benchmark::kMillisecond);

void BM_CheckIndependentPairsPor(benchmark::State& state) {
  size_t states = 0;
  uint64_t micros = 0;
  for (auto _ : state) {
    analysis::ModelCheckStats stats = RunOnce(/*por=*/true);
    states = stats.states_explored;
    micros += stats.elapsed_micros;
    benchmark::DoNotOptimize(stats.transitions);
  }
  state.counters["states"] = static_cast<double>(states);
  if (micros > 0) {
    state.counters["states_per_sec"] = static_cast<double>(states) *
                                       state.iterations() * 1e6 /
                                       static_cast<double>(micros);
  }
}
BENCHMARK(BM_CheckIndependentPairsPor)->Unit(benchmark::kMillisecond);

void BM_CheckTravelSpec(benchmark::State& state) {
  for (auto _ : state) {
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok()) << parsed.status();
    analysis::CheckResult result =
        analysis::CheckWorkflow(&ctx, parsed.value());
    CDES_CHECK(result.diagnostics.empty());
    benchmark::DoNotOptimize(result.stats.states_explored);
  }
}
BENCHMARK(BM_CheckTravelSpec)->Unit(benchmark::kMillisecond);

// The headline artifact numbers: one measured naive run and one POR run,
// reported as gauges so BENCH_check.json carries the reduction factor.
void RecordHeadlineMetrics() {
  analysis::ModelCheckStats naive = RunOnce(/*por=*/false);
  analysis::ModelCheckStats por = RunOnce(/*por=*/true);
  auto& m = bench::BenchMetrics();
  m.gauge("check_naive_states")->Set(static_cast<double>(naive.states_explored));
  m.gauge("check_por_states")->Set(static_cast<double>(por.states_explored));
  double factor = por.states_explored > 0
                      ? static_cast<double>(naive.states_explored) /
                            static_cast<double>(por.states_explored)
                      : 0.0;
  m.gauge("check_por_reduction_factor")->Set(factor);
  if (naive.elapsed_micros > 0) {
    m.gauge("check_naive_states_per_sec")
        ->Set(static_cast<double>(naive.states_explored) * 1e6 /
              static_cast<double>(naive.elapsed_micros));
  }
  if (por.elapsed_micros > 0) {
    m.gauge("check_por_states_per_sec")
        ->Set(static_cast<double>(por.states_explored) * 1e6 /
              static_cast<double>(por.elapsed_micros));
  }
  std::printf("check: naive %zu states, por %zu states, reduction %.1fx\n",
              naive.states_explored, por.states_explored, factor);
  CDES_CHECK(factor >= 5.0) << "POR regression: expected >=5x on 4 "
                               "independent pairs, got " << factor;
}

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::RecordHeadlineMetrics();
  cdes::bench::ExportBenchMetrics("check");
  return 0;
}
