// Multi-instance engine throughput: how aggregate events/sec scales with
// worker shards when thousands of independent travel-booking instances run
// concurrently. Instance-local guard synthesis (§4.2–4.3) is what makes the
// workload embarrassingly shardable — each instance's guards consult only
// its own announcements, so shards share nothing but the spec.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>

#include "bench_util.h"
#include "engine/engine.h"
#include "obs/profiler.h"

namespace cdes {
namespace {

engine::EngineSpecRef TravelEngineSpec() {
  auto spec = engine::EngineSpec::FromText(bench::kTravelSpec);
  CDES_CHECK(spec.ok()) << spec.status();
  return spec.value();
}

/// The same journey mix the engine tests use: two thirds commit or
/// compensate (full protocol traffic), one third abort early.
engine::InstanceScript ScriptFor(size_t i) {
  engine::InstanceScript script;
  script.tag = i;
  switch (i % 3) {
    case 0:
      script.attempts = {"s_buy", "c_book", "c_buy"};
      break;
    case 1:
      script.attempts = {"s_buy", "c_book", "~c_buy"};
      break;
    default:
      script.attempts = {"~s_buy"};
      break;
  }
  return script;
}

/// Preloads `instances` scripts into a paused engine, then times
/// Resume→Drain only (submission cost excluded). Returns events/sec.
double RunEngine(size_t shards, size_t instances, uint64_t* events_out,
                 obs::GuardProfiler* profiler = nullptr,
                 engine::EngineMetricsSnapshot* snap_out = nullptr,
                 bool symbolic_caches = true) {
  engine::EngineOptions opts;
  opts.shards = shards;
  opts.max_in_flight = 0;  // unbounded: preload everything
  opts.start_paused = true;
  opts.profiler = profiler;
  opts.symbolic_caches = symbolic_caches;
  engine::Engine eng(TravelEngineSpec(), opts);
  for (size_t i = 0; i < instances; ++i) {
    CDES_CHECK(eng.Submit(ScriptFor(i)).ok());
  }
  auto start = std::chrono::steady_clock::now();
  eng.Drain();  // resumes, then waits for all instances
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  eng.Stop();
  engine::EngineMetricsSnapshot snap = eng.Metrics();
  CDES_CHECK(snap.instances_completed == instances);
  uint64_t events = snap.events;
  if (events_out != nullptr) *events_out = events;
  if (snap_out != nullptr) *snap_out = std::move(snap);
  return elapsed > 0 ? static_cast<double>(events) / elapsed : 0;
}

/// The headline table: 1000 instances at 1/2/4 shards, with the 4-vs-1
/// speedup and the submit→complete latency percentiles recorded in the
/// exported metrics snapshot (the cross-PR perf trajectory).
void PrintEngineSummary(obs::GuardProfiler* profiler) {
  constexpr size_t kInstances = 1000;
  std::printf(
      "==== Engine shard scaling: %zu travel instances (§4.2 instance-local "
      "guards) ====\n",
      kInstances);
  unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    std::printf("NOTE: only %u hardware thread(s) — shard parallelism cannot "
                "show a speedup on this machine\n", cores);
  }
  bench::BenchMetrics()
      .gauge("engine.hardware_threads")
      ->Set(static_cast<double>(cores));
  std::printf("%-8s %-12s %-14s %-10s\n", "shards", "events", "events/sec",
              "speedup");
  double base = 0;
  for (size_t shards : {1, 2, 4}) {
    uint64_t events = 0;
    engine::EngineMetricsSnapshot snap;
    double rate = RunEngine(shards, kInstances, &events, profiler, &snap);
    if (shards == 1) base = rate;
    double speedup = base > 0 ? rate / base : 0;
    std::printf("%-8zu %-12llu %-14.0f %.2fx\n", shards,
                static_cast<unsigned long long>(events), rate, speedup);
    bench::BenchMetrics()
        .gauge(StrCat("engine.events_per_sec.shards", shards))
        ->Set(rate);
    for (const engine::EngineMetricsSnapshot::HistogramSummary& h :
         snap.histograms) {
      if (h.name != "engine.latency_us" &&
          h.name != "engine.admission_wait_us") {
        continue;
      }
      bench::BenchMetrics()
          .gauge(StrCat(h.name, ".p50.shards", shards))
          ->Set(static_cast<double>(h.p50));
      bench::BenchMetrics()
          .gauge(StrCat(h.name, ".p99.shards", shards))
          ->Set(static_cast<double>(h.p99));
      bench::BenchMetrics()
          .gauge(StrCat(h.name, ".mean.shards", shards))
          ->Set(h.mean);
    }
    if (shards == 4) {
      bench::BenchMetrics().gauge("engine.speedup.shards4_vs_1")->Set(speedup);
    }
    if (shards == 1) {
      // Symbolic-cache effectiveness of a whole engine run (post-Stop merge
      // of the shard registries). CI asserts the hit rate is positive — a
      // zero here means the shard-shared memoization silently unplugged.
      bench::BenchMetrics()
          .gauge("guards.reduction_cache_hit_rate")
          ->Set(snap.ReductionCacheHitRate());
      bench::BenchMetrics()
          .gauge("guards.reduction_cache_hits")
          ->Set(static_cast<double>(snap.reduction_cache_hits));
      bench::BenchMetrics()
          .gauge("guards.reduction_cache_misses")
          ->Set(static_cast<double>(snap.reduction_cache_misses));
      bench::BenchMetrics()
          .gauge("algebra.residuation_cache_hits")
          ->Set(static_cast<double>(snap.residuation_cache_hits));
      bench::BenchMetrics()
          .gauge("algebra.residuation_cache_misses")
          ->Set(static_cast<double>(snap.residuation_cache_misses));
      std::printf("  symbolic caches (1 shard): reduction %.1f%% hit "
                  "(%llu/%llu), residuation %llu/%llu hit\n",
                  100.0 * snap.ReductionCacheHitRate(),
                  static_cast<unsigned long long>(snap.reduction_cache_hits),
                  static_cast<unsigned long long>(snap.reduction_cache_hits +
                                                  snap.reduction_cache_misses),
                  static_cast<unsigned long long>(snap.residuation_cache_hits),
                  static_cast<unsigned long long>(
                      snap.residuation_cache_hits +
                      snap.residuation_cache_misses));
    }
  }

  // Before/after ablation: the same 1-shard run with the symbolic caches
  // unplugged (pre-PR from-scratch reductions, folds, and evaluations).
  uint64_t events = 0;
  double off_rate = RunEngine(1, kInstances, &events, profiler, nullptr,
                              /*symbolic_caches=*/false);
  double on_rate =
      bench::BenchMetrics().gauge("engine.events_per_sec.shards1")->value();
  bench::BenchMetrics()
      .gauge("engine.events_per_sec.shards1.caches_off")
      ->Set(off_rate);
  bench::BenchMetrics()
      .gauge("engine.symbolic_cache_speedup.shards1")
      ->Set(off_rate > 0 ? on_rate / off_rate : 0);
  std::printf("1 shard, symbolic caches off: %.0f events/sec  =>  caches "
              "give %.2fx\n",
              off_rate, off_rate > 0 ? on_rate / off_rate : 0);
  std::printf("\n");
}

void BM_EngineThroughput(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t instances = static_cast<size_t>(state.range(1));
  uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    engine::EngineOptions opts;
    opts.shards = shards;
    opts.max_in_flight = 0;
    opts.start_paused = true;
    engine::Engine eng(TravelEngineSpec(), opts);
    for (size_t i = 0; i < instances; ++i) {
      CDES_CHECK(eng.Submit(ScriptFor(i)).ok());
    }
    state.ResumeTiming();
    eng.Drain();
    state.PauseTiming();
    eng.Stop();
    events += eng.Metrics().events;
    state.ResumeTiming();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineThroughput)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Steady-state submission under backpressure: a bounded engine with the
/// submitter racing the shards, the production shape (vs the preloaded
/// batches above).
void BM_EngineSubmitStream(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  uint64_t submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    engine::EngineOptions opts;
    opts.shards = shards;
    opts.max_in_flight = 128;
    engine::Engine eng(TravelEngineSpec(), opts);
    state.ResumeTiming();
    for (size_t i = 0; i < 512; ++i) {
      CDES_CHECK(eng.Submit(ScriptFor(i)).ok());  // blocks when 128 in flight
    }
    eng.Drain();
    state.PauseTiming();
    eng.Stop();
    submitted += 512;
    state.ResumeTiming();
  }
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(submitted), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineSubmitStream)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  // Strip --profile[=<collapsed-out>] before Google Benchmark sees (and
  // rejects) it.
  bool profile = false;
  const char* profile_path = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--profile") {
      profile = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile = true;
      if (argv[i][10] != '\0') profile_path = argv[i] + 10;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  cdes::obs::GuardProfiler profiler(/*sample_every=*/64);
  cdes::PrintEngineSummary(profile ? &profiler : nullptr);
  benchmark::RunSpecifiedBenchmarks();
  if (profile) {
    cdes::obs::SymbolicCacheStats cache_stats =
        cdes::obs::CacheStatsFrom(cdes::bench::BenchMetrics());
    std::printf("\n-- guard profile --\n%s",
                profiler.TopKReport(10, &cache_stats).c_str());
    if (profile_path != nullptr) {
      std::string collapsed = profiler.CollapsedStacks();
      std::FILE* f = std::fopen(profile_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", profile_path);
        return 1;
      }
      std::fwrite(collapsed.data(), 1, collapsed.size(), f);
      std::fclose(f);
      std::printf("profile: collapsed stacks -> %s\n", profile_path);
    }
  }
  cdes::bench::ExportBenchMetrics("engine");
  return 0;
}
