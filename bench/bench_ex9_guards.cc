// Experiment F4/E9 — Figure 4 and Example 9: guard synthesis. Regenerates
// all eight guards of Example 9 next to the paper's reported forms, then
// benchmarks Definition-2 synthesis across dependency families and sizes,
// including the Lemma-5 path-sum formulation as a (much costlier)
// cross-check and the Theorem-2/4 disjoint-split optimization.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "algebra/generator.h"
#include "common/strings.h"
#include "guards/context.h"
#include "guards/workflow.h"
#include "runtime/event_actor.h"
#include "temporal/flat_eval.h"
#include "temporal/reduction.h"
#include "temporal/simplify.h"
#include "bench_util.h"

namespace cdes {
namespace {

void PrintExample9() {
  std::printf("==== Example 9: guards computed from Definition 2 ====\n");
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");
  EventLiteral pe = EventLiteral::Positive(e), ne = pe.Complemented();
  EventLiteral pf = EventLiteral::Positive(f), nf = pf.Complemented();
  const Expr* d_prec = KleinPrecedes(ctx.exprs(), e, f);

  struct Item {
    const char* label;
    const Expr* dep;
    EventLiteral lit;
    const char* paper;
  };
  std::vector<Item> items = {
      {"1. G(T, e)   ", ctx.exprs()->Top(), pe, "T"},
      {"2. G(0, e)   ", ctx.exprs()->Zero(), pe, "0"},
      {"3. G(e, e)   ", ctx.exprs()->Atom(pe), pe, "T"},
      {"4. G(~e, e)  ", ctx.exprs()->Atom(ne), pe, "0"},
      {"5. G(D<, ~e) ", d_prec, ne, "T"},
      {"6. G(D<, e)  ", d_prec, pe, "!f"},
      {"7. G(D<, ~f) ", d_prec, nf, "T"},
      {"8. G(D<, f)  ", d_prec, pf, "<>(~e) + []e"},
  };
  std::printf("%-14s %-18s %s\n", "item", "paper", "computed");
  for (const Item& item : items) {
    const Guard* g = ctx.synthesizer()->SynthesizeSimplified(item.dep,
                                                             item.lit);
    std::printf("%-14s %-18s %s\n", item.label, item.paper,
                GuardToString(g, *ctx.alphabet()).c_str());
  }

  std::printf("\nExample 11 (mutual implications): guard(e) under e->f is "
              "%s; guard(f) under f->e is %s\n",
              GuardToString(ctx.synthesizer()->SynthesizeSimplified(
                                KleinImplies(ctx.exprs(), e, f), pe),
                            *ctx.alphabet())
                  .c_str(),
              GuardToString(ctx.synthesizer()->SynthesizeSimplified(
                                KleinImplies(ctx.exprs(), f, e), pf),
                            *ctx.alphabet())
                  .c_str());
  std::printf("\n");
}

std::vector<SymbolId> MakeSymbols(WorkflowContext* ctx, size_t n) {
  std::vector<SymbolId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ctx->alphabet()->Intern(StrCat("s", i)));
  }
  return out;
}

void BM_SynthesizeChain(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols = MakeSymbols(&ctx, n);
    const Expr* d = Chain(ctx.exprs(), symbols);
    EventLiteral target = EventLiteral::Positive(symbols[n / 2]);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.synthesizer()->Synthesize(d, target));
  }
  state.SetLabel("cold cache, middle event of e1.e2...en");
}
BENCHMARK(BM_SynthesizeChain)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_SynthesizeOrderedIfAll(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols = MakeSymbols(&ctx, n);
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    EventLiteral target = EventLiteral::Positive(symbols.back());
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.synthesizer()->Synthesize(d, target));
  }
}
BENCHMARK(BM_SynthesizeOrderedIfAll)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_SynthesizeMemoized(benchmark::State& state) {
  WorkflowContext ctx;
  std::vector<SymbolId> symbols = MakeSymbols(&ctx, 6);
  const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
  EventLiteral target = EventLiteral::Positive(symbols[3]);
  ctx.synthesizer()->Synthesize(d, target);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.synthesizer()->Synthesize(d, target));
  }
  state.SetLabel("warm cache (precompiled lookups)");
}
BENCHMARK(BM_SynthesizeMemoized);

void BM_SynthesizeViaPathsLemma5(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols = MakeSymbols(&ctx, n);
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    EventLiteral target = EventLiteral::Positive(symbols.back());
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.synthesizer()->SynthesizeViaPaths(d, target));
  }
  state.SetLabel("Lemma 5 path enumeration (reference)");
}
BENCHMARK(BM_SynthesizeViaPathsLemma5)->Arg(2)->Arg(3)->Arg(4);

void BM_SynthesizeDisjointSplit(benchmark::State& state) {
  // Theorem 2/4 ablation: k independent Klein dependencies joined by '+'.
  // The component split makes this linear in k instead of exponential.
  const size_t k = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<const Expr*> parts;
    for (size_t i = 0; i < k; ++i) {
      SymbolId a = ctx.alphabet()->Intern(StrCat("a", i));
      SymbolId b = ctx.alphabet()->Intern(StrCat("b", i));
      parts.push_back(KleinPrecedes(ctx.exprs(), a, b));
    }
    const Expr* d = ctx.exprs()->Or(parts);
    EventLiteral target =
        EventLiteral::Positive(ctx.alphabet()->Find("a0"));
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.synthesizer()->Synthesize(d, target));
  }
}
BENCHMARK(BM_SynthesizeDisjointSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The steady-state fixture: one long-lived shard context whose compiled
/// OrderedIfAll(5) guards see the same announcement traffic from every
/// resident instance. Instance k>1's reductions are pure ReductionCache
/// lookups — the shape the shard-shared memo is built for.
struct SteadyStateFixture {
  WorkflowContext ctx;
  std::vector<SymbolId> symbols;
  std::vector<const Guard*> guards;
  std::vector<EventLiteral> trace;

  SteadyStateFixture() {
    symbols = MakeSymbols(&ctx, 5);
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    for (SymbolId s : symbols) {
      guards.push_back(
          ctx.synthesizer()->SynthesizeSimplified(d, EventLiteral::Positive(s)));
      trace.push_back(EventLiteral::Positive(s));
    }
  }

  /// One instance's worth of assimilation: every guard folded over the
  /// whole occurrence trace. Returns a checksum so nothing is elided.
  size_t ReplayOnce(ReductionCache* cache) {
    size_t checksum = 0;
    for (const Guard* g : guards) {
      for (EventLiteral l : trace) {
        g = ReduceGuard(ctx.guards(), ctx.residuator(), g,
                        {AnnouncementKind::kOccurred, l}, cache);
      }
      checksum += g->id();
    }
    return checksum;
  }
};

void BM_SteadyStateReduceUncached(benchmark::State& state) {
  SteadyStateFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ReplayOnce(nullptr));
  }
  state.SetLabel("pre-PR behavior: full recursive reduction walk per event");
}
BENCHMARK(BM_SteadyStateReduceUncached);

void BM_SteadyStateReduceCached(benchmark::State& state) {
  SteadyStateFixture fx;
  ReductionCache cache;
  fx.ReplayOnce(&cache);  // warm: first instance pays the misses
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ReplayOnce(&cache));
  }
  state.SetLabel("shard-shared ReductionCache, steady state (all hits)");
}
BENCHMARK(BM_SteadyStateReduceCached);

void BM_EvaluateNowRecursive(benchmark::State& state) {
  SteadyStateFixture fx;
  const Guard* g = fx.guards.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EventActor::EvaluateNow(g));
  }
  state.SetLabel("recursive walk (pre-PR)");
}
BENCHMARK(BM_EvaluateNowRecursive);

void BM_EvaluateNowFlat(benchmark::State& state) {
  SteadyStateFixture fx;
  const Guard* g = fx.guards.back();
  FlatEvaluator flat;
  flat.EvaluateNow(g);  // lower + memoize once
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat.EvaluateNow(g));
  }
  state.SetLabel("compiled flat program, memoized");
}
BENCHMARK(BM_EvaluateNowFlat);

/// Chrono-measured steady-state comparison exported into BENCH_ex9_guards
/// .json, so CI can diff the cached/uncached ratio without scraping the
/// google-benchmark console table.
void RecordSteadyStateGauges() {
  using Clock = std::chrono::steady_clock;
  SteadyStateFixture fx;
  const int kRounds = 20000;

  auto t0 = Clock::now();
  for (int i = 0; i < kRounds; ++i) benchmark::DoNotOptimize(fx.ReplayOnce(nullptr));
  auto t1 = Clock::now();

  ReductionCache cache;
  fx.ReplayOnce(&cache);  // warm
  auto t2 = Clock::now();
  for (int i = 0; i < kRounds; ++i) benchmark::DoNotOptimize(fx.ReplayOnce(&cache));
  auto t3 = Clock::now();

  double uncached_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kRounds;
  double cached_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / kRounds;
  auto& m = bench::BenchMetrics();
  m.gauge("ex9.steady_state_reduce_uncached_ns")->Set(uncached_ns);
  m.gauge("ex9.steady_state_reduce_cached_ns")->Set(cached_ns);
  m.gauge("ex9.steady_state_reduce_speedup")
      ->Set(cached_ns > 0 ? uncached_ns / cached_ns : 0);
  m.gauge("guards.reduction_cache_hit_rate")
      ->Set(static_cast<double>(cache.hits()) /
            static_cast<double>(cache.hits() + cache.misses()));
  std::printf(
      "steady-state assimilation: %.0f ns/instance uncached, %.0f ns/instance "
      "cached  =>  %.1fx (reduction cache %.1f%% hit)\n",
      uncached_ns, cached_ns, uncached_ns / cached_ns,
      100.0 * static_cast<double>(cache.hits()) /
          static_cast<double>(cache.hits() + cache.misses()));
}

void BM_CompileTravelWorkflow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    WorkflowSpec spec;
    SymbolId s_buy = ctx.alphabet()->Intern("s_buy");
    SymbolId c_buy = ctx.alphabet()->Intern("c_buy");
    SymbolId s_book = ctx.alphabet()->Intern("s_book");
    SymbolId c_book = ctx.alphabet()->Intern("c_book");
    SymbolId s_cancel = ctx.alphabet()->Intern("s_cancel");
    auto atom = [&](SymbolId s, bool c = false) {
      return ctx.exprs()->Atom(EventLiteral(s, c));
    };
    spec.Add("d1", ctx.exprs()->Or(atom(s_buy, true), atom(s_book)));
    spec.Add("d2", ctx.exprs()->Or(atom(c_buy, true),
                                   ctx.exprs()->Seq(atom(c_book),
                                                    atom(c_buy))));
    const Expr* d3_parts[] = {atom(c_book, true), atom(c_buy),
                              atom(s_cancel)};
    spec.Add("d3", ctx.exprs()->Or(d3_parts));
    state.ResumeTiming();
    CompiledWorkflow cw = CompileWorkflow(&ctx, spec);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("full Example 4 workflow, simplified guards");
}
BENCHMARK(BM_CompileTravelWorkflow);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintExample9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::RecordSteadyStateGauges();
  cdes::bench::ExportBenchMetrics("ex9_guards");
  return 0;
}
