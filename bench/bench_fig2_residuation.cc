// Experiment F2 — Figure 2: the symbolic scheduler state machines for
// D_< = ē + f̄ + e·f and D_→ = ē + f, regenerated from the residuation
// engine, plus microbenchmarks of residuation itself and the growth of the
// reachable-residual machine with dependency size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algebra/generator.h"
#include "common/strings.h"
#include "algebra/residuation.h"
#include "guards/context.h"
#include "bench_util.h"

namespace cdes {
namespace {

void PrintMachine(WorkflowContext* ctx, const char* name, const Expr* dep) {
  ResidualGraph graph = BuildResidualGraph(ctx->residuator(), dep);
  std::printf("%s = %s: %zu states, %zu transitions\n", name,
              ExprToString(dep, *ctx->alphabet()).c_str(),
              graph.states.size(), graph.edges.size());
  for (const auto& [key, to] : graph.edges) {
    std::printf("  [%s] --%s--> [%s]\n",
                ExprToString(graph.states[key.first],
                             *ctx->alphabet()).c_str(),
                ctx->alphabet()->LiteralName(key.second).c_str(),
                ExprToString(graph.states[to], *ctx->alphabet()).c_str());
  }
}

void PrintFigure2() {
  std::printf("==== Figure 2: scheduler states and transitions ====\n");
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");
  PrintMachine(&ctx, "D<", KleinPrecedes(ctx.exprs(), e, f));
  PrintMachine(&ctx, "D->", KleinImplies(ctx.exprs(), e, f));
  std::printf("\n");
}

// --------------------------------------------------------- benchmarks

void BM_ResiduateKleinPrecedes(benchmark::State& state) {
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");
  const Expr* d = KleinPrecedes(ctx.exprs(), e, f);
  EventLiteral pe = EventLiteral::Positive(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.residuator()->Residuate(d, pe));
  }
  state.SetLabel("memoized symbolic step");
}
BENCHMARK(BM_ResiduateKleinPrecedes);

void BM_ResiduateChainUncached(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;  // fresh context: no memoization benefit
    std::vector<SymbolId> symbols;
    for (size_t i = 0; i < n; ++i) {
      symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
    }
    const Expr* d = Chain(ctx.exprs(), symbols);
    state.ResumeTiming();
    const Expr* cur = d;
    for (SymbolId s : symbols) {
      cur = ctx.residuator()->Residuate(cur, EventLiteral::Positive(s));
    }
    benchmark::DoNotOptimize(cur);
  }
  state.SetLabel("full chain consumed, cold caches");
}
BENCHMARK(BM_ResiduateChainUncached)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildResidualGraphOrderedIfAll(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    std::vector<SymbolId> symbols;
    for (size_t i = 0; i < n; ++i) {
      symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
    }
    const Expr* d = OrderedIfAll(ctx.exprs(), symbols);
    state.ResumeTiming();
    ResidualGraph graph = BuildResidualGraph(ctx.residuator(), d);
    benchmark::DoNotOptimize(graph.states.size());
    state.counters["states"] = static_cast<double>(graph.states.size());
  }
}
BENCHMARK(BM_BuildResidualGraphOrderedIfAll)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_NormalForm(benchmark::State& state) {
  Rng rng(42);
  RandomExprOptions options;
  options.symbol_count = 4;
  options.max_depth = 4;
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    const Expr* e = GenerateRandomExpr(ctx.exprs(), &rng, options);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.residuator()->NormalForm(e));
  }
}
BENCHMARK(BM_NormalForm);

void BM_SatisfiabilityCheck(benchmark::State& state) {
  Rng rng(7);
  RandomExprOptions options;
  options.symbol_count = 3;
  options.max_depth = 3;
  WorkflowContext ctx;
  std::vector<const Expr*> exprs;
  for (int i = 0; i < 64; ++i) {
    exprs.push_back(GenerateRandomExpr(ctx.exprs(), &rng, options));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsSatisfiable(ctx.residuator(), exprs[i++ % exprs.size()]));
  }
}
BENCHMARK(BM_SatisfiabilityCheck);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("fig2_residuation");
  return 0;
}
