// Experiment F3 — Figure 3: the temporal-operator table over Γ = {e, ē},
// regenerated from the T semantics, plus microbenchmarks of guard
// evaluation and the cost of exact semantic canonicalization.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algebra/generator.h"
#include "guards/context.h"
#include "temporal/guard_semantics.h"
#include "temporal/simplify.h"
#include "bench_util.h"

namespace cdes {
namespace {

void PrintFigure3() {
  std::printf("==== Figure 3: temporal operators related to events ====\n");
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  EventLiteral pe = EventLiteral::Positive(e);
  EventLiteral ne = EventLiteral::Complement(e);
  struct Row {
    const char* label;
    const Guard* guard;
  };
  GuardArena* g = ctx.guards();
  ExprArena* x = ctx.exprs();
  std::vector<Row> rows = {
      {"!e    ", g->Neg(pe)},       {"[]e   ", g->Box(pe)},
      {"<>e   ", g->Diamond(x->Atom(pe))}, {"!~e   ", g->Neg(ne)},
      {"[]~e  ", g->Box(ne)},       {"<>~e  ", g->Diamond(x->Atom(ne))},
  };
  std::vector<std::pair<Trace, size_t>> points = {
      {{pe}, 0}, {{pe}, 1}, {{ne}, 0}, {{ne}, 1}};
  std::printf("%-8s %-8s %-8s %-8s %-8s\n", "", "<e>,0", "<e>,1", "<~e>,0",
              "<~e>,1");
  for (const Row& row : rows) {
    std::printf("%-8s", row.label);
    for (const auto& [trace, index] : points) {
      std::printf(" %-8s", HoldsAt(trace, index, row.guard) ? "X" : "");
    }
    std::printf("\n");
  }
  // Example 8's derived identities.
  std::printf("\nExample 8 identities (checked semantically):\n");
  std::printf("  (a) []e + []~e  != T : %s\n",
              !GuardIsValid(g->Or(g->Box(pe), g->Box(ne))) ? "ok" : "FAIL");
  std::printf("  (b) <>e + <>~e   = T : %s\n",
              g->Or(g->Diamond(x->Atom(pe)), g->Diamond(x->Atom(ne)))
                      ->IsTrue()
                  ? "ok"
                  : "FAIL");
  std::printf("  (c) <>e | <>~e   = 0 : %s\n",
              g->And(g->Diamond(x->Atom(pe)), g->Diamond(x->Atom(ne)))
                      ->IsFalse()
                  ? "ok"
                  : "FAIL");
  std::printf("  (e) !e + []e     = T : %s\n",
              g->Or(g->Neg(pe), g->Box(pe))->IsTrue() ? "ok" : "FAIL");
  std::printf("  (f) !e + []~e    = !e: %s\n",
              GuardEquivalent(g->Or(g->Neg(pe), g->Box(ne)), g->Neg(pe))
                  ? "ok"
                  : "FAIL");
  std::printf("\n");
}

void BM_HoldsAt(benchmark::State& state) {
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");
  EventLiteral pe = EventLiteral::Positive(e);
  EventLiteral pf = EventLiteral::Positive(f);
  const Guard* g = ctx.guards()->Or(
      ctx.guards()->And(ctx.guards()->Neg(pf), ctx.guards()->Box(pe)),
      ctx.guards()->Diamond(ctx.exprs()->Seq(ctx.exprs()->Atom(pe),
                                             ctx.exprs()->Atom(pf))));
  Trace u = {pe, pf};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HoldsAt(u, 1, g));
  }
}
BENCHMARK(BM_HoldsAt);

void BM_GuardStateSpace(benchmark::State& state) {
  const size_t k = state.range(0);
  std::set<SymbolId> symbols;
  for (size_t i = 0; i < k; ++i) symbols.insert(static_cast<SymbolId>(i));
  for (auto _ : state) {
    std::vector<GuardPoint> space = GuardStateSpace(symbols);
    benchmark::DoNotOptimize(space.size());
    state.counters["points"] = static_cast<double>(space.size());
  }
  state.SetLabel("2^k * k! * (k+1) points");
}
BENCHMARK(BM_GuardStateSpace)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_SimplifyGuard(benchmark::State& state) {
  WorkflowContext ctx;
  Rng rng(13);
  RandomExprOptions options;
  options.symbol_count = state.range(0);
  options.max_depth = 2;
  std::vector<const Guard*> guards;
  for (int i = 0; i < 16; ++i) {
    EventLiteral a(static_cast<SymbolId>(rng.Uniform(options.symbol_count)),
                   rng.Bernoulli(0.5));
    EventLiteral b(static_cast<SymbolId>(rng.Uniform(options.symbol_count)),
                   rng.Bernoulli(0.5));
    guards.push_back(ctx.guards()->Or(
        ctx.guards()->And(ctx.guards()->Neg(a), ctx.guards()->Neg(b)),
        ctx.guards()->Diamond(GenerateRandomExpr(ctx.exprs(), &rng, options))));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimplifyGuard(ctx.guards(), guards[i++ % guards.size()]));
  }
}
BENCHMARK(BM_SimplifyGuard)->Arg(2)->Arg(3)->Arg(4);

void BM_GuardEquivalence(benchmark::State& state) {
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  EventLiteral pe = EventLiteral::Positive(e);
  EventLiteral ne = EventLiteral::Complement(e);
  const Guard* a = ctx.guards()->Or(ctx.guards()->Neg(pe),
                                    ctx.guards()->Box(ne));
  const Guard* b = ctx.guards()->Neg(pe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GuardEquivalent(a, b));
  }
}
BENCHMARK(BM_GuardEquivalence);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("fig3_temporal");
  return 0;
}
