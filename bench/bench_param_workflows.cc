// Experiment E13/E14 — parametrized events (§5): instantiation throughput
// for parametrized workflows (Example 12), and the dynamics of
// universally-quantified guards (Examples 13, 14): how enabledness checks
// and announcement assimilation scale with the number of live instances.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "params/param_guard.h"

namespace cdes {
namespace {

void PrintParamSummary() {
  std::printf("==== Parametrized workflows and guards (Section 5) ====\n");
  // Example 14 walk-through, mechanically.
  WorkflowContext ctx;
  PGuard tmpl = PGuard::Or({
      PGuard::Neg(PAtom{"f", false, {PTerm::Var("y")}}),
      PGuard::Box(PAtom{"g", false, {PTerm::Var("y")}}),
  });
  auto tracker = ParamGuardInstance::Create(&ctx, tmpl);
  CDES_CHECK(tracker.ok());
  ParamGuardInstance t = std::move(tracker).value();
  std::printf("guard on e[x]: !f[y] + []g[y] (y universally quantified)\n");
  std::printf("  initially:            enabled=%d instances=%zu\n",
              t.EnabledNow(), t.instance_count());
  (void)t.OnAnnouncement("f", false, {42});
  std::printf("  after f[42]:          enabled=%d instances=%zu "
              "(guard grew to []g[42] | template)\n",
              t.EnabledNow(), t.instance_count());
  (void)t.OnAnnouncement("g", false, {42});
  std::printf("  after g[42]:          enabled=%d instances=%zu "
              "(guard resurrected)\n\n",
              t.EnabledNow(), t.instance_count());

  std::printf("instances  live-blocked   enabled-check-cost(see benchmarks)\n");
  for (size_t n : {1, 10, 100, 1000}) {
    WorkflowContext c2;
    auto r = ParamGuardInstance::Create(
        &c2, PGuard::Or({PGuard::Neg(PAtom{"f", false, {PTerm::Var("y")}}),
                         PGuard::Box(PAtom{"g", false, {PTerm::Var("y")}})}));
    CDES_CHECK(r.ok());
    ParamGuardInstance tr = std::move(r).value();
    for (size_t i = 0; i < n; ++i) {
      (void)tr.OnAnnouncement("f", false, {(ParamValue)i});
    }
    std::printf("%-10zu %-14zu\n", n, tr.blocking_instance_count());
  }
  std::printf("\n");
}

void BM_InstantiateTravelTemplate(benchmark::State& state) {
  const size_t instances = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    WorkflowTemplate travel = TravelTemplate();
    ParsedWorkflow combined;
    state.ResumeTiming();
    for (size_t i = 0; i < instances; ++i) {
      CDES_CHECK(travel.InstantiateInto(&ctx, {{"cid", (ParamValue)i}},
                                        &combined)
                     .ok());
    }
    benchmark::DoNotOptimize(combined.events.size());
  }
}
BENCHMARK(BM_InstantiateTravelTemplate)->Arg(1)->Arg(16)->Arg(256);

void BM_CompileInstantiatedWorkflow(benchmark::State& state) {
  const size_t instances = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    ParsedWorkflow combined = bench::MakeTravelInstances(&ctx, instances, 2);
    state.ResumeTiming();
    CompiledWorkflow cw = CompileWorkflow(&ctx, combined.spec);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("per-instance guards stay constant size");
}
BENCHMARK(BM_CompileInstantiatedWorkflow)->Arg(1)->Arg(8)->Arg(64);

void BM_ParamGuardAnnouncement(benchmark::State& state) {
  const size_t live = state.range(0);
  WorkflowContext ctx;
  auto r = ParamGuardInstance::Create(
      &ctx, PGuard::Or({PGuard::Neg(PAtom{"f", false, {PTerm::Var("y")}}),
                        PGuard::Box(PAtom{"g", false, {PTerm::Var("y")}})}));
  CDES_CHECK(r.ok());
  ParamGuardInstance tracker = std::move(r).value();
  for (size_t i = 0; i < live; ++i) {
    (void)tracker.OnAnnouncement("f", false, {(ParamValue)i});
  }
  ParamValue next = static_cast<ParamValue>(live);
  for (auto _ : state) {
    (void)tracker.OnAnnouncement("g", false, {next});
    ++next;
  }
  state.SetLabel("assimilate one announcement with N live instances");
}
BENCHMARK(BM_ParamGuardAnnouncement)->Arg(1)->Arg(10)->Arg(100);

void BM_ParamGuardEnabledCheck(benchmark::State& state) {
  const size_t live = state.range(0);
  WorkflowContext ctx;
  auto r = ParamGuardInstance::Create(
      &ctx, PGuard::Or({PGuard::Neg(PAtom{"f", false, {PTerm::Var("y")}}),
                        PGuard::Box(PAtom{"g", false, {PTerm::Var("y")}})}));
  CDES_CHECK(r.ok());
  ParamGuardInstance tracker = std::move(r).value();
  for (size_t i = 0; i < live; ++i) {
    (void)tracker.OnAnnouncement("f", false, {(ParamValue)i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.EnabledNow());
  }
}
BENCHMARK(BM_ParamGuardEnabledCheck)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_MutexLoopIteration(benchmark::State& state) {
  // One full enter/exit round trip of the looping mutual-exclusion pair.
  WorkflowContext ctx;
  auto mk = [&](const char* b, const char* e) {
    auto r = ParamGuardInstance::Create(
        &ctx, PGuard::Or({PGuard::Neg(PAtom{b, false, {PTerm::Var("y")}}),
                          PGuard::Box(PAtom{e, false, {PTerm::Var("y")}})}));
    CDES_CHECK(r.ok());
    return std::move(r).value();
  };
  ParamGuardInstance guard1 = mk("b2", "e2");
  ParamGuardInstance guard2 = mk("b1", "e1");
  ParamValue token = 0;
  for (auto _ : state) {
    ++token;
    CDES_CHECK(guard1.EnabledNow());
    (void)guard2.OnAnnouncement("b1", false, {token});
    CDES_CHECK(!guard2.EnabledNow());
    (void)guard2.OnAnnouncement("e1", false, {token});
    CDES_CHECK(guard2.EnabledNow());
  }
  state.SetLabel("enter+exit with guard growth and resurrection");
}
BENCHMARK(BM_MutexLoopIteration);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintParamSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("param_workflows");
  return 0;
}
