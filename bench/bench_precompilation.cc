// Experiment C1 — §6: "Much of the required symbolic reasoning can be
// precompiled, leading to efficiency at runtime." We separate the one-time
// compile cost (guard synthesis + canonicalization) from the per-event
// runtime cost (announcement assimilation by ReduceGuard + EvaluateNow),
// and show the amortization across events.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <chrono>

#include "bench_util.h"
#include "runtime/event_actor.h"
#include "temporal/reduction.h"

namespace cdes {
namespace {

void PrintAmortization() {
  std::printf("==== Precompilation vs runtime (travel workflow) ====\n");
  using Clock = std::chrono::steady_clock;

  auto t0 = Clock::now();
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  auto t1 = Clock::now();
  double compile_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();

  // Runtime: reduce the c_book guard by a full happy-path occurrence
  // sequence, many times.
  const Guard* guard = compiled.GuardFor(
      ctx.alphabet()->ParseLiteral("c_buy").value());
  std::vector<EventLiteral> occurrences = {
      ctx.alphabet()->ParseLiteral("s_book").value(),
      ctx.alphabet()->ParseLiteral("s_buy").value(),
      ctx.alphabet()->ParseLiteral("c_book").value(),
  };
  const int kRounds = 100000;
  auto t2 = Clock::now();
  for (int i = 0; i < kRounds; ++i) {
    const Guard* g = guard;
    for (EventLiteral l : occurrences) {
      g = ReduceGuard(ctx.guards(), ctx.residuator(), g,
                      {AnnouncementKind::kOccurred, l});
    }
    benchmark::DoNotOptimize(EventActor::EvaluateNow(g));
  }
  auto t3 = Clock::now();
  double reduce_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / kRounds;

  // The alternative to precompilation: synthesize the guard from scratch
  // at every attempt (what a naive scheduler would do).
  const int kOnlineRounds = 2000;
  auto t4 = Clock::now();
  for (int i = 0; i < kOnlineRounds; ++i) {
    WorkflowContext fresh;
    auto reparsed = ParseWorkflow(&fresh, bench::kTravelSpec);
    CDES_CHECK(reparsed.ok());
    const Dependency& d2 = reparsed.value().spec.dependencies()[1];
    benchmark::DoNotOptimize(fresh.synthesizer()->SynthesizeSimplified(
        d2.expr, fresh.alphabet()->ParseLiteral("c_buy").value()));
  }
  auto t5 = Clock::now();
  double online_us =
      std::chrono::duration<double, std::micro>(t5 - t4).count() /
      kOnlineRounds;

  std::printf("one-time guard compilation: %10.1f us (5 events, 3 deps)\n",
              compile_us);
  std::printf("runtime per 3-announcement assimilation: %7.3f us "
              "(precompiled, memoized arenas)\n",
              reduce_us);
  std::printf("online synthesis per attempt (no precompilation): %8.1f us "
              "— %.0fx the precompiled runtime cost\n\n",
              online_us, online_us / std::max(reduce_us, 1e-9));
}

void BM_CompileGuards(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    state.ResumeTiming();
    CompiledWorkflow cw = CompileWorkflow(&ctx, parsed.value().spec);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("one-time, with semantic canonicalization");
}
BENCHMARK(BM_CompileGuards);

void BM_CompileGuardsNoSimplify(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    state.ResumeTiming();
    CompileOptions options;
    options.simplify = false;
    CompiledWorkflow cw = CompileWorkflow(&ctx, parsed.value().spec, options);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("one-time, raw Definition 2 output");
}
BENCHMARK(BM_CompileGuardsNoSimplify);

void BM_RuntimeReduceAnnouncement(benchmark::State& state) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  const Guard* guard =
      compiled.GuardFor(ctx.alphabet()->ParseLiteral("c_buy").value());
  EventLiteral c_book = ctx.alphabet()->ParseLiteral("c_book").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReduceGuard(ctx.guards(), ctx.residuator(), guard,
                    {AnnouncementKind::kOccurred, c_book}));
  }
  state.SetLabel("per-announcement assimilation (memoized arenas)");
}
BENCHMARK(BM_RuntimeReduceAnnouncement);

void BM_RuntimeEvaluateNow(benchmark::State& state) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  const Guard* guard =
      compiled.GuardFor(ctx.alphabet()->ParseLiteral("c_book").value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EventActor::EvaluateNow(guard));
  }
}
BENCHMARK(BM_RuntimeEvaluateNow);

void BM_EndToEndAttemptNoSimplify(benchmark::State& state) {
  // Ablation: unsimplified (raw Definition 2) guards through the full
  // scheduler — correctness identical, guards bulkier, reductions slower.
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions options;
    options.simplify_guards = false;
    GuardScheduler sched(&ctx, parsed.value(), &net, options);
    state.ResumeTiming();
    for (const char* name : {"s_buy", "c_book", "c_buy"}) {
      sched.Attempt(ctx.alphabet()->ParseLiteral(name).value(), {});
      sim.Run();
    }
    CDES_CHECK(sched.HistoryConsistent());
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("raw Definition 2 guards (ablation)");
}
BENCHMARK(BM_EndToEndAttemptNoSimplify);

void BM_EndToEndAttempt(benchmark::State& state) {
  // Full per-workflow cost through the distributed scheduler, dominated by
  // simulated message handling rather than symbolic work once compiled.
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &net);
    state.ResumeTiming();
    for (const char* name : {"s_buy", "c_book", "c_buy"}) {
      sched.Attempt(ctx.alphabet()->ParseLiteral(name).value(), {});
      sim.Run();
    }
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("3 attempts + triggering, one travel instance");
}
BENCHMARK(BM_EndToEndAttempt);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintAmortization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("precompilation");
  return 0;
}
