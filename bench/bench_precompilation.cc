// Experiment C1 — §6: "Much of the required symbolic reasoning can be
// precompiled, leading to efficiency at runtime." We separate the one-time
// compile cost (guard synthesis + canonicalization) from the per-event
// runtime cost (announcement assimilation by ReduceGuard + EvaluateNow),
// and show the amortization across events.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <chrono>

#include "bench_util.h"
#include "runtime/event_actor.h"
#include "temporal/reduction.h"

namespace cdes {
namespace {

void PrintAmortization() {
  std::printf("==== Precompilation vs runtime (travel workflow) ====\n");
  using Clock = std::chrono::steady_clock;

  auto t0 = Clock::now();
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  auto t1 = Clock::now();
  double compile_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();

  // Runtime: reduce the c_book guard by a full happy-path occurrence
  // sequence, many times.
  const Guard* guard = compiled.GuardFor(
      ctx.alphabet()->ParseLiteral("c_buy").value());
  std::vector<EventLiteral> occurrences = {
      ctx.alphabet()->ParseLiteral("s_book").value(),
      ctx.alphabet()->ParseLiteral("s_buy").value(),
      ctx.alphabet()->ParseLiteral("c_book").value(),
  };
  const int kRounds = 100000;
  auto t2 = Clock::now();
  for (int i = 0; i < kRounds; ++i) {
    const Guard* g = guard;
    for (EventLiteral l : occurrences) {
      g = ReduceGuard(ctx.guards(), ctx.residuator(), g,
                      {AnnouncementKind::kOccurred, l});
    }
    benchmark::DoNotOptimize(EventActor::EvaluateNow(g));
  }
  auto t3 = Clock::now();
  double reduce_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / kRounds;

  // The alternative to precompilation: synthesize the guard from scratch
  // at every attempt (what a naive scheduler would do).
  const int kOnlineRounds = 2000;
  auto t4 = Clock::now();
  for (int i = 0; i < kOnlineRounds; ++i) {
    WorkflowContext fresh;
    auto reparsed = ParseWorkflow(&fresh, bench::kTravelSpec);
    CDES_CHECK(reparsed.ok());
    const Dependency& d2 = reparsed.value().spec.dependencies()[1];
    benchmark::DoNotOptimize(fresh.synthesizer()->SynthesizeSimplified(
        d2.expr, fresh.alphabet()->ParseLiteral("c_buy").value()));
  }
  auto t5 = Clock::now();
  double online_us =
      std::chrono::duration<double, std::micro>(t5 - t4).count() /
      kOnlineRounds;

  std::printf("one-time guard compilation: %10.1f us (5 events, 3 deps)\n",
              compile_us);
  std::printf("runtime per 3-announcement assimilation: %7.3f us "
              "(precompiled, memoized arenas)\n",
              reduce_us);
  std::printf("online synthesis per attempt (no precompilation): %8.1f us "
              "— %.0fx the precompiled runtime cost\n\n",
              online_us, online_us / std::max(reduce_us, 1e-9));
}

void BM_CompileGuards(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    state.ResumeTiming();
    CompiledWorkflow cw = CompileWorkflow(&ctx, parsed.value().spec);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("one-time, with semantic canonicalization");
}
BENCHMARK(BM_CompileGuards);

void BM_CompileGuardsNoSimplify(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    state.ResumeTiming();
    CompileOptions options;
    options.simplify = false;
    CompiledWorkflow cw = CompileWorkflow(&ctx, parsed.value().spec, options);
    benchmark::DoNotOptimize(&cw);
  }
  state.SetLabel("one-time, raw Definition 2 output");
}
BENCHMARK(BM_CompileGuardsNoSimplify);

void BM_RuntimeReduceAnnouncement(benchmark::State& state) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  const Guard* guard =
      compiled.GuardFor(ctx.alphabet()->ParseLiteral("c_buy").value());
  EventLiteral c_book = ctx.alphabet()->ParseLiteral("c_book").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReduceGuard(ctx.guards(), ctx.residuator(), guard,
                    {AnnouncementKind::kOccurred, c_book}));
  }
  state.SetLabel("per-announcement assimilation (memoized arenas)");
}
BENCHMARK(BM_RuntimeReduceAnnouncement);

void BM_RuntimeEvaluateNow(benchmark::State& state) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
  const Guard* guard =
      compiled.GuardFor(ctx.alphabet()->ParseLiteral("c_book").value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EventActor::EvaluateNow(guard));
  }
}
BENCHMARK(BM_RuntimeEvaluateNow);

void BM_EndToEndAttemptNoSimplify(benchmark::State& state) {
  // Ablation: unsimplified (raw Definition 2) guards through the full
  // scheduler — correctness identical, guards bulkier, reductions slower.
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions options;
    options.simplify_guards = false;
    GuardScheduler sched(&ctx, parsed.value(), &net, options);
    state.ResumeTiming();
    for (const char* name : {"s_buy", "c_book", "c_buy"}) {
      sched.Attempt(ctx.alphabet()->ParseLiteral(name).value(), {});
      sim.Run();
    }
    CDES_CHECK(sched.HistoryConsistent());
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("raw Definition 2 guards (ablation)");
}
BENCHMARK(BM_EndToEndAttemptNoSimplify);

/// An 8-stage pipeline: precompiled guards are an order of magnitude larger
/// than the travel workflow's, so per-event assimilation cost is dominated
/// by the reduction walk the ReductionCache short-circuits.
constexpr char kPipelineSpec[] = R"(
workflow pipeline {
  agent a @ site(0);
  event e0 agent(a);
  event e1 agent(a);
  event e2 agent(a);
  event e3 agent(a);
  event e4 agent(a);
  event e5 agent(a);
  event e6 agent(a);
  event e7 agent(a);
  dep d: e0 . e1 . e2 . e3 . e4 . e5 . e6 . e7;
}
)";

/// Steady-state announcement assimilation against the pipeline's
/// precompiled guards: what a warm shard does for every resident instance
/// after the first. Cached mode replays through the shard-shared
/// ReductionCache; uncached is the pre-PR recursive walk.
struct SteadyStateAssimilation {
  WorkflowContext ctx;
  std::vector<const Guard*> guards;
  std::vector<EventLiteral> trace;

  SteadyStateAssimilation() {
    auto parsed = ParseWorkflow(&ctx, kPipelineSpec);
    CDES_CHECK(parsed.ok());
    CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
    for (int i = 0; i < 8; ++i) {
      EventLiteral lit =
          ctx.alphabet()->ParseLiteral(StrCat("e", i)).value();
      guards.push_back(compiled.GuardFor(lit));
      trace.push_back(lit);
    }
  }

  size_t ReplayOnce(ReductionCache* cache) {
    size_t checksum = 0;
    for (const Guard* g : guards) {
      for (EventLiteral l : trace) {
        g = ReduceGuard(ctx.guards(), ctx.residuator(), g,
                        {AnnouncementKind::kOccurred, l}, cache);
      }
      checksum += g->id();
    }
    return checksum;
  }
};

void BM_SteadyStateAssimilationUncached(benchmark::State& state) {
  SteadyStateAssimilation fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ReplayOnce(nullptr));
  }
  state.SetLabel("pre-PR: recursive reduction walk per announcement");
}
BENCHMARK(BM_SteadyStateAssimilationUncached);

void BM_SteadyStateAssimilationCached(benchmark::State& state) {
  SteadyStateAssimilation fx;
  ReductionCache cache;
  fx.ReplayOnce(&cache);  // first instance pays the misses
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ReplayOnce(&cache));
  }
  state.SetLabel("warm shard-shared ReductionCache (steady state)");
}
BENCHMARK(BM_SteadyStateAssimilationCached);

/// Steady-state scheduler fixture: one shard-like WorkflowContext hosting
/// many travel instances back to back. With symbolic_caches on, every
/// instance after the first assimilates announcements via ReductionCache
/// hits and replays hold-back folds from memoized prefixes — the shape of a
/// warm engine shard. Off reproduces the pre-PR from-scratch walks.
struct SteadyStateScheduler {
  WorkflowContext ctx;
  ParsedWorkflow workflow;
  std::vector<EventLiteral> attempts;

  SteadyStateScheduler() {
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    workflow = std::move(parsed).value();
    for (const char* name : {"s_buy", "c_book", "c_buy"}) {
      attempts.push_back(ctx.alphabet()->ParseLiteral(name).value());
    }
  }

  size_t RunInstance(bool symbolic_caches) {
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions options;
    options.symbolic_caches = symbolic_caches;
    GuardScheduler sched(&ctx, workflow, &net, options);
    for (EventLiteral lit : attempts) {
      sched.Attempt(lit, {});
      sim.Run();
    }
    return sched.history().size();
  }
};

void BM_SteadyStateInstanceUncached(benchmark::State& state) {
  SteadyStateScheduler fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.RunInstance(false));
  }
  state.SetLabel("pre-PR: from-scratch reductions and hold-back folds");
}
BENCHMARK(BM_SteadyStateInstanceUncached);

void BM_SteadyStateInstanceCached(benchmark::State& state) {
  SteadyStateScheduler fx;
  fx.RunInstance(true);  // warm the shard-shared caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.RunInstance(true));
  }
  state.SetLabel("warm shard: memoized reductions + flat evaluation");
}
BENCHMARK(BM_SteadyStateInstanceCached);

/// Chrono-measured steady-state comparison exported into
/// BENCH_precompilation.json for CI diffing (same pattern as bench_ex9).
void RecordSteadyStateGauges() {
  using Clock = std::chrono::steady_clock;
  auto& m = bench::BenchMetrics();
  {
    SteadyStateAssimilation fx;
    const int kRounds = 20000;
    auto t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      benchmark::DoNotOptimize(fx.ReplayOnce(nullptr));
    }
    auto t1 = Clock::now();
    ReductionCache cache;
    fx.ReplayOnce(&cache);  // warm
    auto t2 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      benchmark::DoNotOptimize(fx.ReplayOnce(&cache));
    }
    auto t3 = Clock::now();
    double uncached_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kRounds;
    double cached_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() / kRounds;
    m.gauge("precompilation.steady_state_assimilation_uncached_ns")
        ->Set(uncached_ns);
    m.gauge("precompilation.steady_state_assimilation_cached_ns")
        ->Set(cached_ns);
    m.gauge("precompilation.steady_state_assimilation_speedup")
        ->Set(cached_ns > 0 ? uncached_ns / cached_ns : 0);
    std::printf(
        "steady-state assimilation (pipeline/8): %.0f ns uncached, %.0f ns "
        "cached  =>  %.1fx\n",
        uncached_ns, cached_ns, uncached_ns / cached_ns);
  }
  {
    SteadyStateScheduler fx;
    const int kRounds = 3000;
    auto t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      benchmark::DoNotOptimize(fx.RunInstance(false));
    }
    auto t1 = Clock::now();
    fx.RunInstance(true);  // warm
    auto t2 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      benchmark::DoNotOptimize(fx.RunInstance(true));
    }
    auto t3 = Clock::now();
    double uncached_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kRounds;
    double cached_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() / kRounds;
    m.gauge("precompilation.steady_state_instance_uncached_ns")
        ->Set(uncached_ns);
    m.gauge("precompilation.steady_state_instance_cached_ns")->Set(cached_ns);
    m.gauge("precompilation.steady_state_instance_speedup")
        ->Set(cached_ns > 0 ? uncached_ns / cached_ns : 0);
    std::printf(
        "steady-state instance: %.0f ns uncached, %.0f ns cached  =>  %.2fx "
        "(full scheduler turn incl. simulated messaging)\n",
        uncached_ns, cached_ns, uncached_ns / cached_ns);
  }
}

void BM_EndToEndAttempt(benchmark::State& state) {
  // Full per-workflow cost through the distributed scheduler, dominated by
  // simulated message handling rather than symbolic work once compiled.
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &net);
    state.ResumeTiming();
    for (const char* name : {"s_buy", "c_book", "c_buy"}) {
      sched.Attempt(ctx.alphabet()->ParseLiteral(name).value(), {});
      sim.Run();
    }
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("3 attempts + triggering, one travel instance");
}
BENCHMARK(BM_EndToEndAttempt);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintAmortization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::RecordSteadyStateGauges();
  cdes::bench::ExportBenchMetrics("precompilation");
  return 0;
}
