// Experiment E11+ — the ordered-promise consensus machinery (§4.3's
// "conditional promise", generalized): resolution cost of ◇-webs that a
// centralized scheduler would decide trivially. Chains a1·a2·...·an with
// every event attempted simultaneously are the stress case: promises must
// flow backward through the chain (with implied-□ sets and forwarding)
// before the head can fire. We report the message-kind breakdown and the
// simulated resolution time per chain length, plus the promise-ablation
// deadlock behavior.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace cdes {
namespace {

struct ChainResult {
  bool resolved = false;
  SimTime time = 0;
  GuardSchedulerStats stats;
};

ChainResult RunChain(size_t n, bool promises_enabled) {
  std::string spec_text = "workflow ch {\n";
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrCat("a", i));
    spec_text += StrCat("  event a", i, ";\n");
  }
  spec_text += "  dep chain: " + StrJoin(names, " . ") + ";\n}\n";

  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, spec_text);
  CDES_CHECK(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;
  Network net(&sim, 4, nopts);
  GuardSchedulerOptions options;
  options.enable_promises = promises_enabled;
  GuardScheduler sched(&ctx, parsed.value(), &net, options);
  for (size_t i = n; i-- > 0;) {
    sched.Attempt(ctx.alphabet()->ParseLiteral(names[i]).value(), {});
  }
  sim.Run();
  ChainResult result;
  result.resolved = (sched.history().size() == n);
  result.time = sim.now();
  result.stats = sched.stats();
  return result;
}

void PrintPromiseTables() {
  std::printf("==== Ordered-promise consensus: chain a1...an, all attempted "
              "at t=0, 1ms links ====\n");
  std::printf("%-4s %-9s %-13s %-9s %-9s %-9s %-9s\n", "n", "resolved",
              "sim-time(us)", "requests", "promises", "announce", "trigger");
  for (size_t n : {2, 3, 4, 5, 6, 8}) {
    ChainResult r = RunChain(n, true);
    std::printf("%-4zu %-9s %-13llu %-9llu %-9llu %-9llu %-9llu\n", n,
                r.resolved ? "yes" : "NO",
                static_cast<unsigned long long>(r.time),
                static_cast<unsigned long long>(r.stats.promise_requests),
                static_cast<unsigned long long>(r.stats.promises),
                static_cast<unsigned long long>(r.stats.announcements),
                static_cast<unsigned long long>(r.stats.triggers));
  }
  std::printf("\nablation (promises disabled): ");
  ChainResult off = RunChain(4, false);
  std::printf("chain of 4 %s — the mutual ◇-waits deadlock exactly as "
              "Example 11 predicts\n\n",
              off.resolved ? "resolved (unexpected!)" : "parks forever");
}

void BM_ChainResolution(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    ChainResult r = RunChain(n, true);
    benchmark::DoNotOptimize(r.resolved);
    state.counters["msgs"] = static_cast<double>(r.stats.total());
    state.counters["sim_us"] = static_cast<double>(r.time);
  }
}
BENCHMARK(BM_ChainResolution)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_MutualPromiseHandshake(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, R"(
workflow mutual {
  event e;
  event f;
  dep d1: e -> f;
  dep d2: f -> e;
}
)");
    CDES_CHECK(parsed.ok());
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &net);
    state.ResumeTiming();
    sched.Attempt(ctx.alphabet()->ParseLiteral("e").value(), {});
    sched.Attempt(ctx.alphabet()->ParseLiteral("f").value(), {});
    sim.Run();
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("Example 11: request/promise/announce round");
}
BENCHMARK(BM_MutualPromiseHandshake);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintPromiseTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("promises");
  return 0;
}
