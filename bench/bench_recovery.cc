// Durable-log and recovery costs (§5.1's operation-id logging [7]): append
// throughput, serialization, and full scheduler recovery by replay, as a
// function of log length.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "runtime/event_log.h"

namespace cdes {
namespace {

// Builds a log by actually running `instances` travel workflows.
EventLog BuildLog(size_t instances, std::string* serialized) {
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  Simulator sim;
  NetworkOptions nopts;
  Network net(&sim, 2, nopts);
  EventLog log;
  GuardSchedulerOptions options;
  options.durable_log = &log;
  GuardScheduler sched(&ctx, workflow, &net, options);
  bench::DriveScript(&ctx, &sched, &sim, &net,
                     bench::InterleavedTravelScript(instances));
  if (serialized != nullptr) *serialized = log.Serialize(*ctx.alphabet());
  return log;
}

void PrintRecoverySummary() {
  std::printf("==== Durable log / recovery (operation-id logging, §5.1) "
              "====\n");
  std::printf("%-10s %-12s %-14s\n", "instances", "log records",
              "serialized B");
  for (size_t instances : {1, 8, 64}) {
    std::string text;
    EventLog log = BuildLog(instances, &text);
    std::printf("%-10zu %-12zu %-14zu\n", instances, log.size(),
                text.size());
  }
  std::printf("\n");
}

void BM_LogAppend(benchmark::State& state) {
  EventLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    log.Append({OccurrenceStamp{seq, seq}, EventLiteral::Positive(0)});
    ++seq;
  }
}
BENCHMARK(BM_LogAppend);

void BM_LogSerialize(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string unused;
  EventLog log = BuildLog(instances, &unused);
  Alphabet alphabet;
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Serialize(*ctx.alphabet()));
  }
  state.counters["records"] = static_cast<double>(log.size());
}
BENCHMARK(BM_LogSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_RecoverScheduler(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string unused;
  EventLog log = BuildLog(instances, &unused);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, workflow, &net);
    state.ResumeTiming();
    CDES_CHECK(sched.Recover(log).ok());
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("replay: decisions + announcements, no network traffic");
}
BENCHMARK(BM_RecoverScheduler)->Arg(1)->Arg(8)->Arg(64);

void BM_DeserializeLog(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string text;
  BuildLog(instances, &text);
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  for (auto _ : state) {
    auto parsed = EventLog::Deserialize(*ctx.alphabet(), text);
    CDES_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed.value().size());
  }
}
BENCHMARK(BM_DeserializeLog)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintRecoverySummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("recovery");
  return 0;
}
