// Durable-log and recovery costs (§5.1's operation-id logging [7]): append
// throughput, serialization, full scheduler recovery by replay as a
// function of log length, and the headline checkpoint comparison —
// restoring N in-flight workflow instances from a checkpointed log versus
// replaying their whole history from genesis.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "runtime/checkpoint.h"
#include "runtime/event_log.h"

namespace cdes {
namespace {

// Builds a log by actually running `instances` travel workflows.
EventLog BuildLog(size_t instances, std::string* serialized) {
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  Simulator sim;
  NetworkOptions nopts;
  Network net(&sim, 2, nopts);
  EventLog log;
  GuardSchedulerOptions options;
  options.durable_log = &log;
  GuardScheduler sched(&ctx, workflow, &net, options);
  bench::DriveScript(&ctx, &sched, &sim, &net,
                     bench::InterleavedTravelScript(instances));
  if (serialized != nullptr) *serialized = log.Serialize(*ctx.alphabet());
  return log;
}

void PrintRecoverySummary() {
  std::printf("==== Durable log / recovery (operation-id logging, §5.1) "
              "====\n");
  std::printf("%-10s %-12s %-14s\n", "instances", "log records",
              "serialized B");
  for (size_t instances : {1, 8, 64}) {
    std::string text;
    EventLog log = BuildLog(instances, &text);
    std::printf("%-10zu %-12zu %-14zu\n", instances, log.size(),
                text.size());
  }
  std::printf("\n");
}

// ---- Checkpointed vs genesis recovery -------------------------------
//
// One scheduler world hosting `instances` concurrent pipeline workflows,
// each a pairwise-chained sequence of kStages events (every hop carries
// the travel template's d2 shape: e_j may occur only after e_{j-1}). The
// script drives each instance through e_0..e_{M-2} and leaves the final
// stage undecided at the crash, so every instance is in flight. Genesis
// recovery re-parses and re-folds every record since the beginning;
// checkpointed recovery restores the decided history and the per-actor
// heard-residual baselines from one checkpoint section and replays
// nothing. Only the recovery step itself (log load + Recover) is timed —
// world construction and spec parsing are identical on both sides and
// excluded.

constexpr size_t kStages = 12;

WorkflowTemplate ChainTemplate(size_t stages) {
  WorkflowTemplate t("chain", {"oid"});
  t.AddAgent("proc", 0);
  t.AddAgent("audit", 1);
  PTerm oid = PTerm::Var("oid");
  auto atom = [&](const std::string& name, bool complemented = false) {
    return PAtom{name, complemented, {oid}};
  };
  for (size_t j = 0; j < stages; ++j) {
    CDES_CHECK(t.AddEvent(atom(StrCat("e_", j)), "proc").ok());
  }
  // d_j: ~e_j + e_{j-1}·e_j — the backward-□ form stays live: mid-chain
  // events never acquire forward ◇-obligations over untriggerable futures.
  for (size_t j = 1; j < stages; ++j) {
    CDES_CHECK(t.AddDependency(
                    StrCat("d_", j),
                    PExpr::Or({PExpr::Atom(atom(StrCat("e_", j), true)),
                               PExpr::Seq({PExpr::Atom(atom(StrCat("e_", j - 1))),
                                           PExpr::Atom(atom(StrCat("e_", j)))})}))
                   .ok());
  }
  return t;
}

// Stage-major interleaving: all instances take stage j before any takes
// j+1, like a fleet of pipelines advancing in lockstep.
std::vector<std::string> ChainScript(size_t instances, size_t stages) {
  std::vector<std::string> script;
  script.reserve(instances * (stages - 1));
  for (size_t j = 0; j + 1 < stages; ++j) {
    for (size_t i = 0; i < instances; ++i) {
      script.push_back(StrCat("e_", j, "[", i, "]"));
    }
  }
  return script;
}

struct RecoveryWorld {
  RecoveryWorld(size_t instances, EventLog* log) {
    // Instances are installed one at a time (the §5.1 dynamic-arrival
    // path): each AddInstance synthesizes guards for its own events only,
    // so building a 10k-instance world is linear — the monolithic
    // CompileWorkflow scan over every (symbol, dependency) pair is not.
    WorkflowTemplate tmpl = ChainTemplate(kStages);
    NetworkOptions nopts;
    net = std::make_unique<Network>(&sim, 2, nopts);
    auto first = tmpl.Instantiate(&ctx, {{"oid", ParamValue{0}}});
    CDES_CHECK(first.ok());
    GuardSchedulerOptions options;
    options.durable_log = log;
    sched = std::make_unique<GuardScheduler>(&ctx, first.value(), net.get(),
                                             options);
    for (size_t i = 1; i < instances; ++i) {
      auto inst = tmpl.Instantiate(&ctx, {{"oid", static_cast<ParamValue>(i)}});
      CDES_CHECK(inst.ok());
      CDES_CHECK(sched->AddInstance(inst.value()).ok());
    }
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<GuardScheduler> sched;
};

void CheckpointComparisonRow(size_t instances) {
  using Clock = std::chrono::steady_clock;
  // Phase 1: drive every instance through all but the last stage,
  // journaling.
  EventLog log;
  auto writer = std::make_unique<RecoveryWorld>(instances, &log);
  auto drive =
      bench::DriveScript(&writer->ctx, writer->sched.get(), &writer->sim,
                         writer->net.get(), ChainScript(instances, kStages));
  CDES_CHECK(drive.accepted == instances * (kStages - 1))
      << drive.accepted << " accepted, " << drive.rejected
      << " rejected — chain workload must stay fully live";
  const Alphabet& alphabet = *writer->ctx.alphabet();
  std::string genesis_text = log.Serialize(alphabet);
  CheckpointState state = writer->sched->Snapshot();
  EventLog compacted = log;
  EventLog::CheckpointSection section;
  section.covered = compacted.total_records();
  section.last_stamp = compacted.last_stamp();
  section.payload = SerializeCheckpoint(state, alphabet);
  compacted.InstallCheckpoint(std::move(section));
  std::string checkpointed_text = compacted.Serialize(alphabet);
  size_t records = log.size();
  writer.reset();

  // Phase 2: time load + Recover into a fresh world, both ways.
  auto recover_ms = [&](const std::string& text, std::string* history) {
    RecoveryWorld w(instances, nullptr);
    Clock::time_point start = Clock::now();
    auto parsed = EventLog::LoadTolerant(*w.ctx.alphabet(), text);
    CDES_CHECK(parsed.ok()) << parsed.status();
    CDES_CHECK(w.sched->Recover(parsed.value()).ok());
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
    *history = TraceToString(w.sched->history(), *w.ctx.alphabet());
    return ms;
  };
  std::string genesis_history, checkpointed_history;
  double genesis_ms = recover_ms(genesis_text, &genesis_history);
  double checkpointed_ms =
      recover_ms(checkpointed_text, &checkpointed_history);
  CDES_CHECK(genesis_history == checkpointed_history)
      << "checkpointed recovery diverged from genesis replay";
  double speedup = genesis_ms / checkpointed_ms;
  std::printf("%-10zu %-10zu %-14.2f %-16.2f %-8.1fx\n", instances, records,
              genesis_ms, checkpointed_ms, speedup);

  obs::MetricsRegistry& m = bench::BenchMetrics();
  std::string prefix = StrCat("recovery.", instances, ".");
  m.gauge(prefix + "instances")->Set(static_cast<double>(instances));
  m.gauge(prefix + "records")->Set(static_cast<double>(records));
  m.gauge(prefix + "genesis_ms")->Set(genesis_ms);
  m.gauge(prefix + "checkpointed_ms")->Set(checkpointed_ms);
  m.gauge(prefix + "speedup")->Set(speedup);
}

void PrintCheckpointComparison() {
  std::printf("==== Checkpointed vs genesis recovery (in-flight instances) "
              "====\n");
  std::printf("%-10s %-10s %-14s %-16s %-8s\n", "instances", "records",
              "genesis ms", "checkpointed ms", "speedup");
  for (size_t instances : {1000, 10000}) {
    CheckpointComparisonRow(instances);
  }
  std::printf("\n");
}

void BM_LogAppend(benchmark::State& state) {
  EventLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    log.Append({OccurrenceStamp{seq, seq}, EventLiteral::Positive(0)});
    ++seq;
  }
}
BENCHMARK(BM_LogAppend);

void BM_LogSerialize(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string unused;
  EventLog log = BuildLog(instances, &unused);
  Alphabet alphabet;
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Serialize(*ctx.alphabet()));
  }
  state.counters["records"] = static_cast<double>(log.size());
}
BENCHMARK(BM_LogSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_RecoverScheduler(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string unused;
  EventLog log = BuildLog(instances, &unused);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
    Simulator sim;
    NetworkOptions nopts;
    Network net(&sim, 2, nopts);
    GuardScheduler sched(&ctx, workflow, &net);
    state.ResumeTiming();
    CDES_CHECK(sched.Recover(log).ok());
    benchmark::DoNotOptimize(sched.history().size());
  }
  state.SetLabel("replay: decisions + announcements, no network traffic");
}
BENCHMARK(BM_RecoverScheduler)->Arg(1)->Arg(8)->Arg(64);

void BM_DeserializeLog(benchmark::State& state) {
  const size_t instances = state.range(0);
  std::string text;
  BuildLog(instances, &text);
  WorkflowContext ctx;
  ParsedWorkflow workflow = bench::MakeTravelInstances(&ctx, instances, 2);
  for (auto _ : state) {
    auto parsed = EventLog::Deserialize(*ctx.alphabet(), text);
    CDES_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed.value().size());
  }
}
BENCHMARK(BM_DeserializeLog)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintRecoverySummary();
  cdes::PrintCheckpointComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("recovery");
  return 0;
}
