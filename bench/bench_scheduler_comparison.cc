// Experiment C2/E11 — the paper's distribution claim (§4, §6): the
// event-centric guard scheduler localizes decisions on events, while the
// centralized schedulers serialize every attempt through one site. We run
// identical multi-instance travel workloads (Example 12) through all three
// schedulers over the simulated network and report completion time,
// messages, and remote traffic, across instance counts and link latencies;
// the promise handshake of Example 11 is also exercised and counted.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace cdes {
namespace {

using bench::DriveConcurrent;
using bench::DriveResult;
using bench::MakeTravelInstances;
using bench::TravelHappyScript;

struct RunConfig {
  size_t instances = 16;
  int sites = 8;
  SimTime latency = 1000;       // 1ms links
  SimTime processing = 50;      // 50us serial handling per message per site
};

template <typename SchedulerT>
DriveResult RunTravel(const RunConfig& config) {
  WorkflowContext ctx;
  ParsedWorkflow workflow =
      MakeTravelInstances(&ctx, config.instances, config.sites);
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = config.latency;
  nopts.site_processing = config.processing;
  Network net(&sim, static_cast<size_t>(config.sites), nopts);
  SchedulerT sched(&ctx, workflow, &net);
  std::vector<std::vector<std::string>> scripts;
  for (size_t i = 0; i < config.instances; ++i) {
    scripts.push_back(TravelHappyScript(static_cast<ParamValue>(i)));
  }
  DriveResult result =
      DriveConcurrent(&ctx, &sched, &sim, &net, std::move(scripts));
  result.consistent = true;
  for (const Dependency& dep : workflow.spec.dependencies()) {
    const Expr* residual =
        ctx.residuator()->ResiduateTrace(dep.expr, sched.history());
    result.consistent &= !residual->IsZero();
  }
  result.parked_final = sched.parked_count();
  return result;
}

void PrintComparison() {
  std::printf(
      "==== Scheduler comparison: N concurrent travel workflows "
      "(Example 12) over 8 sites, 1ms links, 50us/message site "
      "processing ====\n");
  std::printf("all decisions of the centralized schedulers funnel through "
              "site 0; the guard scheduler decides at the events' own "
              "sites.\n\n");
  std::printf("%-10s %-26s %13s %10s %10s %6s\n", "instances", "scheduler",
              "makespan(us)", "messages", "remote", "ok");
  for (size_t instances : {1, 4, 16, 64, 256}) {
    struct Row {
      const char* name;
      DriveResult r;
    };
    RunConfig config;
    config.instances = instances;
    std::vector<Row> rows = {
        {"guard-distributed", RunTravel<GuardScheduler>(config)},
        {"residuation-centralized",
         RunTravel<ResiduationScheduler>(config)},
        {"automata-centralized", RunTravel<AutomataScheduler>(config)},
    };
    for (const Row& row : rows) {
      std::printf("%-10zu %-26s %13llu %10llu %10llu %6s\n", instances,
                  row.name,
                  static_cast<unsigned long long>(row.r.completion_time),
                  static_cast<unsigned long long>(row.r.messages),
                  static_cast<unsigned long long>(row.r.remote_messages),
                  row.r.consistent && row.r.parked_final == 0 ? "yes" : "NO");
    }
  }

  std::printf(
      "\n==== Single-workflow decision latency (no load): the centralized "
      "round trip vs the distributed announcement chain ====\n");
  std::printf("%-14s %-22s %-22s %-22s\n", "link latency", "guard-dist",
              "residuation-central", "automata-central");
  for (SimTime latency : {100u, 1000u, 10000u, 100000u}) {
    RunConfig config;
    config.instances = 1;
    config.sites = 2;
    config.latency = latency;
    config.processing = 0;
    std::printf("%-14llu %-22llu %-22llu %-22llu\n",
                static_cast<unsigned long long>(latency),
                static_cast<unsigned long long>(
                    RunTravel<GuardScheduler>(config).completion_time),
                static_cast<unsigned long long>(
                    RunTravel<ResiduationScheduler>(config).completion_time),
                static_cast<unsigned long long>(
                    RunTravel<AutomataScheduler>(config).completion_time));
  }

  // Example 11: the promise handshake.
  std::printf("\n==== Example 11: mutual implications via promises ====\n");
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, R"(
workflow mutual {
  agent a @ site(0);
  agent b @ site(1);
  event e agent(a);
  event f agent(b);
  dep d1: e -> f;
  dep d2: f -> e;
}
)");
  CDES_CHECK(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;
  Network net(&sim, 2, nopts);
  GuardScheduler sched(&ctx, parsed.value(), &net);
  sched.Attempt(ctx.alphabet()->ParseLiteral("e").value(), {});
  sched.Attempt(ctx.alphabet()->ParseLiteral("f").value(), {});
  sim.Run();
  std::printf("history %s resolved in %llu us with %llu messages "
              "(request/promise/announce)\n\n",
              TraceToString(sched.history(), *ctx.alphabet()).c_str(),
              static_cast<unsigned long long>(sim.now()),
              static_cast<unsigned long long>(net.stats().messages));
}

template <typename SchedulerT>
void BM_TravelWorkload(benchmark::State& state) {
  RunConfig config;
  config.instances = state.range(0);
  for (auto _ : state) {
    DriveResult r = RunTravel<SchedulerT>(config);
    benchmark::DoNotOptimize(r.messages);
    state.counters["sim_us"] = static_cast<double>(r.completion_time);
    state.counters["msgs"] = static_cast<double>(r.messages);
  }
}
BENCHMARK_TEMPLATE(BM_TravelWorkload, GuardScheduler)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_TEMPLATE(BM_TravelWorkload, ResiduationScheduler)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_TEMPLATE(BM_TravelWorkload, AutomataScheduler)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("scheduler_comparison");
  return 0;
}
