// Experiment E4/E10/E12 — the paper's motivating travel workflow end to
// end on the distributed guard scheduler: every outcome branch (happy path,
// compensation, booking declined) is regenerated with its realized history,
// and the per-branch message/time cost is measured over the simulated
// network.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace cdes {
namespace {

using bench::DriveResult;
using bench::DriveScript;

DriveResult RunBranch(const std::vector<std::string>& script,
                      std::string* history_out,
                      bool* satisfied_out) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;
  Network net(&sim, 2, nopts);
  GuardScheduler sched(&ctx, parsed.value(), &net);
  DriveResult result = DriveScript(&ctx, &sched, &sim, &net, script);
  *history_out = TraceToString(sched.history(), *ctx.alphabet());
  *satisfied_out = sched.HistoryConsistent();
  return result;
}

void PrintBranches() {
  std::printf("==== Example 4: travel workflow outcome branches ====\n");
  struct Branch {
    const char* name;
    std::vector<std::string> script;
  };
  std::vector<Branch> branches = {
      {"happy path (both commit)", {"s_buy", "c_book", "c_buy"}},
      {"compensation (buy aborts)", {"s_buy", "c_book", "~c_buy"}},
      {"buy never starts", {"~s_buy", "~c_buy", "~c_book"}},
      {"book declined up front", {"s_buy", "~c_book", "~c_buy"}},
  };
  std::printf("%-28s %-12s %-10s %-5s %s\n", "branch", "sim-time", "messages",
              "ok", "history");
  for (const Branch& branch : branches) {
    std::string history;
    bool satisfied = false;
    DriveResult r = RunBranch(branch.script, &history, &satisfied);
    std::printf("%-28s %-12llu %-10llu %-5s %s\n", branch.name,
                static_cast<unsigned long long>(r.completion_time),
                static_cast<unsigned long long>(r.messages),
                satisfied ? "yes" : "NO", history.c_str());
  }
  std::printf("\n");
}

void BM_HappyPath(benchmark::State& state) {
  for (auto _ : state) {
    std::string history;
    bool ok = false;
    DriveResult r = RunBranch({"s_buy", "c_book", "c_buy"}, &history, &ok);
    benchmark::DoNotOptimize(r.messages);
  }
}
BENCHMARK(BM_HappyPath);

void BM_CompensationPath(benchmark::State& state) {
  for (auto _ : state) {
    std::string history;
    bool ok = false;
    DriveResult r = RunBranch({"s_buy", "c_book", "~c_buy"}, &history, &ok);
    benchmark::DoNotOptimize(r.messages);
  }
}
BENCHMARK(BM_CompensationPath);

void BM_ManyInstancesOneScheduler(benchmark::State& state) {
  const size_t instances = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WorkflowContext ctx;
    ParsedWorkflow combined = bench::MakeTravelInstances(&ctx, instances, 2);
    Simulator sim;
    NetworkOptions nopts;
    nopts.base_latency = 1000;
    Network net(&sim, 3, nopts);
    GuardScheduler sched(&ctx, combined, &net);
    state.ResumeTiming();
    DriveResult r = DriveScript(&ctx, &sched, &sim, &net,
                                bench::InterleavedTravelScript(instances));
    benchmark::DoNotOptimize(r.messages);
    state.counters["msgs_per_instance"] =
        static_cast<double>(r.messages) / instances;
  }
  state.SetLabel("message cost stays per-instance constant");
}
BENCHMARK(BM_ManyInstancesOneScheduler)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintBranches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("travel_workflow");
  return 0;
}
