// Goodput and decision latency of the distributed guard scheduler on an
// unreliable network: the loss rate sweeps from 0 to 30%, frames
// duplicate, and a partition cuts the car enterprise off mid-run. The
// reliable-delivery layer (runtime/reliable_transport.h) repairs the
// transport with retransmissions, so the interesting quantities are how
// much longer a workflow takes to settle and how many extra frames the
// repair costs at each loss rate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace cdes {
namespace {

using bench::DriveResult;
using bench::DriveScript;

struct ChaosResult {
  DriveResult drive;
  uint64_t retransmits = 0;
  uint64_t acks = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  bool consistent = false;
};

ChaosResult RunChaos(double loss, double dup, bool partition, uint64_t seed) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, bench::kTravelSpec);
  CDES_CHECK(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;
  nopts.jitter = 500;
  nopts.fifo_links = false;
  nopts.drop_probability = loss;
  nopts.duplicate_probability = dup;
  nopts.seed = seed;
  Network net(&sim, 2, nopts);
  if (partition) net.SchedulePartition({1}, 5000, 60000);
  GuardScheduler sched(&ctx, parsed.value(), &net);
  ChaosResult out;
  out.drive = DriveScript(&ctx, &sched, &sim, &net,
                          {"s_buy", "c_book", "c_buy"});
  out.retransmits = sched.transport()->retransmits();
  out.acks = sched.transport()->acks();
  out.dropped = net.stats().dropped;
  out.duplicated = net.stats().duplicated;
  out.consistent = sched.HistoryConsistent();
  return out;
}

void PrintLossSweep() {
  std::printf("==== travel workflow vs loss rate (10 seeds each) ====\n");
  std::printf("%-6s %-12s %-10s %-12s %-9s %-9s %s\n", "loss", "sim-time",
              "frames", "retransmits", "dropped", "goodput", "ok");
  for (double loss : {0.0, 0.1, 0.2, 0.3}) {
    uint64_t time_sum = 0, frames = 0, retr = 0, dropped = 0;
    size_t payloads = 0;
    bool all_consistent = true;
    constexpr int kSeeds = 10;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ChaosResult r = RunChaos(loss, /*dup=*/0.0, /*partition=*/false, seed);
      time_sum += r.drive.completion_time;
      frames += r.drive.messages;
      retr += r.retransmits;
      dropped += r.dropped;
      // Payload goodput: protocol messages that mattered, i.e. total
      // frames minus acks, retransmissions, and dropped copies.
      payloads += r.drive.messages - r.acks - r.retransmits;
      all_consistent &= r.consistent;
    }
    std::printf("%-6.2f %-12llu %-10llu %-12llu %-9llu %-9.3f %s\n", loss,
                static_cast<unsigned long long>(time_sum / kSeeds),
                static_cast<unsigned long long>(frames / kSeeds),
                static_cast<unsigned long long>(retr / kSeeds),
                static_cast<unsigned long long>(dropped / kSeeds),
                static_cast<double>(payloads) / static_cast<double>(frames),
                all_consistent ? "yes" : "NO");
    obs::MetricsRegistry& m = bench::BenchMetrics();
    m.counter("bench.net.retransmits")->Increment(retr);
    m.counter("bench.net.dropped")->Increment(dropped);
  }
  std::printf("\n");
}

void PrintPartitionRun() {
  std::printf("==== partition/heal cycle (30%% loss, duplication) ====\n");
  ChaosResult r = RunChaos(0.3, 0.15, /*partition=*/true, 7);
  std::printf(
      "sim-time %llu  frames %llu  retransmits %llu  duplicated %llu  "
      "consistent %s\n\n",
      static_cast<unsigned long long>(r.drive.completion_time),
      static_cast<unsigned long long>(r.drive.messages),
      static_cast<unsigned long long>(r.retransmits),
      static_cast<unsigned long long>(r.duplicated),
      r.consistent ? "yes" : "NO");
}

void BM_LossRate(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    ChaosResult r = RunChaos(loss, 0.0, false, seed++);
    benchmark::DoNotOptimize(r.drive.completion_time);
    state.counters["sim_time"] =
        static_cast<double>(r.drive.completion_time);
    state.counters["retransmits"] = static_cast<double>(r.retransmits);
  }
}
BENCHMARK(BM_LossRate)->Arg(0)->Arg(10)->Arg(20)->Arg(30);

// The CI chaos smoke test filters on this benchmark: 10% loss on the
// travel workflow, asserting nothing beyond "terminates and stays
// consistent" (the CHECK below) — its job is to run the retransmission
// machinery under the sanitizers.
void BM_ChaosSmoke(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    ChaosResult r = RunChaos(0.1, 0.05, true, seed++);
    CDES_CHECK(r.consistent);
    benchmark::DoNotOptimize(r.drive.messages);
  }
}
BENCHMARK(BM_ChaosSmoke);

}  // namespace
}  // namespace cdes

int main(int argc, char** argv) {
  cdes::PrintLossSweep();
  cdes::PrintPartitionRun();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdes::bench::ExportBenchMetrics("unreliable_net");
  return 0;
}
