#ifndef CDES_BENCH_BENCH_UTIL_H_
#define CDES_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harness: canonical workloads and
// drivers used across the per-figure binaries, plus the machine-readable
// metrics snapshot every bench binary emits (see docs/OBSERVABILITY.md).

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/strings.h"
#include "guards/context.h"
#include "obs/metrics.h"
#include "params/param_workflow.h"
#include "sched/automata_scheduler.h"
#include "sched/guard_scheduler.h"
#include "sched/residuation_scheduler.h"
#include "spec/parser.h"

namespace cdes::bench {

/// The process-wide registry bench runs report into; exported as JSON by
/// ExportBenchMetrics at the end of every bench main.
inline obs::MetricsRegistry& BenchMetrics() {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  return *registry;
}

/// Folds one driven run's stats into BenchMetrics().
inline void RecordRunMetrics(const struct DriveResult& result);

/// Schema of the BENCH_*.json envelope written by ExportBenchMetrics.
/// Version 2 wraps the raw registry dump in
/// {"schema_version", "host": {"hostname", "hardware_threads"}, "metrics"}
/// so sweep tooling can tell runs from different machines apart (version 1
/// was the bare registry JSON).
inline constexpr int kBenchSchemaVersion = 2;

/// {"hostname": ..., "hardware_threads": ...} for the machine running the
/// bench — the provenance fields every BENCH_*.json shares.
inline std::string BenchHostJson() {
  char hostname[256] = "unknown";
  if (gethostname(hostname, sizeof(hostname)) != 0) {
    std::snprintf(hostname, sizeof(hostname), "unknown");
  }
  hostname[sizeof(hostname) - 1] = '\0';
  return StrCat("{\"hostname\": \"", hostname, "\", \"hardware_threads\": ",
                std::thread::hardware_concurrency(), "}");
}

/// Writes the BENCH_<name>.json envelope (schema_version, host provenance,
/// BenchMetrics() dump) in the working directory, so sweep tooling can diff
/// runs without scraping console output. Returns the path it wrote (empty
/// on failure).
inline std::string ExportBenchMetrics(const std::string& name) {
  std::string path = StrCat("BENCH_", name, ".json");
  std::string json =
      StrCat("{\"schema_version\": ", kBenchSchemaVersion,
             ",\n \"host\": ", BenchHostJson(),
             ",\n \"metrics\": ", BenchMetrics().ToJson(), "}");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "bench: metrics snapshot -> %s\n", path.c_str());
  return path;
}

inline constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

/// A multi-instance travel workload: `instances` customers with their own
/// agent copies, spread round-robin over `sites` sites.
inline ParsedWorkflow MakeTravelInstances(WorkflowContext* ctx,
                                          size_t instances, int sites) {
  WorkflowTemplate travel = TravelTemplate();
  ParsedWorkflow combined;
  for (size_t i = 0; i < instances; ++i) {
    CDES_CHECK(travel.InstantiateInto(ctx, {{"cid", (ParamValue)i}},
                                      &combined,
                                      /*per_instance_agents=*/true)
                   .ok());
  }
  for (size_t a = 0; a < combined.agents.size(); ++a) {
    combined.agents[a].site = static_cast<int>(a % sites);
  }
  return combined;
}

/// The happy-path attempt script for customer `cid`.
inline std::vector<std::string> TravelHappyScript(ParamValue cid) {
  return {StrCat("s_buy[", cid, "]"), StrCat("c_book[", cid, "]"),
          StrCat("c_buy[", cid, "]")};
}

/// The compensation-path script.
inline std::vector<std::string> TravelCompensationScript(ParamValue cid) {
  return {StrCat("s_buy[", cid, "]"), StrCat("c_book[", cid, "]"),
          StrCat("~c_buy[", cid, "]")};
}

struct DriveResult {
  SimTime completion_time = 0;
  uint64_t messages = 0;
  uint64_t remote_messages = 0;
  uint64_t bytes = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t parked_final = 0;
  bool consistent = true;
};

inline void RecordRunMetrics(const DriveResult& result) {
  obs::MetricsRegistry& m = BenchMetrics();
  m.counter("bench.runs")->Increment();
  m.counter("bench.messages")->Increment(result.messages);
  m.counter("bench.remote_messages")->Increment(result.remote_messages);
  m.counter("bench.bytes")->Increment(result.bytes);
  m.counter("bench.accepted")->Increment(result.accepted);
  m.counter("bench.rejected")->Increment(result.rejected);
  m.histogram("bench.sim_time_us", obs::MetricsRegistry::ExponentialBounds())
      ->Observe(result.completion_time);
}

/// Drives `script` (event literal names, attempted in order, each run to
/// quiescence) through a scheduler; returns timing and message stats.
template <typename SchedulerT>
DriveResult DriveScript(WorkflowContext* ctx, SchedulerT* sched,
                        Simulator* sim, Network* net,
                        const std::vector<std::string>& script) {
  DriveResult out;
  for (const std::string& name : script) {
    auto lit = ctx->alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok()) << lit.status() << " for " << name;
    sched->Attempt(lit.value(), [&out](Decision d) {
      if (d == Decision::kAccepted) ++out.accepted;
      if (d == Decision::kRejected) ++out.rejected;
    });
    sim->Run();
  }
  out.completion_time = sim->now();
  out.messages = net->stats().messages;
  out.remote_messages = net->stats().remote_messages;
  out.bytes = net->stats().bytes;
  RecordRunMetrics(out);
  return out;
}

/// Interleaved happy-path scripts for `instances` customers.
inline std::vector<std::string> InterleavedTravelScript(size_t instances) {
  std::vector<std::string> script;
  for (const char* stage : {"s_buy[", "c_book[", "c_buy["}) {
    for (size_t i = 0; i < instances; ++i) {
      script.push_back(StrCat(stage, i, "]"));
    }
  }
  return script;
}

/// Drives one script per instance *concurrently*: every instance submits
/// its next attempt the moment the previous one resolves, so independent
/// workflows overlap and a centralized scheduler's site becomes the
/// bottleneck. Returns stats after the simulator drains.
template <typename SchedulerT>
DriveResult DriveConcurrent(WorkflowContext* ctx, SchedulerT* sched,
                            Simulator* sim, Network* net,
                            std::vector<std::vector<std::string>> scripts) {
  auto result = std::make_shared<DriveResult>();
  struct Driver {
    WorkflowContext* ctx;
    SchedulerT* sched;
    std::vector<std::vector<std::string>> scripts;
    std::shared_ptr<DriveResult> result;

    void Start(size_t script_index, size_t pos) {
      if (pos >= scripts[script_index].size()) return;
      auto lit = ctx->alphabet()->ParseLiteral(scripts[script_index][pos]);
      CDES_CHECK(lit.ok());
      sched->Attempt(lit.value(), [this, script_index, pos](Decision d) {
        if (d == Decision::kParked) return;  // wait for the final verdict
        if (d == Decision::kAccepted) ++result->accepted;
        if (d == Decision::kRejected) ++result->rejected;
        Start(script_index, pos + 1);
      });
    }
  };
  auto driver = std::make_shared<Driver>(
      Driver{ctx, sched, std::move(scripts), result});
  for (size_t i = 0; i < driver->scripts.size(); ++i) {
    // Keep the driver alive for the whole run via the capture.
    sim->Schedule(0, [driver, i] { driver->Start(i, 0); });
  }
  sim->Run();
  result->completion_time = sim->now();
  result->messages = net->stats().messages;
  result->remote_messages = net->stats().remote_messages;
  result->bytes = net->stats().bytes;
  RecordRunMetrics(*result);
  return *result;
}

}  // namespace cdes::bench

#endif  // CDES_BENCH_BENCH_UTIL_H_
