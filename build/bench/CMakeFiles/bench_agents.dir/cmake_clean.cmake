file(REMOVE_RECURSE
  "CMakeFiles/bench_agents.dir/bench_agents.cc.o"
  "CMakeFiles/bench_agents.dir/bench_agents.cc.o.d"
  "bench_agents"
  "bench_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
