# Empty dependencies file for bench_agents.
# This may be replaced when dependencies are built.
