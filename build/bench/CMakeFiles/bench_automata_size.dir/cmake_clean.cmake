file(REMOVE_RECURSE
  "CMakeFiles/bench_automata_size.dir/bench_automata_size.cc.o"
  "CMakeFiles/bench_automata_size.dir/bench_automata_size.cc.o.d"
  "bench_automata_size"
  "bench_automata_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automata_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
