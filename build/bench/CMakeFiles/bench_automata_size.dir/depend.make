# Empty dependencies file for bench_automata_size.
# This may be replaced when dependencies are built.
