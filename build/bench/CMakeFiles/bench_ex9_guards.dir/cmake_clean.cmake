file(REMOVE_RECURSE
  "CMakeFiles/bench_ex9_guards.dir/bench_ex9_guards.cc.o"
  "CMakeFiles/bench_ex9_guards.dir/bench_ex9_guards.cc.o.d"
  "bench_ex9_guards"
  "bench_ex9_guards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex9_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
