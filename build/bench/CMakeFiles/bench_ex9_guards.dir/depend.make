# Empty dependencies file for bench_ex9_guards.
# This may be replaced when dependencies are built.
