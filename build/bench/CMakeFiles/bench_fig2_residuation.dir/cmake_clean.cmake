file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_residuation.dir/bench_fig2_residuation.cc.o"
  "CMakeFiles/bench_fig2_residuation.dir/bench_fig2_residuation.cc.o.d"
  "bench_fig2_residuation"
  "bench_fig2_residuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_residuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
