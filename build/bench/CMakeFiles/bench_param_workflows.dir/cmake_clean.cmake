file(REMOVE_RECURSE
  "CMakeFiles/bench_param_workflows.dir/bench_param_workflows.cc.o"
  "CMakeFiles/bench_param_workflows.dir/bench_param_workflows.cc.o.d"
  "bench_param_workflows"
  "bench_param_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
