# Empty compiler generated dependencies file for bench_param_workflows.
# This may be replaced when dependencies are built.
