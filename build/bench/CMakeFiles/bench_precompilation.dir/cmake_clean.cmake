file(REMOVE_RECURSE
  "CMakeFiles/bench_precompilation.dir/bench_precompilation.cc.o"
  "CMakeFiles/bench_precompilation.dir/bench_precompilation.cc.o.d"
  "bench_precompilation"
  "bench_precompilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precompilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
