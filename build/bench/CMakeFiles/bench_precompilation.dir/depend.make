# Empty dependencies file for bench_precompilation.
# This may be replaced when dependencies are built.
