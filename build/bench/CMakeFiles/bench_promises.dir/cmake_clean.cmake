file(REMOVE_RECURSE
  "CMakeFiles/bench_promises.dir/bench_promises.cc.o"
  "CMakeFiles/bench_promises.dir/bench_promises.cc.o.d"
  "bench_promises"
  "bench_promises.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_promises.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
