# Empty compiler generated dependencies file for bench_promises.
# This may be replaced when dependencies are built.
