file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_comparison.dir/bench_scheduler_comparison.cc.o"
  "CMakeFiles/bench_scheduler_comparison.dir/bench_scheduler_comparison.cc.o.d"
  "bench_scheduler_comparison"
  "bench_scheduler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
