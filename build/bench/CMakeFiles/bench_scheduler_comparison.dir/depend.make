# Empty dependencies file for bench_scheduler_comparison.
# This may be replaced when dependencies are built.
