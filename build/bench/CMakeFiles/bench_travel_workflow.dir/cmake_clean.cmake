file(REMOVE_RECURSE
  "CMakeFiles/bench_travel_workflow.dir/bench_travel_workflow.cc.o"
  "CMakeFiles/bench_travel_workflow.dir/bench_travel_workflow.cc.o.d"
  "bench_travel_workflow"
  "bench_travel_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_travel_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
