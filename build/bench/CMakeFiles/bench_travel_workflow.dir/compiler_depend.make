# Empty compiler generated dependencies file for bench_travel_workflow.
# This may be replaced when dependencies are built.
