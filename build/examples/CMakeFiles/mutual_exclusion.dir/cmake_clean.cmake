file(REMOVE_RECURSE
  "CMakeFiles/mutual_exclusion.dir/mutual_exclusion.cc.o"
  "CMakeFiles/mutual_exclusion.dir/mutual_exclusion.cc.o.d"
  "mutual_exclusion"
  "mutual_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
