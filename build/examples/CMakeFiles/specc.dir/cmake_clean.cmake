file(REMOVE_RECURSE
  "CMakeFiles/specc.dir/specc.cc.o"
  "CMakeFiles/specc.dir/specc.cc.o.d"
  "specc"
  "specc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
