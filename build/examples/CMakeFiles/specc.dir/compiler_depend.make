# Empty compiler generated dependencies file for specc.
# This may be replaced when dependencies are built.
