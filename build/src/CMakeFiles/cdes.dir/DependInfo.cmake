
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/task_agent.cc" "src/CMakeFiles/cdes.dir/agents/task_agent.cc.o" "gcc" "src/CMakeFiles/cdes.dir/agents/task_agent.cc.o.d"
  "/root/repo/src/agents/task_model.cc" "src/CMakeFiles/cdes.dir/agents/task_model.cc.o" "gcc" "src/CMakeFiles/cdes.dir/agents/task_model.cc.o.d"
  "/root/repo/src/algebra/event.cc" "src/CMakeFiles/cdes.dir/algebra/event.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/event.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/cdes.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/generator.cc" "src/CMakeFiles/cdes.dir/algebra/generator.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/generator.cc.o.d"
  "/root/repo/src/algebra/residuation.cc" "src/CMakeFiles/cdes.dir/algebra/residuation.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/residuation.cc.o.d"
  "/root/repo/src/algebra/semantics.cc" "src/CMakeFiles/cdes.dir/algebra/semantics.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/semantics.cc.o.d"
  "/root/repo/src/algebra/trace.cc" "src/CMakeFiles/cdes.dir/algebra/trace.cc.o" "gcc" "src/CMakeFiles/cdes.dir/algebra/trace.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cdes.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cdes.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cdes.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cdes.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cdes.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cdes.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/cdes.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/cdes.dir/common/strings.cc.o.d"
  "/root/repo/src/guards/synthesis.cc" "src/CMakeFiles/cdes.dir/guards/synthesis.cc.o" "gcc" "src/CMakeFiles/cdes.dir/guards/synthesis.cc.o.d"
  "/root/repo/src/guards/verifier.cc" "src/CMakeFiles/cdes.dir/guards/verifier.cc.o" "gcc" "src/CMakeFiles/cdes.dir/guards/verifier.cc.o.d"
  "/root/repo/src/guards/workflow.cc" "src/CMakeFiles/cdes.dir/guards/workflow.cc.o" "gcc" "src/CMakeFiles/cdes.dir/guards/workflow.cc.o.d"
  "/root/repo/src/params/param_expr.cc" "src/CMakeFiles/cdes.dir/params/param_expr.cc.o" "gcc" "src/CMakeFiles/cdes.dir/params/param_expr.cc.o.d"
  "/root/repo/src/params/param_guard.cc" "src/CMakeFiles/cdes.dir/params/param_guard.cc.o" "gcc" "src/CMakeFiles/cdes.dir/params/param_guard.cc.o.d"
  "/root/repo/src/params/param_workflow.cc" "src/CMakeFiles/cdes.dir/params/param_workflow.cc.o" "gcc" "src/CMakeFiles/cdes.dir/params/param_workflow.cc.o.d"
  "/root/repo/src/runtime/event_actor.cc" "src/CMakeFiles/cdes.dir/runtime/event_actor.cc.o" "gcc" "src/CMakeFiles/cdes.dir/runtime/event_actor.cc.o.d"
  "/root/repo/src/runtime/event_log.cc" "src/CMakeFiles/cdes.dir/runtime/event_log.cc.o" "gcc" "src/CMakeFiles/cdes.dir/runtime/event_log.cc.o.d"
  "/root/repo/src/sched/automata_scheduler.cc" "src/CMakeFiles/cdes.dir/sched/automata_scheduler.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sched/automata_scheduler.cc.o.d"
  "/root/repo/src/sched/diagnostics.cc" "src/CMakeFiles/cdes.dir/sched/diagnostics.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sched/diagnostics.cc.o.d"
  "/root/repo/src/sched/guard_scheduler.cc" "src/CMakeFiles/cdes.dir/sched/guard_scheduler.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sched/guard_scheduler.cc.o.d"
  "/root/repo/src/sched/residuation_scheduler.cc" "src/CMakeFiles/cdes.dir/sched/residuation_scheduler.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sched/residuation_scheduler.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/cdes.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/cdes.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/cdes.dir/sim/simulator.cc.o.d"
  "/root/repo/src/spec/parser.cc" "src/CMakeFiles/cdes.dir/spec/parser.cc.o" "gcc" "src/CMakeFiles/cdes.dir/spec/parser.cc.o.d"
  "/root/repo/src/temporal/guard.cc" "src/CMakeFiles/cdes.dir/temporal/guard.cc.o" "gcc" "src/CMakeFiles/cdes.dir/temporal/guard.cc.o.d"
  "/root/repo/src/temporal/guard_semantics.cc" "src/CMakeFiles/cdes.dir/temporal/guard_semantics.cc.o" "gcc" "src/CMakeFiles/cdes.dir/temporal/guard_semantics.cc.o.d"
  "/root/repo/src/temporal/reduction.cc" "src/CMakeFiles/cdes.dir/temporal/reduction.cc.o" "gcc" "src/CMakeFiles/cdes.dir/temporal/reduction.cc.o.d"
  "/root/repo/src/temporal/simplify.cc" "src/CMakeFiles/cdes.dir/temporal/simplify.cc.o" "gcc" "src/CMakeFiles/cdes.dir/temporal/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
