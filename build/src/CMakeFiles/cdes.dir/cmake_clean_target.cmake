file(REMOVE_RECURSE
  "libcdes.a"
)
