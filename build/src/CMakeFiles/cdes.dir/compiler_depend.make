# Empty compiler generated dependencies file for cdes.
# This may be replaced when dependencies are built.
