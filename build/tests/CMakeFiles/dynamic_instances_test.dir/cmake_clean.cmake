file(REMOVE_RECURSE
  "CMakeFiles/dynamic_instances_test.dir/dynamic_instances_test.cc.o"
  "CMakeFiles/dynamic_instances_test.dir/dynamic_instances_test.cc.o.d"
  "dynamic_instances_test"
  "dynamic_instances_test.pdb"
  "dynamic_instances_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
