# Empty compiler generated dependencies file for dynamic_instances_test.
# This may be replaced when dependencies are built.
