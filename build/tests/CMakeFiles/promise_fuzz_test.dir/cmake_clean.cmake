file(REMOVE_RECURSE
  "CMakeFiles/promise_fuzz_test.dir/promise_fuzz_test.cc.o"
  "CMakeFiles/promise_fuzz_test.dir/promise_fuzz_test.cc.o.d"
  "promise_fuzz_test"
  "promise_fuzz_test.pdb"
  "promise_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promise_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
