file(REMOVE_RECURSE
  "CMakeFiles/residuation_test.dir/residuation_test.cc.o"
  "CMakeFiles/residuation_test.dir/residuation_test.cc.o.d"
  "residuation_test"
  "residuation_test.pdb"
  "residuation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residuation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
