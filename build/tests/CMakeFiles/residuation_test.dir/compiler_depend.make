# Empty compiler generated dependencies file for residuation_test.
# This may be replaced when dependencies are built.
