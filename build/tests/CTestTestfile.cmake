# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/residuation_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/guards_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/agents_test[1]_include.cmake")
include("/root/repo/build/tests/params_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/diagnostics_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_instances_test[1]_include.cmake")
include("/root/repo/build/tests/promise_fuzz_test[1]_include.cmake")
