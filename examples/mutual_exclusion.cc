// Example 13 / Example 14: inter-workflow constraints over parametrized
// events, scheduling tasks of arbitrary (looping) structure. Two tasks
// repeatedly enter and leave critical sections; each iteration uses a fresh
// token from the agent's counter (§5.1), and the parametrized guards grow,
// shrink, and resurrect as in Example 14.
//
// Build & run:  ./build/examples/mutual_exclusion

#include <cstdio>

#include "common/rng.h"
#include "params/param_guard.h"

int main() {
  using namespace cdes;

  WorkflowContext ctx;

  std::printf("== Example 13: the mutual-exclusion dependency ==\n");
  PExpr dep = MutualExclusionDependency("b1", "e1", "b2", "e2");
  std::printf("D(x,y) = b2[y].b1[x] + ~e1[x] + ~b2[y] + e1[x].b2[y]\n");
  std::printf("free variables: x (T1's token), y (T2's token)\n\n");

  // Guards on enter events, in the shape Example 14 works through:
  //   guard on b1[x]:  ¬b2[y] + □e2[y]   (for all y)
  auto make_guard = [&](const char* other_b, const char* other_e) {
    PGuard tmpl = PGuard::Or({
        PGuard::Neg(PAtom{other_b, false, {PTerm::Var("y")}}),
        PGuard::Box(PAtom{other_e, false, {PTerm::Var("y")}}),
    });
    auto r = ParamGuardInstance::Create(&ctx, tmpl);
    CDES_CHECK(r.ok()) << r.status();
    return std::move(r).value();
  };
  ParamGuardInstance guard1 = make_guard("b2", "e2");
  ParamGuardInstance guard2 = make_guard("b1", "e1");

  std::printf("== Example 14: guard growth / shrinkage across a run ==\n");
  struct Task {
    const char* name;
    const char* b;
    const char* e;
    ParamGuardInstance* enter_guard;  // guards this task's entry
    ParamGuardInstance* other_guard;  // the other task listens here
    int done = 0;
    bool inside = false;
    ParamValue token = 0;
  };
  Task t1{"T1", "b1", "e1", &guard1, &guard2, 0, false, 0};
  Task t2{"T2", "b2", "e2", &guard2, &guard1, 0, false, 0};

  Rng rng(2026);
  const int kIterations = 4;
  int step = 0;
  while (t1.done < kIterations || t2.done < kIterations) {
    Task& task = rng.Bernoulli(0.5) ? t1 : t2;
    Task& other = (&task == &t1) ? t2 : t1;
    if (task.done >= kIterations) continue;
    ++step;
    if (!task.inside) {
      if (task.enter_guard->EnabledNow()) {
        task.token = task.done + 1;
        task.inside = true;
        (void)task.other_guard->OnAnnouncement(task.b, false, {task.token});
        std::printf("%3d: %s enters  (token %lld); %s's guard now has %zu "
                    "blocking instance(s)\n",
                    step, task.name, static_cast<long long>(task.token),
                    other.name, other.enter_guard->blocking_instance_count());
      } else {
        std::printf("%3d: %s blocked (guard grew: %zu blocking instance(s))\n",
                    step, task.name,
                    task.enter_guard->blocking_instance_count());
      }
    } else {
      task.inside = false;
      ++task.done;
      (void)task.other_guard->OnAnnouncement(task.e, false, {task.token});
      std::printf("%3d: %s exits   (token %lld); %s's guard resurrected\n",
                  step, task.name, static_cast<long long>(task.token),
                  other.name);
    }
    CDES_CHECK(!(t1.inside && t2.inside)) << "mutual exclusion violated!";
  }
  std::printf("\nBoth tasks completed %d iterations; the critical sections "
              "never overlapped.\n", kIterations);
  return 0;
}
