// A second domain scenario: order processing across three autonomous
// services (payment, inventory, shipping). Shows multi-dependency
// composition, workflow closure to a maximal trace, and the durable event
// log with crash recovery.
//
// Coordination requirements:
//   r1: shipping starts only after payment commits      (c_pay < s_ship)
//   r2: shipping starts only after inventory reserves   (c_res < s_ship)
//   r3: a reservation is released unless shipping starts
//       (~c_res + s_ship + s_release)
//   r4: payment starting implies a reservation attempt  (s_pay -> s_res)
//
// Build & run:  ./build/examples/order_processing

#include <cstdio>

#include "runtime/event_log.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace {

constexpr char kOrderSpec[] = R"(
workflow order {
  agent payment   @ site(0);
  agent inventory @ site(1);
  agent shipping  @ site(2);

  event s_pay     agent(payment);
  event c_pay     agent(payment);
  event s_res     agent(inventory) attrs(triggerable);
  event c_res     agent(inventory);
  event s_release agent(inventory) attrs(triggerable);
  event s_ship    agent(shipping);

  dep r1: c_pay < s_ship;
  dep r2: c_res < s_ship;
  dep r3: ~c_res + s_ship + s_release;
  dep r4: s_pay -> s_res;
}
)";

}  // namespace

int main() {
  using namespace cdes;

  EventLog log;
  std::string snapshot;

  std::printf("== Phase 1: order comes in; then the coordinator crashes ==\n");
  {
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, kOrderSpec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    Simulator sim;
    NetworkOptions nopts;
    nopts.base_latency = 1500;
    Network net(&sim, 3, nopts);
    GuardSchedulerOptions options;
    options.durable_log = &log;
    GuardScheduler sched(&ctx, parsed.value(), &net, options);

    auto attempt = [&](const char* name) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      sched.Attempt(lit.value(), [name](Decision d) {
        std::printf("  %-10s -> %s\n", name, DecisionToString(d).c_str());
      });
      sim.Run();
    };
    attempt("s_pay");   // triggers s_res via r4
    attempt("c_res");
    attempt("c_pay");
    std::printf("  history so far: %s\n",
                TraceToString(sched.history(), *ctx.alphabet()).c_str());
    snapshot = log.Serialize(*ctx.alphabet());
    std::printf("  ... crash! (%zu occurrences on the durable log)\n\n",
                log.size());
  }

  std::printf("== Phase 2: recover from the log and finish the order ==\n");
  {
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, kOrderSpec);
    Simulator sim;
    NetworkOptions nopts;
    nopts.base_latency = 1500;
    Network net(&sim, 3, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &net);

    auto recovered = EventLog::Deserialize(*ctx.alphabet(), snapshot);
    if (!recovered.ok() || !sched.Recover(recovered.value()).ok()) {
      std::fprintf(stderr, "recovery failed\n");
      return 1;
    }
    std::printf("  recovered history: %s\n",
                TraceToString(sched.history(), *ctx.alphabet()).c_str());

    auto attempt = [&](const char* name) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      sched.Attempt(lit.value(), [name](Decision d) {
        std::printf("  %-10s -> %s\n", name, DecisionToString(d).c_str());
      });
      sim.Run();
    };
    attempt("s_ship");  // guards □c_pay and □c_res already discharged

    std::printf("  closing the workflow to a maximal trace...\n");
    for (int i = 0; i < 5 && !sched.Undecided().empty(); ++i) {
      sched.Close();
      sim.Run();
    }
    std::printf("  final history: %s\n",
                TraceToString(sched.history(), *ctx.alphabet()).c_str());
    std::printf("  all dependencies satisfied: %s\n",
                sched.HistoryConsistent(true) ? "yes" : "NO");
    std::printf("  (no release was triggered: shipping started, so r3 is "
                "satisfied by s_ship)\n");
  }
  return 0;
}
