// Quickstart: the event algebra, residuation, and guard synthesis on the
// paper's two running dependencies (Klein's e → f and e < f), then a small
// distributed execution.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "algebra/generator.h"
#include "algebra/residuation.h"
#include "guards/context.h"
#include "guards/workflow.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace {

void PrintSection(const char* title) { std::printf("\n== %s ==\n", title); }

}  // namespace

int main() {
  using namespace cdes;

  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");

  PrintSection("Dependencies (Examples 2 and 3)");
  const Expr* d_implies = KleinImplies(ctx.exprs(), e, f);   // ē + f
  const Expr* d_precedes = KleinPrecedes(ctx.exprs(), e, f); // ē + f̄ + e·f
  std::printf("D->  (e -> f): %s\n",
              ExprToString(d_implies, *ctx.alphabet()).c_str());
  std::printf("D<   (e <  f): %s\n",
              ExprToString(d_precedes, *ctx.alphabet()).c_str());

  PrintSection("Residuation (Figure 2)");
  EventLiteral pe = EventLiteral::Positive(e);
  EventLiteral pf = EventLiteral::Positive(f);
  const Expr* after_e = ctx.residuator()->Residuate(d_precedes, pe);
  const Expr* after_f = ctx.residuator()->Residuate(d_precedes, pf);
  std::printf("D< / e = %s   (f or ~f may still happen)\n",
              ExprToString(after_e, *ctx.alphabet()).c_str());
  std::printf("D< / f = %s   (only ~e is acceptable afterwards)\n",
              ExprToString(after_f, *ctx.alphabet()).c_str());

  PrintSection("Guards on events (Example 9)");
  for (EventLiteral l : {pe, pf, pe.Complemented(), pf.Complemented()}) {
    const Guard* g = ctx.synthesizer()->SynthesizeSimplified(d_precedes, l);
    std::printf("G(D<, %-2s) = %s\n",
                ctx.alphabet()->LiteralName(l).c_str(),
                GuardToString(g, *ctx.alphabet()).c_str());
  }

  PrintSection("Distributed execution (Example 10)");
  auto parsed = ParseWorkflow(&ctx, R"(
workflow quickstart {
  agent a @ site(0);
  agent b @ site(1);
  event e agent(a);
  event f agent(b);
  dep order: e < f;
}
)");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;  // 1ms links
  Network net(&sim, 2, nopts);
  GuardScheduler sched(&ctx, parsed.value(), &net);

  sched.Attempt(pf, [&](Decision d) {
    std::printf("t=%-6llu f attempted: %s\n",
                static_cast<unsigned long long>(sim.now()),
                DecisionToString(d).c_str());
  });
  sim.Run();
  sched.Attempt(pe, [&](Decision d) {
    std::printf("t=%-6llu e attempted: %s\n",
                static_cast<unsigned long long>(sim.now()),
                DecisionToString(d).c_str());
  });
  sim.Run();
  std::printf("history: %s\n",
              TraceToString(sched.history(), *ctx.alphabet()).c_str());
  std::printf("messages on the wire: %llu (mean latency %.0f ticks)\n",
              static_cast<unsigned long long>(net.stats().messages),
              net.stats().MeanLatency());
  std::printf("all dependencies satisfied: %s\n",
              sched.HistoryConsistent(true) ? "yes" : "no");
  return 0;
}
