// specc — the workflow spec compiler CLI.
//
// Reads a workflow specification (from argv[1], or a built-in demo spec),
// and prints: the parsed workflow, the synthesized guard for every literal,
// the Figure-2 residual machine per dependency, a schedule-space
// verification, and the size of the precompiled automaton the centralized
// baseline [2] would need. With --dot, emits the residual machines as
// Graphviz instead.
//
// With --trace=<file>, compile phases (parse, guard synthesis, residual
// machines, verification, automata baseline) are recorded as wall-clock
// spans and written as Chrome-trace JSON (see docs/OBSERVABILITY.md).
//
// With --profile (or --profile=<file>), every per-(dependency, literal)
// guard synthesis is profiled — wall time, residuation steps, interned
// guard nodes — and a top-K hotspot table with file:line attribution is
// printed after compilation. The =<file> form additionally writes
// collapsed stacks for flamegraph.pl / speedscope.
//
// With --verify, the exhaustive reachability checker (CL020–CL023, see
// analysis/model_checker.h) gates compilation alongside the static
// analyzer: a reachable deadlock, unreachable event, or guard⇔spec
// mismatch aborts before anything is synthesized, and per-workflow
// exploration stats are printed.
//
// Usage:  ./build/examples/specc [file.wf] [--dot] [--verify]
//                                [--trace=<file>] [--profile[=<file>]]
//         ./build/examples/specc examples/specs/travel.wf

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "algebra/residuation.h"
#include "analysis/analyzer.h"
#include "guards/verifier.h"
#include "guards/workflow.h"
#include "obs/chrome_trace.h"
#include "obs/profiler.h"
#include "obs/trace_recorder.h"
#include "sched/automata_scheduler.h"
#include "spec/parser.h"

namespace {

constexpr char kDefaultSpec[] = R"(
workflow demo {
  agent left  @ site(0);
  agent right @ site(1);
  event e agent(left);
  event f agent(right);
  event g agent(right) attrs(triggerable);
  dep ordered: e < f;
  dep implied: f -> g;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cdes;

  std::string text = kDefaultSpec;
  bool dot = false;
  bool verify = false;
  bool profile = false;
  const char* path = nullptr;
  const char* trace_path = nullptr;
  const char* profile_path = nullptr;  // collapsed-stack output
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--dot") {
      dot = true;
    } else if (std::string_view(argv[i]) == "--verify") {
      verify = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::string_view(argv[i]) == "--profile") {
      profile = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile = true;
      if (argv[i][10] != '\0') profile_path = argv[i] + 10;
    } else {
      path = argv[i];
    }
  }

  // Compile-phase tracing: the recorder is time-source agnostic, so the
  // CLI records wall-clock microseconds where the runtime records SimTime.
  obs::TraceRecorder recorder;
  obs::TraceRecorder* tracer = trace_path != nullptr ? &recorder : nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  auto now_us = [t0] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  auto phase = [&](const char* name, uint64_t started,
                   obs::TraceRecorder::Args args = {}) {
    if (tracer != nullptr) {
      tracer->Complete(obs::SpanCategory::kSim, name, started,
                       now_us() - started, 0, 0, std::move(args));
    }
  };
  if (tracer != nullptr) tracer->NameProcess(0, "specc");

  // Guard-synthesis profiling: compilation is one-shot, so sample every
  // evaluation (sample_every = 1) — there is no hot path to protect.
  obs::GuardProfiler profiler_storage(/*sample_every=*/1);
  obs::GuardProfiler* profiler = profile ? &profiler_storage : nullptr;
  if (profiler != nullptr && path != nullptr) profiler->set_source(path);
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no file given; compiling the built-in demo spec)\n");
  }

  WorkflowContext ctx;
  uint64_t parse_start = now_us();
  auto parsed_all =
      ParseWorkflows(&ctx, text, path != nullptr ? path : "");
  if (!parsed_all.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed_all.status().ToString().c_str());
    return 1;
  }
  phase("parse", parse_start,
        {{"workflows", std::to_string(parsed_all.value().size())}});

  // Static analysis runs on every compile (it is purely symbolic — cheap
  // next to the schedule-space verification below). Errors abort: an
  // unsatisfiable dependency or a statically dead event means the workflow
  // can never do what the spec says.
  uint64_t lint_start = now_us();
  bool lint_errors = false;
  for (const ParsedWorkflow& w : parsed_all.value()) {
    std::vector<analysis::Diagnostic> diagnostics =
        analysis::AnalyzeWorkflow(&ctx, w);
    for (analysis::Diagnostic& d : diagnostics) {
      if (path != nullptr) d.file = path;
      std::fprintf(stderr, "%s\n", analysis::FormatDiagnostic(d).c_str());
    }
    lint_errors |= analysis::HasFindings(diagnostics);
  }
  phase("static analysis", lint_start);
  if (lint_errors) {
    std::fprintf(stderr, "specc: workflow rejected by static analysis\n");
    return 1;
  }

  // --verify: the exhaustive checker gates compilation. Reachability
  // errors (CL020/CL021/CL023) abort with counterexample traces; a bounded
  // run proves nothing about absence and is reported but not fatal.
  if (verify) {
    uint64_t verify_gate_start = now_us();
    bool check_errors = false;
    for (const ParsedWorkflow& w : parsed_all.value()) {
      analysis::CheckResult result = analysis::CheckWorkflow(&ctx, w);
      for (analysis::Diagnostic& d : result.diagnostics) {
        if (path != nullptr) d.file = path;
      }
      std::fprintf(stderr, "%s",
                   analysis::FormatDiagnostics(result.diagnostics).c_str());
      std::printf("verify %s: %zu states, %zu transitions, %zu maximal, "
                  "%zu accepted%s%s\n",
                  w.name.c_str(), result.stats.states_explored,
                  result.stats.transitions, result.stats.maximal_states,
                  result.stats.accepted_states,
                  result.stats.bounded ? " (bounded: " : "",
                  result.stats.bounded
                      ? (result.stats.bound_reason + ")").c_str()
                      : "");
      check_errors |= analysis::HasFindings(result.diagnostics);
    }
    phase("verify reachability", verify_gate_start);
    if (check_errors) {
      std::fprintf(stderr,
                   "specc: workflow rejected by reachability check\n");
      return 1;
    }
  }

  auto write_trace = [&]() -> int {
    if (trace_path == nullptr) return 0;
    Status written = obs::WriteChromeTrace(recorder, trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu events -> %s (load in ui.perfetto.dev)\n",
                recorder.events().size(), trace_path);
    return 0;
  };

  if (dot) {
    for (const ParsedWorkflow& w : parsed_all.value()) {
      for (const Dependency& dep : w.spec.dependencies()) {
        ResidualGraph graph = BuildResidualGraph(ctx.residuator(), dep.expr);
        std::printf("%s",
                    ResidualGraphToDot(graph, *ctx.alphabet(), dep.name)
                        .c_str());
      }
    }
    return write_trace();
  }

  for (const ParsedWorkflow& w : parsed_all.value()) {
    std::printf("\n================ workflow %s ================\n",
                w.name.c_str());
    std::printf("%s", FormatWorkflow(w, *ctx.alphabet()).c_str());

    uint64_t compile_start = now_us();
    CompileOptions copts;
    copts.profiler = profiler;
    CompiledWorkflow compiled = CompileWorkflow(&ctx, w.spec, copts);
    phase("synthesize guards", compile_start, {{"workflow", w.name}});
    std::printf("\n-- guards (event-centric, localized) --\n");
    for (SymbolId s : compiled.symbols()) {
      for (EventLiteral l :
           {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
        std::printf("  G(%-10s) = %s\n",
                    ctx.alphabet()->LiteralName(l).c_str(),
                    GuardToString(compiled.GuardFor(l),
                                  *ctx.alphabet()).c_str());
      }
    }

    std::printf("\n-- residual machines (Figure 2) --\n");
    uint64_t residual_start = now_us();
    for (const Dependency& dep : w.spec.dependencies()) {
      ResidualGraph graph = BuildResidualGraph(ctx.residuator(), dep.expr);
      std::printf("  %s: %zu states, %zu transitions\n", dep.name.c_str(),
                  graph.states.size(), graph.edges.size());
      for (const auto& [key, to] : graph.edges) {
        std::printf("    [%s] --%s--> [%s]\n",
                    ExprToString(graph.states[key.first],
                                 *ctx.alphabet()).c_str(),
                    ctx.alphabet()->LiteralName(key.second).c_str(),
                    ExprToString(graph.states[to], *ctx.alphabet()).c_str());
      }
    }

    phase("residual machines", residual_start, {{"workflow", w.name}});

    std::printf("\n-- schedule-space verification --\n");
    uint64_t verify_start = now_us();
    auto report = VerifyScheduleSpace(&ctx, w.spec);
    if (report.ok()) {
      std::printf("  %s\n", report.value().ToString(*ctx.alphabet()).c_str());
    } else {
      std::printf("  %s\n", report.status().ToString().c_str());
    }

    phase("verify schedule space", verify_start, {{"workflow", w.name}});

    std::printf("\n-- centralized automata baseline [2] --\n");
    uint64_t automata_start = now_us();
    size_t total_states = 0, total_transitions = 0;
    for (const Dependency& dep : w.spec.dependencies()) {
      DependencyAutomaton automaton =
          BuildDependencyAutomaton(ctx.residuator(), dep.expr);
      total_states += automaton.states.size();
      total_transitions += automaton.transitions.size();
    }
    phase("automata baseline", automata_start,
          {{"workflow", w.name}, {"states", std::to_string(total_states)}});
    std::printf("  %zu automaton states, %zu transitions precompiled\n",
                total_states, total_transitions);
  }

  if (profiler != nullptr) {
    obs::SymbolicCacheStats cache_stats;
    cache_stats.reduction_hits = ctx.reduction_cache()->hits();
    cache_stats.reduction_misses = ctx.reduction_cache()->misses();
    cache_stats.residuation_hits = ctx.residuator()->cache_hits();
    cache_stats.residuation_misses = ctx.residuator()->cache_misses();
    std::printf("\n-- guard synthesis profile --\n%s",
                profiler->TopKReport(10, &cache_stats).c_str());
    if (profile_path != nullptr) {
      std::string collapsed = profiler->CollapsedStacks();
      std::FILE* f = std::fopen(profile_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", profile_path);
        return 1;
      }
      std::fwrite(collapsed.data(), 1, collapsed.size(), f);
      std::fclose(f);
      std::printf("profile: %zu sites -> %s (collapsed stacks; feed to "
                  "flamegraph.pl or speedscope)\n",
                  profiler->site_count(), profile_path);
    }
  }

  return write_trace();
}
