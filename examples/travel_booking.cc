// The paper's motivating workflow (Examples 4, 10, 12): buy a plane ticket
// and book a rental car across two autonomous enterprises, without a mutual
// commit protocol. Runs the happy path and the compensation path through
// task agents and the distributed guard scheduler, then two parametrized
// instances (customers) side by side.
//
// Build & run:  ./build/examples/travel_booking
//
// With --trace=<file>, the run additionally records event-lifecycle spans,
// protocol messages, and promise windows across all three phases and writes
// a Chrome-trace JSON loadable in Perfetto (see docs/OBSERVABILITY.md).
// Single-instance phases carry per-message flow arrows (send→assimilate);
// engine mode carries submit→complete flow arrows across shard lanes.
//
// With --profile (or --profile=<collapsed-out>), guard evaluations are
// attributed per (dependency, event) site and a top-K hotspot table is
// printed; the =<file> form writes collapsed stacks for flamegraph.pl.
// --telemetry=<file> (engine mode) streams JSONL snapshots consumable by
// tools/cdes-top; --prom=<file> writes a Prometheus text-format snapshot.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "agents/task_agent.h"
#include "engine/engine.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/prom.h"
#include "params/param_workflow.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace {

constexpr char kTravelSpec[] = R"(
# Example 4: non-refundable ticket, cancellable booking.
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;              # book starts if buy starts
  dep d2: ~c_buy + c_book . c_buy;      # buy commits only after book
  dep d3: ~c_book + c_buy + s_cancel;   # cancel book if buy never commits
}
)";

void PrintHistory(const cdes::GuardScheduler& sched,
                  const cdes::Alphabet& alphabet) {
  std::printf("  history: %s\n",
              cdes::TraceToString(sched.history(), alphabet).c_str());
  std::printf("  dependencies satisfied: %s\n",
              sched.HistoryConsistent() ? "yes" : "NO");
}

struct CliOptions {
  const char* trace_path = nullptr;
  bool profile = false;
  const char* profile_path = nullptr;    // collapsed-stack output
  const char* telemetry_path = nullptr;  // engine-mode JSONL stream
  const char* prom_path = nullptr;       // Prometheus text snapshot
};

/// Prints the hotspot table and, when requested, writes collapsed stacks.
int DumpProfile(const cdes::obs::GuardProfiler& profiler, const char* path,
                const cdes::obs::SymbolicCacheStats* caches = nullptr) {
  std::printf("\n-- guard profile --\n%s",
              profiler.TopKReport(10, caches).c_str());
  if (path == nullptr) return 0;
  std::string collapsed = profiler.CollapsedStacks();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fwrite(collapsed.data(), 1, collapsed.size(), f);
  std::fclose(f);
  std::printf("profile: %zu sites -> %s (collapsed stacks)\n",
              profiler.site_count(), path);
  return 0;
}

// --engine=N mode: run N customer instances through the sharded
// multi-instance engine (src/engine, docs/ENGINE.md) instead of the
// narrative single-instance phases, and print the engine's metrics
// snapshot. With --trace=<file> the exported timeline carries one span per
// instance (rows grouped by shard).
int RunEngineMode(size_t instances, size_t shards, const CliOptions& cli) {
  using namespace cdes;
  std::printf("== Engine: %zu customers", instances);
  if (shards > 0) std::printf(" across %zu shards", shards);
  std::printf(" ==\n");

  auto spec = engine::EngineSpec::FromText(kTravelSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  obs::TraceRecorder recorder;
  obs::GuardProfiler profiler(/*sample_every=*/16);
  engine::EngineOptions opts;
  opts.shards = shards;  // 0 = auto
  // Per-shard sched.* histograms, merged into the final snapshot at Stop.
  opts.lifecycle_metrics = true;
  if (cli.trace_path != nullptr) opts.tracer = &recorder;
  if (cli.profile) opts.profiler = &profiler;
  engine::Engine eng(spec.value(), opts);
  if (cli.telemetry_path != nullptr) {
    Status started = eng.StartTelemetryFile(std::chrono::milliseconds(50),
                                            cli.telemetry_path);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }
  for (size_t i = 0; i < instances; ++i) {
    engine::InstanceScript script;
    script.tag = i;
    // Two thirds of the customers commit, the rest compensate.
    script.attempts = i % 3 == 2
                          ? std::vector<std::string>{"s_buy", "c_book", "~c_buy"}
                          : std::vector<std::string>{"s_buy", "c_book", "c_buy"};
    if (!eng.Submit(std::move(script)).ok()) return 1;
  }
  eng.Drain();
  eng.Stop();

  size_t consistent = 0;
  for (const engine::InstanceResult& r : eng.TakeResults()) {
    if (r.consistent && r.maximal) ++consistent;
  }
  engine::EngineMetricsSnapshot snap = eng.Metrics();
  std::printf("%s", snap.ToString().c_str());
  std::printf("  consistent maximal traces: %zu / %zu\n", consistent,
              instances);
  if (cli.telemetry_path != nullptr) {
    std::printf("telemetry: JSONL -> %s (view with cdes-top)\n",
                cli.telemetry_path);
  }
  if (cli.profile) {
    obs::MetricsRegistry merged;
    eng.MergeMetricsInto(&merged);
    obs::SymbolicCacheStats cache_stats = obs::CacheStatsFrom(merged);
    if (DumpProfile(profiler, cli.profile_path, &cache_stats) != 0) return 1;
  }
  if (cli.prom_path != nullptr) {
    obs::MetricsRegistry prom_registry;
    eng.MergeMetricsInto(&prom_registry);
    snap.PublishTo(&prom_registry);
    Status written =
        obs::WritePrometheusFile(prom_registry, cli.prom_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("prometheus: snapshot -> %s\n", cli.prom_path);
  }

  if (cli.trace_path != nullptr) {
    Status written = obs::WriteChromeTrace(recorder, cli.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                recorder.events().size(), cli.trace_path);
  }
  return consistent == instances ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdes;

  CliOptions cli;
  size_t engine_instances = 0;
  size_t engine_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      cli.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_instances = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      engine_shards = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else if (std::string_view(argv[i]) == "--profile") {
      cli.profile = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      cli.profile = true;
      if (argv[i][10] != '\0') cli.profile_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      cli.telemetry_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--prom=", 7) == 0) {
      cli.prom_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=<file>] [--profile[=<file>]] "
                   "[--prom=<file>] [--engine=<instances> [--shards=<k>] "
                   "[--telemetry=<file>]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (engine_instances > 0) {
    return RunEngineMode(engine_instances, engine_shards, cli);
  }
  const char* trace_path = cli.trace_path;
  // One recorder + registry shared by all three phases: the exported
  // timeline shows them back to back (each phase restarts SimTime at 0).
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  obs::GuardProfiler profiler(/*sample_every=*/1);
  obs::TraceRecorder* tracer = trace_path != nullptr ? &recorder : nullptr;
  obs::MetricsRegistry* reg =
      trace_path != nullptr || cli.prom_path != nullptr ? &metrics : nullptr;
  obs::GuardProfiler* prof = cli.profile ? &profiler : nullptr;

  // ---------------------------------------------------------- Happy path
  {
    std::printf("== Happy path: both tasks commit ==\n");
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    Simulator sim;
    obs::RegisterGlobalSimulator(&sim);
    if (tracer != nullptr) {
      tracer->Instant(obs::SpanCategory::kSim, "phase: happy path", 0, 0, 0);
    }
    NetworkOptions nopts;
    nopts.base_latency = 2000;  // 2ms between the two enterprises
    nopts.tracer = tracer;
    nopts.metrics = reg;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions sopts;
    sopts.tracer = tracer;
    sopts.metrics = reg;
    sopts.profiler = prof;
    GuardScheduler sched(&ctx, parsed.value(), &net, sopts);

    TaskAgent buy(TaskModel::RdaTransaction("buy"), &ctx, &sched);
    (void)buy.MapEvent("start", "s_buy");
    (void)buy.MapEvent("commit", "c_buy");
    TaskAgent book(TaskModel::RdaTransaction("book"), &ctx, &sched);
    (void)book.MapEvent("start", "s_book");
    (void)book.MapEvent("commit", "c_book");

    (void)buy.Attempt("start");
    sim.Run();
    std::printf("  buy agent:  %s (s_book was auto-triggered)\n",
                buy.state().c_str());
    std::printf("  book agent: %s\n", book.state().c_str());

    (void)book.Attempt("commit");
    sim.Run();
    (void)buy.Attempt("commit");
    sim.Run();
    std::printf("  buy agent:  %s\n", buy.state().c_str());
    std::printf("  book agent: %s\n", book.state().c_str());
    PrintHistory(sched, *ctx.alphabet());
    std::printf("  messages: %llu\n\n",
                static_cast<unsigned long long>(net.stats().messages));
    obs::UnregisterGlobalSimulator(&sim);
  }

  // -------------------------------------------------- Compensation path
  {
    std::printf("== Compensation: buy never commits, cancel is triggered ==\n");
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    Simulator sim;
    obs::RegisterGlobalSimulator(&sim);
    if (tracer != nullptr) {
      tracer->Instant(obs::SpanCategory::kSim, "phase: compensation", 0, 0, 0);
    }
    NetworkOptions nopts;
    nopts.base_latency = 2000;
    nopts.tracer = tracer;
    nopts.metrics = reg;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions sopts;
    sopts.tracer = tracer;
    sopts.metrics = reg;
    sopts.profiler = prof;
    GuardScheduler sched(&ctx, parsed.value(), &net, sopts);

    auto attempt = [&](const char* name) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      sched.Attempt(lit.value(), [&, name](Decision d) {
        std::printf("  %-8s -> %s\n", name, DecisionToString(d).c_str());
      });
      sim.Run();
    };
    attempt("s_buy");
    attempt("c_book");
    attempt("~c_buy");  // the airline transaction aborted
    PrintHistory(sched, *ctx.alphabet());
    std::printf("\n");
    obs::UnregisterGlobalSimulator(&sim);
  }

  // -------------------------------- Unreliable network (chaos run)
  {
    std::printf(
        "== Chaos: 20%% loss, duplication, and a mid-run partition ==\n");
    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    Simulator sim;
    obs::RegisterGlobalSimulator(&sim);
    if (tracer != nullptr) {
      tracer->Instant(obs::SpanCategory::kSim, "phase: chaos", 0, 0, 0);
    }
    NetworkOptions nopts;
    nopts.base_latency = 2000;
    nopts.jitter = 1000;
    nopts.fifo_links = false;
    nopts.drop_probability = 0.2;
    nopts.duplicate_probability = 0.1;
    nopts.seed = 42;
    nopts.tracer = tracer;
    nopts.metrics = reg;
    Network net(&sim, 2, nopts);
    // The car enterprise drops off the network for 100ms mid-run; the
    // reliable-delivery layer keeps retransmitting until the heal.
    net.SchedulePartition({1}, 10000, 110000);
    GuardSchedulerOptions sopts;
    sopts.tracer = tracer;
    sopts.metrics = reg;
    sopts.profiler = prof;
    GuardScheduler sched(&ctx, parsed.value(), &net, sopts);

    auto attempt = [&](const char* name) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      sched.Attempt(lit.value(), AttemptCallback());
      sim.Run();
    };
    attempt("s_buy");
    attempt("c_book");
    attempt("c_buy");
    PrintHistory(sched, *ctx.alphabet());
    std::printf(
        "  frames dropped %llu, duplicated %llu, blocked by partition %llu\n"
        "  recovered with %llu retransmissions (%llu acks); settled at "
        "t=%llu\n\n",
        static_cast<unsigned long long>(net.stats().dropped),
        static_cast<unsigned long long>(net.stats().duplicated),
        static_cast<unsigned long long>(net.stats().partitioned),
        static_cast<unsigned long long>(sched.transport()->retransmits()),
        static_cast<unsigned long long>(sched.transport()->acks()),
        static_cast<unsigned long long>(sim.now()));
    obs::UnregisterGlobalSimulator(&sim);
  }

  // ------------------------------------- Two customers (Example 12)
  {
    std::printf("== Parametrized: customers 7 and 8 share one scheduler ==\n");
    WorkflowContext ctx;
    WorkflowTemplate travel = TravelTemplate();
    ParsedWorkflow combined;
    (void)travel.InstantiateInto(&ctx, {{"cid", 7}}, &combined);
    (void)travel.InstantiateInto(&ctx, {{"cid", 8}}, &combined);

    Simulator sim;
    obs::RegisterGlobalSimulator(&sim);
    if (tracer != nullptr) {
      tracer->Instant(obs::SpanCategory::kSim, "phase: two customers", 0, 0, 0);
    }
    NetworkOptions nopts;
    nopts.base_latency = 2000;
    nopts.tracer = tracer;
    nopts.metrics = reg;
    Network net(&sim, 2, nopts);
    GuardSchedulerOptions sopts;
    sopts.tracer = tracer;
    sopts.metrics = reg;
    sopts.profiler = prof;
    GuardScheduler sched(&ctx, combined, &net, sopts);

    auto attempt = [&](const char* name) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      sched.Attempt(lit.value(), AttemptCallback());
      sim.Run();
    };
    // Customer 7 commits; customer 8's purchase falls through.
    attempt("s_buy[7]");
    attempt("s_buy[8]");
    attempt("c_book[7]");
    attempt("c_book[8]");
    attempt("c_buy[7]");
    attempt("~c_buy[8]");
    PrintHistory(sched, *ctx.alphabet());
    obs::UnregisterGlobalSimulator(&sim);
  }

  if (prof != nullptr && DumpProfile(*prof, cli.profile_path) != 0) return 1;
  if (cli.prom_path != nullptr) {
    Status written = obs::WritePrometheusFile(metrics, cli.prom_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("prometheus: snapshot -> %s\n", cli.prom_path);
  }
  if (trace_path != nullptr) {
    Status written = obs::WriteChromeTrace(recorder, trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu events -> %s (load in ui.perfetto.dev)\n",
                recorder.events().size(), trace_path);
    std::printf("metrics: %s\n", metrics.ToJson().c_str());
  }
  return 0;
}
