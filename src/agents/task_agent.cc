#include "agents/task_agent.h"

#include "common/strings.h"

namespace cdes {

TaskAgent::TaskAgent(TaskModel model, WorkflowContext* ctx,
                     Scheduler* scheduler)
    : model_(std::move(model)), ctx_(ctx), scheduler_(scheduler),
      state_(model_.initial()) {
  scheduler_->AddOccurrenceListener(
      [this](EventLiteral literal) { OnOccurrence(literal); });
}

Status TaskAgent::MapEvent(const std::string& model_event,
                           const std::string& symbol_name) {
  SymbolId symbol = ctx_->alphabet()->Find(symbol_name);
  if (symbol == kInvalidSymbol) {
    return Status::NotFound(
        StrCat("workflow event '", symbol_name, "' is not declared"));
  }
  event_symbols_[model_event] = symbol;
  symbol_events_[symbol] = model_event;
  return Status::OK();
}

Status TaskAgent::Attempt(const std::string& model_event,
                          AttemptCallback done) {
  CDES_ASSIGN_OR_RETURN(std::string next, model_.Next(state_, model_event));
  auto mapped = event_symbols_.find(model_event);
  if (mapped == event_symbols_.end()) {
    // Insignificant for coordination: the task proceeds autonomously.
    state_ = std::move(next);
    last_decision_[model_event] = Decision::kAccepted;
    if (done) done(Decision::kAccepted);
    return Status::OK();
  }
  EventLiteral literal = EventLiteral::Positive(mapped->second);
  // State advances through OnOccurrence so that scheduler-triggered
  // occurrences and agent-requested ones take the same path.
  scheduler_->Attempt(
      literal, [this, model_event, done = std::move(done)](Decision d) {
        last_decision_[model_event] = d;
        if (done) done(d);
      });
  return Status::OK();
}

Result<Decision> TaskAgent::LastDecision(const std::string& model_event) const {
  auto it = last_decision_.find(model_event);
  if (it == last_decision_.end()) {
    return Status::NotFound(StrCat("no attempt recorded for ", model_event));
  }
  return it->second;
}

void TaskAgent::OnOccurrence(EventLiteral literal) {
  if (literal.complemented()) return;
  auto it = symbol_events_.find(literal.symbol());
  if (it == symbol_events_.end()) return;
  const std::string& model_event = it->second;
  Result<std::string> next = model_.Next(state_, model_event);
  if (!next.ok()) return;  // occurrence not valid from this state; ignore
  state_ = std::move(next).value();
  // A triggered occurrence may not have an agent-side attempt recorded.
  if (!last_decision_.count(model_event)) {
    last_decision_[model_event] = Decision::kAccepted;
  }
}

}  // namespace cdes
