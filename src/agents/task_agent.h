#ifndef CDES_AGENTS_TASK_AGENT_H_
#define CDES_AGENTS_TASK_AGENT_H_

#include <map>
#include <string>

#include "agents/task_model.h"
#include "guards/context.h"
#include "sched/scheduler.h"

namespace cdes {

/// The interface between a task and the scheduling system (§2): the agent
/// holds the task's coarse state machine, submits its significant events to
/// the scheduler, and advances its state when the scheduler reports (or
/// proactively triggers) occurrences.
///
/// Model events are mapped to workflow event symbols via MapEvent (e.g. the
/// RDA model's "commit" of agent "buy" → workflow event "c_buy"). Unmapped
/// events are insignificant for coordination: they run locally without
/// consulting the scheduler (the "invisible" loop steps of §5.2).
class TaskAgent {
 public:
  /// Registers an occurrence listener with `scheduler`; the agent must
  /// outlive it.
  TaskAgent(TaskModel model, WorkflowContext* ctx, Scheduler* scheduler);

  TaskAgent(const TaskAgent&) = delete;
  TaskAgent& operator=(const TaskAgent&) = delete;

  /// Declares that model event `model_event` is the workflow event named
  /// `symbol_name` (which must already be interned by the spec/context).
  Status MapEvent(const std::string& model_event,
                  const std::string& symbol_name);

  /// Attempts `model_event` from the current state: unmapped events
  /// transition immediately; mapped events go through the scheduler, and
  /// the state advances when the occurrence is reported back. Fails with
  /// NotFound when the transition does not exist in the current state.
  Status Attempt(const std::string& model_event, AttemptCallback done = {});

  const std::string& state() const { return state_; }
  const TaskModel& model() const { return model_; }

  /// Decision recorded for the most recent resolution of `model_event`
  /// (including trigger-driven occurrences), if any.
  Result<Decision> LastDecision(const std::string& model_event) const;

 private:
  void OnOccurrence(EventLiteral literal);

  TaskModel model_;
  WorkflowContext* ctx_;
  Scheduler* scheduler_;
  std::string state_;
  std::map<std::string, SymbolId> event_symbols_;  // model event → symbol
  std::map<SymbolId, std::string> symbol_events_;  // symbol → model event
  std::map<std::string, Decision> last_decision_;
};

}  // namespace cdes

#endif  // CDES_AGENTS_TASK_AGENT_H_
