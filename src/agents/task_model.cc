#include "agents/task_model.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace cdes {

void TaskModel::AddState(const std::string& state) {
  if (std::find(states_.begin(), states_.end(), state) == states_.end()) {
    states_.push_back(state);
  }
}

void TaskModel::AddTransition(const std::string& from,
                              const std::string& event, const std::string& to,
                              TransitionControl control) {
  AddState(from);
  AddState(to);
  transitions_.push_back(TaskTransition{from, event, to, control});
}

Result<std::string> TaskModel::Next(const std::string& from,
                                    const std::string& event) const {
  const TaskTransition* t = FindTransition(from, event);
  if (t == nullptr) {
    return Status::NotFound(
        StrCat("task ", name_, ": no transition '", event, "' from state '",
               from, "'"));
  }
  return t->to;
}

const TaskTransition* TaskModel::FindTransition(const std::string& from,
                                                const std::string& event) const {
  for (const TaskTransition& t : transitions_) {
    if (t.from == from && t.event == event) return &t;
  }
  return nullptr;
}

std::vector<std::string> TaskModel::EventsFrom(const std::string& from) const {
  std::vector<std::string> out;
  for (const TaskTransition& t : transitions_) {
    if (t.from == from) out.push_back(t.event);
  }
  return out;
}

bool TaskModel::HasLoop() const {
  // DFS-based cycle detection over the state graph.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const TaskTransition& t : transitions_) {
    adjacency[t.from].push_back(t.to);
  }
  std::set<std::string> done, path;
  struct Rec {
    static bool Visit(const std::string& s,
                      const std::map<std::string, std::vector<std::string>>& adj,
                      std::set<std::string>* done, std::set<std::string>* path) {
      if (path->count(s)) return true;
      if (done->count(s)) return false;
      path->insert(s);
      auto it = adj.find(s);
      if (it != adj.end()) {
        for (const std::string& n : it->second) {
          if (Visit(n, adj, done, path)) return true;
        }
      }
      path->erase(s);
      done->insert(s);
      return false;
    }
  };
  for (const std::string& s : states_) {
    if (Rec::Visit(s, adjacency, &done, &path)) return true;
  }
  return false;
}

bool TaskModel::IsTerminal(const std::string& state) const {
  for (const TaskTransition& t : transitions_) {
    if (t.from == state) return false;
  }
  return true;
}

TaskModel TaskModel::RdaTransaction(const std::string& name) {
  TaskModel model(name, "initial");
  model.AddTransition("initial", "start", "active",
                      TransitionControl::kTriggerable);
  model.AddTransition("active", "commit", "committed",
                      TransitionControl::kControllable);
  model.AddTransition("active", "abort", "aborted",
                      TransitionControl::kUncontrollable);
  return model;
}

TaskModel TaskModel::TypicalApplication(const std::string& name) {
  TaskModel model(name, "initial");
  model.AddTransition("initial", "start", "working",
                      TransitionControl::kControllable);
  model.AddTransition("working", "step", "working",
                      TransitionControl::kUncontrollable);
  model.AddTransition("working", "finish", "done",
                      TransitionControl::kControllable);
  model.AddTransition("working", "fail", "failed",
                      TransitionControl::kUncontrollable);
  return model;
}

}  // namespace cdes
