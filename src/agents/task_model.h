#ifndef CDES_AGENTS_TASK_MODEL_H_
#define CDES_AGENTS_TASK_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cdes {

/// Whether the coordination system may veto or cause a transition (§2):
///   controllable   — the agent requests permission (e.g. commit);
///   uncontrollable — the agent merely informs the system (e.g. abort);
///   triggerable    — the system may cause it on its own accord (e.g.
///                    start of a compensation task).
enum class TransitionControl { kControllable, kUncontrollable, kTriggerable };

struct TaskTransition {
  std::string from;
  std::string event;
  std::string to;
  TransitionControl control = TransitionControl::kControllable;
};

/// A coarse task description: only the states and transitions significant
/// for coordination (Figure 1). The agent "embodies" this description; the
/// task's invisible internal states are deliberately absent (autonomy is
/// preserved).
class TaskModel {
 public:
  TaskModel(std::string name, std::string initial_state)
      : name_(std::move(name)), initial_(std::move(initial_state)) {
    states_.push_back(initial_);
  }

  /// Adds a state (idempotent).
  void AddState(const std::string& state);

  /// Adds a transition; both states are added implicitly.
  void AddTransition(const std::string& from, const std::string& event,
                     const std::string& to,
                     TransitionControl control = TransitionControl::kControllable);

  const std::string& name() const { return name_; }
  const std::string& initial() const { return initial_; }
  const std::vector<std::string>& states() const { return states_; }
  const std::vector<TaskTransition>& transitions() const {
    return transitions_;
  }

  /// The target state of `event` from `from`, or NotFound.
  Result<std::string> Next(const std::string& from,
                           const std::string& event) const;

  /// The transition record, or nullptr.
  const TaskTransition* FindTransition(const std::string& from,
                                       const std::string& event) const;

  /// Events available from `from`.
  std::vector<std::string> EventsFrom(const std::string& from) const;

  /// True if the transition graph contains a cycle — the "arbitrary task"
  /// structure of §5.2 that defeats loop-free approaches like Klein's.
  bool HasLoop() const;

  /// True if no transitions leave `state`.
  bool IsTerminal(const std::string& state) const;

  /// The RDA transaction of Figure 1: initial -start-> active, with
  /// active -commit-> committed (controllable) and active -abort-> aborted
  /// (uncontrollable). start is triggerable.
  static TaskModel RdaTransaction(const std::string& name);

  /// The "typical application" of Figure 1: an interactive task with an
  /// internal work loop — initial -start-> working, working -step->
  /// working (uncontrollable, insignificant for coordination),
  /// working -finish-> done, working -fail-> failed (uncontrollable).
  static TaskModel TypicalApplication(const std::string& name);

 private:
  std::string name_;
  std::string initial_;
  std::vector<std::string> states_;
  std::vector<TaskTransition> transitions_;
};

}  // namespace cdes

#endif  // CDES_AGENTS_TASK_MODEL_H_
