#include "algebra/event.h"

#include "common/strings.h"

namespace cdes {

SymbolId Alphabet::Intern(std::string_view name) {
  CDES_CHECK(!name.empty()) << "symbol names must be non-empty";
  CDES_CHECK_NE(name.front(), '~') << "'~' is reserved for complements";
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId Alphabet::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

std::string Alphabet::LiteralName(EventLiteral lit) const {
  CDES_CHECK(lit.valid());
  if (lit.complemented()) return StrCat("~", Name(lit.symbol()));
  return Name(lit.symbol());
}

EventLiteral Alphabet::InternLiteral(std::string_view text) {
  bool complemented = !text.empty() && text.front() == '~';
  if (complemented) text.remove_prefix(1);
  return EventLiteral(Intern(text), complemented);
}

Result<EventLiteral> Alphabet::ParseLiteral(std::string_view text) const {
  bool complemented = !text.empty() && text.front() == '~';
  if (complemented) text.remove_prefix(1);
  SymbolId id = Find(text);
  if (id == kInvalidSymbol) {
    return Status::NotFound(StrCat("unknown event symbol: ", text));
  }
  return EventLiteral(id, complemented);
}

std::vector<EventLiteral> Alphabet::PositiveLiterals() const {
  std::vector<EventLiteral> out;
  out.reserve(size());
  for (SymbolId id = 0; id < size(); ++id) {
    out.push_back(EventLiteral::Positive(id));
  }
  return out;
}

std::vector<EventLiteral> Alphabet::AllLiterals() const {
  std::vector<EventLiteral> out;
  out.reserve(2 * size());
  for (SymbolId id = 0; id < size(); ++id) {
    out.push_back(EventLiteral::Positive(id));
    out.push_back(EventLiteral::Complement(id));
  }
  return out;
}

}  // namespace cdes
