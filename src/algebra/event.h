#ifndef CDES_ALGEBRA_EVENT_H_
#define CDES_ALGEBRA_EVENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace cdes {

/// Index of an event symbol in an Alphabet. The paper's Σ is a set of
/// significant event symbols; we intern their names and refer to them by id.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/// A literal of the alphabet Γ: an event symbol e or its complement ē.
///
/// The paper introduces, for each event symbol e, a complement symbol ē
/// denoting "e will never occur" (Definition 1 forbids both on one trace).
/// A literal packs (symbol, polarity) into one word so literals are cheap to
/// copy, compare, and hash.
class EventLiteral {
 public:
  /// Constructs an invalid literal; useful as a sentinel.
  EventLiteral() : code_(0xFFFFFFFFu) {}

  EventLiteral(SymbolId symbol, bool complemented)
      : code_((symbol << 1) | (complemented ? 1u : 0u)) {
    CDES_DCHECK(symbol < (1u << 30));
  }

  /// The positive literal e.
  static EventLiteral Positive(SymbolId symbol) {
    return EventLiteral(symbol, false);
  }
  /// The complement literal ē.
  static EventLiteral Complement(SymbolId symbol) {
    return EventLiteral(symbol, true);
  }

  bool valid() const { return code_ != 0xFFFFFFFFu; }
  SymbolId symbol() const { return code_ >> 1; }
  bool complemented() const { return (code_ & 1u) != 0; }

  /// ē for e, and e for ē. The paper identifies ē̄ with e.
  EventLiteral Complemented() const {
    EventLiteral out;
    out.code_ = code_ ^ 1u;
    return out;
  }

  /// Dense non-negative index usable as an array key (2*symbol + polarity).
  uint32_t index() const { return code_; }

  friend bool operator==(EventLiteral a, EventLiteral b) {
    return a.code_ == b.code_;
  }
  friend bool operator!=(EventLiteral a, EventLiteral b) {
    return a.code_ != b.code_;
  }
  friend bool operator<(EventLiteral a, EventLiteral b) {
    return a.code_ < b.code_;
  }

 private:
  uint32_t code_;
};

struct EventLiteralHash {
  size_t operator()(EventLiteral l) const {
    return std::hash<uint32_t>()(l.index());
  }
};

/// Interning table for event symbol names (the paper's Σ). Symbols are
/// compared by id; names are kept for printing and parsing.
///
/// An Alphabet is append-only: symbols are never removed, so SymbolIds stay
/// valid for the Alphabet's lifetime.
class Alphabet {
 public:
  Alphabet() = default;

  // Alphabets are identity objects shared by expressions and schedulers.
  Alphabet(const Alphabet&) = delete;
  Alphabet& operator=(const Alphabet&) = delete;

  /// Returns the id for `name`, interning it if new. Names must be non-empty
  /// and must not start with '~' (reserved for complement notation).
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol when unknown.
  SymbolId Find(std::string_view name) const;

  /// Name of an interned symbol.
  const std::string& Name(SymbolId id) const {
    CDES_CHECK_LT(id, names_.size());
    return names_[id];
  }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

  /// Printable form of a literal: "e" or "~e".
  std::string LiteralName(EventLiteral lit) const;

  /// Parses "e" or "~e" into a literal, interning the symbol if new.
  EventLiteral InternLiteral(std::string_view text);

  /// Parses "e" or "~e"; fails (NotFound) if the symbol is not interned.
  Result<EventLiteral> ParseLiteral(std::string_view text) const;

  /// All positive literals of interned symbols, in id order.
  std::vector<EventLiteral> PositiveLiterals() const;

  /// All literals (e and ē for every symbol), in index order.
  std::vector<EventLiteral> AllLiterals() const;

 private:
  // Heterogeneous lookup: Find/Intern probe with a string_view directly,
  // with no per-call std::string temporary — ParseLiteral sits on the log
  // replay and checkpoint-restore hot paths.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId, TransparentHash, std::equal_to<>>
      index_;
};

}  // namespace cdes

#endif  // CDES_ALGEBRA_EVENT_H_
