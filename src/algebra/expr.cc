#include "algebra/expr.h"

#include <algorithm>

#include "common/strings.h"

namespace cdes {
namespace {

// Precedence for printing: Or < And < Seq < leaf.
int Precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::kOr:
      return 1;
    case ExprKind::kAnd:
      return 2;
    case ExprKind::kSeq:
      return 3;
    default:
      return 4;
  }
}

void PrintExpr(const Expr* e, const Alphabet& alphabet, int parent_prec,
               std::string* out) {
  int prec = Precedence(e->kind());
  const char* sep = nullptr;
  switch (e->kind()) {
    case ExprKind::kZero:
      *out += "0";
      return;
    case ExprKind::kTop:
      *out += "T";
      return;
    case ExprKind::kAtom:
      *out += alphabet.LiteralName(e->literal());
      return;
    case ExprKind::kSeq:
      sep = " . ";
      break;
    case ExprKind::kOr:
      sep = " + ";
      break;
    case ExprKind::kAnd:
      sep = " | ";
      break;
  }
  bool parens = prec < parent_prec;
  if (parens) *out += "(";
  bool first = true;
  for (const Expr* child : e->children()) {
    if (!first) *out += sep;
    first = false;
    PrintExpr(child, alphabet, prec + 1, out);
  }
  if (parens) *out += ")";
}

void CollectSymbols(const Expr* e, std::set<SymbolId>* out) {
  if (e->kind() == ExprKind::kAtom) {
    out->insert(e->literal().symbol());
    return;
  }
  for (const Expr* child : e->children()) CollectSymbols(child, out);
}

}  // namespace

size_t ExprArena::NodeKeyHash::operator()(const NodeKey& k) const {
  size_t h = static_cast<size_t>(k.kind) * 0x9E3779B97F4A7C15ULL;
  h ^= std::hash<uint32_t>()(k.literal_index) + 0x9E3779B9u + (h << 6);
  for (const Expr* c : k.children) {
    h ^= std::hash<uint64_t>()(c->id()) + 0x9E3779B9u + (h << 6) + (h >> 2);
  }
  return h;
}

ExprArena::ExprArena() {
  zero_ = Intern(ExprKind::kZero, EventLiteral(), {});
  top_ = Intern(ExprKind::kTop, EventLiteral(), {});
}

const Expr* ExprArena::Intern(ExprKind kind, EventLiteral literal,
                              std::vector<const Expr*> children) {
  NodeKey key{kind, literal.valid() ? literal.index() : 0xFFFFFFFFu,
              children};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  auto node = std::unique_ptr<Expr>(
      new Expr(kind, literal, std::move(children), nodes_.size()));
  const Expr* ptr = node.get();
  nodes_.push_back(std::move(node));
  interned_.emplace(std::move(key), ptr);
  return ptr;
}

const Expr* ExprArena::Atom(EventLiteral literal) {
  CDES_CHECK(literal.valid());
  return Intern(ExprKind::kAtom, literal, {});
}

const Expr* ExprArena::Seq(std::span<const Expr* const> children) {
  std::vector<const Expr*> flat;
  for (const Expr* c : children) {
    if (c->IsZero()) return zero_;
    if (c->IsTop()) continue;  // ⊤ is the identity of · over U_E.
    if (c->kind() == ExprKind::kSeq) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(c);
    }
  }
  // A sequence that requires one symbol twice (in either polarity) denotes
  // no traces: Definition 1 admits each symbol at most once per trace.
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!flat[i]->IsAtom()) continue;
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (flat[j]->IsAtom() &&
          flat[j]->literal().symbol() == flat[i]->literal().symbol()) {
        return zero_;
      }
    }
  }
  if (flat.empty()) return top_;
  if (flat.size() == 1) return flat[0];
  return Intern(ExprKind::kSeq, EventLiteral(), std::move(flat));
}

const Expr* ExprArena::Or(std::span<const Expr* const> children) {
  std::vector<const Expr*> flat;
  for (const Expr* c : children) {
    if (c->IsTop()) return top_;
    if (c->IsZero()) continue;
    if (c->kind() == ExprKind::kOr) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const Expr* a, const Expr* b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return zero_;
  if (flat.size() == 1) return flat[0];
  return Intern(ExprKind::kOr, EventLiteral(), std::move(flat));
}

const Expr* ExprArena::And(std::span<const Expr* const> children) {
  std::vector<const Expr*> flat;
  for (const Expr* c : children) {
    if (c->IsZero()) return zero_;
    if (c->IsTop()) continue;
    if (c->kind() == ExprKind::kAnd) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const Expr* a, const Expr* b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return top_;
  if (flat.size() == 1) return flat[0];
  return Intern(ExprKind::kAnd, EventLiteral(), std::move(flat));
}

std::set<SymbolId> MentionedSymbols(const Expr* e) {
  std::set<SymbolId> out;
  CollectSymbols(e, &out);
  return out;
}

std::vector<EventLiteral> Gamma(const Expr* e) {
  std::vector<EventLiteral> out;
  for (SymbolId s : MentionedSymbols(e)) {
    out.push_back(EventLiteral::Positive(s));
    out.push_back(EventLiteral::Complement(s));
  }
  return out;
}

std::vector<EventLiteral> GammaExcluding(const Expr* d, EventLiteral e) {
  std::vector<EventLiteral> out;
  for (EventLiteral l : Gamma(d)) {
    if (l.symbol() != e.symbol()) out.push_back(l);
  }
  return out;
}

std::string ExprToString(const Expr* e, const Alphabet& alphabet) {
  std::string out;
  PrintExpr(e, alphabet, 0, &out);
  return out;
}

}  // namespace cdes
