#ifndef CDES_ALGEBRA_EXPR_H_
#define CDES_ALGEBRA_EXPR_H_

#include <deque>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/event.h"

namespace cdes {

/// Node kinds of the event algebra E (Syntax 1-4).
///
///   0    — the impossible dependency (denotes no traces)
///   ⊤    — the vacuous dependency (denotes all traces)
///   atom — an event literal e or ē (Semantics 1: satisfied when it occurs)
///   ·    — sequence / memberwise concatenation (Semantics 3)
///   +    — choice / union (Semantics 2)
///   |    — conjunction / intersection (Semantics 4)
enum class ExprKind { kZero, kTop, kAtom, kSeq, kOr, kAnd };

/// An immutable, arena-owned node of an event expression DAG.
///
/// Nodes are created exclusively through ExprArena, which hash-conses them:
/// structurally identical nodes are the same pointer, so pointer equality is
/// structural equality and node ids give a deterministic total order.
class Expr {
 public:
  ExprKind kind() const { return kind_; }

  /// The literal of a kAtom node.
  EventLiteral literal() const {
    CDES_DCHECK(kind_ == ExprKind::kAtom);
    return literal_;
  }

  /// Children of kSeq / kOr / kAnd nodes (empty otherwise). Sequence
  /// children are in temporal order; Or/And children are sorted by id.
  const std::vector<const Expr*>& children() const { return children_; }

  /// Arena-assigned creation index; deterministic for a fixed construction
  /// sequence and usable as a total order.
  uint64_t id() const { return id_; }

  bool IsZero() const { return kind_ == ExprKind::kZero; }
  bool IsTop() const { return kind_ == ExprKind::kTop; }
  bool IsAtom() const { return kind_ == ExprKind::kAtom; }

 private:
  friend class ExprArena;
  Expr(ExprKind kind, EventLiteral literal, std::vector<const Expr*> children,
       uint64_t id)
      : kind_(kind), literal_(literal), children_(std::move(children)),
        id_(id) {}

  ExprKind kind_;
  EventLiteral literal_;
  std::vector<const Expr*> children_;
  uint64_t id_;
};

/// Factory and owner of hash-consed expression nodes.
///
/// The arena canonicalizes on construction:
///   Or:  flattened, 0 dropped, duplicates dropped, ⊤ absorbs, sorted by id;
///        empty Or is 0, singleton Or is its child.
///   And: flattened, ⊤ dropped, duplicates dropped, 0 absorbs, sorted by id;
///        empty And is ⊤, singleton And is its child.
///   Seq: flattened, ⊤ dropped (⊤ is the identity of · on U_E), 0 absorbs;
///        a sequence whose atom children repeat a symbol is 0 (no trace in
///        U_E carries a symbol twice or in both polarities — Definition 1);
///        empty Seq is ⊤, singleton Seq is its child.
///
/// These are exactly the identities validated by the paper's trace semantics;
/// every one is checked against model-theoretic denotation in the tests.
class ExprArena {
 public:
  ExprArena();

  // The arena is an identity object; expressions point into it.
  ExprArena(const ExprArena&) = delete;
  ExprArena& operator=(const ExprArena&) = delete;

  const Expr* Zero() const { return zero_; }
  const Expr* Top() const { return top_; }

  const Expr* Atom(EventLiteral literal);

  /// Sequence E1 · E2 · ... (binary · is associative; we store n-ary).
  const Expr* Seq(std::span<const Expr* const> children);
  const Expr* Seq(const Expr* a, const Expr* b) {
    const Expr* kids[] = {a, b};
    return Seq(kids);
  }

  /// Choice E1 + E2 + ...
  const Expr* Or(std::span<const Expr* const> children);
  const Expr* Or(const Expr* a, const Expr* b) {
    const Expr* kids[] = {a, b};
    return Or(kids);
  }

  /// Conjunction E1 | E2 | ...
  const Expr* And(std::span<const Expr* const> children);
  const Expr* And(const Expr* a, const Expr* b) {
    const Expr* kids[] = {a, b};
    return And(kids);
  }

  /// Number of live (canonical) nodes, including 0 and ⊤.
  size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeKey {
    ExprKind kind;
    uint32_t literal_index;
    std::vector<const Expr*> children;
    bool operator==(const NodeKey& other) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };

  const Expr* Intern(ExprKind kind, EventLiteral literal,
                     std::vector<const Expr*> children);

  std::deque<std::unique_ptr<Expr>> nodes_;
  std::unordered_map<NodeKey, const Expr*, NodeKeyHash> interned_;
  const Expr* zero_ = nullptr;
  const Expr* top_ = nullptr;
};

/// The set of symbols mentioned anywhere in `e`.
std::set<SymbolId> MentionedSymbols(const Expr* e);

/// The paper's Γ_E: the events mentioned in E *and their complements*, i.e.
/// both literals of every mentioned symbol, in index order.
std::vector<EventLiteral> Gamma(const Expr* e);

/// Γ_{D^e} = Γ_D − {e, ē} (Definition 2's side alphabet).
std::vector<EventLiteral> GammaExcluding(const Expr* d, EventLiteral e);

/// Pretty-prints with minimal parentheses. `+` binds loosest, then `|`,
/// then `·` (printed as '.'); complements print as '~e'; constants as
/// "0" and "T".
std::string ExprToString(const Expr* e, const Alphabet& alphabet);

}  // namespace cdes

#endif  // CDES_ALGEBRA_EXPR_H_
