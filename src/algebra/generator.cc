#include "algebra/generator.h"

namespace cdes {
namespace {

const Expr* GenerateRec(ExprArena* arena, Rng* rng,
                        const RandomExprOptions& options, size_t depth) {
  bool leaf = depth >= options.max_depth || rng->Bernoulli(0.3);
  if (leaf) {
    if (rng->Bernoulli(options.constant_probability)) {
      return rng->Bernoulli(0.5) ? arena->Zero() : arena->Top();
    }
    SymbolId symbol =
        static_cast<SymbolId>(rng->Uniform(options.symbol_count));
    return arena->Atom(EventLiteral(symbol, rng->Bernoulli(0.5)));
  }
  size_t arity = 2 + rng->Uniform(options.max_arity - 1);
  std::vector<const Expr*> kids;
  kids.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    kids.push_back(GenerateRec(arena, rng, options, depth + 1));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return arena->Seq(kids);
    case 1:
      return arena->Or(kids);
    default:
      return arena->And(kids);
  }
}

}  // namespace

const Expr* GenerateRandomExpr(ExprArena* arena, Rng* rng,
                               const RandomExprOptions& options) {
  CDES_CHECK_GT(options.symbol_count, 0u);
  CDES_CHECK_GE(options.max_arity, 2u);
  return GenerateRec(arena, rng, options, 0);
}

const Expr* KleinImplies(ExprArena* arena, SymbolId e, SymbolId f) {
  return arena->Or(arena->Atom(EventLiteral::Complement(e)),
                   arena->Atom(EventLiteral::Positive(f)));
}

const Expr* KleinPrecedes(ExprArena* arena, SymbolId e, SymbolId f) {
  const Expr* kids[] = {
      arena->Atom(EventLiteral::Complement(e)),
      arena->Atom(EventLiteral::Complement(f)),
      arena->Seq(arena->Atom(EventLiteral::Positive(e)),
                 arena->Atom(EventLiteral::Positive(f)))};
  return arena->Or(kids);
}

const Expr* Chain(ExprArena* arena, const std::vector<SymbolId>& symbols) {
  std::vector<const Expr*> kids;
  kids.reserve(symbols.size());
  for (SymbolId s : symbols) {
    kids.push_back(arena->Atom(EventLiteral::Positive(s)));
  }
  return arena->Seq(kids);
}

const Expr* OrderedIfAll(ExprArena* arena,
                         const std::vector<SymbolId>& symbols) {
  std::vector<const Expr*> kids;
  kids.reserve(symbols.size() + 1);
  for (SymbolId s : symbols) {
    kids.push_back(arena->Atom(EventLiteral::Complement(s)));
  }
  kids.push_back(Chain(arena, symbols));
  return arena->Or(kids);
}

}  // namespace cdes
