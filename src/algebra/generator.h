#ifndef CDES_ALGEBRA_GENERATOR_H_
#define CDES_ALGEBRA_GENERATOR_H_

#include <vector>

#include "algebra/expr.h"
#include "common/rng.h"

namespace cdes {

/// Knobs for random event-expression generation (property tests and
/// benchmark workloads).
struct RandomExprOptions {
  /// Symbols are drawn from {0, ..., symbol_count-1}.
  size_t symbol_count = 3;
  /// Maximum operator-nesting depth.
  size_t max_depth = 3;
  /// Maximum children per n-ary node.
  size_t max_arity = 3;
  /// Probability that a leaf is 0 or ⊤ rather than an atom.
  double constant_probability = 0.1;
};

/// Draws a random expression. With the same rng stream and options the
/// result is deterministic.
const Expr* GenerateRandomExpr(ExprArena* arena, Rng* rng,
                               const RandomExprOptions& options);

/// D_→ of Example 2 for the given symbols: ē + f (if e occurs, f occurs).
const Expr* KleinImplies(ExprArena* arena, SymbolId e, SymbolId f);

/// D_< of Example 3: ē + f̄ + e·f (if both occur, e precedes f).
const Expr* KleinPrecedes(ExprArena* arena, SymbolId e, SymbolId f);

/// The chain dependency e1·e2·...·en (all of them, in order) over the given
/// symbols — the stress family for residual-graph and guard-size growth.
const Expr* Chain(ExprArena* arena, const std::vector<SymbolId>& symbols);

/// ē1 + ē2 + ... + ēn + e1·e2·...·en: the n-ary generalization of D_<
/// ("if all occur they occur in order"), whose automaton grows
/// combinatorially while the expression stays linear.
const Expr* OrderedIfAll(ExprArena* arena, const std::vector<SymbolId>& symbols);

}  // namespace cdes

#endif  // CDES_ALGEBRA_GENERATOR_H_
