#include "algebra/residuation.h"

#include <algorithm>
#include <deque>

#include "algebra/semantics.h"
#include "common/strings.h"

namespace cdes {

const Expr* Residuator::NormalForm(const Expr* e) {
  auto it = normal_cache_.find(e);
  if (it != normal_cache_.end()) return it->second;

  const Expr* result = e;
  switch (e->kind()) {
    case ExprKind::kZero:
    case ExprKind::kTop:
    case ExprKind::kAtom:
      break;
    case ExprKind::kOr:
    case ExprKind::kAnd: {
      std::vector<const Expr*> kids;
      kids.reserve(e->children().size());
      for (const Expr* c : e->children()) kids.push_back(NormalForm(c));
      result = e->kind() == ExprKind::kOr ? arena_->Or(kids)
                                          : arena_->And(kids);
      // Rebuilding may expose new Seq nodes (e.g. collapsed singletons);
      // they are already normalized because their parts were.
      break;
    }
    case ExprKind::kSeq: {
      std::vector<const Expr*> kids;
      kids.reserve(e->children().size());
      for (const Expr* c : e->children()) kids.push_back(NormalForm(c));
      // Distribute the first +/| child out of the sequence:
      //   A·(X+Y)·B = A·X·B + A·Y·B   and   A·(X|Y)·B = (A·X·B)|(A·Y·B),
      // both validated by the trace semantics (· distributes over + and |).
      size_t pivot = kids.size();
      for (size_t i = 0; i < kids.size(); ++i) {
        if (kids[i]->kind() == ExprKind::kOr ||
            kids[i]->kind() == ExprKind::kAnd) {
          pivot = i;
          break;
        }
      }
      if (pivot == kids.size()) {
        result = arena_->Seq(kids);
      } else {
        const Expr* inner = kids[pivot];
        std::vector<const Expr*> alternatives;
        alternatives.reserve(inner->children().size());
        for (const Expr* alt : inner->children()) {
          std::vector<const Expr*> seq(kids);
          seq[pivot] = alt;
          alternatives.push_back(NormalForm(arena_->Seq(seq)));
        }
        result = inner->kind() == ExprKind::kOr ? arena_->Or(alternatives)
                                                : arena_->And(alternatives);
      }
      break;
    }
  }
  normal_cache_.emplace(e, result);
  return result;
}

const Expr* Residuator::Residuate(const Expr* e, EventLiteral x) {
  ++residuate_calls_;
  return ResiduateNormal(NormalForm(e), x);
}

const Expr* Residuator::ResiduateNormal(const Expr* e, EventLiteral x) {
  auto key = std::make_pair(e, x);
  auto it = resid_cache_.find(key);
  if (it != resid_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;

  const Expr* result = nullptr;
  switch (e->kind()) {
    case ExprKind::kZero:  // Residuation 1
      result = arena_->Zero();
      break;
    case ExprKind::kTop:  // Residuation 2
      result = arena_->Top();
      break;
    case ExprKind::kAtom: {
      EventLiteral lit = e->literal();
      if (lit == x) {
        result = arena_->Top();  // Residuation 3 with empty tail
      } else if (lit == x.Complemented()) {
        result = arena_->Zero();  // Residuation 8: x̄ can no longer occur
      } else {
        result = e;  // Residuation 6
      }
      break;
    }
    case ExprKind::kOr: {  // Residuation 4
      std::vector<const Expr*> kids;
      kids.reserve(e->children().size());
      for (const Expr* c : e->children()) kids.push_back(ResiduateNormal(c, x));
      result = arena_->Or(kids);
      break;
    }
    case ExprKind::kAnd: {  // Residuation 5
      std::vector<const Expr*> kids;
      kids.reserve(e->children().size());
      for (const Expr* c : e->children()) kids.push_back(ResiduateNormal(c, x));
      result = arena_->And(kids);
      break;
    }
    case ExprKind::kSeq: {
      // In normal form every sequence child is an atom.
      const std::vector<const Expr*>& kids = e->children();
      bool mentions_complement = false;
      size_t position = kids.size();
      for (size_t i = 0; i < kids.size(); ++i) {
        CDES_DCHECK(kids[i]->IsAtom()) << "sequence not in normal form";
        EventLiteral lit = kids[i]->literal();
        if (lit == x.Complemented()) mentions_complement = true;
        if (lit == x && position == kids.size()) position = i;
      }
      if (mentions_complement) {
        result = arena_->Zero();  // Residuation 8
      } else if (position == 0) {
        // Residuation 3: drop the consumed head.
        std::vector<const Expr*> tail(kids.begin() + 1, kids.end());
        result = arena_->Seq(tail);
      } else if (position < kids.size()) {
        // Residuation 7: x had to be preceded by kids[0..position), which
        // have not occurred; the required order is already violated.
        result = arena_->Zero();
      } else {
        result = e;  // Residuation 6
      }
      break;
    }
  }
  resid_cache_.emplace(key, result);
  return result;
}

const Expr* Residuator::ResiduateTrace(const Expr* e, const Trace& u) {
  const Expr* cur = NormalForm(e);
  for (EventLiteral l : u) cur = ResiduateNormal(cur, l);
  return cur;
}

std::vector<bool> ResiduateModelTheoretic(const Expr* e, EventLiteral x,
                                          const std::vector<Trace>& universe) {
  std::vector<bool> out(universe.size(), true);
  for (size_t vi = 0; vi < universe.size(); ++vi) {
    const Trace& v = universe[vi];
    for (const Trace& u : universe) {
      // u ⊨ x (the atom) iff x occurs on u.
      if (std::find(u.begin(), u.end(), x) == u.end()) continue;
      Trace uv = u;
      uv.insert(uv.end(), v.begin(), v.end());
      if (!IsValidTrace(uv)) continue;
      if (!Satisfies(uv, e)) {
        out[vi] = false;
        break;
      }
    }
  }
  return out;
}

size_t ResidualGraph::IndexOf(const Expr* state) const {
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i] == state) return i;
  }
  return static_cast<size_t>(-1);
}

ResidualGraph BuildResidualGraph(Residuator* residuator, const Expr* d) {
  ResidualGraph graph;
  const Expr* initial = residuator->NormalForm(d);
  graph.states.push_back(initial);
  std::deque<size_t> frontier = {0};
  while (!frontier.empty()) {
    size_t si = frontier.front();
    frontier.pop_front();
    const Expr* state = graph.states[si];
    // Residuals never mention an already-consumed symbol, so stepping by
    // Γ of the current state exactly enumerates the valid next events.
    for (EventLiteral l : Gamma(state)) {
      const Expr* next = residuator->Residuate(state, l);
      size_t ni = graph.IndexOf(next);
      if (ni == static_cast<size_t>(-1)) {
        ni = graph.states.size();
        graph.states.push_back(next);
        frontier.push_back(ni);
      }
      graph.edges[{si, l}] = ni;
    }
  }
  return graph;
}

std::string ResidualGraphToDot(const ResidualGraph& graph,
                               const Alphabet& alphabet,
                               std::string_view title) {
  std::string out = "digraph \"";
  out += title;
  out += "\" {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t i = 0; i < graph.states.size(); ++i) {
    const Expr* state = graph.states[i];
    out += StrCat("  s", i, " [label=\"",
                  ExprToString(state, alphabet), "\"");
    if (state->IsTop()) out += ", shape=doublecircle";
    if (state->IsZero()) out += ", style=dashed";
    out += "];\n";
  }
  for (const auto& [key, to] : graph.edges) {
    out += StrCat("  s", key.first, " -> s", to, " [label=\"",
                  alphabet.LiteralName(key.second), "\"];\n");
  }
  out += "}\n";
  return out;
}

bool IsSatisfiable(Residuator* residuator, const Expr* e) {
  ResidualGraph graph = BuildResidualGraph(residuator, e);
  return graph.IndexOf(residuator->arena()->Top()) !=
         static_cast<size_t>(-1);
}

namespace {

void EnumeratePathsRec(Residuator* residuator, const Expr* state,
                       const std::vector<SymbolId>& remaining, Trace* path,
                       size_t max_paths, std::vector<Trace>* out) {
  if (out->size() >= max_paths) return;
  if (state->IsTop()) out->push_back(*path);
  if (state->IsZero()) return;
  for (size_t i = 0; i < remaining.size(); ++i) {
    std::vector<SymbolId> rest = remaining;
    rest.erase(rest.begin() + i);
    for (bool complemented : {false, true}) {
      EventLiteral l(remaining[i], complemented);
      path->push_back(l);
      EnumeratePathsRec(residuator, residuator->Residuate(state, l), rest,
                        path, max_paths, out);
      path->pop_back();
    }
  }
}

}  // namespace

std::vector<Trace> EnumeratePaths(Residuator* residuator, const Expr* d,
                                  size_t max_paths) {
  std::vector<Trace> out;
  const Expr* initial = residuator->NormalForm(d);
  std::set<SymbolId> symbol_set = MentionedSymbols(initial);
  std::vector<SymbolId> symbols(symbol_set.begin(), symbol_set.end());
  Trace path;
  EnumeratePathsRec(residuator, initial, symbols, &path, max_paths, &out);
  return out;
}

}  // namespace cdes
