#ifndef CDES_ALGEBRA_RESIDUATION_H_
#define CDES_ALGEBRA_RESIDUATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "algebra/trace.h"

namespace cdes {

/// Symbolic residuation engine (§3.4).
///
/// Residuation E/e computes the remnant of dependency E after event e occurs
/// (Semantics 6). The rewrite rules (Residuation 1-8) assume no `+`/`|`
/// inside the scope of `·`, so the engine first rewrites to *sequence normal
/// form* by distributing `·` over `+` and `|` (both distributions are
/// validated by the trace semantics). All results are memoized against the
/// shared hash-consed arena, which is what makes the paper's "much of the
/// required symbolic reasoning can be precompiled" practical.
class Residuator {
 public:
  /// The residuator aliases `arena` (not owned); all inputs and outputs are
  /// nodes of that arena.
  explicit Residuator(ExprArena* arena) : arena_(arena) {}

  Residuator(const Residuator&) = delete;
  Residuator& operator=(const Residuator&) = delete;

  /// Rewrites `e` so that no `+` or `|` occurs under a `·` (CNF-style form
  /// required by the Residuation rules). Worst-case exponential; dependency
  /// expressions in workflow practice are small.
  const Expr* NormalForm(const Expr* e);

  /// E/x — the remnant of E after literal x occurs. Implements
  /// Residuation 1-8 on the normal form:
  ///   0/x = 0,  ⊤/x = ⊤                                   (rules 1, 2)
  ///   (x·E)/x = E                                          (rule 3)
  ///   (E1+E2)/x = E1/x + E2/x                              (rule 4)
  ///   (E1|E2)/x = (E1/x)|(E2/x)                            (rule 5)
  ///   E/x = E when x, x̄ ∉ Γ_E                              (rule 6)
  ///   (e'·E)/x = 0 when x ∈ Γ of the tail (order violated) (rule 7)
  ///   (e'·E)/x = 0 when x̄ ∈ Γ of the sequence              (rule 8)
  const Expr* Residuate(const Expr* e, EventLiteral x);

  /// Number of Residuate calls made so far (memoized hits included). The
  /// guard profiler reads deltas of this to attribute residuation work to
  /// guard sites; one unconditional increment is noise next to the memo
  /// lookup each call already performs.
  uint64_t residuate_calls() const { return residuate_calls_; }

  /// Memo effectiveness of the per-node residuation cache: a hit means a
  /// (normal-form node, literal) pair was answered without rule application.
  /// Exported to the obs layer by the scheduler/engine as
  /// `algebra.residuation_cache_{hits,misses}`.
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  /// Residuates by every event of `u` in order: ((E/u1)/u2)/.../un.
  const Expr* ResiduateTrace(const Expr* e, const Trace& u);

  ExprArena* arena() const { return arena_; }

 private:
  const Expr* ResiduateNormal(const Expr* e, EventLiteral x);

  /// (interned node, literal) key for the residuation memo. Nodes are
  /// hash-consed, so mixing the pointer with the literal's dense index
  /// distributes well; the unordered_map replaces a red-black tree whose
  /// ~log(n) pointer-chasing probes sat directly on the assimilation path.
  struct ResidKeyHash {
    size_t operator()(const std::pair<const Expr*, EventLiteral>& k) const {
      size_t h = std::hash<const void*>()(k.first);
      h ^= std::hash<uint32_t>()(k.second.index()) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h;
    }
  };

  ExprArena* arena_;
  uint64_t residuate_calls_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  std::unordered_map<const Expr*, const Expr*> normal_cache_;
  std::unordered_map<std::pair<const Expr*, EventLiteral>, const Expr*,
                     ResidKeyHash>
      resid_cache_;
};

/// Model-theoretic residuation (Semantics 6), used as the soundness oracle
/// for Theorem 1 tests: returns, for each trace v of `universe`,
/// whether v ⊨ E/x, i.e. ∀u ⊨ x: uv ∈ U_E ⇒ uv ⊨ E, with u ranging over
/// `universe` as well.
std::vector<bool> ResiduateModelTheoretic(const Expr* e, EventLiteral x,
                                          const std::vector<Trace>& universe);

/// The symbolic scheduler state machine of Figure 2: states are the
/// distinct residuals reachable from D by events of Γ_D; edges are labeled
/// by literals.
struct ResidualGraph {
  /// states[0] is the normal form of the initial dependency; the ⊤ and 0
  /// states, when reachable, appear like any other state.
  std::vector<const Expr*> states;
  /// (state index, literal) → successor state index. Only literals that
  /// change or preserve the state within Γ_D are recorded.
  std::map<std::pair<size_t, EventLiteral>, size_t> edges;

  /// Index of `state` or npos.
  size_t IndexOf(const Expr* state) const;
};

/// Builds the reachable-residual graph of `d` over Γ_D.
ResidualGraph BuildResidualGraph(Residuator* residuator, const Expr* d);

/// Renders the residual graph in Graphviz DOT (Figure 2 as a picture):
/// states labelled by their expressions, ⊤ doubly circled, 0 dashed.
std::string ResidualGraphToDot(const ResidualGraph& graph,
                               const Alphabet& alphabet,
                               std::string_view title = "dependency");

/// True iff some trace satisfies `e` (equivalently: ⊤ is reachable in the
/// residual graph — tested against brute-force enumeration).
bool IsSatisfiable(Residuator* residuator, const Expr* e);

/// Π(D) (Definition 3): event sequences ρ = e1…en over Γ_D (each symbol at
/// most once, consistent polarities) with ((D/e1)/…)/en = ⊤. `max_paths`
/// bounds the enumeration (the set is finite but can be factorially large).
std::vector<Trace> EnumeratePaths(Residuator* residuator, const Expr* d,
                                  size_t max_paths = 100000);

}  // namespace cdes

#endif  // CDES_ALGEBRA_RESIDUATION_H_
