#include "algebra/semantics.h"

#include <algorithm>

namespace cdes {
namespace {

bool SatisfiesSegment(const Trace& u, size_t lo, size_t hi, const Expr* e);

// Matches children[idx..] of a sequence against u[lo, hi): tries every split
// point for the current child and recurses on the remainder.
bool SatisfiesSeqTail(const Trace& u, size_t lo, size_t hi,
                      const std::vector<const Expr*>& children, size_t idx) {
  if (idx + 1 == children.size()) {
    return SatisfiesSegment(u, lo, hi, children[idx]);
  }
  for (size_t split = lo; split <= hi; ++split) {
    if (SatisfiesSegment(u, lo, split, children[idx]) &&
        SatisfiesSeqTail(u, split, hi, children, idx + 1)) {
      return true;
    }
  }
  return false;
}

bool SatisfiesSegment(const Trace& u, size_t lo, size_t hi, const Expr* e) {
  switch (e->kind()) {
    case ExprKind::kZero:
      return false;
    case ExprKind::kTop:
      return true;
    case ExprKind::kAtom: {
      for (size_t i = lo; i < hi; ++i) {
        if (u[i] == e->literal()) return true;
      }
      return false;
    }
    case ExprKind::kOr:
      return std::any_of(e->children().begin(), e->children().end(),
                         [&](const Expr* c) {
                           return SatisfiesSegment(u, lo, hi, c);
                         });
    case ExprKind::kAnd:
      return std::all_of(e->children().begin(), e->children().end(),
                         [&](const Expr* c) {
                           return SatisfiesSegment(u, lo, hi, c);
                         });
    case ExprKind::kSeq:
      return SatisfiesSeqTail(u, lo, hi, e->children(), 0);
  }
  return false;
}

}  // namespace

bool Satisfies(const Trace& u, const Expr* e) {
  return SatisfiesSegment(u, 0, u.size(), e);
}

std::vector<size_t> Denotation(const Expr* e,
                               const std::vector<Trace>& universe) {
  std::vector<size_t> out;
  for (size_t i = 0; i < universe.size(); ++i) {
    if (Satisfies(universe[i], e)) out.push_back(i);
  }
  return out;
}

bool ExprEquivalent(const Expr* a, const Expr* b, size_t extra_symbols) {
  std::set<SymbolId> symbols = MentionedSymbols(a);
  std::set<SymbolId> symbols_b = MentionedSymbols(b);
  symbols.insert(symbols_b.begin(), symbols_b.end());
  SymbolId max_symbol = 0;
  for (SymbolId s : symbols) max_symbol = std::max(max_symbol, s + 1);
  std::vector<EventLiteral> literals;
  for (SymbolId s : symbols) {
    literals.push_back(EventLiteral::Positive(s));
    literals.push_back(EventLiteral::Complement(s));
  }
  // Fresh symbols, guaranteed unmentioned, exercise behaviour in the
  // presence of unrelated events.
  for (size_t i = 0; i < extra_symbols; ++i) {
    literals.push_back(EventLiteral::Positive(max_symbol + i));
    literals.push_back(EventLiteral::Complement(max_symbol + i));
  }
  for (const Trace& u : EnumerateUniverse(literals)) {
    if (Satisfies(u, a) != Satisfies(u, b)) return false;
  }
  return true;
}

}  // namespace cdes
