#ifndef CDES_ALGEBRA_SEMANTICS_H_
#define CDES_ALGEBRA_SEMANTICS_H_

#include <vector>

#include "algebra/expr.h"
#include "algebra/trace.h"

namespace cdes {

/// u ⊨ E per Semantics 1-5:
///   u ⊨ f        iff f occurs on u                    (atoms)
///   u ⊨ E1 + E2  iff u ⊨ E1 or u ⊨ E2
///   u ⊨ E1 · E2  iff u = vw with v ⊨ E1 and w ⊨ E2
///   u ⊨ E1 | E2  iff u ⊨ E1 and u ⊨ E2
///   u ⊨ ⊤ always; u ⊨ 0 never.
bool Satisfies(const Trace& u, const Expr* e);

/// The denotation [[E]] restricted to `universe`: indices of the satisfying
/// traces (Example 1's [[e]], [[e·f]], ... are computed this way in tests).
std::vector<size_t> Denotation(const Expr* e,
                               const std::vector<Trace>& universe);

/// Semantic equivalence of two expressions, decided by comparing
/// denotations over the full universe of traces on the union of their
/// mentioned symbols plus `extra_symbols` fresh symbols (extra symbols catch
/// identities that would hold only on a too-small alphabet). Exponential in
/// alphabet size; intended for tests and for small dependency alphabets.
bool ExprEquivalent(const Expr* a, const Expr* b, size_t extra_symbols = 1);

}  // namespace cdes

#endif  // CDES_ALGEBRA_SEMANTICS_H_
