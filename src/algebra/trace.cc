#include "algebra/trace.h"

#include <algorithm>

#include "common/strings.h"

namespace cdes {
namespace {

bool SymbolUsed(const Trace& u, SymbolId symbol) {
  for (EventLiteral l : u) {
    if (l.symbol() == symbol) return true;
  }
  return false;
}

void EnumerateUniverseRec(const std::vector<EventLiteral>& literals,
                          Trace* current, std::vector<Trace>* out) {
  out->push_back(*current);
  for (EventLiteral l : literals) {
    if (!CanExtend(*current, l)) continue;
    current->push_back(l);
    EnumerateUniverseRec(literals, current, out);
    current->pop_back();
  }
}

void EnumerateMaximalRec(size_t symbol_count, Trace* current,
                         std::vector<Trace>* out) {
  if (current->size() == symbol_count) {
    out->push_back(*current);
    return;
  }
  for (SymbolId s = 0; s < symbol_count; ++s) {
    if (SymbolUsed(*current, s)) continue;
    for (bool complemented : {false, true}) {
      current->push_back(EventLiteral(s, complemented));
      EnumerateMaximalRec(symbol_count, current, out);
      current->pop_back();
    }
  }
}

}  // namespace

bool IsValidTrace(const Trace& u) {
  for (size_t i = 0; i < u.size(); ++i) {
    if (!u[i].valid()) return false;
    for (size_t j = i + 1; j < u.size(); ++j) {
      if (u[i].symbol() == u[j].symbol()) return false;
    }
  }
  return true;
}

bool CanExtend(const Trace& u, EventLiteral next) {
  if (!next.valid()) return false;
  return !SymbolUsed(u, next.symbol());
}

bool IsMaximalTrace(const Trace& u, size_t symbol_count) {
  if (!IsValidTrace(u)) return false;
  if (u.size() != symbol_count) return false;
  for (SymbolId s = 0; s < symbol_count; ++s) {
    if (!SymbolUsed(u, s)) return false;
  }
  return true;
}

std::string TraceToString(const Trace& u, const Alphabet& alphabet) {
  std::string out = "<";
  for (size_t i = 0; i < u.size(); ++i) {
    if (i > 0) out += " ";
    out += alphabet.LiteralName(u[i]);
  }
  out += ">";
  return out;
}

std::vector<Trace> EnumerateUniverse(
    const std::vector<EventLiteral>& literals) {
  std::vector<Trace> out;
  Trace current;
  EnumerateUniverseRec(literals, &current, &out);
  return out;
}

std::vector<Trace> EnumerateMaximalTraces(size_t symbol_count) {
  std::vector<Trace> out;
  Trace current;
  EnumerateMaximalRec(symbol_count, &current, &out);
  return out;
}

}  // namespace cdes
