#ifndef CDES_ALGEBRA_TRACE_H_
#define CDES_ALGEBRA_TRACE_H_

#include <string>
#include <vector>

#include "algebra/event.h"

namespace cdes {

/// A finite trace: a sequence of event literals (Definition 1).
///
/// Valid traces never repeat a symbol and never contain both e and ē; helper
/// predicates below enforce this. (The paper also admits infinite traces; all
/// scheduling decisions depend on finite prefixes, and maximal traces over a
/// finite alphabet are finite, so finite sequences suffice here.)
using Trace = std::vector<EventLiteral>;

/// True iff `u` lies in the universe U_E: each symbol occurs at most once
/// and never in both polarities (Definition 1).
bool IsValidTrace(const Trace& u);

/// True iff appending `next` to valid trace `u` stays inside U_E.
bool CanExtend(const Trace& u, EventLiteral next);

/// True iff `u` is maximal over the `symbol_count` symbols {0, ...,
/// symbol_count-1}: every symbol appears in one polarity (the universe U_T
/// of §4.1, over which guards are evaluated).
bool IsMaximalTrace(const Trace& u, size_t symbol_count);

/// "<e ~f g>" using names from `alphabet`.
std::string TraceToString(const Trace& u, const Alphabet& alphabet);

/// Enumerates the finite fragment of U_E over the given literal set: all
/// valid traces (including the empty trace) using each symbol at most once.
/// Grows as sum_m C(k,m)·m!·2^m, so keep k small (tests use k <= 4).
std::vector<Trace> EnumerateUniverse(const std::vector<EventLiteral>& literals);

/// Enumerates U_T over symbols {0..symbol_count-1}: all maximal traces
/// (every symbol decided one way, all orders). Size is 2^k · k!.
std::vector<Trace> EnumerateMaximalTraces(size_t symbol_count);

}  // namespace cdes

#endif  // CDES_ALGEBRA_TRACE_H_
