#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "analysis/wait_graph.h"
#include "common/logging.h"
#include "common/strings.h"
#include "temporal/simplify.h"

namespace cdes::analysis {
namespace {

/// Decides traces(d1) ⊆ traces(d2) by exploring, with memoization, every
/// interleaving of the joint alphabet through both residual machines at
/// once (Figure 2 run in lockstep). A maximal trace over the joint symbols
/// residuates each dependency to ⊤ (satisfied) or 0 (violated), so the
/// containment fails exactly when some leaf reaches (⊤, non-⊤).
class EntailmentChecker {
 public:
  EntailmentChecker(Residuator* residuator, std::vector<SymbolId> symbols)
      : residuator_(residuator), symbols_(std::move(symbols)) {}

  bool Entails(const Expr* d1, const Expr* d2) {
    uint32_t all = symbols_.size() >= 32
                       ? 0xFFFFFFFFu
                       : (1u << symbols_.size()) - 1u;
    return !ViolationExists(d1, d2, all);
  }

 private:
  bool ViolationExists(const Expr* r1, const Expr* r2, uint32_t remaining) {
    // Once d1 is violated no extension revives it (0/x = 0): no violation
    // below. Once d2 is satisfied-forever (⊤/x = ⊤): no violation below.
    if (r1->IsZero() || r2->IsTop()) return false;
    if (remaining == 0) return r1->IsTop();
    auto key = std::make_tuple(r1, r2, remaining);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    bool found = false;
    for (size_t i = 0; i < symbols_.size() && !found; ++i) {
      uint32_t bit = 1u << i;
      if (!(remaining & bit)) continue;
      for (EventLiteral literal : {EventLiteral::Positive(symbols_[i]),
                                   EventLiteral::Complement(symbols_[i])}) {
        const Expr* n1 = residuator_->Residuate(r1, literal);
        const Expr* n2 = residuator_->Residuate(r2, literal);
        if (ViolationExists(n1, n2, remaining & ~bit)) {
          found = true;
          break;
        }
      }
    }
    memo_.emplace(key, found);
    return found;
  }

  Residuator* residuator_;
  std::vector<SymbolId> symbols_;
  std::map<std::tuple<const Expr*, const Expr*, uint32_t>, bool> memo_;
};

/// True when `g` denotes no point of its state space. The constructor
/// rules collapse most dead guards to the False node; the semantic check
/// catches the rest, but only below the state-space cap.
bool GuardDefinitelyDead(const Guard* g, size_t max_symbols) {
  if (g->IsFalse()) return true;
  if (g->IsTrue()) return false;
  if (GuardSymbols(g).size() > max_symbols) return false;
  return GuardIsUnsatisfiable(g);
}

class Analyzer {
 public:
  Analyzer(WorkflowContext* ctx, const ParsedWorkflow& workflow,
           const AnalyzeOptions& options)
      : ctx_(ctx), workflow_(workflow), options_(options) {}

  std::vector<Diagnostic> Run() {
    CheckHygiene();
    bool any_unsatisfiable = CheckDependencyTriviality();
    // With an unsatisfiable dependency every guard of the workflow is 0;
    // the downstream passes would only restate the root cause.
    if (!any_unsatisfiable) {
      CompiledWorkflow simplified = CompileWorkflow(ctx_, workflow_.spec);
      // The wait graph needs the raw synthesized guards: simplification
      // collapses a mutual wait like □f∧¬f to 0, which would mask the
      // cycle structure behind a bare dead-event finding.
      CompiledWorkflow raw = CompileWorkflow(
          ctx_, workflow_.spec, CompileOptions{.simplify = false});
      FindDeadLiterals(simplified);
      CheckWaitGraph(raw);
      CheckGuardTriviality();
      if (options_.check_redundancy) CheckRedundancy();
      if (options_.check_reachability) {
        CheckResult result =
            CheckCompiled(ctx_, workflow_, simplified, options_.check);
        for (Diagnostic& d : result.diagnostics) {
          diagnostics_.push_back(std::move(d));
        }
      }
    }
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return std::tie(a.loc.line, a.loc.column, a.rule) <
                              std::tie(b.loc.line, b.loc.column, b.rule);
                     });
    return std::move(diagnostics_);
  }

 private:
  void Report(Rule rule, std::string message, SourceLocation loc) {
    diagnostics_.push_back(MakeDiagnostic(rule, std::move(message), loc));
  }

  std::string Name(EventLiteral literal) const {
    return ctx_->alphabet()->LiteralName(literal);
  }

  const std::string& Name(SymbolId symbol) const {
    return ctx_->alphabet()->Name(symbol);
  }

  std::string Print(const Expr* expr) const {
    return ExprToString(expr, *ctx_->alphabet());
  }

  SourceLocation EventLoc(SymbolId symbol) const {
    const EventDecl* decl = workflow_.FindEvent(symbol);
    if (decl != nullptr && decl->loc.known()) return decl->loc;
    // Programmatic workflows (and sparse specs) often have no event
    // declarations; anchoring at the first dependency mentioning the
    // symbol beats printing the default-constructed 0:0.
    for (const Dependency& dep : workflow_.spec.dependencies()) {
      if (MentionedSymbols(dep.expr).count(symbol)) return dep.loc;
    }
    return SourceLocation{};
  }

  // -------------------------------------------------- symbol hygiene

  void CheckHygiene() {
    std::set<SymbolId> declared;
    for (const EventDecl& event : workflow_.events) {
      declared.insert(event.symbol);
      if (event.agent.empty()) {
        Report(Rule::kUnassignedEvent,
               StrCat("event '", event.name,
                      "' is not assigned to an agent; no task can attempt "
                      "or reject it"),
               event.loc);
      }
    }
    std::set<SymbolId> constrained = workflow_.spec.Symbols();
    for (const Dependency& dep : workflow_.spec.dependencies()) {
      for (SymbolId symbol : MentionedSymbols(dep.expr)) {
        if (!declared.count(symbol)) {
          Report(Rule::kUndeclaredEvent,
                 StrCat("dependency '", dep.name,
                        "' mentions undeclared event '", Name(symbol), "'"),
                 dep.loc);
        }
      }
    }
    for (const EventDecl& event : workflow_.events) {
      if (!constrained.count(event.symbol)) {
        Report(Rule::kUnconstrainedEvent,
               StrCat("event '", event.name,
                      "' is declared but no dependency constrains it"),
               event.loc);
      }
    }
  }

  // ------------------------------------------- dependency triviality

  bool DependencyVacuous(const Expr* expr) {
    if (expr->IsTop()) return true;
    if (MentionedSymbols(expr).size() > options_.max_state_space_symbols) {
      return false;
    }
    // ◇E ≡ ⊤ over Γ_E iff every maximal trace eventually satisfies E.
    return GuardIsValid(ctx_->guards()->Diamond(expr));
  }

  bool CheckDependencyTriviality() {
    bool any_unsatisfiable = false;
    for (const Dependency& dep : workflow_.spec.dependencies()) {
      if (!IsSatisfiable(ctx_->residuator(), dep.expr)) {
        any_unsatisfiable = true;
        trivial_.insert(dep.expr);
        Report(Rule::kUnsatisfiableDep,
               StrCat("dependency '", dep.name, "' is unsatisfiable (≡ 0): ",
                      "no computation can satisfy ", Print(dep.expr)),
               dep.loc);
      } else if (DependencyVacuous(dep.expr)) {
        trivial_.insert(dep.expr);
        Report(Rule::kVacuousDep,
               StrCat("dependency '", dep.name,
                      "' is vacuous (≡ ⊤): every computation satisfies ",
                      Print(dep.expr)),
               dep.loc);
      }
    }
    return any_unsatisfiable;
  }

  // ------------------------------------------------ guard triviality

  void FindDeadLiterals(const CompiledWorkflow& compiled) {
    for (SymbolId symbol : compiled.symbols()) {
      for (EventLiteral literal :
           {EventLiteral::Positive(symbol), EventLiteral::Complement(symbol)}) {
        if (GuardDefinitelyDead(compiled.GuardFor(literal),
                                options_.max_state_space_symbols)) {
          dead_.insert(literal);
        }
      }
    }
  }

  /// CL003/CL004 for dead literals the wait-graph pass has not already
  /// explained: a cycle member's guard is ≡ 0 *because* of the cycle, and
  /// CL005 names the root cause.
  void CheckGuardTriviality() {
    for (EventLiteral literal : dead_) {
      if (deadlocked_.count(literal)) continue;
      SymbolId symbol = literal.symbol();
      if (!literal.complemented()) {
        Report(Rule::kDeadEvent,
               StrCat("event '", Name(symbol),
                      "' can never be permitted: its synthesized guard G(W, ",
                      Name(symbol), ") ≡ 0"),
               EventLoc(symbol));
      } else {
        Report(Rule::kForcedEvent,
               StrCat("event '", Name(symbol),
                      "' can never be rejected: the guard of ", Name(literal),
                      " ≡ 0, so the event is forced"),
               EventLoc(symbol));
      }
    }
  }

  // ------------------------------------------------------ wait graph

  bool Dead(EventLiteral literal) const {
    return dead_.count(literal) || deadlocked_.count(literal);
  }

  void CheckWaitGraph(const CompiledWorkflow& raw) {
    WaitGraph graph = BuildWaitGraph(raw);
    for (const std::vector<EventLiteral>& cycle : FindWaitCycles(graph)) {
      std::vector<std::string> parts;
      for (EventLiteral member : cycle) {
        deadlocked_.insert(member);
        std::vector<std::string> waits;
        for (EventLiteral need : graph.edges.at(member)) {
          if (std::find(cycle.begin(), cycle.end(), need) != cycle.end()) {
            waits.push_back(Name(need));
          }
        }
        parts.push_back(
            StrCat(Name(member), " waits for ", StrJoin(waits, ", ")));
      }
      Report(Rule::kStaticDeadlock,
             StrCat("static deadlock: ", parts.size(),
                    " events wait on each other's occurrence and none can "
                    "ever be permitted (", StrJoin(parts, "; "), ")"),
             EventLoc(cycle.front().symbol()));
    }
    for (const auto& [literal, needs] : graph.edges) {
      if (Dead(literal)) continue;
      for (EventLiteral need : needs) {
        if (!Dead(need)) continue;
        Report(Rule::kWaitOnDead,
               StrCat("event literal ", Name(literal), " waits for ",
                      Name(need), ", which can never occur"),
               EventLoc(literal.symbol()));
      }
    }
  }

  // ------------------------------------------------------ redundancy

  void CheckRedundancy() {
    const std::vector<Dependency>& deps = workflow_.spec.dependencies();
    for (size_t i = 0; i < deps.size(); ++i) {
      if (trivial_.count(deps[i].expr)) continue;
      for (size_t j = i + 1; j < deps.size(); ++j) {
        if (trivial_.count(deps[j].expr)) continue;
        if (deps[i].expr == deps[j].expr) {
          Report(Rule::kRedundantDep,
                 StrCat("dependency '", deps[j].name,
                        "' duplicates dependency '", deps[i].name, "'"),
                 deps[j].loc);
          continue;
        }
        std::set<SymbolId> joint = MentionedSymbols(deps[i].expr);
        std::set<SymbolId> other = MentionedSymbols(deps[j].expr);
        bool shares = false;
        for (SymbolId s : other) shares |= joint.count(s) > 0;
        if (!shares) continue;  // disjoint alphabets cannot entail
        joint.insert(other.begin(), other.end());
        if (joint.size() > options_.max_entailment_symbols) continue;
        EntailmentChecker checker(
            ctx_->residuator(),
            std::vector<SymbolId>(joint.begin(), joint.end()));
        bool forward = checker.Entails(deps[i].expr, deps[j].expr);
        bool backward = checker.Entails(deps[j].expr, deps[i].expr);
        if (forward && backward) {
          Report(Rule::kRedundantDep,
                 StrCat("dependency '", deps[j].name, "' is equivalent to '",
                        deps[i].name, "'"),
                 deps[j].loc);
        } else if (forward) {
          Report(Rule::kRedundantDep,
                 StrCat("dependency '", deps[j].name,
                        "' is redundant: it is already implied by '",
                        deps[i].name, "'"),
                 deps[j].loc);
        } else if (backward) {
          Report(Rule::kRedundantDep,
                 StrCat("dependency '", deps[i].name,
                        "' is redundant: it is already implied by '",
                        deps[j].name, "'"),
                 deps[i].loc);
        }
      }
    }
  }

  WorkflowContext* ctx_;
  const ParsedWorkflow& workflow_;
  const AnalyzeOptions& options_;
  std::vector<Diagnostic> diagnostics_;
  std::set<const Expr*> trivial_;
  std::set<EventLiteral> dead_;
  std::set<EventLiteral> deadlocked_;
};

}  // namespace

std::vector<Diagnostic> AnalyzeWorkflow(WorkflowContext* ctx,
                                        const ParsedWorkflow& workflow,
                                        const AnalyzeOptions& options) {
  Analyzer analyzer(ctx, workflow, options);
  return analyzer.Run();
}

bool DependencyEntails(WorkflowContext* ctx, const Expr* d1, const Expr* d2) {
  std::set<SymbolId> joint = MentionedSymbols(d1);
  std::set<SymbolId> other = MentionedSymbols(d2);
  joint.insert(other.begin(), other.end());
  CDES_CHECK_LE(joint.size(), 30u);
  EntailmentChecker checker(ctx->residuator(),
                            std::vector<SymbolId>(joint.begin(), joint.end()));
  return checker.Entails(d1, d2);
}

}  // namespace cdes::analysis
