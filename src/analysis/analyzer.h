#ifndef CDES_ANALYSIS_ANALYZER_H_
#define CDES_ANALYSIS_ANALYZER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model_checker.h"
#include "spec/ast.h"

namespace cdes::analysis {

/// Knobs for the static analyzer. The state-space passes (vacuity, deep
/// guard-triviality, redundancy) are exact but exponential in the number of
/// symbols a single dependency (pair) mentions, so they are skipped beyond
/// the caps; the always-on passes (satisfiability via the residual graph,
/// syntactic guard triviality, the wait graph, hygiene) have no cap.
struct AnalyzeOptions {
  /// Max symbols of one dependency/guard for the semantic ≡⊤ / ≡0 checks
  /// (state space is 2^k·k!·(k+1) points — same bound as SimplifyGuard).
  size_t max_state_space_symbols = 6;
  /// Max joint symbols of a dependency pair for the redundancy check.
  size_t max_entailment_symbols = 8;
  /// Pairwise dependency entailment (CL007) can be disabled wholesale.
  bool check_redundancy = true;
  /// Run the exhaustive reachability checker (CL020–CL023) after the
  /// static passes. Off by default: the exploration is exact but can be
  /// exponential in the symbol count, so callers opt in (cdes-lint
  /// --check, specc --verify). Skipped, like the other guard passes, when
  /// some dependency is unsatisfiable (CL001).
  bool check_reachability = false;
  /// Budgets for the reachability checker when enabled.
  ModelCheckOptions check;
};

/// Runs every static pass over a parsed workflow and returns structured
/// diagnostics ordered by source location.
///
/// The analysis is purely symbolic: dependency satisfiability uses the
/// reachable-residual graph (Figure 2), triviality uses the temporal
/// simplifier's exact state space, and deadlock detection inspects the
/// synthesized initial guards — the (exponential) schedule-space
/// enumeration of guards/verifier is never invoked, so the analyzer is
/// safe to run on every compilation (§6: "the compilation phase can
/// detect these conditions").
///
/// Passes and their rules:
///   dependency triviality  CL001 (≡ 0, error), CL002 (≡ ⊤, warning)
///   guard triviality       CL003 (G(W,e) ≡ 0), CL004 (G(W,ē) ≡ 0)
///   static wait graph      CL005 (mutual □-wait cycle), CL006 (must-wait
///                          on a literal whose guard is 0)
///   redundancy             CL007 (dependency entailed by another)
///   symbol hygiene         CL008 (undeclared), CL009 (no agent),
///                          CL010 (unconstrained)
///   reachability (opt-in)  CL020–CL023 via the exhaustive model checker
///                          (analysis/model_checker.h), when
///                          `check_reachability` is set
///
/// When some dependency is unsatisfiable (CL001) the guard, wait-graph and
/// redundancy passes are suppressed: every guard of the workflow is 0 and
/// the derived findings would only repeat the root cause.
std::vector<Diagnostic> AnalyzeWorkflow(WorkflowContext* ctx,
                                        const ParsedWorkflow& workflow,
                                        const AnalyzeOptions& options = {});

/// True iff every maximal trace over Γ_{d1} ∪ Γ_{d2} satisfying `d1` also
/// satisfies `d2`, decided by a memoized search over pairs of residuals
/// (never by enumerating traces). Exposed for tests; AnalyzeWorkflow uses
/// it pairwise for CL007. Requires the joint symbol count to be ≤ 30.
bool DependencyEntails(WorkflowContext* ctx, const Expr* d1, const Expr* d2);

}  // namespace cdes::analysis

#endif  // CDES_ANALYSIS_ANALYZER_H_
