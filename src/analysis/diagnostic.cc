#include "analysis/diagnostic.h"

#include "common/logging.h"
#include "common/strings.h"
#include "obs/json.h"

namespace cdes::analysis {

std::string_view RuleCode(Rule rule) {
  switch (rule) {
    case Rule::kParseError: return "CL000";
    case Rule::kUnsatisfiableDep: return "CL001";
    case Rule::kVacuousDep: return "CL002";
    case Rule::kDeadEvent: return "CL003";
    case Rule::kForcedEvent: return "CL004";
    case Rule::kStaticDeadlock: return "CL005";
    case Rule::kWaitOnDead: return "CL006";
    case Rule::kRedundantDep: return "CL007";
    case Rule::kUndeclaredEvent: return "CL008";
    case Rule::kUnassignedEvent: return "CL009";
    case Rule::kUnconstrainedEvent: return "CL010";
    case Rule::kReachableDeadlock: return "CL020";
    case Rule::kUnreachableEvent: return "CL021";
    case Rule::kUnexercisedDep: return "CL022";
    case Rule::kGuardSpecMismatch: return "CL023";
  }
  CDES_CHECK(false);
  return "";
}

std::string_view RuleSlug(Rule rule) {
  switch (rule) {
    case Rule::kParseError: return "parse-error";
    case Rule::kUnsatisfiableDep: return "unsatisfiable-dep";
    case Rule::kVacuousDep: return "vacuous-dep";
    case Rule::kDeadEvent: return "dead-event";
    case Rule::kForcedEvent: return "forced-event";
    case Rule::kStaticDeadlock: return "static-deadlock";
    case Rule::kWaitOnDead: return "wait-on-dead";
    case Rule::kRedundantDep: return "redundant-dep";
    case Rule::kUndeclaredEvent: return "undeclared-event";
    case Rule::kUnassignedEvent: return "unassigned-event";
    case Rule::kUnconstrainedEvent: return "unconstrained-event";
    case Rule::kReachableDeadlock: return "reachable-deadlock";
    case Rule::kUnreachableEvent: return "unreachable-event";
    case Rule::kUnexercisedDep: return "unexercised-dep";
    case Rule::kGuardSpecMismatch: return "guard-spec-mismatch";
  }
  CDES_CHECK(false);
  return "";
}

Severity RuleSeverity(Rule rule) {
  switch (rule) {
    case Rule::kParseError:
    case Rule::kUnsatisfiableDep:
    case Rule::kDeadEvent:
    case Rule::kStaticDeadlock:
    case Rule::kWaitOnDead:
    case Rule::kUndeclaredEvent:
    case Rule::kReachableDeadlock:
    case Rule::kUnreachableEvent:
    case Rule::kGuardSpecMismatch:
      return Severity::kError;
    case Rule::kVacuousDep:
    case Rule::kForcedEvent:
    case Rule::kRedundantDep:
    case Rule::kUnassignedEvent:
    case Rule::kUnexercisedDep:
      return Severity::kWarning;
    case Rule::kUnconstrainedEvent:
      return Severity::kNote;
  }
  CDES_CHECK(false);
  return Severity::kError;
}

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  CDES_CHECK(false);
  return "";
}

Diagnostic MakeDiagnostic(Rule rule, std::string message, SourceLocation loc) {
  Diagnostic d;
  d.severity = RuleSeverity(rule);
  d.rule = rule;
  d.message = std::move(message);
  d.loc = loc;
  return d;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out;
  if (!d.file.empty()) out += StrCat(d.file, ":");
  if (d.loc.known()) out += StrCat(d.loc.ToString(), ":");
  if (!out.empty()) out += " ";
  out += StrCat(SeverityName(d.severity), ": ", d.message, " [",
                RuleCode(d.rule), " ", RuleSlug(d.rule), "]");
  return out;
}

std::string FormatDiagnostics(std::span<const Diagnostic> diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d);
    out += "\n";
    for (size_t i = 0; i < d.trace.size(); ++i) {
      const TraceStep& step = d.trace[i];
      out += StrCat("  #", i + 1, " ", step.literal);
      if (!step.dependency.empty()) {
        out += StrCat(" — dep '", step.dependency, "' (", step.loc.ToString(),
                      ")");
      }
      out += "\n";
    }
  }
  return out;
}

std::string DiagnosticsToJson(std::span<const Diagnostic> diagnostics) {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\n  {\"file\": \"", obs::JsonEscape(d.file),
                  "\", \"line\": ", d.loc.line, ", \"column\": ", d.loc.column,
                  ", \"severity\": \"", SeverityName(d.severity),
                  "\", \"code\": \"", RuleCode(d.rule), "\", \"rule\": \"",
                  RuleSlug(d.rule), "\", \"message\": \"",
                  obs::JsonEscape(d.message), "\"");
    if (!d.trace.empty()) {
      out += ", \"trace\": [";
      for (size_t i = 0; i < d.trace.size(); ++i) {
        const TraceStep& step = d.trace[i];
        out += StrCat(i == 0 ? "" : ", ", "{\"literal\": \"",
                      obs::JsonEscape(step.literal), "\", \"dependency\": \"",
                      obs::JsonEscape(step.dependency),
                      "\", \"line\": ", step.loc.line,
                      ", \"column\": ", step.loc.column, "}");
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool HasFindings(std::span<const Diagnostic> diagnostics, Severity at_least) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= at_least) return true;
  }
  return false;
}

}  // namespace cdes::analysis
