#ifndef CDES_ANALYSIS_DIAGNOSTIC_H_
#define CDES_ANALYSIS_DIAGNOSTIC_H_

#include <span>
#include <string>
#include <vector>

#include "common/source_location.h"

namespace cdes::analysis {

/// How bad a finding is. kError findings mean the spec cannot behave as
/// written (an event or dependency is dead, or the workflow wedges);
/// kWarning findings are almost certainly authoring mistakes that still
/// admit some computation; kNote findings are stylistic or informational.
enum class Severity { kNote, kWarning, kError };

/// Stable rule identifiers, one per analysis pass output. The numeric code
/// ("CL001") and the slug ("unsatisfiable-dep") are both part of the tool's
/// contract: CI greps for them and docs/ANALYSIS.md catalogues them.
enum class Rule {
  kParseError,          // CL000: the spec did not parse
  kUnsatisfiableDep,    // CL001: dependency ≡ 0 — no computation satisfies it
  kVacuousDep,          // CL002: dependency ≡ ⊤ — constrains nothing
  kDeadEvent,           // CL003: G(W, e) ≡ 0 — e can never be permitted
  kForcedEvent,         // CL004: G(W, ē) ≡ 0 — e can never be rejected
  kStaticDeadlock,      // CL005: mutual □-wait cycle among initial guards
  kWaitOnDead,          // CL006: initial guard must-waits on a dead literal
  kRedundantDep,        // CL007: dependency entailed by another
  kUndeclaredEvent,     // CL008: dependency mentions an undeclared symbol
  kUnassignedEvent,     // CL009: event declared without an owning agent
  kUnconstrainedEvent,  // CL010: event mentioned by no dependency
  // Reachability rules (the exhaustive model checker, analysis/model_checker.h;
  // codes jump to CL020 to leave room for further static passes).
  kReachableDeadlock,   // CL020: guard-legal run wedges before maximality
  kUnreachableEvent,    // CL021: no reachable state ever permits the event
  kUnexercisedDep,      // CL022: dependency satisfied only vacuously
  kGuardSpecMismatch,   // CL023: guards and dependencies disagree (Thm 6)
};

/// "CL001" / "unsatisfiable-dep" / default severity for `rule`.
std::string_view RuleCode(Rule rule);
std::string_view RuleSlug(Rule rule);
Severity RuleSeverity(Rule rule);

std::string_view SeverityName(Severity severity);

/// One step of a counterexample trace attached to a reachability finding:
/// the literal that fired, the dependency that owns it (the first
/// dependency mentioning its symbol, in spec order), and that dependency's
/// source location — so a trace renders as runnable, source-anchored steps.
struct TraceStep {
  std::string literal;
  std::string dependency;
  SourceLocation loc;
};

/// One structured finding of the static analyzer (or the parser, wrapped).
struct Diagnostic {
  Severity severity = Severity::kWarning;
  Rule rule = Rule::kParseError;
  std::string message;
  /// Position of the offending declaration/dependency in the spec source;
  /// unknown for programmatically built workflows.
  SourceLocation loc;
  /// Spec file the workflow came from, when known (filled by the CLI).
  std::string file;
  /// Counterexample trace for reachability findings (CL020/CL023), in
  /// firing order; empty for the static rules.
  std::vector<TraceStep> trace;
};

/// Builds a diagnostic with the rule's default severity.
Diagnostic MakeDiagnostic(Rule rule, std::string message,
                          SourceLocation loc = {});

/// "file:line:col: severity: message [CL001 unsatisfiable-dep]".
std::string FormatDiagnostic(const Diagnostic& d);

/// Human-readable rendering, one diagnostic per line; counterexample
/// traces follow as indented steps ("  #1 s_init — dep 'boot' (12:3)").
std::string FormatDiagnostics(std::span<const Diagnostic> diagnostics);

/// JSON array of objects with file/line/column/severity/code/rule/message
/// fields (machine-readable `cdes-lint --json` output).
std::string DiagnosticsToJson(std::span<const Diagnostic> diagnostics);

/// True when any diagnostic reaches `at_least` (default: any error).
bool HasFindings(std::span<const Diagnostic> diagnostics,
                 Severity at_least = Severity::kError);

}  // namespace cdes::analysis

#endif  // CDES_ANALYSIS_DIAGNOSTIC_H_
