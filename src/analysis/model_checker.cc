#include "analysis/model_checker.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/strings.h"
#include "temporal/reduction.h"
#include "temporal/simplify.h"

namespace cdes::analysis {
namespace {

constexpr uint32_t kNoPred = 0xFFFFFFFFu;

/// Exhaustive BFS over the canonical guard-state graph, with ample-set
/// partial-order reduction. The exploration follows two transition kinds at
/// once — guard-permitted firings (what the runtime admits) and
/// dependency-consistent firings (what the spec admits) — so both
/// directions of the Theorem 6 cross-validation come out of one pass:
/// a guard-accepted maximal state with a violated dependency is "guards too
/// liberal"; a dependency-satisfying maximal state whose commitment
/// collapsed is "guards too strict".
///
/// Soundness of the reduction: transitions in different entanglement
/// classes commute to bitwise-equal canonical states (reduction by an
/// unrelated literal is the identity on interned nodes, and the state graph
/// is acyclic — the decided set grows monotonically — so there is no
/// ignoring problem). Expanding one class per state therefore preserves
/// every maximal state exactly, and every CL020 state: the chosen class is
/// required to contain a commit-permitted literal, whose permission would
/// survive unchanged along any run avoiding the class — so a state where
/// *no* literal is permitted cannot hide behind skipped interleavings.
class ModelChecker {
 public:
  ModelChecker(WorkflowContext* ctx, const ParsedWorkflow& workflow,
               const CompiledWorkflow& compiled,
               const ModelCheckOptions& options)
      : ctx_(ctx),
        workflow_(workflow),
        compiled_(compiled),
        options_(options),
        space_(ctx, compiled, options.symbolic_caches),
        cache_(options.symbolic_caches ? ctx->reduction_cache() : nullptr),
        flat_(options.symbolic_caches ? ctx->flat_evaluator() : nullptr) {}

  CheckResult Run() {
    auto start = std::chrono::steady_clock::now();
    BuildOwnership();
    permitted_.assign(space_.symbols().size(), false);

    CheckState initial = space_.Initial();
    uint32_t id = 0;
    auto [it, fresh] = ids_.emplace(std::move(initial), id);
    records_.push_back({&it->first, kNoPred, EventLiteral()});
    std::deque<uint32_t> queue{id};

    while (!queue.empty()) {
      if (stats_.states_explored >= options_.max_states) {
        Bound(StrCat("state budget (", options_.max_states, ") exhausted"));
        break;
      }
      if ((stats_.states_explored & 63u) == 0) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        if (static_cast<uint64_t>(elapsed) > options_.max_millis) {
          Bound(StrCat("time budget (", options_.max_millis, "ms) exhausted"));
          break;
        }
      }
      uint32_t next = queue.front();
      queue.pop_front();
      ++stats_.states_explored;
      Expand(next, &queue);
    }

    if (!stats_.bounded) {
      ReportUnreachableEvents();
      ReportUnexercisedDeps();
    }
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return std::tie(a.loc.line, a.loc.column, a.rule) <
                              std::tie(b.loc.line, b.loc.column, b.rule);
                     });
    stats_.elapsed_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return {std::move(diagnostics_), std::move(stats_)};
  }

 private:
  struct StateRecord {
    const CheckState* state;  // key in ids_ (node-stable)
    uint32_t pred;
    EventLiteral via;
  };
  struct Candidate {
    EventLiteral lit;
    bool permitted;  // commit-now projection of its guard is not 0
    bool alive;      // the child state is worth exploring
  };

  void Bound(std::string reason) {
    stats_.bounded = true;
    stats_.bound_reason = std::move(reason);
  }

  void Expand(uint32_t id, std::deque<uint32_t>* queue) {
    const CheckState& s = *records_[id].state;
    if (space_.Maximal(s)) {
      HandleMaximal(id, s);
      return;
    }
    bool guard_alive = space_.GuardAlive(s);

    std::vector<Candidate> cands;
    cands.reserve(2 * space_.symbols().size());
    bool any_permitted = false;
    for (size_t i = 0; i < space_.symbols().size(); ++i) {
      if (s.decided >> i & 1) continue;
      for (bool complement : {false, true}) {
        EventLiteral lit = space_.LiteralAt(i, complement);
        const Guard* commit = space_.Commitment(s, lit);
        bool permitted = !commit->IsFalse();
        any_permitted |= permitted;
        if (permitted && !complement) permitted_[i] = true;
        bool spec_ok = true;
        for (const Expr* r : s.residuals) {
          if (ctx_->residuator()->Residuate(r, lit)->IsZero()) {
            spec_ok = false;
            break;
          }
        }
        bool alive = spec_ok;
        if (!alive && permitted) {
          // The child could still be guard-alive: fold the frozen
          // permission into the commitment and see whether it survives.
          const Guard* after = ReduceGuard(
              ctx_->guards(), ctx_->residuator(),
              ctx_->guards()->And(s.commitment, commit),
              Announcement{AnnouncementKind::kOccurred, lit}, cache_);
          alive = !after->IsFalse();
        }
        cands.push_back({lit, permitted, alive});
      }
    }

    if (guard_alive && !any_permitted) {
      // Every remaining literal's guard rejects: a reachable deadlock. The
      // state is terminal for the exploration — continuations exist only on
      // the spec side and the deadlock is their root cause.
      ++stats_.deadlock_states;
      ReportDeadlock(id, s);
      return;
    }

    if (!options_.partial_order_reduction) {
      for (const Candidate& c : cands) {
        if (c.alive) Fire(id, s, c.lit, queue);
      }
      return;
    }

    // Ample-set choice: group candidates by entanglement class and expand
    // exactly one class. While the path is guard-legal the chosen class
    // must contain a permitted literal (CL020 preservation — see the class
    // comment); classes that cannot ever decide their symbols again
    // (no alive edge) disqualify themselves and, when every permitted
    // class is wedged that way, no maximal or deadlock state is reachable
    // below and the state is abandoned.
    std::vector<uint32_t> classes = space_.EntangledClasses(s);
    struct Comp {
      size_t alive = 0;
      bool permitted = false;
    };
    std::map<uint32_t, Comp> comps;
    for (const Candidate& c : cands) {
      Comp& comp = comps[classes[space_.SymbolIndex(c.lit.symbol())]];
      comp.alive += c.alive ? 1 : 0;
      comp.permitted |= c.permitted;
    }
    uint32_t best = kNoPred;
    size_t best_alive = 0;
    for (const auto& [rep, comp] : comps) {
      if (comp.alive == 0) continue;
      if (guard_alive && !comp.permitted) continue;
      if (best == kNoPred || comp.alive < best_alive) {
        best = rep;
        best_alive = comp.alive;
      }
    }
    if (best == kNoPred) return;
    for (const Candidate& c : cands) {
      if (c.alive && classes[space_.SymbolIndex(c.lit.symbol())] == best) {
        Fire(id, s, c.lit, queue);
      }
    }
  }

  void Fire(uint32_t id, const CheckState& s, EventLiteral lit,
            std::deque<uint32_t>* queue) {
    ++stats_.transitions;
    CheckState child = space_.Successor(s, lit);
    uint32_t child_id = static_cast<uint32_t>(records_.size());
    auto [it, fresh] = ids_.emplace(std::move(child), child_id);
    if (!fresh) return;
    records_.push_back({&it->first, id, lit});
    queue->push_back(child_id);
  }

  void HandleMaximal(uint32_t id, const CheckState& s) {
    ++stats_.maximal_states;
    bool accepted = space_.Accepted(s);
    bool spec_ok = space_.SpecSatisfied(s);
    if (accepted) {
      ++stats_.accepted_states;
      if (spec_ok) {
        any_proper_run_ = true;
        for (size_t d = 0; d < dep_masks_.size(); ++d) {
          if (s.positive & dep_masks_[d]) exercised_[d] = true;
        }
      } else {
        // Guards too liberal: this computation is generated yet violates a
        // dependency — the synthesis lost a constraint.
        if (liberal_reported_ < options_.max_counterexamples) {
          ++liberal_reported_;
          Trace u = PathTo(id);
          for (size_t d = 0; d < s.residuals.size(); ++d) {
            if (!s.residuals[d]->IsZero()) continue;
            const Dependency& dep = compiled_.dependencies()[d];
            Report(Rule::kGuardSpecMismatch,
                   StrCat("synthesized guards generate ", TraceText(u),
                          ", which violates dependency '", dep.name,
                          "' — guards are too liberal"),
                   dep.loc, Steps(u));
            break;
          }
        }
      }
    } else if (spec_ok) {
      // Guards too strict: every dependency is satisfied but the guards do
      // not generate the computation.
      if (strict_reported_ < options_.max_counterexamples) {
        ++strict_reported_;
        Trace u = PathTo(id);
        Report(Rule::kGuardSpecMismatch,
               StrCat("computation ", TraceText(u),
                      " satisfies every dependency but is not generated by "
                      "the synthesized guards — guards are too strict"),
               WorkflowLoc(), Steps(u));
      }
    }
  }

  void ReportDeadlock(uint32_t id, const CheckState& s) {
    if (deadlock_reported_ >= options_.max_counterexamples) return;
    ++deadlock_reported_;
    Trace u = PathTo(id);
    std::vector<std::string> blocked;
    SourceLocation loc;
    for (size_t i = 0; i < space_.symbols().size() && blocked.size() < 6; ++i) {
      if (s.decided >> i & 1) continue;
      EventLiteral lit = space_.LiteralAt(i, false);
      int dep = BlockingDependency(u, lit);
      if (dep >= 0) {
        const Dependency& blocker = compiled_.dependencies()[dep];
        blocked.push_back(StrCat(Name(lit), " blocked by dependency '",
                                 blocker.name, "'"));
        if (!loc.known()) loc = blocker.loc;
      } else {
        blocked.push_back(StrCat(Name(lit), " blocked"));
      }
    }
    if (!loc.known()) loc = WorkflowLoc();
    std::string after =
        u.empty() ? std::string("at the initial state")
                  : StrCat("after ", TraceText(u));
    Report(Rule::kReachableDeadlock,
           StrCat("reachable deadlock ", after,
                  ": no event can ever be permitted again (",
                  StrJoin(blocked, "; "), ")"),
           loc, Steps(u));
  }

  void ReportUnreachableEvents() {
    for (size_t i = 0; i < space_.symbols().size(); ++i) {
      if (permitted_[i]) continue;
      SymbolId symbol = space_.symbols()[i];
      const Guard* g = compiled_.GuardFor(EventLiteral::Positive(symbol));
      // Statically dead guards are CL003's finding; CL021 is reserved for
      // the conjunction-of-guards interactions only reachability sees.
      // The symbol cap mirrors AnalyzeOptions::max_state_space_symbols.
      if (g->IsFalse()) continue;
      if (GuardSymbols(g).size() <= 6 && GuardIsUnsatisfiable(g)) continue;
      unreachable_.insert(symbol);
      Report(Rule::kUnreachableEvent,
             StrCat("event '", ctx_->alphabet()->Name(symbol),
                    "' can never occur: although its guard is satisfiable in "
                    "isolation, no reachable state permits it"),
             EventLoc(symbol), {});
    }
  }

  void ReportUnexercisedDeps() {
    // Without a single proper run the workflow-level findings (CL020/CL023)
    // already explain everything; per-dependency vacuity would be noise.
    if (!any_proper_run_) return;
    for (size_t d = 0; d < exercised_.size(); ++d) {
      if (exercised_[d]) continue;
      const Dependency& dep = compiled_.dependencies()[d];
      std::set<SymbolId> syms = MentionedSymbols(dep.expr);
      bool root_caused = false;
      for (SymbolId symbol : syms) {
        root_caused |= unreachable_.count(symbol) > 0;
        root_caused |=
            compiled_.GuardFor(EventLiteral::Positive(symbol))->IsFalse();
      }
      if (root_caused) continue;
      std::vector<std::string> names;
      for (SymbolId symbol : syms) names.push_back(ctx_->alphabet()->Name(symbol));
      Report(Rule::kUnexercisedDep,
             StrCat("dependency '", dep.name,
                    "' is never exercised: no accepted computation fires any "
                    "of ", StrJoin(names, ", ")),
             dep.loc, {});
    }
  }

  /// The first dependency whose contribution to `lit`'s guard, reduced
  /// along `u`, rejects firing now; -1 when none individually rejects.
  int BlockingDependency(const Trace& u, EventLiteral lit) const {
    for (const auto& [dep, guard] : compiled_.ContributionsFor(lit)) {
      const Guard* g = guard;
      for (EventLiteral step : u) {
        g = ReduceGuard(ctx_->guards(), ctx_->residuator(), g,
                        Announcement{AnnouncementKind::kOccurred, step},
                        cache_);
      }
      const Guard* commit = flat_ != nullptr ? flat_->Commit(ctx_->guards(), g)
                                             : CommitNow(ctx_->guards(), g);
      if (commit->IsFalse()) return static_cast<int>(dep);
    }
    return -1;
  }

  Trace PathTo(uint32_t id) const {
    Trace u;
    for (uint32_t cur = id; records_[cur].pred != kNoPred;
         cur = records_[cur].pred) {
      u.push_back(records_[cur].via);
    }
    std::reverse(u.begin(), u.end());
    return u;
  }

  std::vector<TraceStep> Steps(const Trace& u) const {
    std::vector<TraceStep> steps;
    steps.reserve(u.size());
    for (EventLiteral lit : u) {
      TraceStep step;
      step.literal = Name(lit);
      int owner = owner_dep_.at(lit.symbol());
      if (owner >= 0) {
        const Dependency& dep = compiled_.dependencies()[owner];
        step.dependency = dep.name;
        step.loc = dep.loc;
      }
      if (!step.loc.known()) step.loc = EventLoc(lit.symbol());
      steps.push_back(std::move(step));
    }
    return steps;
  }

  void Report(Rule rule, std::string message, SourceLocation loc,
              std::vector<TraceStep> steps) {
    Diagnostic d = MakeDiagnostic(rule, std::move(message), loc);
    d.trace = std::move(steps);
    diagnostics_.push_back(std::move(d));
  }

  std::string Name(EventLiteral lit) const {
    return ctx_->alphabet()->LiteralName(lit);
  }

  std::string TraceText(const Trace& u) const {
    return TraceToString(u, *ctx_->alphabet());
  }

  SourceLocation EventLoc(SymbolId symbol) const {
    const EventDecl* decl = workflow_.FindEvent(symbol);
    if (decl != nullptr && decl->loc.known()) return decl->loc;
    int owner = owner_dep_.at(symbol);
    return owner >= 0 ? compiled_.dependencies()[owner].loc : SourceLocation{};
  }

  SourceLocation WorkflowLoc() const {
    return compiled_.dependencies().empty()
               ? SourceLocation{}
               : compiled_.dependencies().front().loc;
  }

  void BuildOwnership() {
    const auto& deps = compiled_.dependencies();
    for (SymbolId symbol : space_.symbols()) owner_dep_[symbol] = -1;
    dep_masks_.assign(deps.size(), 0);
    exercised_.assign(deps.size(), false);
    for (size_t d = 0; d < deps.size(); ++d) {
      for (SymbolId symbol : MentionedSymbols(deps[d].expr)) {
        auto it = owner_dep_.find(symbol);
        if (it == owner_dep_.end()) continue;  // undeclared / other workflow
        if (it->second < 0) it->second = static_cast<int>(d);
        dep_masks_[d] |= 1ull << space_.SymbolIndex(symbol);
      }
    }
  }

  WorkflowContext* ctx_;
  const ParsedWorkflow& workflow_;
  const CompiledWorkflow& compiled_;
  const ModelCheckOptions& options_;
  StateSpace space_;
  ReductionCache* cache_ = nullptr;  // null ⇔ options_.symbolic_caches off
  FlatEvaluator* flat_ = nullptr;

  std::unordered_map<CheckState, uint32_t, CheckStateHash> ids_;
  std::vector<StateRecord> records_;
  std::vector<Diagnostic> diagnostics_;
  ModelCheckStats stats_;

  std::vector<bool> permitted_;     // positive literal seen permitted
  std::vector<uint64_t> dep_masks_; // symbol-index bits per dependency
  std::vector<bool> exercised_;
  std::map<SymbolId, int> owner_dep_;
  std::set<SymbolId> unreachable_;
  bool any_proper_run_ = false;
  size_t deadlock_reported_ = 0;
  size_t liberal_reported_ = 0;
  size_t strict_reported_ = 0;
};

}  // namespace

CheckResult CheckCompiled(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                          const CompiledWorkflow& compiled,
                          const ModelCheckOptions& options) {
  CheckResult result;
  if (compiled.impossible()) {
    result.stats.bounded = true;
    result.stats.bound_reason =
        "workflow has an unsatisfiable dependency (CL001); "
        "reachability not explored";
    return result;
  }
  size_t symbols = compiled.symbols().size();
  if (symbols > options.max_symbols || symbols > 64) {
    result.stats.bounded = true;
    result.stats.bound_reason =
        StrCat("workflow mentions ", symbols, " symbols, above the ",
               std::min<size_t>(options.max_symbols, 64),
               "-symbol exploration cap");
    return result;
  }
  ModelChecker checker(ctx, workflow, compiled, options);
  return checker.Run();
}

CheckResult CheckWorkflow(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                          const ModelCheckOptions& options) {
  CompiledWorkflow compiled = CompileWorkflow(ctx, workflow.spec);
  return CheckCompiled(ctx, workflow, compiled, options);
}

}  // namespace cdes::analysis
