#ifndef CDES_ANALYSIS_MODEL_CHECKER_H_
#define CDES_ANALYSIS_MODEL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/state_space.h"
#include "spec/ast.h"

namespace cdes::analysis {

/// Budgets and switches for the exhaustive reachability checker. The
/// exploration is exact (memoized canonical states + ample-set partial-order
/// reduction), but worst-case exponential in the symbol count, so every run
/// carries explicit caps; when any cap is hit the result is flagged
/// `bounded` and the absence-based rules (CL021/CL022) are withheld — a
/// bounded run can prove presence of a bad state, never absence.
struct ModelCheckOptions {
  /// Stop after this many canonical states have been expanded.
  size_t max_states = 1 << 18;
  /// Stop after this much wall time.
  uint64_t max_millis = 10000;
  /// Refuse to explore workflows with more symbols than this (the state
  /// space is exponential; 64 is the hard representation limit).
  size_t max_symbols = 16;
  /// Ample-set partial-order reduction: at each state expand only one
  /// entanglement class of events (see StateSpace::EntangledClasses).
  /// Diagnostics are identical with it off — only the explored state count
  /// changes; the switch exists for the soundness property tests and the
  /// reduction-factor benchmark.
  bool partial_order_reduction = true;
  /// Cap on emitted counterexample diagnostics per rule and direction
  /// (every reachable bad state is still *counted* in the stats).
  size_t max_counterexamples = 4;
  /// Route guard reductions through the context's shard-shared
  /// ReductionCache and CommitNow projections through the flat-evaluation
  /// memo. Findings and stats are identical either way (successor states
  /// are interned pointers; the equivalence property tests pin it) — the
  /// switch exists for those tests and the before/after benchmarks.
  bool symbolic_caches = true;
};

struct ModelCheckStats {
  /// Canonical states expanded (the POR-sensitive cost metric).
  size_t states_explored = 0;
  /// Alive transitions taken.
  size_t transitions = 0;
  /// Maximal states reached (every symbol decided).
  size_t maximal_states = 0;
  /// Maximal states the synthesized guards accept.
  size_t accepted_states = 0;
  /// Reachable guard-deadlock states (CL020).
  size_t deadlock_states = 0;
  /// True when a budget cut the exploration short (or it was skipped);
  /// the run proved whatever it reported, but not the absence of more.
  bool bounded = false;
  std::string bound_reason;
  uint64_t elapsed_micros = 0;
};

struct CheckResult {
  std::vector<Diagnostic> diagnostics;
  ModelCheckStats stats;
};

/// Compiles `workflow` (default options — the guards the runtime would
/// execute) and exhaustively enumerates every maximal computation the
/// synthesized guards admit, alongside the source dependencies' residuals:
///
///   CL020  reachable deadlock — a guard-legal, non-maximal state where no
///          literal's guard permits firing (shortest counterexample trace)
///   CL021  unreachable event — an event permitted at no explored state,
///          although its static guard is satisfiable (passes CL003)
///   CL022  dependency never exercised — satisfied only vacuously: no
///          accepted computation fires any event it mentions
///   CL023  spec⇔guards cross-validation (Theorem 6 checked exhaustively):
///          a guard-accepted computation violating a dependency, or a
///          dependency-satisfying computation the guards do not generate
///
/// Counterexample traces are attached to the diagnostics (Diagnostic::trace)
/// with each step's owning dependency and source location.
CheckResult CheckWorkflow(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                          const ModelCheckOptions& options = {});

/// Same, over an already-compiled workflow (the analyzer and the benchmarks
/// reuse their compilation). `workflow` supplies names and source locations
/// and must be the spec `compiled` came from.
CheckResult CheckCompiled(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                          const CompiledWorkflow& compiled,
                          const ModelCheckOptions& options = {});

}  // namespace cdes::analysis

#endif  // CDES_ANALYSIS_MODEL_CHECKER_H_
