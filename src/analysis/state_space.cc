#include "analysis/state_space.h"

#include "common/logging.h"
#include "temporal/reduction.h"

namespace cdes::analysis {
namespace {

inline size_t MixHash(size_t h, size_t v) {
  // splitmix-style combine; pointer/id inputs are already well distributed.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

size_t CheckStateHash::operator()(const CheckState& s) const {
  size_t h = MixHash(std::hash<uint64_t>()(s.decided),
                     std::hash<uint64_t>()(s.positive));
  for (const Guard* g : s.guards) {
    h = MixHash(h, g == nullptr ? 0xdeadu : static_cast<size_t>(g->id()));
  }
  h = MixHash(h, static_cast<size_t>(s.commitment->id()));
  for (const Expr* e : s.residuals) {
    h = MixHash(h, std::hash<const void*>()(e));
  }
  return h;
}

StateSpace::StateSpace(WorkflowContext* ctx, const CompiledWorkflow& compiled,
                       bool symbolic_caches)
    : ctx_(ctx), compiled_(compiled),
      cache_(symbolic_caches ? ctx->reduction_cache() : nullptr),
      flat_(symbolic_caches ? ctx->flat_evaluator() : nullptr) {
  symbols_.assign(compiled.symbols().begin(), compiled.symbols().end());
  CDES_CHECK_LE(symbols_.size(), 64u);
  for (size_t i = 0; i < symbols_.size(); ++i) symbol_index_[symbols_[i]] = i;
  all_mask_ = symbols_.size() == 64 ? ~0ull : (1ull << symbols_.size()) - 1;
  deps_.reserve(compiled.dependencies().size());
  for (const Dependency& dep : compiled.dependencies()) {
    // Normalizing up front makes the first residuation by an *unrelated*
    // literal the pointer identity (rule 6 applies to the normal form), so
    // independent transitions commute to bitwise-equal states — the
    // invariant the ample-set reduction relies on.
    deps_.push_back(ctx_->residuator()->NormalForm(dep.expr));
  }
}

size_t StateSpace::SymbolIndex(SymbolId symbol) const {
  auto it = symbol_index_.find(symbol);
  CDES_CHECK(it != symbol_index_.end());
  return it->second;
}

CheckState StateSpace::Initial() const {
  CheckState s;
  s.guards.resize(2 * symbols_.size());
  for (size_t i = 0; i < symbols_.size(); ++i) {
    s.guards[2 * i] = compiled_.GuardFor(LiteralAt(i, false));
    s.guards[2 * i + 1] = compiled_.GuardFor(LiteralAt(i, true));
  }
  s.commitment = ctx_->guards()->True();
  s.residuals = deps_;
  return s;
}

bool StateSpace::SpecAlive(const CheckState& s) const {
  for (const Expr* r : s.residuals) {
    if (r->IsZero()) return false;
  }
  return true;
}

bool StateSpace::SpecSatisfied(const CheckState& s) const {
  for (const Expr* r : s.residuals) {
    if (!r->IsTop()) return false;
  }
  return true;
}

const Guard* StateSpace::Commitment(const CheckState& s,
                                    EventLiteral lit) const {
  if (!GuardAlive(s)) return ctx_->guards()->False();
  size_t i = SymbolIndex(lit.symbol());
  CDES_DCHECK(!(s.decided >> i & 1));
  const Guard* g = s.guards[2 * i + lit.complemented()];
  return flat_ != nullptr ? flat_->Commit(ctx_->guards(), g)
                          : CommitNow(ctx_->guards(), g);
}

CheckState StateSpace::Successor(const CheckState& s, EventLiteral lit) const {
  GuardArena* arena = ctx_->guards();
  Residuator* residuator = ctx_->residuator();
  size_t i = SymbolIndex(lit.symbol());
  CDES_DCHECK(!(s.decided >> i & 1));
  Announcement occurred{AnnouncementKind::kOccurred, lit};

  CheckState child;
  child.decided = s.decided | (1ull << i);
  child.positive = s.positive | (lit.complemented() ? 0 : 1ull << i);
  child.guards.resize(s.guards.size(), nullptr);
  if (GuardAlive(s)) {
    // Freeze the fired literal's permission and fold it into the path
    // commitment; the fired literal itself counts toward its own ◇-part
    // (◇ is evaluated against the full maximal trace).
    const Guard* frozen =
        flat_ != nullptr ? flat_->Commit(arena, s.guards[2 * i + lit.complemented()])
                         : CommitNow(arena, s.guards[2 * i + lit.complemented()]);
    child.commitment = ReduceGuard(arena, residuator,
                                   arena->And(s.commitment, frozen), occurred,
                                   cache_);
    if (!child.commitment->IsFalse()) {
      for (size_t j = 0; j < symbols_.size(); ++j) {
        if (j == i || (child.decided >> j & 1)) continue;
        child.guards[2 * j] =
            ReduceGuard(arena, residuator, s.guards[2 * j], occurred, cache_);
        child.guards[2 * j + 1] = ReduceGuard(arena, residuator,
                                              s.guards[2 * j + 1], occurred,
                                              cache_);
      }
    }
    // On commitment collapse the guards are dropped: the subtree is
    // explored for the spec side only, and keeping dead guard history
    // would split states that are observably equal.
  } else {
    child.commitment = arena->False();
  }
  child.residuals.reserve(s.residuals.size());
  for (const Expr* r : s.residuals) {
    child.residuals.push_back(residuator->Residuate(r, lit));
  }
  return child;
}

const std::set<SymbolId>& StateSpace::GuardSyms(const Guard* g) const {
  auto it = guard_syms_.find(g);
  if (it == guard_syms_.end()) {
    it = guard_syms_.emplace(g, GuardSymbols(g)).first;
  }
  return it->second;
}

const std::set<SymbolId>& StateSpace::ExprSyms(const Expr* e) const {
  auto it = expr_syms_.find(e);
  if (it == expr_syms_.end()) {
    it = expr_syms_.emplace(e, MentionedSymbols(e)).first;
  }
  return it->second;
}

std::vector<uint32_t> StateSpace::EntangledClasses(const CheckState& s) const {
  size_t n = symbols_.size();
  std::vector<uint32_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  };
  auto undecided = [&](SymbolId symbol) -> int {
    auto it = symbol_index_.find(symbol);
    if (it == symbol_index_.end()) return -1;
    return (s.decided >> it->second & 1) ? -1 : static_cast<int>(it->second);
  };
  // One item = one set of symbols that must stay in one class.
  auto unite_item = [&](const std::set<SymbolId>& syms, int owner) {
    int first = owner;
    for (SymbolId symbol : syms) {
      int idx = undecided(symbol);
      if (idx < 0) continue;
      if (first < 0) {
        first = idx;
      } else {
        unite(static_cast<uint32_t>(first), static_cast<uint32_t>(idx));
      }
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (s.decided >> i & 1) continue;
    for (size_t slot : {2 * i, 2 * i + 1}) {
      if (s.guards[slot] != nullptr) {
        unite_item(GuardSyms(s.guards[slot]), static_cast<int>(i));
      }
    }
  }
  if (s.commitment->kind() == GuardKind::kAnd) {
    // Obligations conjoin independently; entangling per top-level conjunct
    // (not per whole commitment) is what keeps unrelated event clusters in
    // separate classes.
    for (const Guard* c : s.commitment->children()) {
      unite_item(GuardSyms(c), -1);
    }
  } else if (!s.commitment->IsTrue() && !s.commitment->IsFalse()) {
    unite_item(GuardSyms(s.commitment), -1);
  }
  for (const Expr* r : s.residuals) {
    if (r->IsTop() || r->IsZero()) continue;
    unite_item(ExprSyms(r), -1);
  }
  std::vector<uint32_t> classes(n);
  for (size_t i = 0; i < n; ++i) {
    classes[i] = (s.decided >> i & 1) ? static_cast<uint32_t>(i)
                                      : find(static_cast<uint32_t>(i));
  }
  return classes;
}

CheckState StateSpace::Replay(const Trace& u) const {
  CheckState s = Initial();
  for (EventLiteral lit : u) s = Successor(s, lit);
  return s;
}

bool StateSpace::GuardAccepts(const Trace& u) const {
  CheckState s = Initial();
  for (EventLiteral lit : u) {
    if (Commitment(s, lit)->IsFalse()) return false;
    s = Successor(s, lit);
  }
  return s.commitment->IsTrue();
}

}  // namespace cdes::analysis
