#ifndef CDES_ANALYSIS_STATE_SPACE_H_
#define CDES_ANALYSIS_STATE_SPACE_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "algebra/trace.h"
#include "guards/context.h"
#include "guards/workflow.h"

namespace cdes::analysis {

/// One canonical exploration state of the guard-executing model checker:
/// which symbols have been decided (and how), the synthesized guard of every
/// still-undecided literal reduced by the occurrences so far, the pending
/// commitment (the conjunction of the ◇-obligations frozen when events
/// fired), and the residual of every source dependency.
///
/// Every component is an interned pointer (guards and expressions are
/// hash-consed, reductions are memoized and deterministic), so two
/// interleavings that converge — fire the same literal set and leave the
/// same residual knowledge — produce bitwise-equal states. That is what
/// makes memoized exploration collapse the factorial interleaving space to
/// the much smaller canonical-state graph.
struct CheckState {
  /// Bit i set ⇔ symbols()[i] has been decided (one polarity occurred).
  uint64_t decided = 0;
  /// Bit i set ⇔ symbols()[i] was decided positively. Subset of `decided`.
  uint64_t positive = 0;
  /// Reduced guards, indexed 2*i (positive literal) / 2*i+1 (complement).
  /// nullptr once the symbol is decided, and for every slot once the
  /// commitment has collapsed to 0 (a guard-dead state is explored for the
  /// spec side only, so guard history must not split otherwise-equal
  /// states).
  std::vector<const Guard*> guards;
  /// The conjunction of frozen firing obligations, reduced by every
  /// occurrence since. ⊤ initially; 0 once any fired event's obligation is
  /// violated — and 0 is absorbing, so commitment ≠ 0 means the whole path
  /// was guard-legal.
  const Guard* commitment = nullptr;
  /// Residual D/u of each source dependency, in spec order.
  std::vector<const Expr*> residuals;

  friend bool operator==(const CheckState&, const CheckState&) = default;
};

struct CheckStateHash {
  size_t operator()(const CheckState& s) const;
};

/// The transition engine the model checker explores: successor computation
/// (guard reduction + obligation freezing + dependency residuation) and the
/// per-state entanglement partition used for partial-order reduction.
///
/// Firing semantics match the declarative Definition 4 rather than the
/// optimistic runtime EvaluateNow: a literal may fire when the "commit now"
/// projection of its reduced guard (temporal/reduction.h CommitNow: □→0,
/// ¬→⊤, ◇ kept) is not 0; the surviving ◇-part becomes an obligation that
/// the rest of the trace must discharge. A maximal path is guard-accepted
/// iff every firing was permitted and the final commitment is ⊤ — which the
/// model-checker property test pins to CompiledWorkflow::Generates.
class StateSpace {
 public:
  /// Aliases `ctx` and `compiled`; both must outlive the state space.
  /// `symbolic_caches` routes guard reduction through the context's
  /// shard-shared ReductionCache and CommitNow through the flat evaluator's
  /// memo; off reproduces the plain recursive walks (successor states are
  /// bitwise identical either way — the equivalence property tests pin it).
  StateSpace(WorkflowContext* ctx, const CompiledWorkflow& compiled,
             bool symbolic_caches = true);

  /// The workflow's symbols in id order; state bit i refers to symbols()[i].
  const std::vector<SymbolId>& symbols() const { return symbols_; }
  size_t dependency_count() const { return deps_.size(); }

  CheckState Initial() const;

  bool Maximal(const CheckState& s) const { return s.decided == all_mask_; }
  /// The guard-side of the path is still legal (commitment ≠ 0).
  bool GuardAlive(const CheckState& s) const {
    return !s.commitment->IsFalse();
  }
  /// No dependency residual has collapsed to 0.
  bool SpecAlive(const CheckState& s) const;
  /// Maximal and guard-accepted: the synthesized guards generate this path.
  bool Accepted(const CheckState& s) const {
    return Maximal(s) && s.commitment->IsTrue();
  }
  /// Every dependency residual is ⊤ (at a maximal state: ⊤ or 0).
  bool SpecSatisfied(const CheckState& s) const;

  /// The CommitNow projection of `lit`'s reduced guard at s: 0 when the
  /// literal is not permitted now. Only meaningful while GuardAlive(s).
  const Guard* Commitment(const CheckState& s, EventLiteral lit) const;

  /// The state after `lit` occurs. The caller decides whether the child is
  /// worth keeping (see Dead below).
  CheckState Successor(const CheckState& s, EventLiteral lit) const;

  /// A state that is neither guard-alive nor spec-alive: no diagnostic can
  /// come out of its subtree, so exploration prunes it.
  bool Dead(const CheckState& s) const {
    return !GuardAlive(s) && !SpecAlive(s);
  }

  /// Partitions the *undecided* symbols of s into entanglement classes:
  /// two symbols are entangled when some tracked item — an undecided
  /// literal's reduced guard (tagged with its owner), one top-level
  /// conjunct of the commitment, or one dependency residual — mentions
  /// both. Transitions in different classes commute exactly (reduction by
  /// an unrelated literal is the identity on interned nodes), which is the
  /// independence relation behind the ample-set reduction.
  /// Returns, for each symbol index, the class representative (the least
  /// entangled symbol index), or the index itself for decided symbols.
  std::vector<uint32_t> EntangledClasses(const CheckState& s) const;

  size_t SymbolIndex(SymbolId symbol) const;
  EventLiteral LiteralAt(size_t symbol_index, bool complemented) const {
    return EventLiteral(symbols_[symbol_index], complemented);
  }

  /// Replays `u` from Initial() through Successor; u must be a valid trace
  /// over the workflow's symbols. Returns the final state.
  CheckState Replay(const Trace& u) const;

  /// Whether the synthesized guards accept maximal trace `u`: every firing
  /// was permitted (CommitNow ≠ 0 with the commitment still alive) and the
  /// final commitment is ⊤. Agrees with CompiledWorkflow::Generates.
  bool GuardAccepts(const Trace& u) const;

  WorkflowContext* ctx() const { return ctx_; }
  const CompiledWorkflow& compiled() const { return compiled_; }

 private:
  const std::set<SymbolId>& GuardSyms(const Guard* g) const;
  const std::set<SymbolId>& ExprSyms(const Expr* e) const;

  WorkflowContext* ctx_;
  const CompiledWorkflow& compiled_;
  ReductionCache* cache_ = nullptr;  // null ⇒ unmemoized reduction
  FlatEvaluator* flat_ = nullptr;    // null ⇒ recursive CommitNow
  std::vector<SymbolId> symbols_;
  std::unordered_map<SymbolId, size_t> symbol_index_;
  std::vector<const Expr*> deps_;  // normal forms, spec order
  uint64_t all_mask_ = 0;

  // Symbol-set memos keyed by interned node (reduction reuses nodes
  // heavily, so these hit constantly during entanglement partitioning).
  mutable std::unordered_map<const Guard*, std::set<SymbolId>> guard_syms_;
  mutable std::unordered_map<const Expr*, std::set<SymbolId>> expr_syms_;
};

}  // namespace cdes::analysis

#endif  // CDES_ANALYSIS_STATE_SPACE_H_
