#include "analysis/wait_graph.h"

#include <algorithm>

#include "temporal/guard_needs.h"

namespace cdes::analysis {
namespace {

/// Iterative Tarjan SCC over the wait graph (the graph is tiny, but
/// recursion depth should not depend on spec size).
class SccFinder {
 public:
  explicit SccFinder(const WaitGraph& graph) : graph_(graph) {}

  std::vector<std::vector<EventLiteral>> Run() {
    for (EventLiteral node : graph_.nodes) {
      if (!state_.count(node)) Visit(node);
    }
    std::sort(components_.begin(), components_.end());
    return components_;
  }

 private:
  struct NodeState {
    int index = -1;
    int lowlink = -1;
    bool on_stack = false;
  };

  const std::set<EventLiteral>& Successors(EventLiteral node) const {
    static const std::set<EventLiteral> kEmpty;
    auto it = graph_.edges.find(node);
    return it == graph_.edges.end() ? kEmpty : it->second;
  }

  void Visit(EventLiteral root) {
    struct Frame {
      EventLiteral node;
      std::set<EventLiteral>::const_iterator next, end;
    };
    std::vector<Frame> call_stack;
    auto push = [this, &call_stack](EventLiteral node) {
      const std::set<EventLiteral>& succ = Successors(node);
      call_stack.push_back(Frame{node, succ.begin(), succ.end()});
      state_[node] = NodeState{next_index_, next_index_, true};
      ++next_index_;
      scc_stack_.push_back(node);
    };
    push(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      if (frame.next != frame.end) {
        EventLiteral succ = *frame.next++;
        auto it = state_.find(succ);
        if (it == state_.end()) {
          push(succ);  // invalidates `frame`; loop re-fetches back()
        } else if (it->second.on_stack) {
          NodeState& mine = state_[frame.node];
          mine.lowlink = std::min(mine.lowlink, it->second.index);
        }
        continue;
      }
      NodeState mine = state_[frame.node];
      if (mine.lowlink == mine.index) PopComponent(frame.node);
      EventLiteral done = frame.node;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        NodeState& parent = state_[call_stack.back().node];
        parent.lowlink = std::min(parent.lowlink, state_[done].lowlink);
      }
    }
  }

  void PopComponent(EventLiteral root) {
    std::vector<EventLiteral> component;
    while (true) {
      EventLiteral top = scc_stack_.back();
      scc_stack_.pop_back();
      state_[top].on_stack = false;
      component.push_back(top);
      if (top == root) break;
    }
    if (component.size() < 2) return;
    std::sort(component.begin(), component.end());
    components_.push_back(std::move(component));
  }

  const WaitGraph& graph_;
  std::map<EventLiteral, NodeState> state_;
  std::vector<EventLiteral> scc_stack_;
  std::vector<std::vector<EventLiteral>> components_;
  int next_index_ = 0;
};

}  // namespace

WaitGraph BuildWaitGraph(const CompiledWorkflow& compiled) {
  WaitGraph graph;
  for (SymbolId symbol : compiled.symbols()) {
    for (EventLiteral literal :
         {EventLiteral::Positive(symbol), EventLiteral::Complement(symbol)}) {
      graph.nodes.push_back(literal);
      const Guard* guard = compiled.GuardFor(literal);
      std::set<EventLiteral> must = ImpliedBoxes(guard);
      if (!must.empty()) graph.edges.emplace(literal, std::move(must));
    }
  }
  return graph;
}

std::vector<std::vector<EventLiteral>> FindWaitCycles(const WaitGraph& graph) {
  SccFinder finder(graph);
  return finder.Run();
}

}  // namespace cdes::analysis
