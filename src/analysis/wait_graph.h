#ifndef CDES_ANALYSIS_WAIT_GRAPH_H_
#define CDES_ANALYSIS_WAIT_GRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "guards/workflow.h"

namespace cdes::analysis {

/// The static must-wait structure of a compiled workflow, computed from the
/// *initial* synthesized guards (before any reduction): there is an edge
/// ℓ → m when every disjunct of G(W, ℓ) requires □m, i.e. ℓ cannot be
/// permitted until m has occurred, and no alternative disjunct (a
/// complement choice) avoids the wait. This is the authoring-time analogue
/// of DiagnoseParked's `waiting_for`, restricted to unavoidable
/// occurrence-waits: ◇-needs are excluded because the runtime's promise
/// protocol resolves mutually-referential ◇ guards (Example 11), so they
/// are not static deadlocks.
struct WaitGraph {
  /// All literals of the workflow's mentioned symbols, in index order.
  std::vector<EventLiteral> nodes;
  /// ℓ → the literals every disjunct of ℓ's initial guard □-requires.
  std::map<EventLiteral, std::set<EventLiteral>> edges;
};

/// Builds the must-wait graph of `compiled` via ImpliedBoxes on each
/// initial guard.
WaitGraph BuildWaitGraph(const CompiledWorkflow& compiled);

/// Strongly connected components of the wait graph with at least two
/// members (single literals cannot mutually wait: a guard never mentions
/// its own symbol). Each cycle is a set of events none of which can ever be
/// permitted: every member waits for another member to occur first.
/// Components are returned with members in index order, outer list ordered
/// by smallest member.
std::vector<std::vector<EventLiteral>> FindWaitCycles(const WaitGraph& graph);

}  // namespace cdes::analysis

#endif  // CDES_ANALYSIS_WAIT_GRAPH_H_
