#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace cdes {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Sim-time source for log/trace correlation (see SetLogSimTimeSource).
// Registration happens at quiescent points (simulator setup/teardown), so a
// relaxed pair read is adequate; the fn is read before the ctx it receives.
std::atomic<uint64_t (*)(const void*)> g_sim_time_fn{nullptr};
std::atomic<const void*> g_sim_time_ctx{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogSimTimeSource(const void* ctx, uint64_t (*fn)(const void*)) {
  // Detach before swapping the context so a concurrent reader never pairs
  // the new fn with the old ctx.
  g_sim_time_fn.store(nullptr);
  g_sim_time_ctx.store(ctx);
  g_sim_time_fn.store(fn);
}

namespace internal_logging {

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    now.time_since_epoch())
                    .count() %
                1000000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &seconds);
#else
  localtime_r(&seconds, &tm_buf);
#endif
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix),
                "[%s%02d%02d %02d:%02d:%02d.%06lld %s:%d",
                LevelTag(level), tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<long long>(micros), file, line);
  std::string out = prefix;
  if (auto* fn = g_sim_time_fn.load()) {
    char sim[32];
    std::snprintf(sim, sizeof(sim), " @%llu" "us",
                  static_cast<unsigned long long>(fn(g_sim_time_ctx.load())));
    out += sim;
  }
  out += "] ";
  return out;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << FormatLogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace cdes
