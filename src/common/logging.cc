#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace cdes {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace cdes
