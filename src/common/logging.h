#ifndef CDES_COMMON_LOGGING_H_
#define CDES_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cdes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Installs a source for the current *simulated* time, appended to every
/// log-line prefix as "@<tick>us" so logs correlate with exported traces.
/// `fn` is called with `ctx` at line-construction time; both null detaches.
/// The registration entry point is obs::RegisterGlobalSimulator — this
/// low-level hook exists so common/ does not depend on the obs layer.
void SetLogSimTimeSource(const void* ctx, uint64_t (*fn)(const void*));

namespace internal_logging {

/// The prefix of a log line: "[<tag><month><day> <wall time> <file>:<line>"
/// plus " @<tick>us" when a sim-time source is installed, then "] ".
/// Exposed for tests.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// Stream-style log-line builder; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cdes

#define CDES_LOG(level)                                                      \
  (::cdes::LogLevel::k##level < ::cdes::GetLogLevel())                       \
      ? (void)0                                                              \
      : (void)::cdes::internal_logging::LogMessage(::cdes::LogLevel::k##level, \
                                                   __FILE__, __LINE__)

// CHECK macros terminate on violated invariants. They are for programmer
// errors (broken internal invariants), not for recoverable conditions, which
// go through Status.
#define CDES_CHECK(cond)                                                       \
  while (!(cond))                                                              \
  ::cdes::internal_logging::LogMessage(::cdes::LogLevel::kFatal, __FILE__,     \
                                       __LINE__)                               \
      << "Check failed: " #cond " "

#define CDES_CHECK_EQ(a, b) CDES_CHECK((a) == (b))
#define CDES_CHECK_NE(a, b) CDES_CHECK((a) != (b))
#define CDES_CHECK_LT(a, b) CDES_CHECK((a) < (b))
#define CDES_CHECK_LE(a, b) CDES_CHECK((a) <= (b))
#define CDES_CHECK_GT(a, b) CDES_CHECK((a) > (b))
#define CDES_CHECK_GE(a, b) CDES_CHECK((a) >= (b))

#ifndef NDEBUG
#define CDES_DCHECK(cond) CDES_CHECK(cond)
#else
#define CDES_DCHECK(cond) \
  while (false) ::cdes::internal_logging::NullStream()
#endif

#endif  // CDES_COMMON_LOGGING_H_
