#include "common/rng.h"

#include <cmath>

namespace cdes {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CDES_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CDES_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  CDES_CHECK_GT(mean, 0.0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace cdes
