#ifndef CDES_COMMON_RNG_H_
#define CDES_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace cdes {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Used throughout the simulator and workload generators so that
/// every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

 private:
  uint64_t state_[4];
};

}  // namespace cdes

#endif  // CDES_COMMON_RNG_H_
