#ifndef CDES_COMMON_SOURCE_LOCATION_H_
#define CDES_COMMON_SOURCE_LOCATION_H_

#include <string>

#include "common/strings.h"

namespace cdes {

/// A 1-based line:column position in a workflow spec source text. Parsed
/// declarations and dependencies carry their location so later phases
/// (static analysis, compilation) can point diagnostics at the offending
/// spec line. A default-constructed location is "unknown" (e.g. for
/// programmatically built workflows).
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }

  /// "line:col", or "?" when unknown.
  std::string ToString() const {
    if (!known()) return "?";
    return StrCat(line, ":", column);
  }

  friend bool operator==(const SourceLocation&,
                         const SourceLocation&) = default;
};

}  // namespace cdes

#endif  // CDES_COMMON_SOURCE_LOCATION_H_
