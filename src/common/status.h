#ifndef CDES_COMMON_STATUS_H_
#define CDES_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cdes {

/// Canonical error space for the library. Mirrors the usual database-systems
/// convention (RocksDB/Arrow style): operations report failure through
/// Status / Result<T> values instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
};

/// Returns the canonical spelling of a code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An OK status carries no message and allocates nothing. Error statuses
/// carry a code plus a human-readable message. Statuses are copyable and
/// movable; moved-from statuses are OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result<T> holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Expr> r = Parse(text);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return expr;` / `return Status::InvalidArgument(...);`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      // A Result must never hold an OK status without a value; degrade to an
      // internal error so misuse is detectable rather than silent.
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error (or OK when a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace cdes

/// Propagates an error Status from the current function.
#define CDES_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::cdes::Status _cdes_status = (expr);            \
    if (!_cdes_status.ok()) return _cdes_status;     \
  } while (false)

#define CDES_CONCAT_IMPL(x, y) x##y
#define CDES_CONCAT(x, y) CDES_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the error from the
/// current function, otherwise assigns the value to `lhs`.
#define CDES_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  CDES_ASSIGN_OR_RETURN_IMPL(CDES_CONCAT(_cdes_result_, __LINE__), lhs, rexpr)

#define CDES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // CDES_COMMON_STATUS_H_
