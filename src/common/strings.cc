#include "common/strings.h"

#include <cctype>

namespace cdes {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace cdes
