#ifndef CDES_COMMON_STRINGS_H_
#define CDES_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cdes {

/// Joins the elements of `parts` (stream-printable) with `sep`.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    first = false;
    out << p;
  }
  return out.str();
}

/// Concatenates stream-printable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  static_cast<void>((out << ... << args));
  return out.str();
}

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace cdes

#endif  // CDES_COMMON_STRINGS_H_
