#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/json.h"
#include "runtime/event_log.h"

namespace cdes::engine {
namespace {

size_t AutoShards() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 2 ? hw / 2 : 1;
}

std::string JsonDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

void EngineMetricsSnapshot::PublishTo(obs::MetricsRegistry* registry) const {
  registry->gauge("engine.shards")->Set(static_cast<double>(shards));
  registry->gauge("engine.instances.submitted")
      ->Set(static_cast<double>(instances_submitted));
  registry->gauge("engine.instances.completed")
      ->Set(static_cast<double>(instances_completed));
  registry->gauge("engine.instances.rejected")
      ->Set(static_cast<double>(instances_rejected));
  registry->gauge("engine.instances.in_flight")
      ->Set(static_cast<double>(instances_in_flight));
  registry->gauge("engine.events")->Set(static_cast<double>(events));
  registry->gauge("engine.sim_steps")->Set(static_cast<double>(sim_steps));
  registry->gauge("engine.wall_seconds")->Set(wall_seconds);
  registry->gauge("engine.events_per_sec")->Set(events_per_sec);
  registry->gauge("guards.reduction_cache_hit_rate")
      ->Set(ReductionCacheHitRate());
  registry->gauge("algebra.residuation_cache_hits")
      ->Set(static_cast<double>(residuation_cache_hits));
  registry->gauge("algebra.residuation_cache_misses")
      ->Set(static_cast<double>(residuation_cache_misses));
  for (const HistogramSummary& h : histograms) {
    registry->gauge(StrCat(h.name, ".count"))
        ->Set(static_cast<double>(h.count));
    registry->gauge(StrCat(h.name, ".mean"))->Set(h.mean);
    registry->gauge(StrCat(h.name, ".p50"))->Set(static_cast<double>(h.p50));
    registry->gauge(StrCat(h.name, ".p99"))->Set(static_cast<double>(h.p99));
    registry->gauge(StrCat(h.name, ".max"))->Set(static_cast<double>(h.max));
  }
  for (size_t k = 0; k < shards; ++k) {
    registry->gauge(StrCat("engine.shard", k, ".queue_depth"))
        ->Set(static_cast<double>(shard_queue_depth[k]));
    registry->gauge(StrCat("engine.shard", k, ".resident"))
        ->Set(static_cast<double>(shard_resident[k]));
    registry->gauge(StrCat("engine.shard", k, ".events"))
        ->Set(static_cast<double>(shard_events[k]));
    registry->gauge(StrCat("engine.shard", k, ".instances"))
        ->Set(static_cast<double>(shard_instances[k]));
  }
}

std::string EngineMetricsSnapshot::ToString() const {
  std::string out = StrCat(
      "engine: ", shards, " shard(s)\n  instances: ", instances_submitted,
      " submitted, ", instances_completed, " completed, ", instances_rejected,
      " rejected, ", instances_in_flight, " in flight\n  events: ", events,
      " (", sim_steps, " sim steps) in ", wall_seconds, "s  =>  ",
      static_cast<uint64_t>(events_per_sec), " events/sec\n");
  for (size_t k = 0; k < shards; ++k) {
    out += StrCat("  shard ", k, ": ", shard_instances[k], " instances, ",
                  shard_events[k], " events, queue=", shard_queue_depth[k],
                  " resident=", shard_resident[k], "\n");
  }
  for (const HistogramSummary& h : histograms) {
    out += StrCat("  ", h.name, ": count=", h.count,
                  " mean=", JsonDouble(h.mean), " p50=", h.p50,
                  " p99=", h.p99, " max=", h.max, "\n");
  }
  if (reduction_cache_hits + reduction_cache_misses +
          residuation_cache_hits + residuation_cache_misses >
      0) {
    out += StrCat("  symbolic caches: reduction ", reduction_cache_hits, "/",
                  reduction_cache_hits + reduction_cache_misses,
                  " hit, residuation ", residuation_cache_hits, "/",
                  residuation_cache_hits + residuation_cache_misses,
                  " hit\n");
  }
  return out;
}

std::string EngineMetricsSnapshot::ToJsonLine(
    uint64_t ts_us, const obs::GuardProfiler* profiler) const {
  std::string out = StrCat(
      "{\"schema_version\": 2, \"ts_us\": ", ts_us, ", \"shards\": ", shards,
      ", \"submitted\": ", instances_submitted,
      ", \"completed\": ", instances_completed,
      ", \"rejected\": ", instances_rejected,
      ", \"in_flight\": ", instances_in_flight, ", \"events\": ", events,
      ", \"sim_steps\": ", sim_steps,
      ", \"wall_seconds\": ", JsonDouble(wall_seconds),
      ", \"events_per_sec\": ", JsonDouble(events_per_sec));
  auto array = [&out](const char* key, const auto& values) {
    out += StrCat(", \"", key, "\": [");
    for (size_t k = 0; k < values.size(); ++k) {
      out += StrCat(k == 0 ? "" : ", ", values[k]);
    }
    out += "]";
  };
  array("shard_queue_depth", shard_queue_depth);
  array("shard_resident", shard_resident);
  array("shard_events", shard_events);
  array("shard_instances", shard_instances);
  out += ", \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSummary& h = histograms[i];
    out += StrCat(i == 0 ? "" : ", ", "\"", obs::JsonEscape(h.name),
                  "\": {\"count\": ", h.count,
                  ", \"mean\": ", JsonDouble(h.mean), ", \"p50\": ", h.p50,
                  ", \"p99\": ", h.p99, ", \"max\": ", h.max, "}");
  }
  out += "}";
  out += StrCat(", \"caches\": {\"reduction_hits\": ", reduction_cache_hits,
                ", \"reduction_misses\": ", reduction_cache_misses,
                ", \"residuation_hits\": ", residuation_cache_hits,
                ", \"residuation_misses\": ", residuation_cache_misses, "}");
  if (profiler != nullptr) {
    out += ", \"hot_guards\": [";
    std::vector<obs::GuardSiteStats> top = profiler->TopK(5);
    for (size_t i = 0; i < top.size(); ++i) {
      out += StrCat(i == 0 ? "" : ", ", "{\"site\": \"",
                    obs::JsonEscape(top[i].Label()),
                    "\", \"evaluations\": ", top[i].evaluations,
                    ", \"wall_ns\": ", top[i].EstimatedWallNs(),
                    ", \"steps\": ", top[i].residuation_steps, "}");
    }
    out += "]";
  }
  out += "}";
  return out;
}

Engine::Engine(EngineSpecRef spec, const EngineOptions& options)
    : spec_(std::move(spec)),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.shards == 0) options_.shards = AutoShards();
  if (!options_.wal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.wal_dir, ec);
    CDES_CHECK(!ec) << "cannot create wal_dir '" << options_.wal_dir
                    << "': " << ec.message();
  }
  manager_ = std::make_unique<InstanceManager>(
      options_.shards, options_.max_in_flight, options_.tracer);
  shards_.reserve(options_.shards);
  for (size_t k = 0; k < options_.shards; ++k) {
    ShardOptions sopts;
    sopts.index = k;
    sopts.max_resident = options_.max_resident_per_shard;
    sopts.step_batch = options_.step_batch;
    sopts.seed = options_.seed;
    sopts.sites = spec_->site_count();
    sopts.base_latency = options_.base_latency;
    sopts.jitter = options_.jitter;
    sopts.enable_promises = options_.enable_promises;
    sopts.auto_trigger = options_.auto_trigger;
    sopts.simplify_guards = options_.simplify_guards;
    sopts.symbolic_caches = options_.symbolic_caches;
    sopts.durable_logs = options_.durable_logs;
    sopts.wal_dir = options_.wal_dir;
    sopts.checkpoint_every = options_.checkpoint_every;
    sopts.group_commit_records = options_.group_commit_records;
    sopts.start_paused = options_.start_paused;
    sopts.epoch = epoch_;
    sopts.profiler = options_.profiler;
    sopts.lifecycle_metrics = options_.lifecycle_metrics;
    shards_.push_back(std::make_unique<Shard>(spec_, sopts, manager_.get()));
  }
  for (auto& shard : shards_) shard->Start();
}

Engine::~Engine() { Stop(); }

uint64_t Engine::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Result<uint64_t> Engine::Submit(InstanceScript script) {
  return SubmitInternal(std::move(script), /*block=*/true);
}

Result<uint64_t> Engine::TrySubmit(InstanceScript script) {
  return SubmitInternal(std::move(script), /*block=*/false);
}

Result<uint64_t> Engine::SubmitInternal(InstanceScript script, bool block) {
  CDES_CHECK(!stopped_) << "Submit after Stop";
  uint64_t entered_at_us = NowUs();
  Result<uint64_t> id = manager_->Admit(block);
  if (!id.ok()) return id;
  EngineCommand cmd;
  cmd.kind = EngineCommand::Kind::kRun;
  cmd.id = id.value();
  cmd.script = std::move(script);
  cmd.submitted_at_us = NowUs();
  manager_->RecordSubmit(id.value(), cmd.submitted_at_us,
                         cmd.submitted_at_us - entered_at_us);
  shards_[manager_->ShardFor(id.value())]->Push(std::move(cmd));
  return id;
}

Status Engine::Recover(const std::vector<std::string>& logs) {
  CDES_CHECK(!stopped_) << "Recover after Stop";
  // Validate the whole batch before materializing anything: two logs
  // naming the same instance would otherwise double-submit it onto one
  // shard (two worlds racing under one id). Deterministic — the check
  // depends only on the headers, and fires before any side effect.
  std::set<uint64_t> ids;
  for (const std::string& text : logs) {
    Result<uint64_t> id = EventLog::PeekInstance(text);
    if (!id.ok()) return id.status();
    if (!ids.insert(id.value()).second) {
      return Status::InvalidArgument(StrCat(
          "duplicate instance id ", id.value(), " in recovery logs"));
    }
  }
  for (const std::string& text : logs) {
    // Route by the header's instance id: id % shards is stable across
    // restarts, so the log lands on the shard index that owned it.
    Result<uint64_t> id = EventLog::PeekInstance(text);
    if (!id.ok()) return id.status();
    uint64_t entered_at_us = NowUs();
    Status admitted = manager_->AdmitRecovered(id.value());
    if (!admitted.ok()) return admitted;
    EngineCommand cmd;
    cmd.kind = EngineCommand::Kind::kRecover;
    cmd.id = id.value();
    cmd.log_text = text;
    cmd.submitted_at_us = NowUs();
    manager_->RecordSubmit(id.value(), cmd.submitted_at_us,
                           cmd.submitted_at_us - entered_at_us);
    shards_[manager_->ShardFor(id.value())]->Push(std::move(cmd));
  }
  return Status::OK();
}

Status Engine::RecoverDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound(
        StrCat("cannot list recovery dir '", dir, "': ", ec.message()));
  }
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".log") {
      paths.push_back(entry.path().string());
    }
  }
  // Directory iteration order is unspecified; sort for a deterministic
  // submission (and hence error) order.
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> logs;
  logs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::NotFound(StrCat("cannot read '", path, "'"));
    }
    std::ostringstream text;
    text << in.rdbuf();
    logs.push_back(std::move(text).str());
  }
  return Recover(logs);
}

void Engine::Checkpoint() {
  CDES_CHECK(!stopped_) << "Checkpoint after Stop";
  for (auto& shard : shards_) {
    EngineCommand cmd;
    cmd.kind = EngineCommand::Kind::kCheckpoint;
    shard->Push(std::move(cmd));
  }
}

void Engine::Abort() {
  if (stopped_) return;
  stopped_ = true;
  if (telemetry_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(telemetry_mu_);
      telemetry_stop_ = true;
    }
    telemetry_cv_.notify_all();
    telemetry_thread_.join();
  }
  for (auto& shard : shards_) shard->Abort();
  for (auto& shard : shards_) shard->Join();
  stopped_at_us_ = NowUs();
}

void Engine::Resume() {
  for (auto& shard : shards_) shard->Resume();
}

void Engine::Drain() {
  Resume();  // a paused engine can never drain
  manager_->Drain();
}

void Engine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  Resume();
  // Park the telemetry publisher before the shards go away; its final
  // line is emitted below, after the per-shard registries are mergeable.
  if (telemetry_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(telemetry_mu_);
      telemetry_stop_ = true;
    }
    telemetry_cv_.notify_all();
    telemetry_thread_.join();
  }
  for (auto& shard : shards_) {
    EngineCommand cmd;
    cmd.kind = EngineCommand::Kind::kStop;
    shard->Push(std::move(cmd));
  }
  for (auto& shard : shards_) shard->Join();
  stopped_at_us_ = NowUs();
  if (telemetry_sink_) EmitTelemetryLine();
}

EngineMetricsSnapshot Engine::Metrics() const {
  EngineMetricsSnapshot snap;
  snap.shards = shards_.size();
  snap.instances_submitted = manager_->submitted();
  snap.instances_completed = manager_->completed();
  snap.instances_rejected = manager_->rejected();
  snap.instances_in_flight = manager_->in_flight();
  snap.events = manager_->events_total();
  for (const auto& shard : shards_) {
    snap.sim_steps += shard->sim_steps();
    snap.shard_queue_depth.push_back(shard->queue_depth());
    snap.shard_resident.push_back(shard->resident());
    snap.shard_events.push_back(shard->events());
    snap.shard_instances.push_back(shard->instances_completed());
  }
  uint64_t now_us = stopped_ ? stopped_at_us_ : NowUs();
  snap.wall_seconds = static_cast<double>(now_us) / 1e6;
  snap.events_per_sec = snap.wall_seconds > 0
                            ? static_cast<double>(snap.events) / snap.wall_seconds
                            : 0;
  obs::MetricsRegistry merged;
  MergeMetricsInto(&merged);
  obs::SymbolicCacheStats caches = obs::CacheStatsFrom(merged);
  snap.reduction_cache_hits = caches.reduction_hits;
  snap.reduction_cache_misses = caches.reduction_misses;
  snap.residuation_cache_hits = caches.residuation_hits;
  snap.residuation_cache_misses = caches.residuation_misses;
  for (const auto& [name, h] : merged.histograms()) {
    EngineMetricsSnapshot::HistogramSummary summary;
    summary.name = name;
    summary.count = h->count();
    summary.mean = h->Mean();
    summary.p50 = h->Percentile(0.5);
    summary.p99 = h->Percentile(0.99);
    summary.max = h->max();
    snap.histograms.push_back(std::move(summary));
  }
  return snap;
}

void Engine::MergeMetricsInto(obs::MetricsRegistry* out) const {
  manager_->MergeMetricsInto(out);
  if (!stopped_) return;  // shard registries are worker-confined until then
  for (const auto& shard : shards_) out->MergeFrom(shard->metrics());
}

std::vector<InstanceResult> Engine::TakeResults() {
  return manager_->TakeResults();
}

void Engine::StartTelemetry(std::chrono::milliseconds interval,
                            TelemetrySink sink) {
  CDES_CHECK(!stopped_) << "StartTelemetry after Stop";
  if (telemetry_thread_.joinable()) return;  // one publisher per engine
  telemetry_sink_ = std::move(sink);
  telemetry_thread_ =
      std::thread([this, interval] { TelemetryMain(interval); });
}

Status Engine::StartTelemetryFile(std::chrono::milliseconds interval,
                                  const std::string& path) {
  std::shared_ptr<std::FILE> f(std::fopen(path.c_str(), "w"), [](std::FILE* p) {
    if (p != nullptr) std::fclose(p);
  });
  if (f == nullptr) {
    return Status::NotFound(StrCat("cannot open ", path, " for writing"));
  }
  StartTelemetry(interval, [f](const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), f.get());
    std::fputc('\n', f.get());
    std::fflush(f.get());  // tailers see whole lines promptly
  });
  return Status::OK();
}

void Engine::TelemetryMain(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  while (!telemetry_stop_) {
    if (telemetry_cv_.wait_for(lock, interval,
                               [this] { return telemetry_stop_; })) {
      break;  // Stop() emits the final line once the shards have joined
    }
    lock.unlock();
    EmitTelemetryLine();
    lock.lock();
  }
}

void Engine::EmitTelemetryLine() {
  telemetry_sink_(Metrics().ToJsonLine(NowUs(), options_.profiler));
}

}  // namespace cdes::engine
