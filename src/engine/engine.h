#ifndef CDES_ENGINE_ENGINE_H_
#define CDES_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine_spec.h"
#include "engine/instance.h"
#include "engine/shard.h"
#include "obs/obs.h"
#include "obs/profiler.h"

namespace cdes::engine {

struct EngineOptions {
  /// Worker shards. 0 = auto (half the hardware threads, at least 1).
  size_t shards = 0;
  /// Admission limit: instances in flight (submitted, not yet completed)
  /// before Submit blocks / TrySubmit rejects. 0 = unbounded.
  size_t max_in_flight = 4096;
  /// Instances a shard interleaves at once; further commands wait in its
  /// mailbox (bounds live memory at shards × max_resident worlds).
  size_t max_resident_per_shard = 64;
  /// Simulator events per instance per cooperative turn.
  size_t step_batch = 64;
  /// Seed for the per-instance network RNG streams. Together with the
  /// submission order (which fixes instance ids), this fully determines
  /// every instance's history — independent of shard count.
  uint64_t seed = 1;
  /// Per-instance simulated network latency between distinct sites, plus
  /// uniform jitter drawn from the instance's seeded RNG.
  SimTime base_latency = 1000;
  SimTime jitter = 0;
  /// Scheduler behavior, passed through to every instance scheduler.
  bool enable_promises = true;
  bool auto_trigger = true;
  bool simplify_guards = true;
  /// Shard-shared symbolic caches (reduction memo + flat evaluation); off
  /// reproduces pre-memoization behavior for ablation benchmarks.
  bool symbolic_caches = true;
  /// Keep one EventLog per instance and return its serialized form in the
  /// InstanceResult, enabling Engine::Recover after a crash.
  bool durable_logs = false;
  /// When non-empty, every in-flight instance's log is mirrored to
  /// `<wal_dir>/<id>.log` on disk as it runs (implies durable_logs; the
  /// directory is created). A crashed engine rebuilds from those files via
  /// RecoverDir. Completed instances' files are removed — their sealed log
  /// lives in the InstanceResult.
  std::string wal_dir;
  /// Checkpoint + compact an instance's on-disk log once its record suffix
  /// reaches this many records (at the instance's next quiescent turn).
  /// 0 = only on explicit Checkpoint(). Needs wal_dir.
  size_t checkpoint_every = 0;
  /// Group commit: WAL appends buffer across a shard's residents and hit
  /// the filesystem once this many lines accumulate (or at a barrier —
  /// checkpoint, instance completion, shard idle, stop). 1 = write-through
  /// on every record. Needs wal_dir.
  size_t group_commit_records = 1;
  /// Construct paused: submissions queue but no shard consumes until
  /// Resume(). Deterministic admission tests; bench preloading.
  bool start_paused = false;
  /// When set, one Complete span per instance ("instance <id>", tid =
  /// instance id, pid = shard index, wall-clock microseconds) is recorded,
  /// plus a "submit <id>" span on the engine lane and a flow arrow linking
  /// the two across threads. Calls are serialized by the instance manager,
  /// so an ordinary TraceRecorder is safe despite the multi-threaded
  /// engine.
  obs::TraceRecorder* tracer = nullptr;
  /// When set, every shard's resident schedulers attribute guard
  /// evaluations to it. GuardProfiler is internally thread-safe (atomic
  /// record path), so one profiler shared by all shards is the intended
  /// shape.
  obs::GuardProfiler* profiler = nullptr;
  /// Turn on per-instance lifecycle histograms in the shard registries
  /// (sched.decision_latency_us, sched.guard_reduction_steps, ...). Off by
  /// default: the engine hot path skips that instrumentation.
  bool lifecycle_metrics = false;
};

/// Point-in-time view of the engine's counters, safe to take while the
/// engine runs (assembled from atomics and the manager's mutex-guarded
/// tallies — never from shard-confined registries).
struct EngineMetricsSnapshot {
  size_t shards = 0;
  uint64_t instances_submitted = 0;
  uint64_t instances_completed = 0;
  uint64_t instances_rejected = 0;
  uint64_t instances_in_flight = 0;
  /// Occurrences across completed instances.
  uint64_t events = 0;
  /// Simulator events executed across all shards (scheduler + network
  /// machinery included): the engine's true work rate.
  uint64_t sim_steps = 0;
  double wall_seconds = 0;
  /// events / wall_seconds: aggregate multi-instance throughput.
  double events_per_sec = 0;
  std::vector<size_t> shard_queue_depth;
  std::vector<size_t> shard_resident;
  std::vector<uint64_t> shard_events;
  std::vector<uint64_t> shard_instances;

  /// Percentile digest of one histogram visible to the snapshot: always
  /// engine.latency_us and engine.admission_wait_us; after Stop() also the
  /// per-shard registries merged across shards (net.latency_us, and the
  /// sched.* lifecycle histograms when EngineOptions::lifecycle_metrics).
  struct HistogramSummary {
    std::string name;
    uint64_t count = 0;
    double mean = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
  };
  std::vector<HistogramSummary> histograms;

  /// Shard-shared symbolic-cache traffic, merged across shards. Populated
  /// from the shard registries, which are worker-confined until Stop(): all
  /// zero while the engine is live, real on the final (post-Stop) snapshot
  /// and telemetry line.
  uint64_t reduction_cache_hits = 0;
  uint64_t reduction_cache_misses = 0;
  uint64_t residuation_cache_hits = 0;
  uint64_t residuation_cache_misses = 0;
  /// hits / (hits + misses); 0 with no traffic.
  double ReductionCacheHitRate() const {
    uint64_t total = reduction_cache_hits + reduction_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(reduction_cache_hits) /
                            static_cast<double>(total);
  }

  /// Publishes the snapshot as "engine.*" gauges (plus per-shard
  /// "engine.shard<k>.*" and "<histogram>.p50/.p99/.mean/.count" percentile
  /// gauges) into `registry`, alongside whatever "sched.*" / "net.*"
  /// metrics the caller already collects there. Call from the thread that
  /// owns the registry.
  void PublishTo(obs::MetricsRegistry* registry) const;
  /// Multi-line human-readable rendering (examples, operator dumps),
  /// including the latency-histogram percentile lines.
  std::string ToString() const;
  /// One JSONL telemetry record (no trailing newline):
  /// {"schema_version": 2, "ts_us": ..., engine counters, per-shard
  /// arrays, "histograms": {name: {count,mean,p50,p99,max}}, and — when
  /// `profiler` is non-null — "hot_guards": top guard-profiler sites}.
  /// This is the line format StartTelemetry sinks and tools/cdes-top tails.
  std::string ToJsonLine(uint64_t ts_us,
                         const obs::GuardProfiler* profiler = nullptr) const;
};

/// The multi-instance workflow engine: compiles a spec once per shard and
/// runs N workflow instances across K worker shards, each instance an
/// isolated deterministic world (own simulator, network, distributed guard
/// scheduler) — the sharding story Singh's instance-local guard synthesis
/// licenses (§4.2–4.3: guards consult only announcements of their own
/// instance). See docs/ENGINE.md.
///
/// Lifecycle: construct (threads start, optionally paused) → Submit /
/// TrySubmit / Recover → Drain → TakeResults → Stop (idempotent; the
/// destructor calls it). Submit and friends are safe from any one caller
/// thread at a time; shards run concurrently with all of them.
class Engine {
 public:
  explicit Engine(EngineSpecRef spec, const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submits one instance; blocks while the admission limit is reached
  /// (backpressure). Returns the instance id.
  Result<uint64_t> Submit(InstanceScript script);
  /// Non-blocking admission: kResourceExhausted when the limit is reached
  /// (counted in instances_rejected).
  Result<uint64_t> TrySubmit(InstanceScript script);

  /// Rebuilds one in-flight instance per serialized EventLog (produced by
  /// a durable_logs run — see InstanceResult::log_text), routes it to the
  /// shard that owned it, and drives it to a maximal trace. Torn tails
  /// (crash mid-append) lose only their final record; a v3 checkpoint
  /// section restores the covered prefix without replay. Two logs naming
  /// the same instance id are rejected up front (InvalidArgument) before
  /// any instance materializes — a double-submit would run the instance
  /// twice on its shard. Returns the first routing error; per-instance
  /// failures surface in that instance's result instead.
  Status Recover(const std::vector<std::string>& logs);

  /// Recover(every `*.log` file under `dir`), in sorted filename order —
  /// the restart path for a wal_dir engine: point the new engine at the
  /// dead one's directory.
  Status RecoverDir(const std::string& dir);

  /// Asks every shard to checkpoint + compact each resident instance at
  /// its next quiescent turn (wal_dir engines; otherwise a no-op). Returns
  /// immediately — checkpoints land as the shards reach quiescence.
  void Checkpoint();

  /// Simulated kill −9 for crash testing: worker threads exit at their
  /// next turn boundary without finishing residents, flushing group-commit
  /// buffers, or reporting results; in-flight instances stay unreported.
  /// The engine is dead afterwards (like Stop, but nothing is drained or
  /// sealed). The wal_dir files left behind are exactly what a real crash
  /// would leave, minus unflushed buffers — feed them to a new engine's
  /// RecoverDir.
  void Abort();

  /// Lifts start_paused: queued submissions begin executing.
  void Resume();
  /// Blocks until every admitted instance has completed. Resumes paused
  /// shards first (a paused engine can never drain).
  void Drain();
  /// Drains, stops every shard, and joins the worker threads. Idempotent.
  void Stop();

  EngineMetricsSnapshot Metrics() const;
  /// Completed-instance results accumulated since the last call, in
  /// completion order.
  std::vector<InstanceResult> TakeResults();

  /// Folds every engine-owned registry into `out`: the manager's latency
  /// histograms always (safe mid-run), and the per-shard registries
  /// ("sched.*", "net.*") once the engine is stopped (they are
  /// worker-thread-confined while shards run). Feed the result to
  /// obs::PrometheusText for a scrape snapshot.
  void MergeMetricsInto(obs::MetricsRegistry* out) const;

  /// A line-oriented telemetry consumer; called from the telemetry thread
  /// with one EngineMetricsSnapshot::ToJsonLine record (no newline).
  using TelemetrySink = std::function<void(const std::string& line)>;
  /// Starts a background publisher emitting one snapshot line per
  /// `interval` until Stop(), which flushes one final line before
  /// returning. One publisher per engine; later calls replace nothing and
  /// are ignored.
  void StartTelemetry(std::chrono::milliseconds interval, TelemetrySink sink);
  /// StartTelemetry writing JSONL to `path` (the stream tools/cdes-top
  /// tails), flushed after every line.
  Status StartTelemetryFile(std::chrono::milliseconds interval,
                            const std::string& path);

  size_t shard_count() const { return shards_.size(); }
  const EngineSpec& spec() const { return *spec_; }
  /// A stopped shard's private registry ("sched.*", "net.*" across its
  /// instances). Only meaningful after Stop().
  const obs::MetricsRegistry& shard_metrics(size_t shard) const {
    return shards_[shard]->metrics();
  }

 private:
  Result<uint64_t> SubmitInternal(InstanceScript script, bool block);
  uint64_t NowUs() const;
  void TelemetryMain(std::chrono::milliseconds interval);
  void EmitTelemetryLine();

  EngineSpecRef spec_;
  EngineOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<InstanceManager> manager_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool stopped_ = false;
  /// Wall time frozen at Stop() so post-run Metrics() report the run's
  /// throughput, not decaying averages.
  uint64_t stopped_at_us_ = 0;

  // ---- Telemetry publisher ----
  std::thread telemetry_thread_;
  std::mutex telemetry_mu_;
  std::condition_variable telemetry_cv_;
  bool telemetry_stop_ = false;
  TelemetrySink telemetry_sink_;
};

}  // namespace cdes::engine

#endif  // CDES_ENGINE_ENGINE_H_
