#include "engine/engine_spec.h"

#include <algorithm>
#include <utility>

#include "spec/parser.h"

namespace cdes::engine {
namespace {

size_t SiteCountOf(const ParsedWorkflow& workflow) {
  int max_site = 0;
  for (const AgentDecl& agent : workflow.agents) {
    max_site = std::max(max_site, agent.site);
  }
  return static_cast<size_t>(max_site) + 1;
}

}  // namespace

Result<std::shared_ptr<const EngineSpec>> EngineSpec::FromText(
    std::string spec_text) {
  auto spec = std::shared_ptr<EngineSpec>(new EngineSpec());
  spec->text_ = std::move(spec_text);
  // Validate up front in a scratch context so Submit-time failures cannot
  // happen on shard threads.
  WorkflowContext scratch;
  CDES_ASSIGN_OR_RETURN(ParsedWorkflow parsed,
                        ParseWorkflow(&scratch, spec->text_));
  spec->name_ = parsed.name;
  spec->site_count_ = SiteCountOf(parsed);
  return std::shared_ptr<const EngineSpec>(std::move(spec));
}

Result<std::shared_ptr<const EngineSpec>> EngineSpec::FromTemplate(
    WorkflowTemplate tpl) {
  auto spec = std::shared_ptr<EngineSpec>(new EngineSpec());
  spec->template_.emplace(std::move(tpl));
  WorkflowContext scratch;
  CDES_ASSIGN_OR_RETURN(ParsedWorkflow parsed,
                        spec->template_->InstantiateCanonical(&scratch));
  spec->name_ = parsed.name;
  spec->site_count_ = SiteCountOf(parsed);
  return std::shared_ptr<const EngineSpec>(std::move(spec));
}

Result<ParsedWorkflow> EngineSpec::Materialize(WorkflowContext* ctx) const {
  if (template_.has_value()) return template_->InstantiateCanonical(ctx);
  return ParseWorkflow(ctx, text_);
}

}  // namespace cdes::engine
