#ifndef CDES_ENGINE_ENGINE_SPEC_H_
#define CDES_ENGINE_ENGINE_SPEC_H_

#include <memory>
#include <optional>
#include <string>

#include "params/param_workflow.h"
#include "spec/ast.h"

namespace cdes::engine {

/// The immutable description of the workflow an Engine runs many instances
/// of: either spec-language text or a parametrized WorkflowTemplate.
///
/// An EngineSpec is validated once (parsed / canonically instantiated in a
/// scratch context) at construction and then shared read-only via
/// `shared_ptr<const EngineSpec>` by every shard. Each shard *materializes*
/// it once into its own thread-confined WorkflowContext and compiles the
/// result once; all workflow instances resident on the shard share that
/// compiled guard table (guards/workflow.h, CompiledWorkflowRef). Instance
/// identity lives in the engine's instance ids — each instance gets its own
/// scheduler world — so event names need no per-instance mangling and the
/// compile really is amortized across thousands of instances.
class EngineSpec {
 public:
  /// A spec in the workflow language (spec/parser.h). Fails if the text
  /// does not parse.
  static Result<std::shared_ptr<const EngineSpec>> FromText(
      std::string spec_text);

  /// A parametrized template, materialized per shard under the canonical
  /// binding (params/param_workflow.h). Fails if the canonical
  /// instantiation does (e.g. a dependency with unbound variables).
  static Result<std::shared_ptr<const EngineSpec>> FromTemplate(
      WorkflowTemplate tpl);

  /// Parses / instantiates the spec into `ctx`. Called once per shard, on
  /// the shard's thread, against the shard's private context.
  Result<ParsedWorkflow> Materialize(WorkflowContext* ctx) const;

  /// The workflow's name (from the spec text or the template).
  const std::string& name() const { return name_; }
  /// Number of sites the per-instance network needs (max declared site +1,
  /// at least 1).
  size_t site_count() const { return site_count_; }

 private:
  EngineSpec() = default;

  std::string name_;
  size_t site_count_ = 1;
  std::string text_;
  std::optional<WorkflowTemplate> template_;
};

using EngineSpecRef = std::shared_ptr<const EngineSpec>;

}  // namespace cdes::engine

#endif  // CDES_ENGINE_ENGINE_SPEC_H_
