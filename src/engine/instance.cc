#include "engine/instance.h"

#include "common/strings.h"

namespace cdes::engine {

InstanceManager::InstanceManager(size_t shards, size_t max_in_flight,
                                 obs::TraceRecorder* tracer)
    : shards_(shards), max_in_flight_(max_in_flight), tracer_(tracer) {
  CDES_CHECK(shards_ > 0);
  latency_ = metrics_.histogram("engine.latency_us");
  admission_wait_ = metrics_.histogram("engine.admission_wait_us");
  if (tracer_ != nullptr) {
    tracer_->NameProcess(kEngineTracePid, "engine");
    for (size_t k = 0; k < shards_; ++k) {
      tracer_->NameProcess(static_cast<int>(k), StrCat("shard ", k));
    }
  }
}

void InstanceManager::RecordSubmit(uint64_t id, uint64_t submitted_at_us,
                                   uint64_t wait_us) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_wait_->Observe(wait_us);
  if (tracer_ != nullptr) {
    tracer_->Complete(obs::SpanCategory::kSim, StrCat("submit ", id),
                      submitted_at_us - wait_us, wait_us, kEngineTracePid, 0,
                      {{"wait_us", StrCat(wait_us)}});
    // Flow origin on the engine lane; the matching FlowEnd fires inside the
    // completion span on the owning shard's lane, so viewers draw a
    // submit→complete arrow across threads.
    tracer_->FlowStart(obs::SpanCategory::kSim, "instance", id,
                       submitted_at_us, kEngineTracePid, 0);
  }
}

Result<uint64_t> InstanceManager::Admit(bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  if (max_in_flight_ > 0) {
    auto has_room = [this] {
      return submitted_ - completed_ < max_in_flight_;
    };
    if (!has_room()) {
      if (!block) {
        ++rejected_;
        return Status::ResourceExhausted(
            StrCat("engine admission limit (", max_in_flight_,
                   " instances in flight) reached"));
      }
      capacity_cv_.wait(lock, has_room);
    }
  }
  ++submitted_;
  return next_id_++;
}

Status InstanceManager::AdmitRecovered(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (max_in_flight_ > 0) {
    capacity_cv_.wait(
        lock, [this] { return submitted_ - completed_ < max_in_flight_; });
  }
  ++submitted_;
  if (id >= next_id_) next_id_ = id + 1;
  return Status::OK();
}

void InstanceManager::ReserveThrough(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= next_id_) next_id_ = id + 1;
}

void InstanceManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void InstanceManager::Complete(InstanceResult result, uint64_t submitted_at_us,
                               uint64_t completed_at_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  events_total_ += result.events;
  uint64_t dur = completed_at_us > submitted_at_us
                     ? completed_at_us - submitted_at_us
                     : 0;
  latency_->Observe(dur);
  if (tracer_ != nullptr) {
    tracer_->Complete(obs::SpanCategory::kSim,
                      StrCat("instance ", result.id), submitted_at_us, dur,
                      static_cast<int>(result.shard), result.id,
                      {{"tag", StrCat(result.tag)},
                       {"events", StrCat(result.events)},
                       {"consistent", result.consistent ? "true" : "false"}});
    // Terminate the submit→complete flow inside the instance span ("bp":"e"
    // in the export binds the arrow head to the enclosing slice).
    tracer_->FlowEnd(obs::SpanCategory::kSim, "instance", result.id,
                     completed_at_us, static_cast<int>(result.shard),
                     result.id);
  }
  results_.push_back(std::move(result));
  capacity_cv_.notify_one();
  if (completed_ == submitted_) drained_cv_.notify_all();
}

uint64_t InstanceManager::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

uint64_t InstanceManager::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t InstanceManager::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t InstanceManager::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_ - completed_;
}

uint64_t InstanceManager::events_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_total_;
}

void InstanceManager::MergeMetricsInto(obs::MetricsRegistry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->MergeFrom(metrics_);
}

std::vector<InstanceResult> InstanceManager::TakeResults() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InstanceResult> out;
  out.swap(results_);
  return out;
}

}  // namespace cdes::engine
