#ifndef CDES_ENGINE_INSTANCE_H_
#define CDES_ENGINE_INSTANCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace cdes::engine {

/// Chrome-trace "process" id for engine-level spans (submit spans, flow
/// origins). Far above any shard index or simulated-site id, so the engine
/// lane never collides with per-shard / per-site lanes in the same trace.
inline constexpr int kEngineTracePid = 1 << 20;

/// What one workflow instance should do: a sequence of event-literal names
/// attempted in order (each run to quiescence inside the instance's own
/// simulated world), optionally followed by closure to a maximal trace.
/// Names are unmangled spec names ("s_buy", "~c_buy"): every instance runs
/// in its own scheduler world, so instances never share symbols.
struct InstanceScript {
  /// Caller correlation id, echoed in the result (e.g. a customer id).
  uint64_t tag = 0;
  std::vector<std::string> attempts;
  /// Drive the instance to a maximal trace after the script (repeatedly
  /// attempting complements of undecided symbols). Without it the instance
  /// completes as soon as the scripted attempts have resolved.
  bool close = true;
};

/// Terminal report of one instance, assembled on the owning shard.
struct InstanceResult {
  uint64_t id = 0;
  uint64_t tag = 0;
  size_t shard = 0;
  /// Every dependency residual non-0 over the final history ("consistent
  /// so far"); with `maximal` also fully satisfied.
  bool consistent = false;
  /// Every symbol decided (closure converged).
  bool maximal = false;
  size_t events = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  SimTime sim_time = 0;
  /// Rendered occurrence history, e.g. "s_book s_buy c_book c_buy".
  std::string history;
  /// Serialized per-instance EventLog (EngineOptions::durable_logs only);
  /// feed these to Engine::Recover to rebuild in-flight instances.
  std::string log_text;
  /// Non-empty when the instance failed structurally (unknown event name,
  /// unparseable recovery log, ...). Failed instances count as completed
  /// but never as consistent.
  std::string error;
};

/// A command in a shard's MPSC mailbox.
struct EngineCommand {
  enum class Kind {
    kRun,         // start a fresh instance of the engine's workflow
    kRecover,     // rebuild an instance from a serialized EventLog, then close
    kCheckpoint,  // checkpoint every resident instance at its next quiescence
    kStop,        // finish resident instances, then exit the worker thread
  };
  Kind kind = Kind::kRun;
  uint64_t id = 0;
  InstanceScript script;
  std::string log_text;  // kRecover
  /// Wall microseconds (engine epoch) at submission, for the instance span.
  uint64_t submitted_at_us = 0;
};

/// Instance bookkeeping shared by the Engine (caller side) and its shards
/// (worker side): id allocation, id→shard routing, the admission limit with
/// blocking backpressure, completion tracking for Drain, and the result
/// sink. All state is guarded by one mutex; shards touch it only at
/// instance completion, so it is far off the per-event hot path.
class InstanceManager {
 public:
  /// `tracer`, when set, records one Complete span per instance (category
  /// kSim, name "instance <id>", tid = instance id, pid = shard) with
  /// submit→completion wall microseconds. Calls are serialized under the
  /// manager mutex, which is what makes a plain TraceRecorder safe here.
  InstanceManager(size_t shards, size_t max_in_flight,
                  obs::TraceRecorder* tracer);

  // ---- Caller side ----
  /// Allocates the next instance id, counting it in flight. With `block`,
  /// waits until the admission limit has room (backpressure); otherwise
  /// fails with kResourceExhausted when full.
  Result<uint64_t> Admit(bool block);
  /// Deterministic id→shard placement (id mod shards): stable across runs
  /// and across engine restarts, so Recover re-routes a log to the same
  /// shard index that owned the instance.
  size_t ShardFor(uint64_t id) const { return id % shards_; }
  /// Registers a recovered instance under its pre-crash id: counts it in
  /// flight (blocking on the admission limit) and ensures future Admit
  /// calls allocate strictly above it.
  Status AdmitRecovered(uint64_t id);
  /// Ensures future Admit calls allocate ids strictly above `id` (recovery
  /// re-registers previously issued ids).
  void ReserveThrough(uint64_t id);
  /// Blocks until every admitted instance has completed.
  void Drain();

  /// Records one admitted submission: observes `wait_us` in the
  /// engine.admission_wait_us histogram and, when tracing, emits a
  /// "submit <id>" span on the engine lane (pid kEngineTracePid, dur =
  /// admission wait) plus the FlowStart("instance", id) arrow origin that
  /// Complete() terminates on the owning shard's lane. Serialized under
  /// the manager mutex like every other tracer call here.
  void RecordSubmit(uint64_t id, uint64_t submitted_at_us, uint64_t wait_us);

  // ---- Shard side ----
  /// Reports a finished instance: stores the result, releases its
  /// admission slot, and wakes Submit/Drain waiters. `submitted_at_us` is
  /// the wall-clock submit time (engine epoch) for the instance span.
  /// Observes submit→complete latency in engine.latency_us and closes the
  /// instance flow arrow at the completion span.
  void Complete(InstanceResult result, uint64_t submitted_at_us,
                uint64_t completed_at_us);

  // ---- Introspection ----
  uint64_t submitted() const;
  uint64_t completed() const;
  uint64_t rejected() const;
  uint64_t in_flight() const;
  uint64_t events_total() const;
  /// Moves the accumulated results out (ordered by completion).
  std::vector<InstanceResult> TakeResults();

  /// Folds the manager's private registry (engine.latency_us,
  /// engine.admission_wait_us) into `out` under the manager mutex — safe
  /// while the engine runs, which is what lets live telemetry snapshots
  /// report latency percentiles mid-run.
  void MergeMetricsInto(obs::MetricsRegistry* out) const;

 private:
  const size_t shards_;
  const size_t max_in_flight_;  // 0 = unbounded
  obs::TraceRecorder* const tracer_;

  mutable std::mutex mu_;
  std::condition_variable capacity_cv_;
  std::condition_variable drained_cv_;
  uint64_t next_id_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t events_total_ = 0;
  std::vector<InstanceResult> results_;
  /// Engine-level latency histograms, guarded by mu_ like everything else.
  obs::MetricsRegistry metrics_;
  obs::Histogram* latency_ = nullptr;
  obs::Histogram* admission_wait_ = nullptr;
};

}  // namespace cdes::engine

#endif  // CDES_ENGINE_INSTANCE_H_
