#include "engine/shard.h"

#include <utility>

#include "common/strings.h"
#include "runtime/event_log.h"

namespace cdes::engine {
namespace {

/// splitmix64 over (engine seed, instance id): decorrelated per-instance
/// RNG streams that depend on nothing a shard knows — the determinism
/// guarantee "same seed + same submission order ⇒ identical per-instance
/// histories regardless of shard count" rests on this.
uint64_t MixSeed(uint64_t seed, uint64_t id) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Shard::Shard(EngineSpecRef spec, const ShardOptions& options,
             InstanceManager* manager)
    : spec_(std::move(spec)), options_(options), manager_(manager) {
  paused_ = options_.start_paused;
}

Shard::~Shard() { Join(); }

void Shard::Start() {
  CDES_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ThreadMain(); });
}

void Shard::Push(EngineCommand cmd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(cmd));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void Shard::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_one();
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

uint64_t Shard::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - options_.epoch)
          .count());
}

void Shard::ThreadMain() {
  // Materialize and compile the workflow once, on this thread, into this
  // shard's private context. The EngineSpec was validated at construction,
  // so failure here is a bug, not an input error.
  ctx_ = std::make_unique<WorkflowContext>();
  Result<ParsedWorkflow> parsed = spec_->Materialize(ctx_.get());
  CDES_CHECK(parsed.ok()) << parsed.status();
  workflow_ = std::move(parsed).value();
  CompileOptions copts;
  copts.simplify = options_.simplify_guards;
  compiled_ = CompileWorkflowShared(ctx_.get(), workflow_.spec, copts);

  std::vector<std::unique_ptr<Resident>> active;
  bool stopping = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Idle shard: block until work arrives (or a pause lifts). A shard
      // with resident instances never blocks — it polls the mailbox
      // between turns.
      if (active.empty() && !stopping) {
        cv_.wait(lock, [this] { return !paused_ && !queue_.empty(); });
      }
      while (!paused_ && !queue_.empty() &&
             active.size() < options_.max_resident) {
        EngineCommand cmd = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_.store(queue_.size(), std::memory_order_relaxed);
        if (cmd.kind == EngineCommand::Kind::kStop) {
          stopping = true;
          break;
        }
        lock.unlock();  // world construction happens outside the mailbox
        active.push_back(AdmitInstance(std::move(cmd)));
        resident_.store(active.size(), std::memory_order_relaxed);
        lock.lock();
      }
    }
    if (active.empty()) {
      if (stopping) break;
      continue;
    }
    // One cooperative turn per resident instance, in admission order.
    for (auto it = active.begin(); it != active.end();) {
      if (StepInstance(**it)) {
        Finish(**it);
        it = active.erase(it);
        resident_.store(active.size(), std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

std::unique_ptr<Shard::Resident> Shard::AdmitInstance(EngineCommand cmd) {
  auto r = std::make_unique<Resident>();
  r->id = cmd.id;
  r->submitted_at_us = cmd.submitted_at_us;
  r->script = std::move(cmd.script);
  r->result.id = cmd.id;
  r->result.tag = r->script.tag;
  r->result.shard = options_.index;

  NetworkOptions nopts;
  nopts.base_latency = options_.base_latency;
  nopts.local_latency = options_.local_latency;
  nopts.jitter = options_.jitter;
  nopts.seed = MixSeed(options_.seed, cmd.id);
  nopts.metrics = &metrics_;
  r->net = std::make_unique<Network>(&r->sim, options_.sites, nopts);

  GuardSchedulerOptions sopts;
  sopts.enable_promises = options_.enable_promises;
  sopts.auto_trigger = options_.auto_trigger;
  sopts.simplify_guards = options_.simplify_guards;
  sopts.metrics = &metrics_;
  sopts.lifecycle_instrumentation = options_.lifecycle_metrics;
  sopts.profiler = options_.profiler;
  // Flow / trace correlation: messages inside this instance's world carry
  // the instance id as their trace id.
  sopts.trace_id = cmd.id;
  if (options_.durable_logs) {
    r->log = std::make_unique<EventLog>();
    r->log->set_instance(cmd.id);
    sopts.durable_log = r->log.get();
  }
  r->sched = std::make_unique<GuardScheduler>(ctx_.get(), compiled_,
                                              workflow_, r->net.get(), sopts);

  if (cmd.kind == EngineCommand::Kind::kRecover) {
    // Rebuild pre-crash state from the serialized log. LoadTolerant is the
    // point: a log torn by a crash mid-append loses only its final record.
    r->phase = Resident::Phase::kClosing;
    auto log = EventLog::LoadTolerant(*ctx_->alphabet(), cmd.log_text);
    if (!log.ok()) {
      r->result.error = StrCat("recovery log unreadable: ",
                               log.status().ToString());
      r->phase = Resident::Phase::kDone;
      return r;
    }
    Status recovered = r->sched->Recover(log.value());
    if (!recovered.ok()) {
      r->result.error = StrCat("recovery failed: ", recovered.ToString());
      r->phase = Resident::Phase::kDone;
      return r;
    }
    if (r->log != nullptr) {
      // Seed the new durable log with the recovered prefix so a second
      // crash still has the full history.
      for (const EventLog::Record& rec : log.value().records()) {
        r->log->Append(rec);
      }
    }
    if (!log.value().records().empty()) {
      // Resume the instance clock at the crash point so post-recovery
      // stamps stay monotone with the recovered prefix.
      r->sim.RunUntil(log.value().records().back().stamp.time);
    }
  }
  return r;
}

bool Shard::StepInstance(Resident& r) {
  if (r.sim.pending() > 0) {
    sim_steps_.fetch_add(r.sim.Run(options_.step_batch),
                         std::memory_order_relaxed);
    if (r.sim.pending() > 0) return false;  // yield; more next turn
  }
  // The instance world is quiescent: advance the script state machine.
  switch (r.phase) {
    case Resident::Phase::kScript: {
      if (r.pos < r.script.attempts.size()) {
        const std::string& name = r.script.attempts[r.pos++];
        Result<EventLiteral> literal = ctx_->alphabet()->ParseLiteral(name);
        if (!literal.ok()) {
          r.result.error = StrCat("unknown event '", name, "'");
          r.phase = Resident::Phase::kDone;
          return true;
        }
        InstanceResult* result = &r.result;
        r.sched->Attempt(literal.value(), [result](Decision d) {
          if (d == Decision::kAccepted) ++result->accepted;
          if (d == Decision::kRejected) ++result->rejected;
        });
        return false;
      }
      if (!r.script.close) {
        r.phase = Resident::Phase::kDone;
        return true;
      }
      r.phase = Resident::Phase::kClosing;
      return false;
    }
    case Resident::Phase::kClosing: {
      if (r.sched->Undecided().empty() ||
          ++r.close_rounds > options_.max_close_rounds) {
        r.phase = Resident::Phase::kDone;
        return true;
      }
      r.sched->Close();
      return false;
    }
    case Resident::Phase::kDone:
      return true;
  }
  return true;
}

void Shard::Finish(Resident& r) {
  if (r.result.error.empty()) {
    r.result.events = r.sched->history().size();
    r.result.sim_time = r.sim.now();
    r.result.maximal = r.sched->Undecided().empty();
    // A maximal trace must satisfy every dependency outright; a partial
    // one only has to keep every residual satisfiable.
    r.result.consistent = r.sched->HistoryConsistent(r.result.maximal);
    r.result.history = TraceToString(r.sched->history(), *ctx_->alphabet());
    if (r.log != nullptr) {
      r.result.log_text = r.log->Serialize(*ctx_->alphabet());
    }
  }
  events_.fetch_add(r.result.events, std::memory_order_relaxed);
  instances_completed_.fetch_add(1, std::memory_order_relaxed);
  manager_->Complete(std::move(r.result), r.submitted_at_us, NowUs());
}

}  // namespace cdes::engine
