#include "engine/shard.h"

#include <utility>

#include "common/strings.h"
#include "runtime/checkpoint.h"
#include "runtime/event_log.h"

namespace cdes::engine {
namespace {

/// splitmix64 over (engine seed, instance id): decorrelated per-instance
/// RNG streams that depend on nothing a shard knows — the determinism
/// guarantee "same seed + same submission order ⇒ identical per-instance
/// histories regardless of shard count" rests on this.
uint64_t MixSeed(uint64_t seed, uint64_t id) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Shard::Shard(EngineSpecRef spec, const ShardOptions& options,
             InstanceManager* manager)
    : spec_(std::move(spec)), options_(options), manager_(manager) {
  paused_ = options_.start_paused;
}

Shard::~Shard() { Join(); }

void Shard::Start() {
  CDES_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ThreadMain(); });
}

void Shard::Push(EngineCommand cmd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(cmd));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void Shard::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_one();
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::Abort() {
  abort_.store(true, std::memory_order_relaxed);
  cv_.notify_one();
}

uint64_t Shard::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - options_.epoch)
          .count());
}

void Shard::ThreadMain() {
  // Materialize and compile the workflow once, on this thread, into this
  // shard's private context. The EngineSpec was validated at construction,
  // so failure here is a bug, not an input error.
  ctx_ = std::make_unique<WorkflowContext>();
  Result<ParsedWorkflow> parsed = spec_->Materialize(ctx_.get());
  CDES_CHECK(parsed.ok()) << parsed.status();
  workflow_ = std::move(parsed).value();
  CompileOptions copts;
  copts.simplify = options_.simplify_guards;
  compiled_ = CompileWorkflowShared(ctx_.get(), workflow_.spec, copts);
  if (!options_.wal_dir.empty()) {
    WalOptions wopts;
    wopts.dir = options_.wal_dir;
    wopts.group_commit_records = options_.group_commit_records;
    wal_ = std::make_unique<ShardWal>(wopts);
  }

  std::vector<std::unique_ptr<Resident>> active;
  bool stopping = false;
  while (true) {
    if (abort_.load(std::memory_order_relaxed)) return;  // simulated kill
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Idle shard: block until work arrives (or a pause lifts). A shard
      // with resident instances never blocks — it polls the mailbox
      // between turns. Going idle is a group-commit barrier: nothing else
      // would flush the buffered tail while we sleep.
      if (active.empty() && !stopping) {
        if (wal_ != nullptr) wal_->FlushAll();
        cv_.wait(lock, [this] {
          return abort_.load(std::memory_order_relaxed) ||
                 (!paused_ && !queue_.empty());
        });
        if (abort_.load(std::memory_order_relaxed)) return;
      }
      while (!paused_ && !queue_.empty() &&
             active.size() < options_.max_resident) {
        EngineCommand cmd = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_.store(queue_.size(), std::memory_order_relaxed);
        if (cmd.kind == EngineCommand::Kind::kStop) {
          stopping = true;
          break;
        }
        if (cmd.kind == EngineCommand::Kind::kCheckpoint) {
          // Checkpoints happen at quiescent turns; mark every resident so
          // each takes one at its next opportunity.
          for (auto& r : active) r->force_checkpoint = true;
          continue;
        }
        lock.unlock();  // world construction happens outside the mailbox
        active.push_back(AdmitInstance(std::move(cmd)));
        resident_.store(active.size(), std::memory_order_relaxed);
        lock.lock();
      }
    }
    if (active.empty()) {
      if (stopping) break;
      continue;
    }
    // One cooperative turn per resident instance, in admission order.
    for (auto it = active.begin(); it != active.end();) {
      if (abort_.load(std::memory_order_relaxed)) return;
      if (StepInstance(**it)) {
        Finish(**it);
        it = active.erase(it);
        resident_.store(active.size(), std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
    PublishCacheGauges();
  }
  // Stop barrier: whatever group commit still holds goes to disk before
  // the worker exits.
  if (wal_ != nullptr) wal_->FlushAll();
  PublishCacheGauges();
}

void Shard::PublishCacheGauges() {
  // The residuator is pure algebra with raw hit/miss tallies; mirror them
  // into gauges here so live telemetry and the post-Stop merged registry
  // both see symbolic-cache effectiveness without obs leaking into algebra/.
  const Residuator* res = ctx_->residuator();
  metrics_.gauge("algebra.residuation_cache_hits")
      ->Set(static_cast<double>(res->cache_hits()));
  metrics_.gauge("algebra.residuation_cache_misses")
      ->Set(static_cast<double>(res->cache_misses()));
}

std::unique_ptr<Shard::Resident> Shard::AdmitInstance(EngineCommand cmd) {
  auto r = std::make_unique<Resident>();
  r->id = cmd.id;
  r->submitted_at_us = cmd.submitted_at_us;
  r->script = std::move(cmd.script);
  r->result.id = cmd.id;
  r->result.tag = r->script.tag;
  r->result.shard = options_.index;

  NetworkOptions nopts;
  nopts.base_latency = options_.base_latency;
  nopts.local_latency = options_.local_latency;
  nopts.jitter = options_.jitter;
  nopts.seed = MixSeed(options_.seed, cmd.id);
  nopts.metrics = &metrics_;
  r->net = std::make_unique<Network>(&r->sim, options_.sites, nopts);

  GuardSchedulerOptions sopts;
  sopts.enable_promises = options_.enable_promises;
  sopts.auto_trigger = options_.auto_trigger;
  sopts.simplify_guards = options_.simplify_guards;
  sopts.symbolic_caches = options_.symbolic_caches;
  sopts.metrics = &metrics_;
  sopts.lifecycle_instrumentation = options_.lifecycle_metrics;
  sopts.profiler = options_.profiler;
  // Flow / trace correlation: messages inside this instance's world carry
  // the instance id as their trace id.
  sopts.trace_id = cmd.id;
  if (options_.durable_logs || wal_ != nullptr) {
    r->log = std::make_unique<EventLog>();
    r->log->set_instance(cmd.id);
    sopts.durable_log = r->log.get();
  }
  r->sched = std::make_unique<GuardScheduler>(ctx_.get(), compiled_,
                                              workflow_, r->net.get(), sopts);

  if (cmd.kind == EngineCommand::Kind::kRecover) {
    // Rebuild pre-crash state from the serialized log. LoadTolerant is the
    // point: a log torn by a crash mid-append loses only its final record
    // (or a checkpoint section torn at EOF, which its covered records
    // replace).
    r->phase = Resident::Phase::kClosing;
    auto log = EventLog::LoadTolerant(*ctx_->alphabet(), cmd.log_text);
    if (!log.ok()) {
      r->result.error = StrCat("recovery log unreadable: ",
                               log.status().ToString());
      r->phase = Resident::Phase::kDone;
      return r;
    }
    Status recovered = r->sched->Recover(log.value());
    if (!recovered.ok()) {
      r->result.error = StrCat("recovery failed: ", recovered.ToString());
      r->phase = Resident::Phase::kDone;
      return r;
    }
    if (r->log != nullptr) {
      // Seed the new durable log with the recovered image — checkpoint
      // section and suffix records both — so a second crash still has the
      // full story. The scheduler's durable_log pointer is stable across
      // this assignment.
      *r->log = log.value();
      r->log->set_instance(cmd.id);
      r->wal_seen = r->log->records().size();
    }
    if (log.value().total_records() > 0) {
      // Resume the instance clock at the crash point so post-recovery
      // stamps stay monotone with the recovered prefix.
      r->sim.RunUntil(log.value().last_stamp().time);
    }
  }
  if (wal_ != nullptr && r->log != nullptr &&
      r->phase != Resident::Phase::kDone) {
    // The WAL file exists from the first moment the instance might write
    // records; on recovery it is rebuilt as the recovered image (the old
    // file may have had a torn tail or belong to a pre-compaction state).
    wal_->Create(r->id, r->log->SerializeOpen(*ctx_->alphabet()));
  }
  return r;
}

bool Shard::StepInstance(Resident& r) {
  if (r.sim.pending() > 0) {
    sim_steps_.fetch_add(r.sim.Run(options_.step_batch),
                         std::memory_order_relaxed);
    SyncWal(r);  // records the batch just produced, on group-commit terms
    if (r.sim.pending() > 0) return false;  // yield; more next turn
  }
  // The instance world is quiescent — the only cut where a checkpoint is
  // consistent (no announcement is in flight between actors).
  MaybeCheckpoint(r);
  // Advance the script state machine.
  switch (r.phase) {
    case Resident::Phase::kScript: {
      if (r.pos < r.script.attempts.size()) {
        const std::string& name = r.script.attempts[r.pos++];
        Result<EventLiteral> literal = ctx_->alphabet()->ParseLiteral(name);
        if (!literal.ok()) {
          r.result.error = StrCat("unknown event '", name, "'");
          r.phase = Resident::Phase::kDone;
          return true;
        }
        InstanceResult* result = &r.result;
        r.sched->Attempt(literal.value(), [result](Decision d) {
          if (d == Decision::kAccepted) ++result->accepted;
          if (d == Decision::kRejected) ++result->rejected;
        });
        return false;
      }
      if (!r.script.close) {
        r.phase = Resident::Phase::kDone;
        return true;
      }
      r.phase = Resident::Phase::kClosing;
      return false;
    }
    case Resident::Phase::kClosing: {
      if (r.sched->Undecided().empty() ||
          ++r.close_rounds > options_.max_close_rounds) {
        r.phase = Resident::Phase::kDone;
        return true;
      }
      r.sched->Close();
      return false;
    }
    case Resident::Phase::kDone:
      return true;
  }
  return true;
}

void Shard::SyncWal(Resident& r) {
  if (wal_ == nullptr || r.log == nullptr) return;
  const std::vector<EventLog::Record>& records = r.log->records();
  CDES_CHECK(r.wal_seen <= records.size());
  for (size_t i = r.wal_seen; i < records.size(); ++i) {
    wal_->Append(r.id, EventLog::RecordLine(records[i], *ctx_->alphabet()));
    metrics_.counter("engine.wal.records")->Increment();
  }
  r.wal_seen = records.size();
  if (wal_->ShouldFlush()) {
    // Group commit: one filesystem pass covers every resident's buffered
    // appends, not just this instance's.
    wal_->FlushAll();
    metrics_.counter("engine.wal.group_commits")->Increment();
  }
}

void Shard::MaybeCheckpoint(Resident& r) {
  if (wal_ == nullptr || r.log == nullptr || r.sched == nullptr) return;
  if (r.phase == Resident::Phase::kDone || !r.result.error.empty()) return;
  bool due = r.force_checkpoint ||
             (options_.checkpoint_every > 0 &&
              r.log->records().size() >= options_.checkpoint_every);
  r.force_checkpoint = false;
  if (!due || r.log->records().empty()) return;
  // Phase 1 — durable checkpoint: covered records first, then the section
  // appended behind them, flushed as one barrier. A crash after this
  // leaves prefix + checkpoint in the file; recovery takes the checkpoint
  // (last intact one wins) and the prefix is dead weight.
  SyncWal(r);
  EventLog::CheckpointSection section;
  section.covered = r.log->total_records();
  section.last_stamp = r.log->last_stamp();
  section.payload =
      SerializeCheckpoint(r.sched->Snapshot(), *ctx_->alphabet());
  wal_->Append(r.id, EventLog::SectionText(section));
  if (Status flushed = wal_->Flush(r.id); !flushed.ok()) {
    metrics_.counter("engine.wal.errors")->Increment();
    return;  // no compaction without a durable checkpoint
  }
  // Phase 2 — compact: install in memory, then atomically rewrite the file
  // as header + checkpoint + empty suffix. rename(2) makes the rewrite
  // all-or-nothing; a crash between the phases is exactly the state
  // phase 1 made durable.
  r.log->InstallCheckpoint(std::move(section));
  r.wal_seen = 0;
  if (Status rewrote =
          wal_->Rewrite(r.id, r.log->SerializeOpen(*ctx_->alphabet()));
      !rewrote.ok()) {
    metrics_.counter("engine.wal.errors")->Increment();
    return;  // in-memory state is still coherent; the file keeps phase 1
  }
  metrics_.counter("engine.checkpoints")->Increment();
}

void Shard::Finish(Resident& r) {
  if (r.result.error.empty()) {
    r.result.events = r.sched->history().size();
    r.result.sim_time = r.sim.now();
    r.result.maximal = r.sched->Undecided().empty();
    // A maximal trace must satisfy every dependency outright; a partial
    // one only has to keep every residual satisfiable.
    r.result.consistent = r.sched->HistoryConsistent(r.result.maximal);
    r.result.history = TraceToString(r.sched->history(), *ctx_->alphabet());
    if (r.log != nullptr) {
      r.result.log_text = r.log->Serialize(*ctx_->alphabet());
    }
  }
  if (wal_ != nullptr && r.log != nullptr) {
    // The instance is complete: its durable record is the sealed log in
    // the result, and the in-flight WAL file (plus any buffered tail)
    // retires with it — RecoverDir must only resurrect unfinished work.
    wal_->Remove(r.id);
  }
  events_.fetch_add(r.result.events, std::memory_order_relaxed);
  instances_completed_.fetch_add(1, std::memory_order_relaxed);
  manager_->Complete(std::move(r.result), r.submitted_at_us, NowUs());
}

}  // namespace cdes::engine
