#ifndef CDES_ENGINE_SHARD_H_
#define CDES_ENGINE_SHARD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine_spec.h"
#include "engine/instance.h"
#include "engine/wal.h"
#include "guards/context.h"
#include "guards/workflow.h"
#include "obs/obs.h"
#include "sched/guard_scheduler.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace cdes::engine {

/// Per-shard knobs, derived by the Engine from its EngineOptions.
struct ShardOptions {
  size_t index = 0;
  /// Cap on instances interleaved on the shard at once; commands beyond it
  /// wait in the mailbox.
  size_t max_resident = 64;
  /// Simulator events one instance may execute per cooperative turn before
  /// yielding to the next resident instance.
  size_t step_batch = 64;
  /// Engine seed; each instance's network RNG is seeded from (seed,
  /// instance id) only, which is what makes histories independent of shard
  /// count and placement.
  uint64_t seed = 1;
  /// Per-instance simulated-network shape.
  size_t sites = 1;
  SimTime base_latency = 1000;
  SimTime local_latency = 1;
  SimTime jitter = 0;
  /// Scheduler behavior (GuardSchedulerOptions passthrough).
  bool enable_promises = true;
  bool auto_trigger = true;
  bool simplify_guards = true;
  /// Shard-shared symbolic caches (reduction memo + flat evaluation); off
  /// reproduces pre-memoization behavior for ablation benchmarks.
  bool symbolic_caches = true;
  /// Keep a per-instance EventLog and ship its serialized form in the
  /// result (enables Engine::Recover).
  bool durable_logs = false;
  /// When non-empty, mirror every resident instance's log to
  /// `<wal_dir>/<id>.log` as it runs (implies durable_logs): the on-disk
  /// WAL a crashed engine recovers from via Engine::RecoverDir.
  std::string wal_dir;
  /// Checkpoint + compact an instance's WAL once its record suffix reaches
  /// this many records (at the instance's next quiescent turn). 0 = only
  /// on explicit Engine::Checkpoint().
  size_t checkpoint_every = 0;
  /// Group commit: WAL appends buffer across residents and reach the
  /// filesystem once this many lines accumulated (or at a barrier:
  /// checkpoint, completion, idle, stop). 1 = write-through.
  size_t group_commit_records = 1;
  /// Start with the mailbox paused: commands queue but nothing runs until
  /// Resume() (deterministic backpressure tests, bench preloading).
  bool start_paused = false;
  /// Closure waves before giving up on maximality (closure can need
  /// several waves when complements park against in-flight announcements).
  size_t max_close_rounds = 16;
  /// Wall-clock epoch for instance-span timestamps.
  std::chrono::steady_clock::time_point epoch{};
  /// Shared guard profiler every resident scheduler attributes to
  /// (thread-safe; one profiler serves all shards). Null = off.
  obs::GuardProfiler* profiler = nullptr;
  /// Enable the per-instance sched.* lifecycle histograms.
  bool lifecycle_metrics = false;
};

/// One worker: a thread owning an MPSC mailbox of EngineCommands and a set
/// of resident workflow instances it steps cooperatively (round-robin, a
/// bounded batch of simulator events per instance per turn — so thousands
/// of submitted instances make progress with at most `max_resident` worlds
/// live at once).
///
/// Thread-confinement is the shard's whole concurrency story: the
/// WorkflowContext (arenas, alphabet), the compiled guard table, every
/// resident Simulator/Network/GuardScheduler, and the shard's
/// MetricsRegistry are touched exclusively by the worker thread. The
/// compiled table is materialized once on that thread and shared by all
/// resident instances via CompiledWorkflowRef — the hash-consed arenas
/// double as a cross-instance memo: reductions computed for one instance
/// are cache hits for every later instance in the same state. Cross-thread
/// traffic is the mailbox (mutex + condvar) and a few atomic counters.
class Shard {
 public:
  Shard(EngineSpecRef spec, const ShardOptions& options,
        InstanceManager* manager);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Spawns the worker thread.
  void Start();
  /// Enqueues a command (any thread).
  void Push(EngineCommand cmd);
  /// Unpauses a paused mailbox (any thread).
  void Resume();
  /// Waits for the worker to finish (it exits after draining a kStop).
  void Join();
  /// Simulated kill −9 (any thread): the worker exits at its next check
  /// without finishing residents, flushing WAL buffers, or reporting
  /// results — on-disk WAL files keep only what group commit already
  /// flushed. Join() afterwards; the shard is then dead. Test/chaos hook.
  void Abort();

  // ---- Cross-thread introspection (atomics) ----
  size_t queue_depth() const { return queue_depth_.load(std::memory_order_relaxed); }
  size_t resident() const { return resident_.load(std::memory_order_relaxed); }
  uint64_t events() const { return events_.load(std::memory_order_relaxed); }
  uint64_t instances_completed() const {
    return instances_completed_.load(std::memory_order_relaxed);
  }
  uint64_t sim_steps() const {
    return sim_steps_.load(std::memory_order_relaxed);
  }

  /// The shard-private registry all resident schedulers and networks
  /// report into ("sched.*", "net.*"). Worker-thread-confined while the
  /// shard runs: read it only after Join().
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// One live instance world. Members are declared in dependency order
  /// (sim before net before sched) so destruction unwinds safely.
  struct Resident {
    uint64_t id = 0;
    uint64_t submitted_at_us = 0;
    InstanceScript script;
    size_t pos = 0;
    enum class Phase { kScript, kClosing, kDone } phase = Phase::kScript;
    size_t close_rounds = 0;
    /// Log records already pushed to the WAL buffer (index into
    /// log->records(); resets to 0 when a checkpoint clears the suffix).
    size_t wal_seen = 0;
    /// Checkpoint at the next quiescent turn regardless of policy
    /// (Engine::Checkpoint / kCheckpoint command).
    bool force_checkpoint = false;
    Simulator sim;
    std::unique_ptr<Network> net;
    std::unique_ptr<EventLog> log;
    std::unique_ptr<GuardScheduler> sched;
    InstanceResult result;
  };

  void ThreadMain();
  /// Mirrors the residuator's raw hit/miss tallies into shard gauges.
  void PublishCacheGauges();
  /// Builds the instance world for a kRun/kRecover command.
  std::unique_ptr<Resident> AdmitInstance(EngineCommand cmd);
  /// One cooperative turn; returns true when the instance is finished.
  bool StepInstance(Resident& r);
  /// Seals the result and reports it to the InstanceManager.
  void Finish(Resident& r);
  /// Pushes new log records to the WAL buffer; flushes on the group-commit
  /// threshold.
  void SyncWal(Resident& r);
  /// At quiescence: checkpoint + compact the instance's log and WAL file
  /// when the policy (or a forced checkpoint) says so. Two durable phases:
  /// (1) covered records + checkpoint section appended and flushed — a
  /// crash after this recovers from the checkpoint even though the prefix
  /// is still in the file; (2) atomic rewrite of the file as header +
  /// checkpoint + empty suffix.
  void MaybeCheckpoint(Resident& r);
  uint64_t NowUs() const;

  const EngineSpecRef spec_;
  const ShardOptions options_;
  InstanceManager* const manager_;

  // ---- Worker-thread-confined state ----
  std::unique_ptr<WorkflowContext> ctx_;
  ParsedWorkflow workflow_;
  CompiledWorkflowRef compiled_;
  std::unique_ptr<ShardWal> wal_;
  obs::MetricsRegistry metrics_;

  // ---- Mailbox ----
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<EngineCommand> queue_;
  bool paused_ = false;
  /// Simulated crash switch (Abort()); checked between cooperative turns.
  std::atomic<bool> abort_{false};

  // ---- Cross-thread counters ----
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> resident_{0};
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> instances_completed_{0};
  std::atomic<uint64_t> sim_steps_{0};

  std::thread thread_;
};

}  // namespace cdes::engine

#endif  // CDES_ENGINE_SHARD_H_
