#include "engine/wal.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"

namespace cdes::engine {
namespace {

Status WriteWhole(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrCat("cannot open '", path, "' for writing"));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int closed = std::fclose(f);
  if (written != content.size() || closed != 0) {
    return Status::Internal(StrCat("short write to '", path, "'"));
  }
  return Status::OK();
}

}  // namespace

ShardWal::ShardWal(const WalOptions& options) : options_(options) {
  CDES_CHECK(!options_.dir.empty()) << "ShardWal needs a directory";
  CDES_CHECK(options_.group_commit_records > 0);
}

std::string ShardWal::PathFor(uint64_t id) const {
  return StrCat(options_.dir, "/", id, ".log");
}

Status ShardWal::Create(uint64_t id, const std::string& content) {
  buffers_.erase(id);
  return Rewrite(id, content);
}

void ShardWal::Append(uint64_t id, const std::string& text) {
  buffers_[id] += text;
  // Count lines, not calls: a checkpoint section appends several lines at
  // once and each is one durable record for group-commit accounting.
  pending_appends_ += static_cast<size_t>(
      std::count(text.begin(), text.end(), '\n'));
}

Status ShardWal::Flush(uint64_t id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end() || it->second.empty()) return Status::OK();
  std::FILE* f = std::fopen(PathFor(id).c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal(
        StrCat("cannot open '", PathFor(id), "' for append"));
  }
  size_t written = std::fwrite(it->second.data(), 1, it->second.size(), f);
  int closed = std::fclose(f);
  if (written != it->second.size() || closed != 0) {
    return Status::Internal(StrCat("short append to '", PathFor(id), "'"));
  }
  // Conservative: a partially flushed buffer would double lines on retry,
  // so the count drops only after the whole buffer landed.
  pending_appends_ -= std::count(it->second.begin(), it->second.end(), '\n');
  buffers_.erase(it);
  return Status::OK();
}

Status ShardWal::FlushAll() {
  // Collect ids first: Flush erases its buffer entry.
  std::vector<uint64_t> ids;
  ids.reserve(buffers_.size());
  for (const auto& [id, text] : buffers_) ids.push_back(id);
  for (uint64_t id : ids) {
    Status s = Flush(id);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardWal::Rewrite(uint64_t id, const std::string& content) {
  // tmp + rename: the visible file is always a complete image. A crash
  // before the rename leaves the old file intact; after it, the new one.
  std::string path = PathFor(id);
  std::string tmp = StrCat(path, ".tmp");
  Status s = WriteWhole(tmp, content);
  if (!s.ok()) return s;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(StrCat("cannot rename '", tmp, "'"));
  }
  auto it = buffers_.find(id);
  if (it != buffers_.end()) {
    pending_appends_ -=
        std::count(it->second.begin(), it->second.end(), '\n');
    buffers_.erase(it);
  }
  return Status::OK();
}

Status ShardWal::Remove(uint64_t id) {
  auto it = buffers_.find(id);
  if (it != buffers_.end()) {
    pending_appends_ -=
        std::count(it->second.begin(), it->second.end(), '\n');
    buffers_.erase(it);
  }
  std::remove(PathFor(id).c_str());  // absent file is fine
  return Status::OK();
}

}  // namespace cdes::engine
