#ifndef CDES_ENGINE_WAL_H_
#define CDES_ENGINE_WAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cdes::engine {

struct WalOptions {
  /// Directory holding one `<instance-id>.log` file per in-flight instance.
  std::string dir;
  /// Group commit: buffered appends (across all resident instances of the
  /// shard) are written out once this many have accumulated, or at a
  /// barrier (checkpoint, instance completion, shard idle/stop) — whichever
  /// comes first. 1 = write through on every append.
  size_t group_commit_records = 1;
};

/// The durable face of one shard: per-instance write-ahead log files with
/// group commit. Appends buffer in memory across all resident instances
/// and reach the filesystem in batches, so durability is no longer one
/// write per occurrence; the trade is the WAL's whole crash story — a kill
/// between flushes loses exactly the buffered tail of each file, which the
/// v3 log format absorbs (EventLog::LoadTolerant drops a torn final line;
/// fully flushed lines carry their own checksums).
///
/// Writing discipline:
///  - Create / Rewrite produce a complete file via tmp + atomic rename, so
///    a file is never half-initialized and compaction (rewriting a log as
///    header + checkpoint) can never be caught half-done — rename(2) either
///    happened or it did not.
///  - Append + Flush add complete lines at the end of an existing file
///    (open-append-close; no descriptors held across calls), so a crash
///    tears at most the final line.
///
/// Worker-thread-confined, like everything else a shard owns; one ShardWal
/// serves all residents of its shard.
class ShardWal {
 public:
  explicit ShardWal(const WalOptions& options);

  ShardWal(const ShardWal&) = delete;
  ShardWal& operator=(const ShardWal&) = delete;

  /// `<dir>/<id>.log`.
  std::string PathFor(uint64_t id) const;

  /// Atomically creates (or replaces) the instance's file with `content`.
  Status Create(uint64_t id, const std::string& content);

  /// Buffers `text` (one or more complete lines) for the instance's file.
  void Append(uint64_t id, const std::string& text);

  /// Whether the group-commit policy calls for a flush now.
  bool ShouldFlush() const { return pending_appends_ >= options_.group_commit_records; }

  /// Writes one instance's buffered appends to its file.
  Status Flush(uint64_t id);
  /// Writes every buffered append out (group commit / barrier).
  Status FlushAll();

  /// Atomically replaces the instance's file with `content`, discarding any
  /// buffered appends for it (they are part of `content` already).
  Status Rewrite(uint64_t id, const std::string& content);

  /// Drops the instance's file and buffers (instance completed; its sealed
  /// log lives in the InstanceResult).
  Status Remove(uint64_t id);

  /// Buffered appends not yet on disk (across all instances).
  size_t pending_appends() const { return pending_appends_; }

 private:
  const WalOptions options_;
  /// instance id → concatenated buffered append text.
  std::map<uint64_t, std::string> buffers_;
  size_t pending_appends_ = 0;
};

}  // namespace cdes::engine

#endif  // CDES_ENGINE_WAL_H_
