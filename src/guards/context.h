#ifndef CDES_GUARDS_CONTEXT_H_
#define CDES_GUARDS_CONTEXT_H_

#include "algebra/event.h"
#include "algebra/expr.h"
#include "algebra/residuation.h"
#include "guards/synthesis.h"
#include "temporal/flat_eval.h"
#include "temporal/guard.h"
#include "temporal/reduction.h"

namespace cdes {

/// Bundles the per-system shared state: the alphabet, the hash-consed
/// expression and guard arenas, the residuation engine and the guard
/// synthesizer. Expressions and guards from one context must not be mixed
/// with another context's.
///
/// This is the usual entry point of the library:
///
///   WorkflowContext ctx;
///   EventLiteral e = ctx.alphabet()->InternLiteral("commit_buy");
///   const Expr* d = ...;                        // build dependencies
///   const Guard* g = ctx.synthesizer()->Synthesize(d, e);
class WorkflowContext {
 public:
  WorkflowContext()
      : guards_(&exprs_), residuator_(&exprs_),
        synthesizer_(&guards_, &residuator_) {}

  WorkflowContext(const WorkflowContext&) = delete;
  WorkflowContext& operator=(const WorkflowContext&) = delete;

  Alphabet* alphabet() { return &alphabet_; }
  const Alphabet& alphabet() const { return alphabet_; }
  ExprArena* exprs() { return &exprs_; }
  GuardArena* guards() { return &guards_; }
  Residuator* residuator() { return &residuator_; }
  GuardSynthesizer* synthesizer() { return &synthesizer_; }
  /// The shard-shared (guard, announcement) → reduced-guard memo; thread-
  /// confined with the arenas. Consumers that want memoized assimilation
  /// pass this to ReduceGuard; the cache is correct to share across every
  /// instance built over this context.
  ReductionCache* reduction_cache() { return &reduction_cache_; }
  /// Flat compiled evaluation over this context's guards: postorder
  /// programs plus memoized EvaluateNow/CommitNow projections.
  FlatEvaluator* flat_evaluator() { return &flat_evaluator_; }

 private:
  Alphabet alphabet_;
  ExprArena exprs_;
  GuardArena guards_;
  Residuator residuator_;
  GuardSynthesizer synthesizer_;
  ReductionCache reduction_cache_;
  FlatEvaluator flat_evaluator_;
};

}  // namespace cdes

#endif  // CDES_GUARDS_CONTEXT_H_
