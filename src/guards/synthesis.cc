#include "guards/synthesis.h"

#include <algorithm>
#include <numeric>

#include "temporal/simplify.h"

namespace cdes {
namespace {

// Union-find over the children of an Or/And node, merged by shared
// symbols; returns component-representative index per child, or an empty
// vector when there is a single component.
std::vector<size_t> SymbolComponents(const std::vector<const Expr*>& kids) {
  std::vector<size_t> parent(kids.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::map<SymbolId, size_t> owner;
  for (size_t i = 0; i < kids.size(); ++i) {
    for (SymbolId s : MentionedSymbols(kids[i])) {
      auto [it, inserted] = owner.emplace(s, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::vector<size_t> roots(kids.size());
  std::set<size_t> distinct;
  for (size_t i = 0; i < kids.size(); ++i) {
    roots[i] = find(i);
    distinct.insert(roots[i]);
  }
  if (distinct.size() <= 1) return {};
  return roots;
}

}  // namespace

const Guard* GuardSynthesizer::Synthesize(const Expr* d, EventLiteral e) {
  return SynthesizeImpl(residuator_->NormalForm(d), e);
}

const Guard* GuardSynthesizer::SynthesizeImpl(const Expr* d, EventLiteral e) {
  auto key = std::make_pair(d, e);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const Guard* result = nullptr;

  // Theorems 2 and 4: when D splits into parts over disjoint alphabets,
  // G distributes over + and | of the parts.
  if (d->kind() == ExprKind::kOr || d->kind() == ExprKind::kAnd) {
    std::vector<size_t> roots = SymbolComponents(d->children());
    if (!roots.empty()) {
      std::map<size_t, std::vector<const Expr*>> groups;
      for (size_t i = 0; i < d->children().size(); ++i) {
        groups[roots[i]].push_back(d->children()[i]);
      }
      std::vector<const Guard*> parts;
      parts.reserve(groups.size());
      ExprArena* exprs = residuator_->arena();
      for (auto& [root, members] : groups) {
        const Expr* part = d->kind() == ExprKind::kOr ? exprs->Or(members)
                                                      : exprs->And(members);
        parts.push_back(SynthesizeImpl(part, e));
      }
      result = d->kind() == ExprKind::kOr ? guards_->Or(parts)
                                          : guards_->And(parts);
      cache_.emplace(key, result);
      return result;
    }
  }

  // Definition 2 proper.
  std::vector<EventLiteral> side = GammaExcluding(d, e);
  std::vector<const Guard*> summands;
  summands.reserve(side.size() + 1);
  // Case: e occurs before any other event mentioned by D.
  std::vector<const Guard*> first;
  first.reserve(side.size() + 1);
  first.push_back(guards_->Diamond(residuator_->Residuate(d, e)));
  for (EventLiteral f : side) first.push_back(guards_->Neg(f));
  summands.push_back(guards_->And(first));
  // Cases: some other event f occurred first.
  for (EventLiteral f : side) {
    const Guard* rest = SynthesizeImpl(residuator_->Residuate(d, f), e);
    summands.push_back(guards_->And(guards_->Box(f), rest));
  }
  result = guards_->Or(summands);
  cache_.emplace(key, result);
  return result;
}

const Guard* GuardSynthesizer::SynthesizeSimplified(const Expr* d,
                                                    EventLiteral e) {
  return SimplifyGuard(guards_, Synthesize(d, e));
}

const Guard* GuardSynthesizer::PathGuard(const Trace& path, size_t k) {
  CDES_CHECK_LT(k, path.size());
  std::vector<const Guard*> conj;
  conj.reserve(path.size());
  for (size_t i = 0; i < k; ++i) conj.push_back(guards_->Box(path[i]));
  std::vector<const Expr*> tail;
  tail.reserve(path.size() - k - 1);
  for (size_t i = k + 1; i < path.size(); ++i) {
    conj.push_back(guards_->Neg(path[i]));
    tail.push_back(residuator_->arena()->Atom(path[i]));
  }
  if (!tail.empty()) {
    conj.push_back(guards_->Diamond(residuator_->arena()->Seq(tail)));
  }
  return guards_->And(conj);
}

const Guard* GuardSynthesizer::SynthesizeViaPaths(const Expr* d,
                                                  EventLiteral e) {
  std::vector<const Guard*> summands;
  for (const Trace& path : EnumeratePaths(residuator_, d)) {
    for (size_t k = 0; k < path.size(); ++k) {
      if (path[k] == e) summands.push_back(PathGuard(path, k));
    }
  }
  return guards_->Or(summands);
}

}  // namespace cdes
