#ifndef CDES_GUARDS_SYNTHESIS_H_
#define CDES_GUARDS_SYNTHESIS_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/residuation.h"
#include "temporal/guard.h"

namespace cdes {

/// Computes guards on events from dependencies (§4.2, Definition 2):
///
///   G(D, e) = (◇(D/e) | ∧_{f ∈ Γ_{D^e}} ¬f)  +  Σ_{f ∈ Γ_{D^e}} (□f | G(D/f, e))
///
/// The first summand covers computations where e occurs before any other
/// event D cares about; each remaining summand covers those where some
/// other event f occurred first (Lemma 3 justifies this case split).
///
/// Recursion terminates because a residual never mentions the symbol it
/// was residuated by, so Γ strictly shrinks. Results are memoized on the
/// hash-consed (dependency, literal) pair — the precompilation the paper's
/// §6 relies on for runtime efficiency.
class GuardSynthesizer {
 public:
  GuardSynthesizer(GuardArena* guards, Residuator* residuator)
      : guards_(guards), residuator_(residuator) {}

  GuardSynthesizer(const GuardSynthesizer&) = delete;
  GuardSynthesizer& operator=(const GuardSynthesizer&) = delete;

  /// G(D, e), exactly per Definition 2 (plus the Theorem 2/4 split: when D
  /// is a choice/conjunction of parts over disjoint alphabets, guards are
  /// synthesized per part and recombined, avoiding the cross-product
  /// recursion).
  const Guard* Synthesize(const Expr* d, EventLiteral e);

  /// Synthesize followed by semantic canonicalization (SimplifyGuard) —
  /// yields the succinct forms of Example 9. Exponential in |Γ_D| symbols;
  /// use `Synthesize` alone for large dependencies.
  const Guard* SynthesizeSimplified(const Expr* d, EventLiteral e);

  /// The per-path guard of Lemma 5: for ρ = e1…en ∈ Π(D) with ρ_k the
  /// event being guarded,
  ///   G(ρ, ρ_k) = □e1|…|□e_{k-1} | ¬e_{k+1}|…|¬e_n | ◇(e_{k+1}·…·e_n).
  /// `k` is zero-based into `path`.
  const Guard* PathGuard(const Trace& path, size_t k);

  /// Lemma 5's right-hand side: the sum of PathGuard over every occurrence
  /// of `e` in every path of Π(D). Used to cross-check Synthesize.
  const Guard* SynthesizeViaPaths(const Expr* d, EventLiteral e);

  GuardArena* guards() const { return guards_; }
  Residuator* residuator() const { return residuator_; }

  /// Number of distinct (dependency, literal) synthesis results memoized.
  size_t cache_size() const { return cache_.size(); }

 private:
  const Guard* SynthesizeImpl(const Expr* d, EventLiteral e);

  struct SynthKeyHash {
    size_t operator()(const std::pair<const Expr*, EventLiteral>& k) const {
      size_t h = std::hash<const void*>()(k.first);
      h ^= std::hash<uint32_t>()(k.second.index()) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h;
    }
  };

  GuardArena* guards_;
  Residuator* residuator_;
  std::unordered_map<std::pair<const Expr*, EventLiteral>, const Guard*,
                     SynthKeyHash>
      cache_;
};

}  // namespace cdes

#endif  // CDES_GUARDS_SYNTHESIS_H_
