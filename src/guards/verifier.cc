#include "guards/verifier.h"

#include <deque>
#include <set>

#include "common/strings.h"
#include "runtime/event_actor.h"
#include "temporal/reduction.h"

namespace cdes {
namespace {

class Explorer {
 public:
  Explorer(WorkflowContext* ctx, const WorkflowSpec& spec,
           const VerifyOptions& options)
      : ctx_(ctx), spec_(spec), options_(options),
        compiled_(CompileWorkflow(ctx, spec)) {}

  Result<VerificationReport> Run() {
    VerificationReport report;
    if (compiled_.impossible()) {
      // Nothing is ever enabled; the empty space is trivially safe.
      report.states_explored = 1;
      return report;
    }
    std::set<Trace> seen;
    std::deque<Trace> frontier = {Trace{}};
    size_t symbol_count = compiled_.symbols().size();
    while (!frontier.empty()) {
      Trace u = frontier.front();
      frontier.pop_front();
      if (!seen.insert(u).second) continue;
      if (seen.size() > options_.max_states) {
        return Status::OutOfRange(
            StrCat("state cap of ", options_.max_states,
                   " hit before the schedule space was covered"));
      }
      ++report.states_explored;

      if (const Dependency* dep = FirstViolated(u); dep != nullptr) {
        report.safety_violations.push_back(
            VerificationReport::SafetyViolation{u, dep->name});
        if (options_.first_failure_only) return report;
        continue;  // do not explore past a violation
      }
      std::vector<EventLiteral> enabled = EnabledNow(u);
      if (u.size() == symbol_count) {
        if (const Dependency* dep = FirstUnsatisfied(u); dep != nullptr) {
          report.liveness_gaps.push_back(
              VerificationReport::LivenessGap{u, dep->name});
          if (options_.first_failure_only) return report;
        }
      }
      for (size_t i = 0; i < enabled.size(); ++i) {
        for (size_t j = 0; j < enabled.size(); ++j) {
          if (i == j || enabled[i].symbol() == enabled[j].symbol()) continue;
          Trace both = u;
          both.push_back(enabled[i]);
          both.push_back(enabled[j]);
          if (FirstViolated(both) != nullptr) {
            report.negation_races.push_back(VerificationReport::NegationRace{
                u, enabled[i], enabled[j]});
            if (options_.first_failure_only) return report;
          }
        }
      }
      for (EventLiteral l : enabled) {
        Trace next = u;
        next.push_back(l);
        frontier.push_back(next);
      }
    }
    return report;
  }

 private:
  const Guard* ReducedGuard(const Trace& u, EventLiteral literal) const {
    const Guard* g = compiled_.GuardFor(literal);
    for (EventLiteral occurred : u) {
      g = ReduceGuard(ctx_->guards(), ctx_->residuator(), g,
                      {AnnouncementKind::kOccurred, occurred});
    }
    return g;
  }

  std::vector<EventLiteral> EnabledNow(const Trace& u) const {
    std::vector<EventLiteral> out;
    for (SymbolId s : compiled_.symbols()) {
      bool decided = false;
      for (EventLiteral l : u) decided |= (l.symbol() == s);
      if (decided) continue;
      for (EventLiteral l :
           {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
        if (EventActor::EvaluateNow(ReducedGuard(u, l))) out.push_back(l);
      }
    }
    return out;
  }

  const Dependency* FirstViolated(const Trace& u) const {
    for (const Dependency& dep : spec_.dependencies()) {
      if (ctx_->residuator()->ResiduateTrace(dep.expr, u)->IsZero()) {
        return &dep;
      }
    }
    return nullptr;
  }

  const Dependency* FirstUnsatisfied(const Trace& u) const {
    for (const Dependency& dep : spec_.dependencies()) {
      if (!ctx_->residuator()->ResiduateTrace(dep.expr, u)->IsTop()) {
        return &dep;
      }
    }
    return nullptr;
  }

  WorkflowContext* ctx_;
  const WorkflowSpec& spec_;
  VerifyOptions options_;
  CompiledWorkflow compiled_;
};

}  // namespace

std::string VerificationReport::ToString(const Alphabet& alphabet) const {
  if (ok()) {
    return StrCat("ok (", states_explored, " reachable prefixes explored)");
  }
  std::string out;
  for (const SafetyViolation& v : safety_violations) {
    out += StrCat("safety: prefix ", TraceToString(v.prefix, alphabet),
                  " violates ", v.dependency, "\n");
  }
  for (const NegationRace& r : negation_races) {
    out += StrCat("race: after ", TraceToString(r.prefix, alphabet), ", ",
                  alphabet.LiteralName(r.first), " then ",
                  alphabet.LiteralName(r.second),
                  " violates a dependency while both are enabled\n");
  }
  for (const LivenessGap& gap : liveness_gaps) {
    out += StrCat("liveness: maximal trace ",
                  TraceToString(gap.trace, alphabet), " leaves ",
                  gap.dependency, " unsatisfied\n");
  }
  return out;
}

Result<VerificationReport> VerifyScheduleSpace(WorkflowContext* ctx,
                                               const WorkflowSpec& spec,
                                               const VerifyOptions& options) {
  return Explorer(ctx, spec, options).Run();
}

}  // namespace cdes
