#ifndef CDES_GUARDS_VERIFIER_H_
#define CDES_GUARDS_VERIFIER_H_

#include <string>
#include <vector>

#include "guards/workflow.h"

namespace cdes {

/// What a schedule-space exploration found (§6: "The compilation phase can
/// detect these conditions..."). Empty vectors mean the workflow's guard
/// discipline is safe under every interleaving.
struct VerificationReport {
  /// A prefix reachable under the guard discipline that already violates a
  /// dependency (should be impossible for synthesized guards; indicates a
  /// hand-written guard table or a bug).
  struct SafetyViolation {
    Trace prefix;
    std::string dependency;
  };

  /// Two events simultaneously enabled whose firing order matters — the
  /// distributed ¬-agreement problem of §4.3. For guards synthesized by
  /// Definition 2 this list is empty, which is exactly the paper's remark
  /// that "certain consensus requirements can be eliminated without loss
  /// of correctness".
  struct NegationRace {
    Trace prefix;
    EventLiteral first;
    EventLiteral second;
  };

  /// A maximal reachable trace that leaves some dependency unsatisfied.
  struct LivenessGap {
    Trace trace;
    std::string dependency;
  };

  std::vector<SafetyViolation> safety_violations;
  std::vector<NegationRace> negation_races;
  std::vector<LivenessGap> liveness_gaps;
  /// Number of distinct reachable prefixes explored.
  size_t states_explored = 0;

  bool ok() const {
    return safety_violations.empty() && negation_races.empty() &&
           liveness_gaps.empty();
  }

  std::string ToString(const Alphabet& alphabet) const;
};

struct VerifyOptions {
  /// Stop after this many explored prefixes (exploration is exponential in
  /// the alphabet; workflows of up to ~6 symbols verify exhaustively).
  size_t max_states = 200000;
  /// Stop at the first finding of each kind.
  bool first_failure_only = true;
};

/// Exhaustively explores every prefix reachable when events fire exactly
/// when their reduced guard licenses occurrence now (the optimistic ¬
/// evaluation the distributed actors use), checking safety, ¬-race
/// freedom, and terminal satisfaction. Returns OutOfRange if the state cap
/// was hit before the space was covered.
Result<VerificationReport> VerifyScheduleSpace(
    WorkflowContext* ctx, const WorkflowSpec& spec,
    const VerifyOptions& options = {});

}  // namespace cdes

#endif  // CDES_GUARDS_VERIFIER_H_
