#include "guards/workflow.h"

#include "algebra/residuation.h"
#include "algebra/semantics.h"
#include "obs/profiler.h"
#include "temporal/guard_semantics.h"
#include "temporal/simplify.h"

namespace cdes {

std::set<SymbolId> WorkflowSpec::Symbols() const {
  std::set<SymbolId> out;
  for (const Dependency& d : dependencies_) {
    std::set<SymbolId> s = MentionedSymbols(d.expr);
    out.insert(s.begin(), s.end());
  }
  return out;
}

const Guard* CompiledWorkflow::GuardFor(EventLiteral literal) const {
  auto it = guards_.find(literal);
  return it == guards_.end() ? top_ : it->second;
}

const std::vector<std::pair<size_t, const Guard*>>&
CompiledWorkflow::ContributionsFor(EventLiteral literal) const {
  auto it = contributions_.find(literal);
  return it == contributions_.end() ? no_contributions_ : it->second;
}

bool CompiledWorkflow::Generates(const Trace& u) const {
  if (impossible_) return false;
  for (size_t j = 0; j < u.size(); ++j) {
    // Definition 4: u_{j+1} = e requires u ⊨_j G(D, e) for every D.
    if (!HoldsAt(u, j, GuardFor(u[j]))) return false;
  }
  return true;
}

CompiledWorkflow CompileWorkflow(WorkflowContext* ctx,
                                 const WorkflowSpec& spec,
                                 const CompileOptions& options) {
  CompiledWorkflow out;
  out.top_ = ctx->guards()->True();
  out.dependencies_ = spec.dependencies();
  out.symbols_ = spec.Symbols();
  // An unsatisfiable dependency admits no computation at all (it may be
  // the constant 0 — symbol-free, so the usual "mentions e" test would
  // silently skip it — or a contradiction like e|ē). It contributes 0
  // everywhere.
  std::vector<bool> dep_impossible(out.dependencies_.size(), false);
  for (size_t di = 0; di < out.dependencies_.size(); ++di) {
    if (!IsSatisfiable(ctx->residuator(), out.dependencies_[di].expr)) {
      dep_impossible[di] = true;
      out.impossible_ = true;
    }
  }
  for (SymbolId s : out.symbols_) {
    for (EventLiteral l :
         {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
      std::vector<const Guard*> conj;
      for (size_t di = 0; di < out.dependencies_.size(); ++di) {
        const Dependency& dep = out.dependencies_[di];
        if (dep_impossible[di]) {
          out.contributions_[l].emplace_back(di, ctx->guards()->False());
          conj.push_back(ctx->guards()->False());
          continue;
        }
        std::set<SymbolId> dep_symbols = MentionedSymbols(dep.expr);
        if (!dep_symbols.count(s)) continue;
        bool simplify = options.simplify &&
                        dep_symbols.size() <= options.max_simplify_symbols;
        obs::GuardProfiler::Site* site = nullptr;
        bool sampled = false;
        uint64_t t0 = 0, steps0 = 0;
        size_t nodes0 = 0;
        if (options.profiler != nullptr) {
          site = options.profiler->RegisterSite(
              dep.name, ctx->alphabet()->LiteralName(l), dep.loc);
          sampled = options.profiler->BeginEvaluation(site);
          steps0 = ctx->residuator()->residuate_calls();
          nodes0 = ctx->guards()->node_count();
          if (sampled) t0 = obs::ProfilerNowNs();
        }
        const Guard* g =
            simplify ? ctx->synthesizer()->SynthesizeSimplified(dep.expr, l)
                     : ctx->synthesizer()->Synthesize(dep.expr, l);
        if (site != nullptr) {
          options.profiler->Record(
              site, ctx->residuator()->residuate_calls() - steps0,
              ctx->guards()->node_count() - nodes0,
              sampled ? obs::ProfilerNowNs() - t0 : 0, sampled);
        }
        out.contributions_[l].emplace_back(di, g);
        conj.push_back(g);
      }
      out.guards_[l] = ctx->guards()->And(conj);
    }
  }
  return out;
}

CompiledWorkflowRef CompileWorkflowShared(WorkflowContext* ctx,
                                          const WorkflowSpec& spec,
                                          const CompileOptions& options) {
  return std::make_shared<const CompiledWorkflow>(
      CompileWorkflow(ctx, spec, options));
}

bool SatisfiesAll(const WorkflowSpec& spec, const Trace& u) {
  for (const Dependency& d : spec.dependencies()) {
    if (!Satisfies(u, d.expr)) return false;
  }
  return true;
}

}  // namespace cdes
