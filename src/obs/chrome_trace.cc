#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/strings.h"
#include "obs/json.h"

namespace cdes::obs {
namespace {

const char* PhaseCode(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kComplete:
      return "X";
    case TraceEvent::Phase::kInstant:
      return "i";
    case TraceEvent::Phase::kAsyncBegin:
      return "b";
    case TraceEvent::Phase::kAsyncEnd:
      return "e";
    case TraceEvent::Phase::kFlowStart:
      return "s";
    case TraceEvent::Phase::kFlowEnd:
      return "f";
  }
  return "i";
}

void AppendMetadataEvent(std::string* out, const char* name, int pid,
                         uint64_t tid, bool with_tid,
                         const std::string& value, bool* first) {
  *out += StrCat(*first ? "" : ",", "\n  {\"name\": \"", name,
                 "\", \"ph\": \"M\", \"pid\": ", pid);
  if (with_tid) *out += StrCat(", \"tid\": ", tid);
  *out += StrCat(", \"args\": {\"name\": \"", JsonEscape(value), "\"}}");
  *first = false;
}

}  // namespace

std::string ChromeTraceJson(const TraceRecorder& recorder) {
  // Sort by timestamp (stable: same-instant events keep recording order,
  // which is also causal order under the deterministic simulator).
  std::vector<size_t> order(recorder.events().size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return recorder.events()[a].ts < recorder.events()[b].ts;
  });

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [pid, name] : recorder.process_names()) {
    AppendMetadataEvent(&out, "process_name", pid, 0, false, name, &first);
  }
  for (const auto& [key, name] : recorder.lane_names()) {
    AppendMetadataEvent(&out, "thread_name", key.first, key.second, true,
                        name, &first);
  }
  for (size_t index : order) {
    const TraceEvent& event = recorder.events()[index];
    out += StrCat(first ? "" : ",", "\n  {\"name\": \"",
                  JsonEscape(event.name), "\", \"cat\": \"",
                  SpanCategoryName(event.category), "\", \"ph\": \"",
                  PhaseCode(event.phase), "\", \"ts\": ", event.ts,
                  ", \"pid\": ", event.pid, ", \"tid\": ", event.tid);
    if (event.phase == TraceEvent::Phase::kComplete) {
      out += StrCat(", \"dur\": ", event.dur);
    }
    if (event.phase == TraceEvent::Phase::kAsyncBegin ||
        event.phase == TraceEvent::Phase::kAsyncEnd ||
        event.phase == TraceEvent::Phase::kFlowStart ||
        event.phase == TraceEvent::Phase::kFlowEnd) {
      out += StrCat(", \"id\": ", event.id);
    }
    if (event.phase == TraceEvent::Phase::kFlowEnd) {
      // Bind the arrow head to the enclosing slice at these coordinates
      // rather than to the next slice that happens to start.
      out += ", \"bp\": \"e\"";
    }
    if (event.phase == TraceEvent::Phase::kInstant) {
      out += ", \"s\": \"t\"";
    }
    if (!event.args.empty()) {
      out += ", \"args\": {";
      for (size_t i = 0; i < event.args.size(); ++i) {
        out += StrCat(i == 0 ? "" : ", ", "\"",
                      JsonEscape(event.args[i].first), "\": \"",
                      JsonEscape(event.args[i].second), "\"");
      }
      out += "}";
    }
    out += "}";
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound(StrCat("cannot open ", path, " for writing"));
  }
  std::string json = ChromeTraceJson(recorder);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal(StrCat("short write to ", path));
  }
  return Status::OK();
}

}  // namespace cdes::obs
