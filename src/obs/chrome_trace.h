#ifndef CDES_OBS_CHROME_TRACE_H_
#define CDES_OBS_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/trace_recorder.h"

namespace cdes::obs {

/// Renders the recorder's events as Chrome-trace / Perfetto JSON (the
/// "JSON Array with metadata" flavor: {"traceEvents": [...]}). Each
/// simulated site becomes a trace "process" and each event actor a
/// "thread"; open async spans are left open (Perfetto renders them as
/// unfinished). Events are emitted sorted by timestamp.
///
/// Open the result at https://ui.perfetto.dev or chrome://tracing.
std::string ChromeTraceJson(const TraceRecorder& recorder);

/// Writes ChromeTraceJson(recorder) to `path`.
Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path);

}  // namespace cdes::obs

#endif  // CDES_OBS_CHROME_TRACE_H_
