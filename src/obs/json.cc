#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace cdes::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    CDES_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing characters at offset ", pos_));
    }
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::InvalidArgument(StrCat(what, " at offset ", pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > 128) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Result<JsonValue> out = [&]() -> Result<JsonValue> {
      switch (text_[pos_]) {
        case '{':
          return ParseObject();
        case '[':
          return ParseArray();
        case '"':
          return ParseString();
        case 't':
          if (ConsumeWord("true")) return JsonValue::Bool(true);
          return Error("malformed literal");
        case 'f':
          if (ConsumeWord("false")) return JsonValue::Bool(false);
          return Error("malformed literal");
        case 'n':
          if (ConsumeWord("null")) return JsonValue::Null();
          return Error("malformed literal");
        default:
          return ParseNumber();
      }
    }();
    --depth_;
    return out;
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      CDES_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      CDES_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace(key.string(), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      CDES_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return JsonValue::String(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("malformed \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs untreated;
          // the exporter never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace cdes::obs
