#ifndef CDES_OBS_JSON_H_
#define CDES_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cdes::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view text);

/// A minimal JSON document tree, used by tests to validate exported traces
/// and metric snapshots and by tools that read BENCH_*.json trajectories.
/// Numbers are kept as doubles (adequate for the magnitudes we emit).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Strict recursive-descent parse of a complete JSON document. Trailing
/// garbage, unterminated structures, and malformed literals are errors.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace cdes::obs

#endif  // CDES_OBS_JSON_H_
