#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace cdes::obs {

Histogram::Histogram(std::string name, std::vector<uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(uint64_t sample) {
  size_t i = 0;
  while (i < bounds_.size() && sample > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += sample;
  if (sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * (count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

bool Histogram::MergeFrom(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  return true;
}

size_t MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name)->Increment(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name)->Set(g->value());
  }
  size_t mismatched = 0;
  for (const auto& [name, h] : other.histograms_) {
    if (!histogram(name, h->bounds())->MergeFrom(*h)) ++mismatched;
  }
  return mismatched;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<uint64_t>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name),
                                                           bounds)))
             .first;
  }
  return it->second.get();
}

std::vector<uint64_t> MetricsRegistry::ExponentialBounds(uint64_t start,
                                                         size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t b = start == 0 ? 1 : start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    if (b > UINT64_MAX / 2) break;
    b *= 2;
  }
  return bounds;
}

const std::vector<uint64_t>& MetricsRegistry::DefaultBounds() {
  static const std::vector<uint64_t> kBounds = ExponentialBounds(1, 24);
  return kBounds;
}

namespace {

std::string DoubleToJson(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrCat(first ? "" : ",", "\n    \"", name, "\": ", c->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrCat(first ? "" : ",", "\n    \"", name,
                  "\": ", DoubleToJson(g->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += StrCat(first ? "" : ",", "\n    \"", name, "\": {\"count\": ",
                  h->count(), ", \"sum\": ", h->sum(), ", \"min\": ", h->min(),
                  ", \"max\": ", h->max(),
                  ", \"mean\": ", DoubleToJson(h->Mean()),
                  ", \"p50\": ", h->Percentile(0.5),
                  ", \"p99\": ", h->Percentile(0.99), ", \"buckets\": [");
    for (size_t i = 0; i < h->buckets().size(); ++i) {
      out += StrCat(i == 0 ? "" : ", ", h->buckets()[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

}  // namespace cdes::obs
