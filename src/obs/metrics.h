#ifndef CDES_OBS_METRICS_H_
#define CDES_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cdes::obs {

/// A monotonically increasing named count. Instances are owned by a
/// MetricsRegistry; instrumentation sites cache the raw pointer once (the
/// address is stable for the registry's lifetime) and pay a single add per
/// increment — the same cost as the ad-hoc stat fields this layer replaces.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  uint64_t value_ = 0;
};

/// A named point-in-time value (queue depths, final simulated time, config
/// knobs). Unlike a Counter it may move in either direction.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  double value_ = 0;
};

/// A fixed-bucket histogram over uint64 samples. Bounds are inclusive upper
/// edges; one implicit overflow bucket catches everything above the last
/// bound. Observation is a linear scan over the (small) bound vector — no
/// allocation, suitable for per-message instrumentation.
class Histogram {
 public:
  void Observe(uint64_t sample);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  /// Approximate percentile (p in [0,1]) from the bucket upper bounds.
  uint64_t Percentile(double p) const;

  /// Adds `other`'s samples into this histogram (bucket-wise; count, sum,
  /// min, max combine exactly). Returns false and does nothing when the
  /// bucket bounds differ — merging is meant for same-shaped histograms,
  /// e.g. one metric collected per engine shard.
  bool MergeFrom(const Histogram& other);

  const std::string& name() const { return name_; }
  /// Inclusive upper bounds; buckets() has bounds().size() + 1 entries.
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<uint64_t> bounds);
  std::string name_;
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// The process-wide (or per-component) metric namespace: get-or-create
/// access to named counters, gauges, and histograms, plus a JSON snapshot
/// for benchmark trajectories and operator dumps. All runtime components
/// (schedulers, network, simulator) report through one of these instead of
/// bespoke stat structs; the legacy GuardSchedulerStats / NetworkStats
/// accessors are views assembled from registry counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it at zero if absent.
  Counter* counter(std::string_view name);
  /// Returns the gauge named `name`, creating it at zero if absent.
  Gauge* gauge(std::string_view name);
  /// Returns the histogram named `name`; `bounds` is used only on first
  /// creation (later calls with different bounds get the existing one).
  Histogram* histogram(std::string_view name,
                       const std::vector<uint64_t>& bounds = DefaultBounds());

  /// 1, 2, 4, ..., up to 2^(count-1) scaled by `start`: the default
  /// microsecond-latency bucketing.
  static std::vector<uint64_t> ExponentialBounds(uint64_t start = 1,
                                                 size_t count = 24);
  static const std::vector<uint64_t>& DefaultBounds();

  /// Folds `other` into this registry: counters add, gauges take `other`'s
  /// value, histograms merge bucket-wise (created here with `other`'s
  /// bounds when absent; bound-mismatched histograms are skipped and
  /// counted in the return value). Used to aggregate per-shard registries
  /// into one engine-level snapshot.
  size_t MergeFrom(const MetricsRegistry& other);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count,sum,min,max,mean,p50,p99,buckets}}}.
  /// Keys are sorted; output is deterministic.
  std::string ToJson() const;

  size_t counter_count() const { return counters_.size(); }
  size_t histogram_count() const { return histograms_.size(); }
  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>&
  counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges()
      const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>, std::less<>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cdes::obs

#endif  // CDES_OBS_METRICS_H_
