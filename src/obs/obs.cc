#include "obs/obs.h"

#include <atomic>

#include "common/logging.h"
#include "sim/simulator.h"

namespace cdes::obs {
namespace {

std::atomic<const Simulator*> g_simulator{nullptr};

uint64_t SimulatorNow(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}

}  // namespace

void RegisterGlobalSimulator(const Simulator* sim) {
  g_simulator.store(sim);
  if (sim != nullptr) {
    SetLogSimTimeSource(sim, &SimulatorNow);
  } else {
    SetLogSimTimeSource(nullptr, nullptr);
  }
}

void UnregisterGlobalSimulator(const Simulator* sim) {
  if (g_simulator.load() == sim) RegisterGlobalSimulator(nullptr);
}

const Simulator* GlobalSimulator() { return g_simulator.load(); }

}  // namespace cdes::obs
