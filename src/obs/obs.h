#ifndef CDES_OBS_OBS_H_
#define CDES_OBS_OBS_H_

// Umbrella for the runtime observability layer: tracing + metrics handles
// that the schedulers, network, simulator, and actors thread through their
// option structs. Everything here is optional — a null TraceRecorder and a
// null MetricsRegistry cost one branch per instrumentation site.

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace cdes {
class Alphabet;
class Simulator;
}  // namespace cdes

namespace cdes::obs {

/// The pair of handles a component needs to be observable. Either may be
/// null; components that always need metrics (the stats-struct absorption)
/// fall back to a privately owned registry.
struct Observability {
  TraceRecorder* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return tracer != nullptr || metrics != nullptr; }
};

/// Pre-resolved instrumentation handles handed to each EventActor by its
/// scheduler, so the actor hot path never does registry lookups. All
/// pointers null ⇒ the actor records nothing beyond its normal work.
struct ActorObs {
  TraceRecorder* tracer = nullptr;
  /// Names literals in span labels; must outlive the actors when set.
  const Alphabet* alphabet = nullptr;
  /// Timestamps actor-side instants; must outlive the actors when set.
  const Simulator* sim = nullptr;
  /// ReduceGuard applications per CurrentGuard evaluation.
  Histogram* reduction_steps = nullptr;
  /// Parked-queue depth observed at each park.
  Histogram* parked_depth = nullptr;
  Counter* parks = nullptr;
};

/// Registers `sim` as the process's reference clock for log correlation:
/// subsequent CDES_LOG lines carry "@<tick>us" so operators can line logs
/// up with exported traces. Pass nullptr (or destroy via
/// UnregisterGlobalSimulator) to detach. Only one simulator is tracked;
/// re-registering replaces the previous one.
void RegisterGlobalSimulator(const Simulator* sim);

/// Detaches `sim` if it is the registered simulator (no-op otherwise —
/// safe to call from destructors of simulators that never registered).
void UnregisterGlobalSimulator(const Simulator* sim);

/// The registered simulator, or nullptr.
const Simulator* GlobalSimulator();

}  // namespace cdes::obs

#endif  // CDES_OBS_OBS_H_
