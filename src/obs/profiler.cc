#include "obs/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "common/strings.h"
#include "obs/metrics.h"

namespace cdes::obs {

SymbolicCacheStats CacheStatsFrom(const MetricsRegistry& metrics) {
  // The scheduler exports the reduction tallies as counters; engine shards
  // and bench snapshots republish both caches as gauges. Accept either.
  auto value = [&metrics](std::string_view name) -> uint64_t {
    auto c = metrics.counters().find(name);
    if (c != metrics.counters().end() && c->second->value() > 0) {
      return c->second->value();
    }
    auto g = metrics.gauges().find(name);
    return g == metrics.gauges().end()
               ? 0
               : static_cast<uint64_t>(g->second->value());
  };
  SymbolicCacheStats stats;
  stats.reduction_hits = value("guards.reduction_cache_hits");
  stats.reduction_misses = value("guards.reduction_cache_misses");
  stats.residuation_hits = value("algebra.residuation_cache_hits");
  stats.residuation_misses = value("algebra.residuation_cache_misses");
  return stats;
}

double GuardSiteStats::EstimatedWallNs() const {
  if (sampled_evaluations == 0) return 0.0;
  return static_cast<double>(sampled_wall_ns) /
         static_cast<double>(sampled_evaluations) *
         static_cast<double>(evaluations);
}

std::string GuardSiteStats::Label() const {
  return StrCat(dependency, " -> ", event, " (", source, ")");
}

void GuardProfiler::set_source(std::string source) {
  std::lock_guard<std::mutex> lock(mu_);
  source_ = std::move(source);
}

GuardProfiler::Site* GuardProfiler::RegisterSite(std::string_view dependency,
                                                 std::string_view event,
                                                 SourceLocation loc) {
  std::string key = StrCat(dependency, "\x1f", event);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  Site& site = sites_.emplace_back();
  site.dependency = std::string(dependency);
  site.event = std::string(event);
  site.source = loc.known() && !source_.empty()
                    ? StrCat(source_, ":", loc.ToString())
                    : loc.ToString();
  index_.emplace(std::move(key), &site);
  return &site;
}

GuardSiteStats GuardProfiler::Read(const Site& s) {
  GuardSiteStats out;
  out.dependency = s.dependency;
  out.event = s.event;
  out.source = s.source;
  out.evaluations = s.evaluations.load(std::memory_order_relaxed);
  out.residuation_steps = s.residuation_steps.load(std::memory_order_relaxed);
  out.nodes_visited = s.nodes_visited.load(std::memory_order_relaxed);
  out.sampled_evaluations =
      s.sampled_evaluations.load(std::memory_order_relaxed);
  out.sampled_wall_ns = s.sampled_wall_ns.load(std::memory_order_relaxed);
  return out;
}

std::vector<GuardSiteStats> GuardProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GuardSiteStats> out;
  out.reserve(sites_.size());
  for (const Site& s : sites_) out.push_back(Read(s));
  return out;
}

namespace {

bool CostlierThan(const GuardSiteStats& a, const GuardSiteStats& b) {
  double wa = a.EstimatedWallNs(), wb = b.EstimatedWallNs();
  if (wa != wb) return wa > wb;
  if (a.Work() != b.Work()) return a.Work() > b.Work();
  if (a.evaluations != b.evaluations) return a.evaluations > b.evaluations;
  // Deterministic tie-break for stable reports.
  return std::tie(a.dependency, a.event) < std::tie(b.dependency, b.event);
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

}  // namespace

std::vector<GuardSiteStats> GuardProfiler::TopK(size_t k) const {
  std::vector<GuardSiteStats> all = Snapshot();
  std::sort(all.begin(), all.end(), CostlierThan);
  if (all.size() > k) all.resize(k);
  return all;
}

std::optional<GuardSiteStats> GuardProfiler::HottestFor(
    std::string_view event) const {
  std::optional<GuardSiteStats> best;
  for (GuardSiteStats& s : Snapshot()) {
    if (s.event != event) continue;
    if (!best || CostlierThan(s, *best)) best = std::move(s);
  }
  return best;
}

std::string GuardProfiler::TopKReport(size_t k,
                                      const SymbolicCacheStats* caches) const {
  std::vector<GuardSiteStats> top = TopK(k);
  std::string sampling = sample_every_ == 1
                             ? std::string("always")
                             : StrCat("every ", sample_every_, "th");
  std::string out =
      StrCat("guard profiler: top ", top.size(), " of ", site_count(),
             " sites (", total_evaluations(), " evaluations, wall sampled ",
             sampling, ")\n");
  out += "  rank   est.total      evals  steps/eval  nodes/eval  site\n";
  int rank = 0;
  for (const GuardSiteStats& s : top) {
    double evals =
        s.evaluations == 0 ? 1.0 : static_cast<double>(s.evaluations);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %4d  %10s  %9llu  %10.2f  %10.2f  ",
                  ++rank, FormatNs(s.EstimatedWallNs()).c_str(),
                  static_cast<unsigned long long>(s.evaluations),
                  static_cast<double>(s.residuation_steps) / evals,
                  static_cast<double>(s.nodes_visited) / evals);
    out += buf;
    out += s.Label();
    out += "\n";
  }
  if (caches != nullptr && caches->Any()) {
    auto rate = [](uint64_t hits, uint64_t misses) {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                    static_cast<double>(total);
    };
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "  symbolic caches: reduction %.1f%% hit (%llu/%llu), "
        "residuation %.1f%% hit (%llu/%llu)\n",
        rate(caches->reduction_hits, caches->reduction_misses),
        static_cast<unsigned long long>(caches->reduction_hits),
        static_cast<unsigned long long>(caches->reduction_hits +
                                        caches->reduction_misses),
        rate(caches->residuation_hits, caches->residuation_misses),
        static_cast<unsigned long long>(caches->residuation_hits),
        static_cast<unsigned long long>(caches->residuation_hits +
                                        caches->residuation_misses));
    out += buf;
  }
  return out;
}

std::string GuardProfiler::CollapsedStacks() const {
  std::vector<GuardSiteStats> all = Snapshot();
  std::sort(all.begin(), all.end(), CostlierThan);
  std::string out;
  for (const GuardSiteStats& s : all) {
    uint64_t weight = static_cast<uint64_t>(std::llround(s.EstimatedWallNs()));
    if (weight == 0) weight = s.Work();
    if (weight == 0) weight = s.evaluations;
    out += StrCat(s.source, ";", s.dependency, ";", s.event, " ", weight, "\n");
  }
  return out;
}

uint64_t GuardProfiler::total_evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Site& s : sites_) {
    total += s.evaluations.load(std::memory_order_relaxed);
  }
  return total;
}

size_t GuardProfiler::site_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.size();
}

}  // namespace cdes::obs
