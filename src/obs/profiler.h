#ifndef CDES_OBS_PROFILER_H_
#define CDES_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/source_location.h"

namespace cdes::obs {

/// Monotonic nanosecond clock used for sampled guard wall times.
inline uint64_t ProfilerNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A snapshot of one profiled guard site: the cost attributable to a single
/// (dependency, event) pair — either synthesizing that dependency's guard
/// contribution at compile time or re-evaluating it at run time.
struct GuardSiteStats {
  std::string dependency;
  std::string event;
  /// "file:line:col" when the profiler has a source file and the dependency
  /// carried a parser location, "line:col" without a file, else "?".
  std::string source;
  uint64_t evaluations = 0;
  uint64_t residuation_steps = 0;
  uint64_t nodes_visited = 0;
  uint64_t sampled_evaluations = 0;
  uint64_t sampled_wall_ns = 0;

  /// Sampled wall time scaled up to all evaluations; 0 with no samples.
  double EstimatedWallNs() const;
  /// Clock-free cost proxy used to rank sites when sampling caught nothing.
  uint64_t Work() const { return residuation_steps + nodes_visited; }
  /// "dep -> event (source)".
  std::string Label() const;
};

/// Hit/miss tallies of the shard-shared symbolic caches, gathered by the
/// caller (the reduction cache lives in guards/, the residuation cache in
/// algebra/ — the profiler only formats them). Passed to TopKReport so
/// hotspot tables show how much of the ranked work was actually memoized.
struct SymbolicCacheStats {
  uint64_t reduction_hits = 0;
  uint64_t reduction_misses = 0;
  uint64_t residuation_hits = 0;
  uint64_t residuation_misses = 0;
  bool Any() const {
    return reduction_hits + reduction_misses + residuation_hits +
               residuation_misses >
           0;
  }
};

class MetricsRegistry;

/// Reads the symbolic-cache tallies a running system exported into
/// `metrics` — the `guards.reduction_cache_*` counters the scheduler
/// attaches and the `algebra.residuation_cache_*` gauges the engine shards
/// publish. Absent entries read as zero.
SymbolicCacheStats CacheStatsFrom(const MetricsRegistry& metrics);

/// Per-guard-site cost accounting keyed by (dependency, event), with spec
/// source attribution threaded from the parser. One profiler is shared by
/// every component that evaluates guards of a workflow — the compiler
/// (synthesis cost), schedulers (assimilation cost), and all engine shards.
///
/// Thread model: RegisterSite takes a mutex and deduplicates by key, so
/// shards compiling the same workflow share sites (cold path — once per
/// site per scheduler). The record path touches only relaxed atomics on an
/// opaque Site handle; sites live in a deque, so handles stay valid while
/// other threads register. Snapshot readers see per-field consistent values
/// (not a mutually-atomic cut), which is fine for reporting.
///
/// Wall-clock sampling: only every `sample_every`-th evaluation of a site
/// is timed (steady_clock), keeping the profiled hot path cheap;
/// EstimatedWallNs scales the samples back up. Pass 1 to time everything
/// (e.g. specc's one-shot compile profile).
class GuardProfiler {
 public:
  struct Site {
    std::string dependency;
    std::string event;
    std::string source;
    std::atomic<uint64_t> evaluations{0};
    std::atomic<uint64_t> residuation_steps{0};
    std::atomic<uint64_t> nodes_visited{0};
    std::atomic<uint64_t> sampled_evaluations{0};
    std::atomic<uint64_t> sampled_wall_ns{0};
  };

  explicit GuardProfiler(uint64_t sample_every = 64)
      : sample_every_(sample_every == 0 ? 1 : sample_every) {}
  GuardProfiler(const GuardProfiler&) = delete;
  GuardProfiler& operator=(const GuardProfiler&) = delete;

  /// Sets the spec file name prefixed to site locations registered from
  /// now on (SourceLocation itself is file-less). Call before compiling.
  void set_source(std::string source);

  uint64_t sample_every() const { return sample_every_; }

  /// Get-or-create the site for (dependency, event). The handle is stable
  /// for the profiler's lifetime and shared across registrants.
  Site* RegisterSite(std::string_view dependency, std::string_view event,
                     SourceLocation loc);

  /// Counts one evaluation and returns true when the caller should
  /// wall-time it (every sample_every-th evaluation of the site).
  bool BeginEvaluation(Site* site) {
    uint64_t n = site->evaluations.fetch_add(1, std::memory_order_relaxed);
    return sample_every_ == 1 || n % sample_every_ == 0;
  }

  /// Accumulates the cost of one evaluation; `wall_ns` is honoured only
  /// when `sampled` (i.e. BeginEvaluation returned true).
  void Record(Site* site, uint64_t residuation_steps, uint64_t nodes_visited,
              uint64_t wall_ns, bool sampled) {
    site->residuation_steps.fetch_add(residuation_steps,
                                      std::memory_order_relaxed);
    site->nodes_visited.fetch_add(nodes_visited, std::memory_order_relaxed);
    if (sampled) {
      site->sampled_evaluations.fetch_add(1, std::memory_order_relaxed);
      site->sampled_wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    }
  }

  std::vector<GuardSiteStats> Snapshot() const;
  /// Sites sorted most-expensive first (estimated wall, then Work()),
  /// truncated to `k`.
  std::vector<GuardSiteStats> TopK(size_t k) const;
  /// The most expensive site whose event name equals `event`.
  std::optional<GuardSiteStats> HottestFor(std::string_view event) const;

  /// Human-readable hotspot table with file:line attribution. When `caches`
  /// is non-null and has any traffic, a symbolic-cache effectiveness line
  /// (hit rates of the reduction and residuation memos) is appended.
  std::string TopKReport(size_t k = 10,
                         const SymbolicCacheStats* caches = nullptr) const;
  /// Collapsed-stack format ("source;dependency;event weight" lines) for
  /// flamegraph.pl / speedscope; weight is estimated wall ns (falls back
  /// to Work() when sampling caught nothing).
  std::string CollapsedStacks() const;

  uint64_t total_evaluations() const;
  size_t site_count() const;

 private:
  static GuardSiteStats Read(const Site& s);

  const uint64_t sample_every_;
  mutable std::mutex mu_;  // guards source_, sites_ growth, index_
  std::string source_;
  std::deque<Site> sites_;
  std::map<std::string, Site*, std::less<>> index_;  // "dep\x1f" + event
};

}  // namespace cdes::obs

#endif  // CDES_OBS_PROFILER_H_
