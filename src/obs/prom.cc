#include "obs/prom.h"

#include <cctype>
#include <cstdio>

#include "common/strings.h"

namespace cdes::obs {
namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use
/// dots ("sched.msgs.announce"). Everything outside the charset becomes '_'.
std::string SanitizeName(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':' || (std::isdigit(static_cast<unsigned char>(c)) &&
                           !(out.empty() && i == 0));
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry,
                           std::string_view prefix) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    std::string prom = SanitizeName(prefix, name);
    out += StrCat("# TYPE ", prom, " counter\n", prom, " ", c->value(), "\n");
  }
  for (const auto& [name, g] : registry.gauges()) {
    std::string prom = SanitizeName(prefix, name);
    out += StrCat("# TYPE ", prom, " gauge\n", prom, " ",
                  FormatDouble(g->value()), "\n");
  }
  for (const auto& [name, h] : registry.histograms()) {
    std::string prom = SanitizeName(prefix, name);
    out += StrCat("# TYPE ", prom, " histogram\n");
    // Registry buckets are disjoint; Prometheus buckets are cumulative.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->buckets()[i];
      out += StrCat(prom, "_bucket{le=\"", h->bounds()[i], "\"} ", cumulative,
                    "\n");
    }
    cumulative += h->buckets().back();
    out += StrCat(prom, "_bucket{le=\"+Inf\"} ", cumulative, "\n");
    out += StrCat(prom, "_sum ", h->sum(), "\n");
    out += StrCat(prom, "_count ", h->count(), "\n");
  }
  return out;
}

Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path, std::string_view prefix) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound(StrCat("cannot open ", path, " for writing"));
  }
  std::string text = PrometheusText(registry, prefix);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal(StrCat("short write to ", path));
  }
  return Status::OK();
}

}  // namespace cdes::obs
