#ifndef CDES_OBS_PROM_H_
#define CDES_OBS_PROM_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace cdes::obs {

/// Renders a MetricsRegistry snapshot in the Prometheus text exposition
/// format (version 0.0.4): one `# TYPE` header plus sample per counter and
/// gauge, and for each histogram the cumulative `_bucket{le="..."}` series
/// (including the `+Inf` bucket), `_sum`, and `_count`. Metric names are
/// sanitized to the Prometheus charset and prefixed
/// ("sched.msgs.announce" → "cdes_sched_msgs_announce"). Output is
/// deterministic — the registry's maps are sorted — so it goldens well.
std::string PrometheusText(const MetricsRegistry& registry,
                           std::string_view prefix = "cdes_");

/// PrometheusText written to `path` (a node_exporter-style textfile target
/// or scrape snapshot).
Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path,
                           std::string_view prefix = "cdes_");

}  // namespace cdes::obs

#endif  // CDES_OBS_PROM_H_
