#include "obs/trace_recorder.h"

#include "obs/metrics.h"

namespace cdes::obs {

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kLifecycle:
      return "lifecycle";
    case SpanCategory::kMessage:
      return "message";
    case SpanCategory::kPromise:
      return "promise";
    case SpanCategory::kGuard:
      return "guard";
    case SpanCategory::kRecovery:
      return "recovery";
    case SpanCategory::kSim:
      return "sim";
  }
  return "unknown";
}

void TraceRecorder::PushEvent(TraceEvent event) {
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring: overwrite the oldest retained event, counting it as dropped.
  if (ring_next_ >= events_.size()) ring_next_ = 0;
  events_[ring_next_] = std::move(event);
  ring_next_ = (ring_next_ + 1) % events_.size();
  ++dropped_events_;
  if (dropped_counter_ != nullptr) dropped_counter_->Increment();
}

void TraceRecorder::AttachMetrics(MetricsRegistry* metrics) {
  dropped_counter_ =
      metrics == nullptr ? nullptr : metrics->counter("trace.dropped_events");
}

void TraceRecorder::NameProcess(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void TraceRecorder::NameLane(int pid, uint64_t tid, std::string name) {
  lane_names_[{pid, tid}] = std::move(name);
}

void TraceRecorder::Instant(SpanCategory category, std::string name,
                            uint64_t ts, int pid, uint64_t tid, Args args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void TraceRecorder::Complete(SpanCategory category, std::string name,
                             uint64_t ts, uint64_t dur, int pid, uint64_t tid,
                             Args args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.dur = dur;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

uint64_t TraceRecorder::BeginAsync(SpanCategory category, std::string name,
                                   const std::string& key, uint64_t ts,
                                   int pid, uint64_t tid, Args args) {
  if (open_async_.count(key)) return 0;
  uint64_t id = next_id_++;
  open_async_[key] = OpenSpan{id, category, name};
  TraceEvent event;
  event.phase = TraceEvent::Phase::kAsyncBegin;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.id = id;
  event.args = std::move(args);
  PushEvent(std::move(event));
  return id;
}

bool TraceRecorder::EndAsync(const std::string& key, uint64_t ts, int pid,
                             uint64_t tid, Args args) {
  auto it = open_async_.find(key);
  if (it == open_async_.end()) return false;
  TraceEvent event;
  event.phase = TraceEvent::Phase::kAsyncEnd;
  event.category = it->second.category;
  event.name = it->second.name;
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.id = it->second.id;
  event.args = std::move(args);
  PushEvent(std::move(event));
  open_async_.erase(it);
  return true;
}

void TraceRecorder::FlowStart(SpanCategory category, std::string name,
                              uint64_t flow_id, uint64_t ts, int pid,
                              uint64_t tid, Args args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kFlowStart;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.id = flow_id;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void TraceRecorder::FlowEnd(SpanCategory category, std::string name,
                            uint64_t flow_id, uint64_t ts, int pid,
                            uint64_t tid, Args args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kFlowEnd;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.id = flow_id;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

size_t TraceRecorder::CountEvents(SpanCategory category,
                                  std::string_view name_prefix,
                                  TraceEvent::Phase phase) const {
  size_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.category != category || event.phase != phase) continue;
    if (std::string_view(event.name).substr(0, name_prefix.size()) ==
        name_prefix) {
      ++n;
    }
  }
  return n;
}

}  // namespace cdes::obs
