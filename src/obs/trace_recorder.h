#ifndef CDES_OBS_TRACE_RECORDER_H_
#define CDES_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdes::obs {

/// Span/instant categories of the runtime trace taxonomy (see
/// docs/OBSERVABILITY.md). The category becomes the Chrome-trace `cat`
/// field, so Perfetto can filter by subsystem.
enum class SpanCategory {
  kLifecycle,  // event attempt → parked → occur / reject / doomed
  kMessage,    // network send → deliver, by runtime-message kind
  kPromise,    // promise request → grant
  kGuard,      // guard reductions
  kRecovery,   // durable-log replay
  kSim,        // simulator / driver-level phases
};

const char* SpanCategoryName(SpanCategory category);

/// One recorded trace event. Timestamps are caller-supplied microseconds:
/// the runtime records SimTime ticks, tools like specc record wall-clock —
/// the recorder itself is time-source agnostic (which is also what keeps it
/// usable from deterministic-replay contexts).
struct TraceEvent {
  enum class Phase {
    kComplete,    // Chrome "X": ts + dur
    kInstant,     // Chrome "i"
    kAsyncBegin,  // Chrome "b": paired by (category, id)
    kAsyncEnd,    // Chrome "e"
    kFlowStart,   // Chrome "s": flow arrow origin, paired by id
    kFlowEnd,     // Chrome "f": flow arrow destination
  };

  Phase phase = Phase::kInstant;
  SpanCategory category = SpanCategory::kLifecycle;
  std::string name;
  uint64_t ts = 0;
  uint64_t dur = 0;  // kComplete only
  /// Chrome "process": the simulated site.
  int pid = 0;
  /// Chrome "thread": the lane within a site (one per event actor).
  uint64_t tid = 0;
  /// Async / flow correlation id (kAsyncBegin/kAsyncEnd, kFlow*).
  uint64_t id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Records typed spans and instants for one run. Instrumentation sites hold
/// a `TraceRecorder*` that is null by default; every call site is guarded by
/// a branch on that pointer, so an uninstrumented run pays one predictable
/// branch and nothing else.
///
/// Async spans (parked windows, in-flight messages, pending promises) are
/// opened under a caller-chosen string key and closed by the same key, which
/// spares call sites from threading span ids through the runtime's message
/// plumbing. Keys must be unique among *open* spans; reusing a key after the
/// span closed is fine.
///
/// Memory bound: the recorder keeps at most `capacity()` events (default
/// 1M); beyond that it becomes a ring overwriting the oldest event and
/// counting the overwritten ones in dropped_events(), so unbounded engine
/// runs cannot grow it without bound. set_capacity(0) removes the bound.
/// Once wrapped, events() is in ring order, not chronological — the
/// Chrome-trace exporter sorts by timestamp, so exports stay valid.
class TraceRecorder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names a site ("process") / lane ("thread") for the exporter.
  void NameProcess(int pid, std::string name);
  void NameLane(int pid, uint64_t tid, std::string name);

  void Instant(SpanCategory category, std::string name, uint64_t ts, int pid,
               uint64_t tid, Args args = {});
  void Complete(SpanCategory category, std::string name, uint64_t ts,
                uint64_t dur, int pid, uint64_t tid, Args args = {});

  /// Opens an async span under `key`; returns its correlation id. If `key`
  /// is already open the existing span is left untouched and 0 is returned.
  uint64_t BeginAsync(SpanCategory category, std::string name,
                      const std::string& key, uint64_t ts, int pid,
                      uint64_t tid, Args args = {});
  /// Closes the async span opened under `key`. Returns false (and records
  /// nothing) when no such span is open.
  bool EndAsync(const std::string& key, uint64_t ts, int pid, uint64_t tid,
                Args args = {});

  /// Flow arrows (Chrome "s"/"f"): FlowStart opens flow `flow_id` at
  /// (ts, pid, tid); FlowEnd terminates it elsewhere, and the exporter
  /// marks the end as binding to the enclosing slice, so viewers draw an
  /// arrow between the slices/instants at the two coordinates. Flow ids
  /// are caller-managed (the runtime uses message span ids, the engine
  /// uses instance ids); `category` and `name` must match across the pair
  /// for viewers to join them.
  void FlowStart(SpanCategory category, std::string name, uint64_t flow_id,
                 uint64_t ts, int pid, uint64_t tid, Args args = {});
  void FlowEnd(SpanCategory category, std::string name, uint64_t flow_id,
               uint64_t ts, int pid, uint64_t tid, Args args = {});
  bool HasOpenAsync(const std::string& key) const {
    return open_async_.count(key) != 0;
  }
  size_t open_async_count() const { return open_async_.size(); }

  /// Ring-buffer bound on retained events; applies to events recorded from
  /// now on (set it before recording). 0 = unlimited.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped_events() const { return dropped_events_; }
  /// Also surface drops as counter "trace.dropped_events" in `metrics`
  /// (pass nullptr to detach). The registry must outlive the recorder.
  void AttachMetrics(class MetricsRegistry* metrics);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Number of recorded events in `category` whose name starts with
  /// `name_prefix` and whose phase is `phase` (test/assertion helper).
  size_t CountEvents(SpanCategory category, std::string_view name_prefix,
                     TraceEvent::Phase phase) const;

  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<int, uint64_t>, std::string>& lane_names() const {
    return lane_names_;
  }

 private:
  struct OpenSpan {
    uint64_t id;
    SpanCategory category;
    std::string name;
  };

  void PushEvent(TraceEvent event);

  std::vector<TraceEvent> events_;
  size_t capacity_ = 1u << 20;
  size_t ring_next_ = 0;
  uint64_t dropped_events_ = 0;
  class Counter* dropped_counter_ = nullptr;
  std::map<std::string, OpenSpan> open_async_;
  uint64_t next_id_ = 1;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, uint64_t>, std::string> lane_names_;
};

}  // namespace cdes::obs

#endif  // CDES_OBS_TRACE_RECORDER_H_
