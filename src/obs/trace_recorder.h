#ifndef CDES_OBS_TRACE_RECORDER_H_
#define CDES_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdes::obs {

/// Span/instant categories of the runtime trace taxonomy (see
/// docs/OBSERVABILITY.md). The category becomes the Chrome-trace `cat`
/// field, so Perfetto can filter by subsystem.
enum class SpanCategory {
  kLifecycle,  // event attempt → parked → occur / reject / doomed
  kMessage,    // network send → deliver, by runtime-message kind
  kPromise,    // promise request → grant
  kGuard,      // guard reductions
  kRecovery,   // durable-log replay
  kSim,        // simulator / driver-level phases
};

const char* SpanCategoryName(SpanCategory category);

/// One recorded trace event. Timestamps are caller-supplied microseconds:
/// the runtime records SimTime ticks, tools like specc record wall-clock —
/// the recorder itself is time-source agnostic (which is also what keeps it
/// usable from deterministic-replay contexts).
struct TraceEvent {
  enum class Phase {
    kComplete,    // Chrome "X": ts + dur
    kInstant,     // Chrome "i"
    kAsyncBegin,  // Chrome "b": paired by (category, id)
    kAsyncEnd,    // Chrome "e"
  };

  Phase phase = Phase::kInstant;
  SpanCategory category = SpanCategory::kLifecycle;
  std::string name;
  uint64_t ts = 0;
  uint64_t dur = 0;  // kComplete only
  /// Chrome "process": the simulated site.
  int pid = 0;
  /// Chrome "thread": the lane within a site (one per event actor).
  uint64_t tid = 0;
  /// Async correlation id (kAsyncBegin/kAsyncEnd).
  uint64_t id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Records typed spans and instants for one run. Instrumentation sites hold
/// a `TraceRecorder*` that is null by default; every call site is guarded by
/// a branch on that pointer, so an uninstrumented run pays one predictable
/// branch and nothing else.
///
/// Async spans (parked windows, in-flight messages, pending promises) are
/// opened under a caller-chosen string key and closed by the same key, which
/// spares call sites from threading span ids through the runtime's message
/// plumbing. Keys must be unique among *open* spans; reusing a key after the
/// span closed is fine.
class TraceRecorder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names a site ("process") / lane ("thread") for the exporter.
  void NameProcess(int pid, std::string name);
  void NameLane(int pid, uint64_t tid, std::string name);

  void Instant(SpanCategory category, std::string name, uint64_t ts, int pid,
               uint64_t tid, Args args = {});
  void Complete(SpanCategory category, std::string name, uint64_t ts,
                uint64_t dur, int pid, uint64_t tid, Args args = {});

  /// Opens an async span under `key`; returns its correlation id. If `key`
  /// is already open the existing span is left untouched and 0 is returned.
  uint64_t BeginAsync(SpanCategory category, std::string name,
                      const std::string& key, uint64_t ts, int pid,
                      uint64_t tid, Args args = {});
  /// Closes the async span opened under `key`. Returns false (and records
  /// nothing) when no such span is open.
  bool EndAsync(const std::string& key, uint64_t ts, int pid, uint64_t tid,
                Args args = {});
  bool HasOpenAsync(const std::string& key) const {
    return open_async_.count(key) != 0;
  }
  size_t open_async_count() const { return open_async_.size(); }

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Number of recorded events in `category` whose name starts with
  /// `name_prefix` and whose phase is `phase` (test/assertion helper).
  size_t CountEvents(SpanCategory category, std::string_view name_prefix,
                     TraceEvent::Phase phase) const;

  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<int, uint64_t>, std::string>& lane_names() const {
    return lane_names_;
  }

 private:
  struct OpenSpan {
    uint64_t id;
    SpanCategory category;
    std::string name;
  };

  std::vector<TraceEvent> events_;
  std::map<std::string, OpenSpan> open_async_;
  uint64_t next_id_ = 1;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, uint64_t>, std::string> lane_names_;
};

}  // namespace cdes::obs

#endif  // CDES_OBS_TRACE_RECORDER_H_
