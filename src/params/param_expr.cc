#include "params/param_expr.h"

#include "common/strings.h"

namespace cdes {

PTerm PTerm::Substitute(const Binding& binding) const {
  if (!is_var()) return *this;
  auto it = binding.find(var_);
  return it == binding.end() ? *this : Val(it->second);
}

PAtom PAtom::Substitute(const Binding& binding) const {
  PAtom out = *this;
  for (PTerm& t : out.args) t = t.Substitute(binding);
  return out;
}

bool PAtom::IsGround() const {
  for (const PTerm& t : args) {
    if (t.is_var()) return false;
  }
  return true;
}

std::set<std::string> PAtom::Vars() const {
  std::set<std::string> out;
  for (const PTerm& t : args) {
    if (t.is_var()) out.insert(t.var());
  }
  return out;
}

std::string PAtom::GroundName() const {
  CDES_CHECK(IsGround());
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const PTerm& t : args) parts.push_back(StrCat(t.value()));
  return StrCat(event, "[", StrJoin(parts, ","), "]");
}

bool UnifyAtom(const PAtom& pattern, const std::string& event,
               bool complemented, const std::vector<ParamValue>& args,
               Binding* binding) {
  if (pattern.event != event || pattern.complemented != complemented) {
    return false;
  }
  if (pattern.args.size() != args.size()) return false;
  Binding extended = *binding;
  for (size_t i = 0; i < args.size(); ++i) {
    const PTerm& t = pattern.args[i];
    if (t.is_var()) {
      auto [it, inserted] = extended.emplace(t.var(), args[i]);
      if (!inserted && it->second != args[i]) return false;
    } else if (t.value() != args[i]) {
      return false;
    }
  }
  *binding = std::move(extended);
  return true;
}

PExpr PExpr::Atom(PAtom atom) {
  PExpr e(Kind::kAtom);
  e.atom_ = std::move(atom);
  return e;
}

PExpr PExpr::Seq(std::vector<PExpr> children) {
  PExpr e(Kind::kSeq);
  e.children_ = std::move(children);
  return e;
}

PExpr PExpr::Or(std::vector<PExpr> children) {
  PExpr e(Kind::kOr);
  e.children_ = std::move(children);
  return e;
}

PExpr PExpr::And(std::vector<PExpr> children) {
  PExpr e(Kind::kAnd);
  e.children_ = std::move(children);
  return e;
}

PExpr PExpr::Substitute(const Binding& binding) const {
  PExpr out = *this;
  out.atom_ = atom_.Substitute(binding);
  for (PExpr& c : out.children_) c = c.Substitute(binding);
  return out;
}

bool PExpr::IsGround() const {
  if (kind_ == Kind::kAtom) return atom_.IsGround();
  for (const PExpr& c : children_) {
    if (!c.IsGround()) return false;
  }
  return true;
}

std::set<std::string> PExpr::FreeVars() const {
  std::set<std::string> out;
  if (kind_ == Kind::kAtom) return atom_.Vars();
  for (const PExpr& c : children_) {
    std::set<std::string> inner = c.FreeVars();
    out.insert(inner.begin(), inner.end());
  }
  return out;
}

std::vector<PAtom> PExpr::Atoms() const {
  std::vector<PAtom> out;
  if (kind_ == Kind::kAtom) {
    out.push_back(atom_);
    return out;
  }
  for (const PExpr& c : children_) {
    std::vector<PAtom> inner = c.Atoms();
    out.insert(out.end(), inner.begin(), inner.end());
  }
  return out;
}

Result<const Expr*> PExpr::Ground(Alphabet* alphabet, ExprArena* arena) const {
  if (!IsGround()) {
    return Status::FailedPrecondition(
        "cannot ground a template with free variables");
  }
  switch (kind_) {
    case Kind::kZero:
      return arena->Zero();
    case Kind::kTop:
      return arena->Top();
    case Kind::kAtom: {
      SymbolId symbol = alphabet->Intern(atom_.GroundName());
      return arena->Atom(EventLiteral(symbol, atom_.complemented));
    }
    case Kind::kSeq:
    case Kind::kOr:
    case Kind::kAnd: {
      std::vector<const Expr*> kids;
      kids.reserve(children_.size());
      for (const PExpr& c : children_) {
        CDES_ASSIGN_OR_RETURN(const Expr* k, c.Ground(alphabet, arena));
        kids.push_back(k);
      }
      if (kind_ == Kind::kSeq) return arena->Seq(kids);
      if (kind_ == Kind::kOr) return arena->Or(kids);
      return arena->And(kids);
    }
  }
  return Status::Internal("unreachable");
}

PExpr MutualExclusionDependency(const std::string& b1, const std::string& e1,
                                const std::string& b2,
                                const std::string& e2) {
  (void)e2;  // the symmetric constraint uses a second instance of this
             // dependency with the roles swapped
  PTerm x = PTerm::Var("x"), y = PTerm::Var("y");
  PAtom b1x{b1, false, {x}}, e1x{e1, false, {x}}, b2y{b2, false, {y}};
  PAtom not_e1x{e1, true, {x}}, not_b2y{b2, true, {y}};
  return PExpr::Or({
      PExpr::Seq({PExpr::Atom(b2y), PExpr::Atom(b1x)}),
      PExpr::Atom(not_e1x),
      PExpr::Atom(not_b2y),
      PExpr::Seq({PExpr::Atom(e1x), PExpr::Atom(b2y)}),
  });
}

}  // namespace cdes
