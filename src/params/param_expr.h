#ifndef CDES_PARAMS_PARAM_EXPR_H_
#define CDES_PARAMS_PARAM_EXPR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"

namespace cdes {

/// A parameter value. The paper's commonly relevant parameters — task ids,
/// database keys, other unique ids (§5) — are all representable as 64-bit
/// tokens here.
using ParamValue = int64_t;

/// An assignment of values to parameter variables.
using Binding = std::map<std::string, ParamValue>;

/// A parameter term: a named variable or a constant value.
class PTerm {
 public:
  static PTerm Var(std::string name) {
    PTerm t;
    t.var_ = std::move(name);
    return t;
  }
  static PTerm Val(ParamValue value) {
    PTerm t;
    t.value_ = value;
    return t;
  }

  bool is_var() const { return !var_.empty(); }
  const std::string& var() const { return var_; }
  ParamValue value() const { return value_; }

  /// The term with `binding` applied (variables not in the binding stay).
  PTerm Substitute(const Binding& binding) const;

  friend bool operator==(const PTerm&, const PTerm&) = default;

 private:
  std::string var_;
  ParamValue value_ = 0;
};

/// A parametrized event atom e[t1, ..., tn] or its complement (§5 extends
/// the syntax of E and T by "parametrizing event atoms by attaching a tuple
/// of all relevant parameters").
struct PAtom {
  std::string event;
  bool complemented = false;
  std::vector<PTerm> args;

  PAtom Substitute(const Binding& binding) const;
  bool IsGround() const;
  /// Variables appearing in the args.
  std::set<std::string> Vars() const;

  /// The mangled ground name "e[3,7]"; the atom must be ground.
  std::string GroundName() const;

  friend bool operator==(const PAtom&, const PAtom&) = default;
};

/// Attempts to unify this ground occurrence (event name + polarity + ground
/// args) with `pattern`; on success extends `binding` (which must remain
/// consistent) and returns true.
bool UnifyAtom(const PAtom& pattern, const std::string& event,
               bool complemented, const std::vector<ParamValue>& args,
               Binding* binding);

/// A parametrized event expression — the value-semantics template
/// counterpart of Expr, with PAtom leaves. Workflow templates (Example 12)
/// and inter-workflow constraints (Example 13) are written in this form and
/// grounded to plain expressions per binding.
class PExpr {
 public:
  enum class Kind { kZero, kTop, kAtom, kSeq, kOr, kAnd };

  static PExpr Zero() { return PExpr(Kind::kZero); }
  static PExpr Top() { return PExpr(Kind::kTop); }
  static PExpr Atom(PAtom atom);
  static PExpr Seq(std::vector<PExpr> children);
  static PExpr Or(std::vector<PExpr> children);
  static PExpr And(std::vector<PExpr> children);

  Kind kind() const { return kind_; }
  const PAtom& atom() const { return atom_; }
  const std::vector<PExpr>& children() const { return children_; }

  PExpr Substitute(const Binding& binding) const;
  bool IsGround() const;
  std::set<std::string> FreeVars() const;
  /// All atoms in the template (pre-order).
  std::vector<PAtom> Atoms() const;

  /// Interns ground atom names ("e[1]") into `alphabet` and builds the
  /// plain expression. Fails (FailedPrecondition) unless ground.
  Result<const Expr*> Ground(Alphabet* alphabet, ExprArena* arena) const;

 private:
  explicit PExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  PAtom atom_;
  std::vector<PExpr> children_;
};

/// Example 13's mutual-exclusion dependency: if T1 enters its critical
/// section before T2, then T1 exits before T2 enters:
///   b2[y]·b1[x] + ē1[x] + b̄2[y] + e1[x]·b2[y]
/// where b_i / e_i are the enter/exit events of task i.
PExpr MutualExclusionDependency(const std::string& b1, const std::string& e1,
                                const std::string& b2, const std::string& e2);

}  // namespace cdes

#endif  // CDES_PARAMS_PARAM_EXPR_H_
