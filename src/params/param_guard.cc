#include "params/param_guard.h"

#include <algorithm>

#include "common/strings.h"
#include "runtime/event_actor.h"

namespace cdes {

PGuard PGuard::Box(PAtom atom) {
  PGuard g(Kind::kBox);
  g.atom_ = std::move(atom);
  return g;
}

PGuard PGuard::Neg(PAtom atom) {
  PGuard g(Kind::kNeg);
  g.atom_ = std::move(atom);
  return g;
}

PGuard PGuard::Diamond(PExpr expr) {
  PGuard g(Kind::kDiamond);
  g.expr_ = std::move(expr);
  return g;
}

PGuard PGuard::And(std::vector<PGuard> children) {
  PGuard g(Kind::kAnd);
  g.children_ = std::move(children);
  return g;
}

PGuard PGuard::Or(std::vector<PGuard> children) {
  PGuard g(Kind::kOr);
  g.children_ = std::move(children);
  return g;
}

PGuard PGuard::Substitute(const Binding& binding) const {
  PGuard out = *this;
  out.atom_ = atom_.Substitute(binding);
  out.expr_ = expr_.Substitute(binding);
  for (PGuard& c : out.children_) c = c.Substitute(binding);
  return out;
}

std::set<std::string> PGuard::FreeVars() const {
  std::set<std::string> out;
  switch (kind_) {
    case Kind::kBox:
    case Kind::kNeg:
      return atom_.Vars();
    case Kind::kDiamond:
      return expr_.FreeVars();
    default:
      break;
  }
  for (const PGuard& c : children_) {
    std::set<std::string> inner = c.FreeVars();
    out.insert(inner.begin(), inner.end());
  }
  return out;
}

std::vector<PAtom> PGuard::Atoms() const {
  std::vector<PAtom> out;
  switch (kind_) {
    case Kind::kBox:
    case Kind::kNeg:
      out.push_back(atom_);
      return out;
    case Kind::kDiamond:
      return expr_.Atoms();
    default:
      break;
  }
  for (const PGuard& c : children_) {
    std::vector<PAtom> inner = c.Atoms();
    out.insert(out.end(), inner.begin(), inner.end());
  }
  return out;
}

Result<const Guard*> PGuard::Ground(WorkflowContext* ctx) const {
  switch (kind_) {
    case Kind::kFalse:
      return ctx->guards()->False();
    case Kind::kTrue:
      return ctx->guards()->True();
    case Kind::kBox:
    case Kind::kNeg: {
      if (!atom_.IsGround()) {
        return Status::FailedPrecondition("guard template has free variables");
      }
      SymbolId symbol = ctx->alphabet()->Intern(atom_.GroundName());
      EventLiteral lit(symbol, atom_.complemented);
      return kind_ == Kind::kBox ? ctx->guards()->Box(lit)
                                 : ctx->guards()->Neg(lit);
    }
    case Kind::kDiamond: {
      CDES_ASSIGN_OR_RETURN(const Expr* e,
                            expr_.Ground(ctx->alphabet(), ctx->exprs()));
      return ctx->guards()->Diamond(e);
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<const Guard*> kids;
      kids.reserve(children_.size());
      for (const PGuard& c : children_) {
        CDES_ASSIGN_OR_RETURN(const Guard* k, c.Ground(ctx));
        kids.push_back(k);
      }
      return kind_ == Kind::kAnd ? ctx->guards()->And(kids)
                                 : ctx->guards()->Or(kids);
    }
  }
  return Status::Internal("unreachable");
}

Result<ParamGuardInstance> ParamGuardInstance::Create(WorkflowContext* ctx,
                                                      PGuard guard_template) {
  std::set<std::string> vars = guard_template.FreeVars();
  for (const PAtom& atom : guard_template.Atoms()) {
    if (atom.Vars() != vars && !atom.Vars().empty()) {
      return Status::InvalidArgument(StrCat(
          "template atom ", atom.event,
          " does not carry the full free-variable tuple; instances would be "
          "ambiguous"));
    }
  }
  return ParamGuardInstance(ctx, std::move(guard_template),
                            std::vector<std::string>(vars.begin(),
                                                     vars.end()));
}

ParamGuardInstance::ParamGuardInstance(WorkflowContext* ctx,
                                       PGuard guard_template,
                                       std::vector<std::string> free_vars)
    : ctx_(ctx), template_(std::move(guard_template)),
      free_vars_(std::move(free_vars)) {}

Status ParamGuardInstance::OnAnnouncement(const std::string& event,
                                          bool complemented,
                                          const std::vector<ParamValue>& args,
                                          AnnouncementKind kind) {
  // The ground literal of this announcement (the mangled symbol name is
  // polarity-free; the literal carries the polarity).
  PAtom positive{event, false, {}};
  for (ParamValue v : args) positive.args.push_back(PTerm::Val(v));
  SymbolId announced_symbol = ctx_->alphabet()->Intern(positive.GroundName());
  EventLiteral announced(announced_symbol, complemented);

  // Materialize instances for every full binding the occurrence determines.
  // The announcement bears on template atoms of the same event name in
  // either polarity (□f affects ¬f, ◇f̄, etc.; the reduction rules sort out
  // which), so unification ignores polarity.
  for (const PAtom& atom : template_.Atoms()) {
    Binding binding;
    PAtom pattern{atom.event, complemented, atom.args};
    if (!UnifyAtom(pattern, event, complemented, args, &binding)) continue;
    std::vector<ParamValue> key;
    key.reserve(free_vars_.size());
    bool full = true;
    for (const std::string& v : free_vars_) {
      auto it = binding.find(v);
      if (it == binding.end()) {
        full = false;
        break;
      }
      key.push_back(it->second);
    }
    if (!full) continue;
    if (!instances_.count(key)) {
      Binding full_binding;
      for (size_t i = 0; i < free_vars_.size(); ++i) {
        full_binding[free_vars_[i]] = key[i];
      }
      CDES_ASSIGN_OR_RETURN(const Guard* ground,
                            template_.Substitute(full_binding).Ground(ctx_));
      // Late materialization: bring the fresh instance up to date with the
      // past announcements of the symbols it mentions, in arrival order (a
      // previously collected instance may be re-created here; the replay
      // restores its state exactly).
      std::vector<LoggedAnnouncement> relevant;
      for (SymbolId s : GuardSymbols(ground)) {
        auto it = history_.find(s);
        if (it == history_.end()) continue;
        relevant.insert(relevant.end(), it->second.begin(), it->second.end());
      }
      std::sort(relevant.begin(), relevant.end(),
                [](const LoggedAnnouncement& a, const LoggedAnnouncement& b) {
                  return a.seq < b.seq;
                });
      for (const LoggedAnnouncement& past : relevant) {
        ground = ReduceGuard(ctx_->guards(), ctx_->residuator(), ground,
                             {past.kind, past.literal});
      }
      if (!ground->IsTrue()) instances_.emplace(std::move(key), ground);
    }
  }
  // Log, then reduce every live instance by the announcement; instances
  // that reach the constant ⊤ can never block again and are collected.
  history_[announced_symbol].push_back(
      LoggedAnnouncement{history_seq_++, announced, kind});
  for (auto it = instances_.begin(); it != instances_.end();) {
    it->second = ReduceGuard(ctx_->guards(), ctx_->residuator(), it->second,
                             {kind, announced});
    if (it->second->IsTrue()) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

bool ParamGuardInstance::EnabledNow() const {
  // Fresh instances: the template at any untouched binding has seen no
  // occurrences, so its ground form evaluated with zero knowledge decides
  // the "for all other y" part. Use a binding disjoint from all seen keys.
  ParamValue fresh = -1;
  for (const auto& [key, guard] : instances_) {
    for (ParamValue v : key) fresh = std::min(fresh, v - 1);
  }
  Binding fresh_binding;
  for (const std::string& v : free_vars_) fresh_binding[v] = fresh--;
  Result<const Guard*> ground =
      template_.Substitute(fresh_binding).Ground(ctx_);
  CDES_CHECK(ground.ok()) << ground.status();
  if (!EventActor::EvaluateNow(ground.value())) return false;
  for (const auto& [key, guard] : instances_) {
    if (!EventActor::EvaluateNow(guard)) return false;
  }
  return true;
}

size_t ParamGuardInstance::blocking_instance_count() const {
  size_t n = 0;
  for (const auto& [key, guard] : instances_) {
    if (!EventActor::EvaluateNow(guard)) ++n;
  }
  return n;
}

const Guard* ParamGuardInstance::InstanceGuard(
    const std::vector<ParamValue>& key) const {
  auto it = instances_.find(key);
  return it == instances_.end() ? nullptr : it->second;
}

}  // namespace cdes
