#ifndef CDES_PARAMS_PARAM_GUARD_H_
#define CDES_PARAMS_PARAM_GUARD_H_

#include <map>
#include <string>
#include <vector>

#include "guards/context.h"
#include "params/param_expr.h"
#include "temporal/reduction.h"

namespace cdes {

/// A parametrized temporal guard template — the value-semantics counterpart
/// of Guard with PAtom leaves (e.g. Example 14's ¬f[y] + □g[y]).
class PGuard {
 public:
  enum class Kind { kFalse, kTrue, kBox, kNeg, kDiamond, kAnd, kOr };

  static PGuard False() { return PGuard(Kind::kFalse); }
  static PGuard True() { return PGuard(Kind::kTrue); }
  static PGuard Box(PAtom atom);
  static PGuard Neg(PAtom atom);
  static PGuard Diamond(PExpr expr);
  static PGuard And(std::vector<PGuard> children);
  static PGuard Or(std::vector<PGuard> children);

  Kind kind() const { return kind_; }
  const PAtom& atom() const { return atom_; }
  const PExpr& expr() const { return expr_; }
  const std::vector<PGuard>& children() const { return children_; }

  PGuard Substitute(const Binding& binding) const;
  std::set<std::string> FreeVars() const;
  /// All atoms (Box/Neg leaves and Diamond expression atoms).
  std::vector<PAtom> Atoms() const;

  /// Grounds into the context's guard arena; fails unless ground.
  Result<const Guard*> Ground(WorkflowContext* ctx) const;

 private:
  explicit PGuard(Kind kind) : kind_(kind) {}

  Kind kind_;
  PAtom atom_;
  PExpr expr_ = PExpr::Top();
  std::vector<PGuard> children_;
};

/// The unbound parameters of a guard are universally quantified (§5.2).
/// ParamGuardInstance tracks one parametrized event instance's guard as
/// occurrences arrive, per Example 14:
///
///   Guard template on e[x]: ¬f[y] + □g[y], y free.
///   Initially no f[ŷ] has occurred: the guard holds for all y; e may go.
///   f[ŷ] occurs: an instance ŷ materializes with reduced guard □g[ŷ];
///   e must wait ("the guard grows").
///   g[ŷ] occurs: instance ŷ reduces to ⊤; e is enabled again
///   ("the guard is resurrected").
///
/// Enabledness = the fresh-instance template holds vacuously AND every
/// materialized instance's reduced guard licenses occurrence now.
///
/// Restriction (checked at Create): every template atom must carry the full
/// free-variable tuple, so a single ground occurrence determines the
/// instance it affects. Example 13 and Example 14 templates satisfy this.
class ParamGuardInstance {
 public:
  static Result<ParamGuardInstance> Create(WorkflowContext* ctx,
                                           PGuard guard_template);

  /// Assimilates a ground occurrence (or promise) of `event`[args].
  Status OnAnnouncement(const std::string& event, bool complemented,
                        const std::vector<ParamValue>& args,
                        AnnouncementKind kind = AnnouncementKind::kOccurred);

  /// Whether the guarded event may occur now (all instances licensed).
  bool EnabledNow() const;

  /// Number of materialized instances whose guard does not currently
  /// license occurrence ("blocking" instances).
  size_t blocking_instance_count() const;

  /// Number of live instances. Instances whose guard has reduced to the
  /// constant ⊤ can never block again and are garbage-collected (their
  /// effect is replayed from the announcement log if the binding
  /// re-materializes), so long-running loops hold O(live) state.
  size_t instance_count() const { return instances_.size(); }

  /// The reduced guard of the instance keyed by the free-var tuple (in
  /// sorted variable-name order), or nullptr.
  const Guard* InstanceGuard(const std::vector<ParamValue>& key) const;

  const std::vector<std::string>& free_vars() const { return free_vars_; }

 private:
  ParamGuardInstance(WorkflowContext* ctx, PGuard guard_template,
                     std::vector<std::string> free_vars);

  struct LoggedAnnouncement {
    uint64_t seq;
    EventLiteral literal;
    AnnouncementKind kind;
  };

  WorkflowContext* ctx_;
  PGuard template_;
  std::vector<std::string> free_vars_;
  std::map<std::vector<ParamValue>, const Guard*> instances_;
  /// Announcements seen, indexed by ground symbol and stamped with arrival
  /// order; replayed (merged by seq) onto instances that materialize late,
  /// so materialization costs O(relevant announcements), not O(history).
  std::map<SymbolId, std::vector<LoggedAnnouncement>> history_;
  uint64_t history_seq_ = 0;
};

}  // namespace cdes

#endif  // CDES_PARAMS_PARAM_GUARD_H_
