#include "params/param_workflow.h"

#include <algorithm>

#include "common/strings.h"

namespace cdes {

Status WorkflowTemplate::AddEvent(PAtom atom, const std::string& agent,
                                  const EventAttributes& attrs) {
  if (atom.complemented) {
    return Status::InvalidArgument("declare the positive event only");
  }
  for (const std::string& v : atom.Vars()) {
    if (std::find(params_.begin(), params_.end(), v) == params_.end()) {
      return Status::InvalidArgument(
          StrCat("event ", atom.event, " uses unknown parameter ", v));
    }
  }
  events_.push_back(EventTemplate{std::move(atom), agent, attrs});
  return Status::OK();
}

Status WorkflowTemplate::AddDependency(const std::string& name, PExpr expr) {
  for (const std::string& v : expr.FreeVars()) {
    if (std::find(params_.begin(), params_.end(), v) == params_.end()) {
      return Status::InvalidArgument(
          StrCat("dependency ", name, " uses unknown parameter ", v));
    }
  }
  dependencies_.emplace_back(name, std::move(expr));
  return Status::OK();
}

Status WorkflowTemplate::InstantiateInto(WorkflowContext* ctx,
                                         const Binding& binding,
                                         ParsedWorkflow* out,
                                         bool per_instance_agents) const {
  for (const std::string& p : params_) {
    if (!binding.count(p)) {
      return Status::InvalidArgument(StrCat("parameter ", p, " is unbound"));
    }
  }
  if (out->name.empty()) out->name = name_;
  std::string suffix;
  for (const std::string& p : params_) {
    suffix += StrCat("[", p, "=", binding.at(p), "]");
  }
  for (const AgentDecl& agent : agents_) {
    AgentDecl instance = agent;
    if (per_instance_agents) instance.name += suffix;
    if (out->FindAgent(instance.name) == nullptr) {
      out->agents.push_back(std::move(instance));
    }
  }
  for (const EventTemplate& event : events_) {
    PAtom ground = event.atom.Substitute(binding);
    CDES_CHECK(ground.IsGround());
    std::string name = ground.GroundName();
    if (out->FindEvent(name) != nullptr) {
      return Status::AlreadyExists(StrCat("instance event ", name,
                                          " already exists"));
    }
    EventDecl decl;
    decl.name = name;
    decl.symbol = ctx->alphabet()->Intern(name);
    decl.agent = per_instance_agents ? event.agent + suffix : event.agent;
    decl.attrs = event.attrs;
    out->events.push_back(std::move(decl));
  }
  for (const auto& [dep_name, expr] : dependencies_) {
    CDES_ASSIGN_OR_RETURN(
        const Expr* ground,
        expr.Substitute(binding).Ground(ctx->alphabet(), ctx->exprs()));
    out->spec.Add(StrCat(dep_name, suffix), ground);
  }
  return Status::OK();
}

Result<ParsedWorkflow> WorkflowTemplate::Instantiate(
    WorkflowContext* ctx, const Binding& binding) const {
  ParsedWorkflow out;
  CDES_RETURN_IF_ERROR(InstantiateInto(ctx, binding, &out));
  return out;
}

Binding WorkflowTemplate::CanonicalBinding() const {
  Binding binding;
  for (const std::string& p : params_) binding[p] = 0;
  return binding;
}

Result<ParsedWorkflow> WorkflowTemplate::InstantiateCanonical(
    WorkflowContext* ctx) const {
  return Instantiate(ctx, CanonicalBinding());
}

WorkflowTemplate TravelTemplate() {
  WorkflowTemplate t("travel", {"cid"});
  t.AddAgent("air", 0);
  t.AddAgent("car", 1);
  PTerm cid = PTerm::Var("cid");
  auto atom = [&](const char* name, bool complemented = false) {
    return PAtom{name, complemented, {cid}};
  };
  EventAttributes triggerable;
  triggerable.triggerable = true;
  CDES_CHECK(t.AddEvent(atom("s_buy"), "air").ok());
  CDES_CHECK(t.AddEvent(atom("c_buy"), "air").ok());
  CDES_CHECK(t.AddEvent(atom("s_book"), "car", triggerable).ok());
  CDES_CHECK(t.AddEvent(atom("c_book"), "car").ok());
  CDES_CHECK(t.AddEvent(atom("s_cancel"), "car", triggerable).ok());

  // (1) ~s_buy[cid] + s_book[cid]
  CDES_CHECK(t.AddDependency(
                  "d1", PExpr::Or({PExpr::Atom(atom("s_buy", true)),
                                   PExpr::Atom(atom("s_book"))}))
                 .ok());
  // (2) ~c_buy[cid] + c_book[cid] . c_buy[cid]
  CDES_CHECK(t.AddDependency(
                  "d2", PExpr::Or({PExpr::Atom(atom("c_buy", true)),
                                   PExpr::Seq({PExpr::Atom(atom("c_book")),
                                               PExpr::Atom(atom("c_buy"))})}))
                 .ok());
  // (3) ~c_book[cid] + c_buy[cid] + s_cancel[cid]
  CDES_CHECK(t.AddDependency(
                  "d3", PExpr::Or({PExpr::Atom(atom("c_book", true)),
                                   PExpr::Atom(atom("c_buy")),
                                   PExpr::Atom(atom("s_cancel"))}))
                 .ok());
  return t;
}

}  // namespace cdes
