#ifndef CDES_PARAMS_PARAM_WORKFLOW_H_
#define CDES_PARAMS_PARAM_WORKFLOW_H_

#include <string>
#include <vector>

#include "params/param_expr.h"
#include "spec/ast.h"

namespace cdes {

/// A parametrized workflow template (§5.1, Example 12): dependencies over
/// parametrized events whose variables are the workflow parameters (e.g.
/// cid, the customer id). "Attempting some key event binds the parameters
/// of all events, thus instantiating the workflow afresh"; here the caller
/// instantiates explicitly with a Binding, and each instance is scheduled
/// like any plain workflow.
class WorkflowTemplate {
 public:
  WorkflowTemplate(std::string name, std::vector<std::string> params)
      : name_(std::move(name)), params_(std::move(params)) {}

  void AddAgent(const std::string& agent, int site) {
    agents_.push_back(AgentDecl{agent, site});
  }

  /// Declares a parametrized event. `atom` must be positive and use only
  /// template parameters.
  Status AddEvent(PAtom atom, const std::string& agent,
                  const EventAttributes& attrs = {});

  /// Adds a dependency template; all free variables must be parameters.
  Status AddDependency(const std::string& name, PExpr expr);

  /// Instantiates the template under `binding` (which must assign every
  /// parameter) and appends the resulting ground events and dependencies
  /// to `out` (so several instances — customers — coexist in one workflow
  /// and one scheduler). By default agents are shared across instances
  /// (added once); with `per_instance_agents`, each instance gets its own
  /// copies ("air[cid=7]"), letting callers place instances on distinct
  /// sites.
  Status InstantiateInto(WorkflowContext* ctx, const Binding& binding,
                         ParsedWorkflow* out,
                         bool per_instance_agents = false) const;

  /// Convenience: a fresh ParsedWorkflow holding one instance.
  Result<ParsedWorkflow> Instantiate(WorkflowContext* ctx,
                                     const Binding& binding) const;

  /// Instantiates under the canonical binding (every parameter bound to 0).
  /// The multi-instance engine uses this to materialize one *prototype*
  /// instance per shard: engine instances are isolated per scheduler, so
  /// identity lives in the engine's instance id rather than in mangled
  /// event names, and every instance reuses the prototype's compiled
  /// guards.
  Result<ParsedWorkflow> InstantiateCanonical(WorkflowContext* ctx) const;

  /// The canonical binding: every parameter bound to 0.
  Binding CanonicalBinding() const;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& params() const { return params_; }

 private:
  struct EventTemplate {
    PAtom atom;
    std::string agent;
    EventAttributes attrs;
  };

  std::string name_;
  std::vector<std::string> params_;
  std::vector<AgentDecl> agents_;
  std::vector<EventTemplate> events_;
  std::vector<std::pair<std::string, PExpr>> dependencies_;
};

/// Example 12's travel template, parametrized by cid:
///   (1) ~s_buy[cid] + s_book[cid]
///   (2) ~c_buy[cid] + c_book[cid] . c_buy[cid]
///   (3) ~c_book[cid] + c_buy[cid] + s_cancel[cid]
WorkflowTemplate TravelTemplate();

}  // namespace cdes

#endif  // CDES_PARAMS_PARAM_WORKFLOW_H_
