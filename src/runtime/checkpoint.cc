#include "runtime/checkpoint.h"

#include <utility>

#include "common/strings.h"

namespace cdes {
namespace {

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty()) return false;
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Splits an s-expression into tokens: parentheses and whitespace-delimited
/// atoms. Literal names cannot contain spaces or parens (the spec parser
/// forbids them), so no quoting is needed.
std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == '(' || c == ')') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
      tokens.push_back(std::string(1, c));
    } else if (c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status Malformed(std::string_view what) {
  return Status::InvalidArgument(StrCat("malformed ", what, " s-expression"));
}

Result<const Expr*> ParseExprTokens(ExprArena* exprs, const Alphabet& alphabet,
                                    const std::vector<std::string>& tokens,
                                    size_t* pos);

Result<const Guard*> ParseGuardTokens(GuardArena* guards,
                                      const Alphabet& alphabet,
                                      const std::vector<std::string>& tokens,
                                      size_t* pos) {
  if (*pos >= tokens.size()) return Malformed("guard");
  const std::string& tok = tokens[(*pos)++];
  if (tok == "^GT") return guards->True();
  if (tok == "^GF") return guards->False();
  if (tok != "(") {
    return Status::InvalidArgument(
        StrCat("unexpected guard token '", tok, "'"));
  }
  if (*pos >= tokens.size()) return Malformed("guard");
  const std::string& op = tokens[(*pos)++];
  if (op == "box" || op == "neg") {
    if (*pos >= tokens.size()) return Malformed("guard");
    auto literal = alphabet.ParseLiteral(tokens[(*pos)++]);
    if (!literal.ok()) return literal.status();
    if (*pos >= tokens.size() || tokens[(*pos)++] != ")") {
      return Malformed("guard");
    }
    return op == "box" ? guards->Box(literal.value())
                       : guards->Neg(literal.value());
  }
  if (op == "dia") {
    auto expr = ParseExprTokens(guards->exprs(), alphabet, tokens, pos);
    if (!expr.ok()) return expr.status();
    if (*pos >= tokens.size() || tokens[(*pos)++] != ")") {
      return Malformed("guard");
    }
    return guards->Diamond(expr.value());
  }
  if (op == "and" || op == "or") {
    std::vector<const Guard*> children;
    while (*pos < tokens.size() && tokens[*pos] != ")") {
      auto child = ParseGuardTokens(guards, alphabet, tokens, pos);
      if (!child.ok()) return child.status();
      children.push_back(child.value());
    }
    if (*pos >= tokens.size()) return Malformed("guard");
    ++*pos;  // consume ")"
    return op == "and" ? guards->And(children) : guards->Or(children);
  }
  return Status::InvalidArgument(StrCat("unknown guard operator '", op, "'"));
}

Result<const Expr*> ParseExprTokens(ExprArena* exprs, const Alphabet& alphabet,
                                    const std::vector<std::string>& tokens,
                                    size_t* pos) {
  if (*pos >= tokens.size()) return Malformed("expr");
  const std::string& tok = tokens[(*pos)++];
  if (tok == "^T") return exprs->Top();
  if (tok == "^0") return exprs->Zero();
  if (tok != "(") {
    auto literal = alphabet.ParseLiteral(tok);
    if (!literal.ok()) return literal.status();
    return exprs->Atom(literal.value());
  }
  if (*pos >= tokens.size()) return Malformed("expr");
  const std::string& op = tokens[(*pos)++];
  if (op != "seq" && op != "or" && op != "and") {
    return Status::InvalidArgument(StrCat("unknown expr operator '", op, "'"));
  }
  std::vector<const Expr*> children;
  while (*pos < tokens.size() && tokens[*pos] != ")") {
    auto child = ParseExprTokens(exprs, alphabet, tokens, pos);
    if (!child.ok()) return child.status();
    children.push_back(child.value());
  }
  if (*pos >= tokens.size()) return Malformed("expr");
  ++*pos;  // consume ")"
  if (op == "seq") return exprs->Seq(children);
  return op == "or" ? exprs->Or(children) : exprs->And(children);
}

}  // namespace

std::string ExprToSexpr(const Expr* e, const Alphabet& alphabet) {
  switch (e->kind()) {
    case ExprKind::kZero:
      return "^0";
    case ExprKind::kTop:
      return "^T";
    case ExprKind::kAtom:
      return alphabet.LiteralName(e->literal());
    case ExprKind::kSeq:
    case ExprKind::kOr:
    case ExprKind::kAnd: {
      std::string out = e->kind() == ExprKind::kSeq   ? "(seq"
                        : e->kind() == ExprKind::kOr ? "(or"
                                                      : "(and";
      for (const Expr* child : e->children()) {
        out += StrCat(" ", ExprToSexpr(child, alphabet));
      }
      return out + ")";
    }
  }
  CDES_CHECK(false) << "unreachable";
  return {};
}

std::string GuardToSexpr(const Guard* g, const Alphabet& alphabet) {
  switch (g->kind()) {
    case GuardKind::kFalse:
      return "^GF";
    case GuardKind::kTrue:
      return "^GT";
    case GuardKind::kBox:
      return StrCat("(box ", alphabet.LiteralName(g->literal()), ")");
    case GuardKind::kNeg:
      return StrCat("(neg ", alphabet.LiteralName(g->literal()), ")");
    case GuardKind::kDiamond:
      return StrCat("(dia ", ExprToSexpr(g->expr(), alphabet), ")");
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      std::string out = g->kind() == GuardKind::kAnd ? "(and" : "(or";
      for (const Guard* child : g->children()) {
        out += StrCat(" ", GuardToSexpr(child, alphabet));
      }
      return out + ")";
    }
  }
  CDES_CHECK(false) << "unreachable";
  return {};
}

Result<const Guard*> GuardFromSexpr(GuardArena* guards,
                                    const Alphabet& alphabet,
                                    std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  size_t pos = 0;
  auto guard = ParseGuardTokens(guards, alphabet, tokens, &pos);
  if (!guard.ok()) return guard.status();
  if (pos != tokens.size()) {
    return Status::InvalidArgument("trailing tokens after guard");
  }
  return guard;
}

Result<const Expr*> ExprFromSexpr(ExprArena* exprs, const Alphabet& alphabet,
                                  std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  size_t pos = 0;
  auto expr = ParseExprTokens(exprs, alphabet, tokens, &pos);
  if (!expr.ok()) return expr.status();
  if (pos != tokens.size()) {
    return Status::InvalidArgument("trailing tokens after expr");
  }
  return expr;
}

uint64_t AlphabetFingerprint(const Alphabet& alphabet, size_t count) {
  CDES_CHECK_LE(count, alphabet.size());
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  constexpr uint64_t kPrime = 1099511628211ull;
  for (SymbolId id = 0; id < count; ++id) {
    for (char c : alphabet.Name(id)) {
      h = (h ^ static_cast<unsigned char>(c)) * kPrime;
    }
    h *= kPrime;  // NUL frame between names (names cannot contain NUL)
  }
  return h;
}

std::string SerializeCheckpoint(const CheckpointState& state,
                                const Alphabet& alphabet) {
  std::string out =
      StrCat("meta ", state.next_seq, " ", state.clock, " ", alphabet.size(),
             " ", AlphabetFingerprint(alphabet, alphabet.size()));
  out += "\nhist";
  for (EventLiteral lit : state.history) {
    out += lit.complemented() ? StrCat(" ~", lit.symbol())
                              : StrCat(" ", lit.symbol());
  }
  for (const TransportChannelState& c : state.channels) {
    out += StrCat("\nchan ", c.src, " ", c.dst, " ", c.send_next, " ",
                  c.recv_contiguous);
    for (uint64_t seq : c.recv_gapped) out += StrCat(" ", seq);
  }
  for (const ActorCheckpoint& actor : state.actors) {
    out += StrCat("\nactor ", actor.symbol);
    out += StrCat("\npos ", GuardToSexpr(actor.positive, alphabet));
    out += StrCat("\nneg ", GuardToSexpr(actor.negative, alphabet));
  }
  return out;
}

namespace {

/// Pulls the next '\n'-terminated line out of `*rest` without copying.
/// Returns false once the payload is exhausted. An empty payload still
/// yields one (empty) line, matching the old split semantics.
class LineCursor {
 public:
  explicit LineCursor(std::string_view payload) : rest_(payload) {}

  bool Next(std::string_view* line) {
    if (done_) return false;
    size_t nl = rest_.find('\n');
    if (nl == std::string_view::npos) {
      *line = rest_;
      done_ = true;
    } else {
      *line = rest_.substr(0, nl);
      rest_.remove_prefix(nl + 1);
    }
    ++lineno_;
    return true;
  }

  size_t lineno() const { return lineno_; }

 private:
  std::string_view rest_;
  size_t lineno_ = 0;
  bool done_ = false;
};

/// Pulls the next space-delimited field; false when the line is exhausted.
bool NextField(std::string_view* rest, std::string_view* field) {
  if (rest->empty()) return false;
  size_t sp = rest->find(' ');
  if (sp == std::string_view::npos) {
    *field = *rest;
    *rest = {};
  } else {
    *field = rest->substr(0, sp);
    rest->remove_prefix(sp + 1);
  }
  return true;
}

/// Decodes an id-encoded literal token (`<id>` or `~<id>`) against an
/// alphabet whose first `nsymbols` ids the payload's fingerprint vouched
/// for.
bool ParseIdLiteral(std::string_view token, uint64_t nsymbols,
                    EventLiteral* out) {
  bool complemented = !token.empty() && token.front() == '~';
  if (complemented) token.remove_prefix(1);
  uint64_t id = 0;
  if (!ParseU64(token, &id) || id >= nsymbols) return false;
  *out = EventLiteral(static_cast<SymbolId>(id), complemented);
  return true;
}

}  // namespace

Result<CheckpointState> ParseCheckpoint(GuardArena* guards,
                                        const Alphabet& alphabet,
                                        std::string_view payload) {
  CheckpointState state;
  LineCursor cursor(payload);
  std::string_view line;
  // The meta line must come first: the symbol count + fingerprint it
  // carries gate every id decoded below.
  uint64_t nsymbols = 0;
  {
    uint64_t clock = 0, fp = 0;
    std::string_view tag, f1, f2, f3, f4, extra;
    if (!cursor.Next(&line) || !NextField(&line, &tag) || tag != "meta" ||
        !NextField(&line, &f1) || !NextField(&line, &f2) ||
        !NextField(&line, &f3) || !NextField(&line, &f4) ||
        NextField(&line, &extra) || !ParseU64(f1, &state.next_seq) ||
        !ParseU64(f2, &clock) || !ParseU64(f3, &nsymbols) ||
        !ParseU64(f4, &fp)) {
      return Status::InvalidArgument("malformed checkpoint meta line");
    }
    state.clock = clock;
    if (nsymbols > alphabet.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint was taken over ", nsymbols,
                 " symbols but only ", alphabet.size(), " are interned"));
    }
    if (fp != AlphabetFingerprint(alphabet, nsymbols)) {
      return Status::InvalidArgument(
          "checkpoint alphabet fingerprint mismatch: symbol numbering "
          "differs from the recovering workflow's");
    }
  }
  bool saw_hist = false;
  while (cursor.Next(&line)) {
    std::string_view tag;
    if (!NextField(&line, &tag) || tag.empty()) {
      return Status::InvalidArgument(
          StrCat("empty checkpoint payload line ", cursor.lineno()));
    }
    if (tag == "meta") {
      return Status::InvalidArgument("duplicate checkpoint meta line");
    } else if (tag == "hist") {
      if (saw_hist) {
        return Status::InvalidArgument("duplicate checkpoint hist line");
      }
      std::string_view field;
      while (NextField(&line, &field)) {
        EventLiteral lit;
        if (!ParseIdLiteral(field, nsymbols, &lit)) {
          return Status::InvalidArgument(
              StrCat("bad checkpoint hist literal '", field, "'"));
        }
        state.history.push_back(lit);
      }
      saw_hist = true;
    } else if (tag == "chan") {
      TransportChannelState c;
      uint64_t src = 0, dst = 0;
      std::string_view f1, f2, f3, f4;
      if (!NextField(&line, &f1) || !NextField(&line, &f2) ||
          !NextField(&line, &f3) || !NextField(&line, &f4) ||
          !ParseU64(f1, &src) || !ParseU64(f2, &dst) ||
          !ParseU64(f3, &c.send_next) || !ParseU64(f4, &c.recv_contiguous)) {
        return Status::InvalidArgument("malformed checkpoint chan line");
      }
      c.src = static_cast<int>(src);
      c.dst = static_cast<int>(dst);
      std::string_view field;
      while (NextField(&line, &field)) {
        uint64_t seq = 0;
        if (!ParseU64(field, &seq)) {
          return Status::InvalidArgument("malformed checkpoint chan line");
        }
        c.recv_gapped.push_back(seq);
      }
      state.channels.push_back(std::move(c));
    } else if (tag == "actor") {
      std::string_view f1, extra;
      uint64_t id = 0;
      if (!NextField(&line, &f1) || NextField(&line, &extra) ||
          !ParseU64(f1, &id) || id >= nsymbols) {
        return Status::InvalidArgument("malformed checkpoint actor line");
      }
      ActorCheckpoint actor;
      actor.symbol = static_cast<SymbolId>(id);
      // An actor block is exactly three lines: actor, pos, neg.
      std::string_view pos_line, neg_line;
      if (!cursor.Next(&pos_line) || pos_line.substr(0, 4) != "pos " ||
          !cursor.Next(&neg_line) || neg_line.substr(0, 4) != "neg ") {
        return Status::InvalidArgument(StrCat(
            "incomplete actor block for '", alphabet.Name(actor.symbol),
            "'"));
      }
      auto positive = GuardFromSexpr(guards, alphabet, pos_line.substr(4));
      if (!positive.ok()) return positive.status();
      auto negative = GuardFromSexpr(guards, alphabet, neg_line.substr(4));
      if (!negative.ok()) return negative.status();
      actor.positive = positive.value();
      actor.negative = negative.value();
      state.actors.push_back(actor);
    } else {
      return Status::InvalidArgument(
          StrCat("unknown checkpoint payload tag '", tag, "'"));
    }
  }
  if (!saw_hist) {
    return Status::InvalidArgument("checkpoint payload missing hist line");
  }
  return state;
}

}  // namespace cdes
