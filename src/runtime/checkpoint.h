#ifndef CDES_RUNTIME_CHECKPOINT_H_
#define CDES_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/event.h"
#include "algebra/expr.h"
#include "runtime/messages.h"
#include "runtime/reliable_transport.h"
#include "temporal/guard.h"

namespace cdes {

/// Baseline guards of one still-undecided event actor at checkpoint time:
/// the compiled guards folded by everything the actor has *heard* (its
/// stamp-ordered announcement knowledge). Because residuation is a left
/// fold, replaying the covered records from genesis would land on exactly
/// these guards — so a recovered actor can start from them and fold only
/// the log suffix. Soft state (promises received, parked attempts, trigger
/// obligations) is deliberately not captured: it is re-derived by the
/// post-recovery protocol exactly as the genesis-replay path re-derives it.
struct ActorCheckpoint {
  SymbolId symbol = kInvalidSymbol;
  const Guard* positive = nullptr;
  const Guard* negative = nullptr;
};

/// Everything GuardScheduler::Recover needs in place of the covered record
/// prefix: the decided history (for HistoryConsistent and duplicate-decision
/// checks), the occurrence-stamp sequence counter, the instance clock, the
/// heard-residual baselines of actors whose guards have moved, and the
/// reliable-transport watermarks. Taken only at instance quiescence, where
/// no announcement is in flight — mid-flight cuts would snapshot one actor
/// pre-hearing and another post-hearing with nobody left to re-announce.
struct CheckpointState {
  uint64_t next_seq = 0;
  SimTime clock = 0;
  /// Decided literals in stamp order (the trace so far).
  std::vector<EventLiteral> history;
  /// Baselines for undecided actors whose residual differs from the
  /// compiled guard (hash-consing makes that a pointer comparison; actors
  /// that heard nothing relevant are omitted and keep the compiled table).
  std::vector<ActorCheckpoint> actors;
  std::vector<TransportChannelState> channels;
};

/// Renders a guard as a round-trippable s-expression over interned literal
/// names, e.g. `(and (box s_buy) (dia (seq c_buy c_book)))`. Atoms `^GT` /
/// `^GF` are ⊤ / 0 (the '^' prefix cannot collide with event names, which
/// may not start with '~' and are interned before parsing).
std::string GuardToSexpr(const Guard* g, const Alphabet& alphabet);

/// Parses GuardToSexpr output back into `guards`' hash-consed DAG. Arena
/// canonicalization makes the round trip exact: serializing a canonical
/// node and re-parsing it re-interns the identical structure.
Result<const Guard*> GuardFromSexpr(GuardArena* guards,
                                    const Alphabet& alphabet,
                                    std::string_view text);

/// Expression counterparts (`^T` / `^0` constants, bare literals as atoms).
std::string ExprToSexpr(const Expr* e, const Alphabet& alphabet);
Result<const Expr*> ExprFromSexpr(ExprArena* exprs, const Alphabet& alphabet,
                                  std::string_view text);

/// FNV-1a over the first `count` interned names of `alphabet`, each framed
/// by a NUL byte (names cannot contain NUL). Stamped into every checkpoint
/// payload so id-encoded literals are only ever decoded against the same
/// symbol numbering that produced them.
uint64_t AlphabetFingerprint(const Alphabet& alphabet, size_t count);

/// Serializes a checkpoint into the opaque payload of an
/// EventLog::CheckpointSection: '\n'-separated lines, no trailing newline.
/// The meta line comes first; history literals and actor symbols are
/// encoded by numeric SymbolId (`<id>` / `~<id>`) — recovery re-parses the
/// workflow spec before loading logs, so the recovering alphabet assigns
/// the same ids in the same order, and the meta line's symbol count +
/// fingerprint prove it before any id is trusted.
///
///   meta <next_seq> <clock> <nsymbols> <alphabet-fp>
///   hist <id | ~id>...                 (always present; possibly bare)
///   chan <src> <dst> <send_next> <recv_contiguous> <gapped>...
///   actor <id>
///   pos <guard-sexpr>
///   neg <guard-sexpr>
///
/// Guard s-expressions stay name-based: they are tiny next to the history
/// and their round trip is exercised (and debugged) as text.
///
/// Deterministic for a given state: actors and channels are emitted in the
/// (sorted) order CheckpointState carries them.
std::string SerializeCheckpoint(const CheckpointState& state,
                                const Alphabet& alphabet);

/// Parses a SerializeCheckpoint payload, re-interning guards into `guards`.
/// All symbols must already be in `alphabet` (recovery re-parses the
/// workflow spec before loading logs); the payload's own symbol count and
/// fingerprint are checked against `alphabet` first, so a checkpoint taken
/// under a different numbering fails loudly instead of decoding garbage.
Result<CheckpointState> ParseCheckpoint(GuardArena* guards,
                                        const Alphabet& alphabet,
                                        std::string_view payload);

}  // namespace cdes

#endif  // CDES_RUNTIME_CHECKPOINT_H_
