#include "runtime/event_actor.h"

#include <algorithm>

#include "algebra/semantics.h"
#include "sim/simulator.h"
#include "temporal/guard_needs.h"
#include "temporal/reduction.h"

namespace cdes {

bool EventActor::EvaluateNow(const Guard* g) {
  switch (g->kind()) {
    case GuardKind::kTrue:
      return true;
    case GuardKind::kFalse:
      return false;
    case GuardKind::kNeg:
      // Unreduced ¬ℓ means ℓ has not been heard: true at this instant.
      return true;
    case GuardKind::kBox:
    case GuardKind::kDiamond:
      // Unreduced □/◇ means the occurrence / guarantee is not yet known.
      return false;
    case GuardKind::kAnd:
      for (const Guard* c : g->children()) {
        if (!EvaluateNow(c)) return false;
      }
      return true;
    case GuardKind::kOr:
      for (const Guard* c : g->children()) {
        if (EvaluateNow(c)) return true;
      }
      return false;
  }
  return false;
}

EventActor::EventActor(ActorHost* host, SymbolId symbol, int site,
                       const Guard* positive_guard,
                       const Guard* negative_guard,
                       const EventAttributes& positive_attrs,
                       const EventAttributes& negative_attrs,
                       const obs::ActorObs* obs)
    : host_(host), symbol_(symbol), site_(site),
      positive_guard_(positive_guard), negative_guard_(negative_guard),
      positive_attrs_(positive_attrs), negative_attrs_(negative_attrs),
      obs_(obs), cache_(host->reduction_cache()),
      flat_(host->flat_evaluator()), incremental_(cache_ != nullptr) {}

bool EventActor::Evaluate(const Guard* g) const {
  return flat_ != nullptr ? flat_->EvaluateNow(g) : EvaluateNow(g);
}

const Guard* EventActor::HeardFold(EventLiteral literal) const {
  std::vector<const Guard*>& chain =
      literal.complemented() ? neg_chain_ : pos_chain_;
  if (chain.empty()) chain.push_back(CompiledGuard(literal));
  // Extend the memoized prefix: only arrivals past the chain's current
  // length are folded, each exactly once over the actor's lifetime (absent
  // out-of-order truncation).
  while (chain.size() <= heard_.size()) {
    const auto& [stamp, occurred] = heard_[chain.size() - 1];
    chain.push_back(ReduceGuard(host_->guard_arena(), host_->residuator(),
                                chain.back(),
                                {AnnouncementKind::kOccurred, occurred},
                                cache_));
  }
  return chain[heard_.size()];
}

void EventActor::TruncateFoldChains(size_t idx) {
  // heard_[idx] changed, so folds of prefixes longer than idx are stale;
  // chain[k] covers heard_[0..k), hence entries up to index idx survive.
  if (pos_chain_.size() > idx + 1) pos_chain_.resize(idx + 1);
  if (neg_chain_.size() > idx + 1) neg_chain_.resize(idx + 1);
  for (Obligation& ob : obligations_) {
    if (ob.chain.size() > idx + 1) ob.chain.resize(idx + 1);
  }
}

const Guard* EventActor::CurrentGuard(EventLiteral literal) const {
  if (obs_ != nullptr && obs_->reduction_steps != nullptr) {
    obs_->reduction_steps->Observe(heard_.size() + promises_.size());
  }
  if (incremental_ && profile_ == nullptr) {
    size_t slot = literal.complemented() ? 1 : 0;
    if (current_memo_version_[slot] == version_) return current_memo_[slot];
    const Guard* g = HeardFold(literal);
    for (const auto& [promised, after] : promises_) {
      g = ReduceGuard(host_->guard_arena(), host_->residuator(), g,
                      {AnnouncementKind::kPromised, promised}, cache_);
    }
    g = DischargeDiamonds(g);
    current_memo_[slot] = g;
    current_memo_version_[slot] = version_;
    return g;
  }
  if (profile_ != nullptr) {
    const std::vector<GuardProfile::Contribution>& contribs =
        literal.complemented() ? profile_->negative : profile_->positive;
    if (!contribs.empty()) {
      std::vector<const Guard*> reduced;
      reduced.reserve(contribs.size());
      for (const GuardProfile::Contribution& c : contribs) {
        bool sampled = profile_->profiler->BeginEvaluation(c.site);
        uint64_t t0 = sampled ? obs::ProfilerNowNs() : 0;
        uint64_t steps0 = host_->residuator()->residuate_calls();
        uint64_t nodes = 0;
        reduced.push_back(ReduceContribution(c.guard, &nodes));
        profile_->profiler->Record(
            c.site, host_->residuator()->residuate_calls() - steps0, nodes,
            sampled ? obs::ProfilerNowNs() - t0 : 0, sampled);
      }
      // And() re-canonicalizes to the same node the unprofiled fold below
      // yields; DischargeDiamonds cost is not attributed to any one site.
      return DischargeDiamonds(host_->guard_arena()->And(reduced));
    }
  }
  const Guard* g = CompiledGuard(literal);
  // Occurrences must be assimilated in stamp order for ◇E residuation to be
  // sound; heard_ is kept sorted by stamp.
  for (const auto& [stamp, occurred] : heard_) {
    g = ReduceGuard(host_->guard_arena(), host_->residuator(), g,
                    {AnnouncementKind::kOccurred, occurred});
  }
  for (const auto& [promised, after] : promises_) {
    g = ReduceGuard(host_->guard_arena(), host_->residuator(), g,
                    {AnnouncementKind::kPromised, promised});
  }
  return DischargeDiamonds(g);
}

const Guard* EventActor::ReduceContribution(const Guard* g,
                                            uint64_t* nodes) const {
  for (const auto& [stamp, occurred] : heard_) {
    g = ReduceGuardCounted(host_->guard_arena(), host_->residuator(), g,
                           {AnnouncementKind::kOccurred, occurred}, nodes);
  }
  for (const auto& [promised, after] : promises_) {
    g = ReduceGuardCounted(host_->guard_arena(), host_->residuator(), g,
                           {AnnouncementKind::kPromised, promised}, nodes);
  }
  return g;
}

bool EventActor::FastPermitted(EventLiteral literal) const {
  // The decided-literal bitmask fast path: for a ◇-free compiled guard,
  // EvaluateNow of the fully assimilated CurrentGuard equals evaluating the
  // compiled DAG directly against heard-set membership (□ℓ ↦ heard(ℓ),
  // ¬ℓ ↦ ¬heard(ℓ)) — reduction by an occurrence decides exactly those
  // atoms, and a promise only ever falsifies □ℓ̄ / verifies ¬ℓ̄, neither of
  // which flips the optimistic outcome. Guards containing ◇ carry residual
  // obligations whose discharge depends on fold order and held promises, so
  // they take the reduced-guard path.
  if (!incremental_ || flat_ == nullptr || profile_ != nullptr) return false;
  const FlatProgram& p = flat_->ProgramFor(CompiledGuard(literal));
  if (p.has_diamond) return false;
  return p.EvaluateHeard(
      [this](EventLiteral l) { return heard_literals_.count(l) != 0; },
      flat_->scratch());
}

const Guard* EventActor::DischargeDiamonds(const Guard* g) const {
  if (promises_.empty()) return g;
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
    case GuardKind::kBox:
    case GuardKind::kNeg:
      return g;
    case GuardKind::kDiamond: {
      const Expr* e = g->expr();
      // The promised literals that matter: those the residual mentions.
      std::set<EventLiteral> expr_atoms;
      CollectExprAtoms(e, &expr_atoms);
      std::vector<EventLiteral> relevant;
      for (const auto& [promised, after] : promises_) {
        if (expr_atoms.count(promised)) relevant.push_back(promised);
      }
      if (relevant.empty()) return g;
      // Pure sequence fast path (chains of any length): e1·…·ek is
      // guaranteed iff every atom is promised and each step is ordered
      // after its predecessor by the promises' after-sets.
      if (e->kind() == ExprKind::kSeq || e->IsAtom()) {
        std::vector<EventLiteral> seq_atoms;
        bool pure = true;
        if (e->IsAtom()) {
          seq_atoms.push_back(e->literal());
        } else {
          for (const Expr* c : e->children()) {
            if (!c->IsAtom()) {
              pure = false;
              break;
            }
            seq_atoms.push_back(c->literal());
          }
        }
        if (pure) {
          bool guaranteed = true;
          for (size_t i = 0; i < seq_atoms.size() && guaranteed; ++i) {
            auto it = promises_.find(seq_atoms[i]);
            if (it == promises_.end()) {
              guaranteed = false;
              break;
            }
            if (i > 0 && !it->second.count(seq_atoms[i - 1])) {
              guaranteed = false;
            }
          }
          if (guaranteed) return host_->guard_arena()->True();
          return g;
        }
      }
      if (relevant.size() > 6) return g;
      // The real future realizes the promised events in SOME order
      // consistent with their after-sets; E is guaranteed only if every
      // such linearization satisfies it (satisfaction is monotone under
      // inserting unrelated events, so checking the promised events alone
      // is conservative).
      std::sort(relevant.begin(), relevant.end());
      bool any_consistent = false;
      bool all_satisfy = true;
      Trace perm(relevant.begin(), relevant.end());
      do {
        bool consistent = true;
        for (size_t i = 0; i < perm.size() && consistent; ++i) {
          for (EventLiteral before : promises_.at(perm[i])) {
            // An after-constraint on another promised event must be
            // respected within the permutation; constraints on occurred or
            // unknown events do not affect relative order here.
            for (size_t j = i + 1; j < perm.size(); ++j) {
              if (perm[j] == before) {
                consistent = false;
                break;
              }
            }
            if (!consistent) break;
          }
        }
        if (!consistent) continue;
        any_consistent = true;
        if (!Satisfies(perm, e)) {
          all_satisfy = false;
          break;
        }
      } while (std::next_permutation(perm.begin(), perm.end()));
      if (any_consistent && all_satisfy) return host_->guard_arena()->True();
      return g;
    }
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      std::vector<const Guard*> kids;
      kids.reserve(g->children().size());
      for (const Guard* c : g->children()) {
        kids.push_back(DischargeDiamonds(c));
      }
      return g->kind() == GuardKind::kAnd ? host_->guard_arena()->And(kids)
                                          : host_->guard_arena()->Or(kids);
    }
  }
  return g;
}

void EventActor::Attempt(EventLiteral literal, AttemptCallback done) {
  CDES_CHECK_EQ(literal.symbol(), symbol_);
  if (decided_) {
    if (done) done(literal == *decided_ ? Decision::kAccepted
                                        : Decision::kRejected);
    return;
  }
  if (FastPermitted(literal)) {
    Occur(literal);
    if (done) done(Decision::kAccepted);
    return;
  }
  const Guard* g = CurrentGuard(literal);
  if (Evaluate(g)) {
    Occur(literal);
    if (done) done(Decision::kAccepted);
    return;
  }
  const EventAttributes& attrs = Attrs(literal);
  if (g->IsFalse()) {
    if (attrs.rejectable) {
      if (done) done(Decision::kRejected);
    } else {
      // §3.3: "The scheduler has no choice but to accept nonrejectable
      // events like abort."
      host_->RecordViolation(literal);
      Occur(literal);
      if (done) done(Decision::kAccepted);
    }
    return;
  }
  if (!attrs.delayable) {
    if (attrs.rejectable) {
      if (done) done(Decision::kRejected);
    } else {
      host_->RecordViolation(literal);
      Occur(literal);
      if (done) done(Decision::kAccepted);
    }
    return;
  }
  if (done) done(Decision::kParked);
  parked_.push_back(Parked{literal, std::move(done)});
  if (obs_ != nullptr) {
    if (obs_->parks != nullptr) {
      obs_->parks->Increment();
      obs_->parked_depth->Observe(parked_.size());
    }
    if (obs_->tracer != nullptr && obs_->alphabet != nullptr &&
        obs_->sim != nullptr) {
      obs_->tracer->Instant(obs::SpanCategory::kLifecycle,
                            "park " + obs_->alphabet->LiteralName(literal),
                            obs_->sim->now(), site_, symbol_);
    }
  }
  EmitNeeds(literal, g);
  Reevaluate();
}

std::vector<EventLiteral> EventActor::ParkedLiterals() const {
  std::vector<EventLiteral> out;
  out.reserve(parked_.size());
  for (const Parked& p : parked_) out.push_back(p.literal);
  return out;
}

void EventActor::RestoreOccurrence(EventLiteral literal) {
  CDES_CHECK_EQ(literal.symbol(), symbol_);
  CDES_CHECK(!decided_);
  CDES_CHECK(parked_.empty()) << "recovery must precede new attempts";
  decided_ = literal;
}

const Guard* EventActor::HeardResidual(EventLiteral literal) const {
  if (incremental_) return HeardFold(literal);
  const Guard* g = CompiledGuard(literal);
  for (const auto& [stamp, occurred] : heard_) {
    g = ReduceGuard(host_->guard_arena(), host_->residuator(), g,
                    {AnnouncementKind::kOccurred, occurred});
  }
  return g;
}

void EventActor::RestoreBaseline(const Guard* positive, const Guard* negative) {
  CDES_CHECK(!decided_ && heard_.empty() && parked_.empty())
      << "baseline restore requires a fresh actor";
  positive_guard_ = positive;
  negative_guard_ = negative;
  // Profiler contributions decompose the *compiled* guards; against a
  // checkpointed baseline they would re-conjoin to the wrong guard.
  profile_ = nullptr;
  // Fold chains anchor at the (replaced) baseline; drop any chain[0]
  // initialized through an earlier introspective CurrentGuard call.
  pos_chain_.clear();
  neg_chain_.clear();
  ++version_;
}

void EventActor::Receive(const RuntimeMessage& msg) {
  switch (msg.kind) {
    case RuntimeMessageKind::kAnnounce: {
      // At-most-once assimilation: a symbol decides at most once, so a
      // second announcement of the same literal (duplicated delivery, or a
      // retransmission racing its ack) must be dropped here — folding it
      // into CurrentGuard again would residuate ◇-sequences by an event
      // that occurred only once, corrupting the reduced guard.
      if (incremental_) {
        if (!heard_literals_.insert(msg.literal).second) return;
      } else {
        for (const auto& [stamp, occurred] : heard_) {
          if (occurred == msg.literal) return;
        }
      }
      auto entry = std::make_pair(msg.stamp, msg.literal);
      auto pos = std::upper_bound(heard_.begin(), heard_.end(), entry);
      if (incremental_) {
        TruncateFoldChains(static_cast<size_t>(pos - heard_.begin()));
        ++version_;
      }
      heard_.insert(pos, entry);
      ReviewObligations();
      Reevaluate();
      return;
    }
    case RuntimeMessageKind::kPromise: {
      std::set<EventLiteral>& after = promises_[msg.literal];
      after.insert(msg.after.begin(), msg.after.end());
      ++version_;
      Reevaluate();
      return;
    }
    case RuntimeMessageKind::kRequestPromise:
      if (decided_) return;  // the announcement (or nothing) answers it
      if (!TryAnswerPromiseRequest(msg)) pending_requests_.push_back(msg);
      return;
    case RuntimeMessageKind::kTrigger: {
      if (decided_) return;
      for (const Parked& p : parked_) {
        if (p.literal == msg.literal) return;  // already attempted
      }
      Attempt(msg.literal, AttemptCallback());
      return;
    }
  }
}

void EventActor::Occur(EventLiteral literal) {
  CDES_CHECK(!decided_);
  decided_ = literal;
  OccurrenceStamp stamp = host_->NextStamp();
  host_->RecordOccurrence(literal, stamp);
  RuntimeMessage announce{RuntimeMessageKind::kAnnounce, literal, stamp,
                          EventLiteral(), {}, nullptr, {}};
  host_->Broadcast(symbol_, announce);
  // Resolve remaining parked attempts: same literal is (already) accepted,
  // the opposite literal can never occur.
  std::vector<Parked> parked = std::move(parked_);
  parked_.clear();
  for (Parked& p : parked) {
    if (!p.done) continue;
    p.done(p.literal == literal ? Decision::kAccepted : Decision::kRejected);
  }
  pending_requests_.clear();
}

void EventActor::Reevaluate() {
  if (reevaluating_) return;
  reevaluating_ = true;
  bool changed = true;
  while (changed && !decided_) {
    changed = false;
    for (size_t i = 0; i < parked_.size(); ++i) {
      if (FastPermitted(parked_[i].literal)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Occur(p.literal);
        if (p.done) p.done(Decision::kAccepted);
        changed = true;
        break;  // decided_: remaining parked resolved by Occur
      }
      const Guard* g = CurrentGuard(parked_[i].literal);
      if (Evaluate(g)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Occur(p.literal);
        if (p.done) p.done(Decision::kAccepted);
        changed = true;
        break;  // decided_: remaining parked resolved by Occur
      }
      if (g->IsFalse()) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        if (Attrs(p.literal).rejectable) {
          if (p.done) p.done(Decision::kRejected);
        } else {
          host_->RecordViolation(p.literal);
          Occur(p.literal);
          if (p.done) p.done(Decision::kAccepted);
        }
        changed = true;
        break;
      }
      EmitNeeds(parked_[i].literal, g);
    }
    if (decided_) break;
    for (size_t i = 0; i < pending_requests_.size(); ++i) {
      if (TryAnswerPromiseRequest(pending_requests_[i])) {
        pending_requests_.erase(pending_requests_.begin() + i);
        changed = true;
        break;
      }
    }
  }
  reevaluating_ = false;
}

void EventActor::EmitNeeds(EventLiteral parked, const Guard* reduced) {
  std::map<EventLiteral, const Expr*> diamond_needs;
  std::set<EventLiteral> box_needs;
  CollectGuardNeeds(reduced, &diamond_needs, &box_needs);
  if (host_->PromisesEnabled()) {
    std::set<EventLiteral> implied_set = ImpliedBoxes(reduced);
    std::vector<EventLiteral> implied(implied_set.begin(),
                                      implied_set.end());
    for (const auto& [need, residual] : diamond_needs) {
      auto key = std::make_pair(need, parked);
      if (requests_sent_.count(key)) continue;
      requests_sent_.insert(key);
      RuntimeMessage request{RuntimeMessageKind::kRequestPromise, need,
                             OccurrenceStamp{}, parked, {}, residual,
                             implied};
      host_->SendTo(symbol_, need.symbol(), request);
    }
  }
  std::set<EventLiteral> trigger_needs = box_needs;
  for (const auto& [need, residual] : diamond_needs) {
    trigger_needs.insert(need);
  }
  for (EventLiteral need : trigger_needs) {
    if (!host_->MayTrigger(need)) continue;
    if (triggers_sent_.count(need)) continue;
    // Trigger only *necessary* events: if the guard could still be
    // discharged were `need` never to occur (hypothetically announce its
    // complement), leave it to the workload — the paper's scheduler causes
    // events "when necessary" (Example 4).
    const Guard* without = ReduceGuard(
        host_->guard_arena(), host_->residuator(), reduced,
        {AnnouncementKind::kOccurred, need.Complemented()}, cache_);
    if (!without->IsFalse()) continue;
    triggers_sent_.insert(need);
    RuntimeMessage trigger{RuntimeMessageKind::kTrigger, need,
                           OccurrenceStamp{}, EventLiteral(), {}, nullptr, {}};
    host_->SendTo(symbol_, need.symbol(), trigger);
  }
}

bool EventActor::TryAnswerPromiseRequest(const RuntimeMessage& request) {
  // We can promise ◇x for our parked attempt x when, once the requester's
  // event has occurred, nothing else blocks x — then x is certain to
  // follow the requester (Example 11's conditional promise: the requester
  // proceeds on the promise, and its occurrence discharges it). The
  // hypothetical must reduce to the constant ⊤: a guard that still rests
  // on ¬-atoms could be invalidated before x fires, breaking the promise.
  for (const Parked& p : parked_) {
    if (p.literal != request.literal) continue;
    auto made = std::make_pair(p.literal, request.requester.symbol());
    if (promises_made_.count(made)) return true;
    const Guard* current = CurrentGuard(p.literal);
    // The requester's occurrence implies its own □-obligations occurred
    // first; assume them (in that order) in the hypothetical.
    const Guard* hypothetical = current;
    for (EventLiteral implied : request.implied) {
      hypothetical =
          ReduceGuard(host_->guard_arena(), host_->residuator(), hypothetical,
                      {AnnouncementKind::kOccurred, implied}, cache_);
    }
    hypothetical = ReduceGuard(
        host_->guard_arena(), host_->residuator(), hypothetical,
        {AnnouncementKind::kOccurred, request.requester}, cache_);
    // Re-apply held promises: the hypothetical occurrences may have
    // residuated a ◇-sequence down to something the promises we already
    // hold can discharge (e.g. ◇(ev2·ev1)/ev2 = ◇ev1 with ◇ev1 in hand).
    for (const auto& [promised, after] : promises_) {
      hypothetical =
          ReduceGuard(host_->guard_arena(), host_->residuator(), hypothetical,
                      {AnnouncementKind::kPromised, promised}, cache_);
    }
    hypothetical = DischargeDiamonds(hypothetical);
    // Optimistic grant (EvaluateNow rather than the constant ⊤): residual
    // ¬-atoms are tolerated because, for synthesized guards, an event that
    // could falsify them is itself ordered after us (the verifier's
    // race-freedom property); residual ◇/□-atoms still block the grant.
    if (!Evaluate(hypothetical)) return false;
    promises_made_.insert(made);
    // The promise carries order guarantees: our □-obligations and the
    // requester necessarily precede our occurrence.
    std::set<EventLiteral> after = ImpliedBoxes(current);
    after.insert(request.requester);
    RuntimeMessage promise{RuntimeMessageKind::kPromise, p.literal,
                           OccurrenceStamp{}, EventLiteral(),
                           std::vector<EventLiteral>(after.begin(),
                                                     after.end()),
                           nullptr,
                           {}};
    host_->SendTo(symbol_, request.requester.symbol(), promise);
    // Forward held promises the requester's residual also depends on, so
    // ordered chains (◇(b·c) at the requester) can discharge.
    if (request.need != nullptr) {
      std::set<EventLiteral> need_atoms;
      CollectExprAtoms(request.need, &need_atoms);
      for (const auto& [held, held_after] : promises_) {
        if (!need_atoms.count(held)) continue;
        RuntimeMessage forward{RuntimeMessageKind::kPromise, held,
                               OccurrenceStamp{}, EventLiteral(),
                               std::vector<EventLiteral>(held_after.begin(),
                                                         held_after.end()),
                               nullptr,
                               {}};
        host_->SendTo(symbol_, request.requester.symbol(), forward);
      }
    }
    return true;
  }
  // Trigger-backed path: a triggerable event the scheduler may cause on
  // its own accord can promise itself, deferring the actual trigger until
  // the requester's residual has no other way to be satisfied (the lazy
  // "when necessary" of Example 4: don't cancel a booking that may yet be
  // paid for).
  if (request.need != nullptr && !request.literal.complemented() &&
      host_->MayTrigger(request.literal)) {
    auto made = std::make_pair(request.literal, request.requester.symbol());
    if (promises_made_.count(made)) return true;
    const Guard* current = CurrentGuard(request.literal);
    const Guard* hypothetical =
        ReduceGuard(host_->guard_arena(), host_->residuator(), current,
                    {AnnouncementKind::kOccurred, request.requester}, cache_);
    if (!hypothetical->IsTrue()) return false;
    std::set<EventLiteral> after = ImpliedBoxes(current);
    after.insert(request.requester);
    promises_made_.insert(made);
    // Adopt the requester's residual as received; ReviewObligations folds
    // the occurrence log into it in stamp order (through the prefix-fold
    // chain on the incremental path — see there for why that is safe where
    // a single stored residual was not).
    obligations_.push_back(Obligation{request.need, request.literal, {}});
    RuntimeMessage promise{RuntimeMessageKind::kPromise, request.literal,
                           OccurrenceStamp{}, EventLiteral(),
                           std::vector<EventLiteral>(after.begin(),
                                                     after.end()),
                           nullptr,
                           {}};
    host_->SendTo(symbol_, request.requester.symbol(), promise);
    ReviewObligations();
    return true;
  }
  return false;
}

void EventActor::ReviewObligations() {
  if (obligations_.empty()) return;
  // Each pass needs the obligation residual folded by the occurrence log in
  // stamp order. Storing a single partially residuated expression and
  // folding only new arrivals into it would be wrong on an unordered
  // network: residuation is order-sensitive ((x·y)/y = 0 by rule 7), so an
  // announcement whose stamp precedes one already folded would corrupt the
  // stored residual permanently. The prefix-fold chain is safe where that
  // shortcut was not because it memoizes per ordered-prefix *position*:
  // chain[k] depends only on the first k stamp-ordered entries, and an
  // out-of-order insertion at index i truncates the chain to i+1 entries
  // (Receive/TruncateFoldChains) before anything past the insertion point
  // is reused — so re-evaluation folds only new arrivals while reproducing
  // the from-scratch stamp-order fold exactly. The non-incremental path
  // keeps the original full refold.
  std::vector<Obligation> remaining;
  std::vector<EventLiteral> to_trigger;
  for (Obligation& ob : obligations_) {
    const Expr* residual;
    if (incremental_) {
      if (ob.chain.empty()) ob.chain.push_back(ob.need);
      while (ob.chain.size() <= heard_.size()) {
        residual = host_->residuator()->Residuate(
            ob.chain.back(), heard_[ob.chain.size() - 1].second);
        ob.chain.push_back(residual);
      }
      residual = ob.chain[heard_.size()];
    } else {
      residual = ob.need;
      for (const auto& [stamp, occurred] : heard_) {
        residual = host_->residuator()->Residuate(residual, occurred);
      }
    }
    if (residual->IsTop()) continue;  // some alternative materialized
    if (decided_) continue;           // our symbol is settled either way
    const Expr* without_us = PruneImpossibleLiteral(
        host_->residuator()->arena(), residual, ob.literal);
    bool necessary = !IsSatisfiable(host_->residuator(), without_us);
    if (necessary) {
      to_trigger.push_back(ob.literal);
    } else {
      remaining.push_back(std::move(ob));
    }
  }
  obligations_ = std::move(remaining);
  // One pass over parked_ instead of a rescan per trigger; literals this
  // loop itself attempts are added as they go (an attempt only ever parks
  // its own literal).
  std::set<EventLiteral> already_parked;
  for (const Parked& p : parked_) already_parked.insert(p.literal);
  for (EventLiteral literal : to_trigger) {
    if (decided_) break;
    if (already_parked.insert(literal).second) {
      Attempt(literal, AttemptCallback());
    }
  }
}

}  // namespace cdes
