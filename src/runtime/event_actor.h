#ifndef CDES_RUNTIME_EVENT_ACTOR_H_
#define CDES_RUNTIME_EVENT_ACTOR_H_

#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/residuation.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "runtime/messages.h"
#include "sched/scheduler.h"
#include "spec/ast.h"
#include "temporal/flat_eval.h"
#include "temporal/guard.h"
#include "temporal/reduction.h"

namespace cdes {

/// Services an EventActor needs from its owning scheduler: message
/// transport, occurrence stamping, bookkeeping, and attribute lookup.
class ActorHost {
 public:
  virtual ~ActorHost() = default;

  /// Delivers `msg` to every actor whose guards mention `from`'s symbol.
  virtual void Broadcast(SymbolId from, const RuntimeMessage& msg) = 0;

  /// Delivers `msg` to the actor owning `target`'s symbol.
  virtual void SendTo(SymbolId from, SymbolId target,
                      const RuntimeMessage& msg) = 0;

  /// Issues the next occurrence stamp (monotone in simulation time).
  virtual OccurrenceStamp NextStamp() = 0;

  /// Appends an occurrence to the global history.
  virtual void RecordOccurrence(EventLiteral literal,
                                OccurrenceStamp stamp) = 0;

  /// Records that a non-rejectable event had to be admitted although its
  /// guard had not been established.
  virtual void RecordViolation(EventLiteral literal) = 0;

  /// Whether the runtime may proactively trigger `literal` (§2: "When
  /// triggered by the system, it causes appropriate events like start").
  virtual bool MayTrigger(EventLiteral literal) const = 0;

  /// Whether the promise protocol (Example 11) is enabled.
  virtual bool PromisesEnabled() const = 0;

  virtual GuardArena* guard_arena() = 0;
  virtual Residuator* residuator() = 0;

  /// Shard-shared symbolic caches (see guards/context.h). Null (the
  /// default) disables memoization: actors then re-fold guards from scratch
  /// on every evaluation — the reference behavior the equivalence property
  /// tests compare against.
  virtual ReductionCache* reduction_cache() { return nullptr; }
  virtual FlatEvaluator* flat_evaluator() { return nullptr; }
};

/// Per-actor profiling attachment, built by the owning scheduler when a
/// GuardProfiler is configured: the literal's compiled guard split back
/// into its per-dependency contributions (CompiledWorkflow keeps them),
/// each tagged with its profiler site. CurrentGuard then reduces every
/// contribution separately — so cost is attributed to the owning
/// (dependency, event) pair — and re-conjoins them; ReduceGuard distributes
/// over And and the arena's And canonicalization is deterministic, so the
/// re-conjoined guard is the same hash-consed node the unprofiled path
/// produces.
struct GuardProfile {
  struct Contribution {
    obs::GuardProfiler::Site* site;
    const Guard* guard;
  };
  obs::GuardProfiler* profiler = nullptr;
  std::vector<Contribution> positive;
  std::vector<Contribution> negative;
};

/// The active entity instantiated for each event type (§2): maintains the
/// current guards of an event symbol's two literals, parks attempts whose
/// guard is not yet ⊤, assimilates incoming announcements and promises, and
/// answers promise requests.
///
/// Assimilation model: the actor keeps the *compiled* guards plus an
/// occurrence log sorted by stamp; the current guard is the compiled guard
/// reduced by the log in stamp order and then by received promises. Sorting
/// by stamp (not arrival) is what keeps ◇E residuation sound when the
/// network reorders announcements.
class EventActor {
 public:
  /// `obs` (optional) carries pre-resolved instrumentation handles from the
  /// owning scheduler; it must outlive the actor when non-null.
  EventActor(ActorHost* host, SymbolId symbol, int site,
             const Guard* positive_guard, const Guard* negative_guard,
             const EventAttributes& positive_attrs,
             const EventAttributes& negative_attrs,
             const obs::ActorObs* obs = nullptr);

  EventActor(const EventActor&) = delete;
  EventActor& operator=(const EventActor&) = delete;

  /// A co-located task agent attempts `literal`.
  void Attempt(EventLiteral literal, AttemptCallback done);

  /// Recovery: marks `literal` as having occurred without stamping,
  /// logging, or announcing (the recovery driver replays announcements
  /// separately, in stamp order).
  void RestoreOccurrence(EventLiteral literal);

  /// Handles a message from another actor.
  void Receive(const RuntimeMessage& msg);

  /// The literal's guard reduced by everything this actor knows.
  const Guard* CurrentGuard(EventLiteral literal) const;

  /// The compiled guard folded by heard announcements only — no promises,
  /// no ◇-discharge. This is the durable portion of the actor's knowledge:
  /// announcements are logged occurrences, while promises and parked
  /// attempts are soft state the post-recovery protocol re-derives. A
  /// checkpoint snapshots exactly these residuals (runtime/checkpoint.h);
  /// because residuation is a left fold, folding the heard prefix here and
  /// the replayed suffix after recovery equals folding the whole history.
  const Guard* HeardResidual(EventLiteral literal) const;

  /// Recovery: replaces the compiled baseline guards with checkpoint
  /// residuals. Only valid on a fresh actor (nothing decided, heard, or
  /// parked); detaches any profiler attachment, whose per-dependency
  /// contributions conjoin to the *compiled* guards and would misattribute
  /// against a checkpointed baseline.
  void RestoreBaseline(const Guard* positive, const Guard* negative);

  /// Whether a reduced guard licenses occurrence *now*: ¬ℓ atoms count as
  /// true while ℓ is unheard (the event has not yet occurred), whereas
  /// □/◇ atoms require positive knowledge (an announcement or a promise).
  /// This optimistic ¬-evaluation is the per-event agreement the paper
  /// flags in §4.3; see DESIGN.md for the soundness discussion.
  static bool EvaluateNow(const Guard* g);

  /// Attaches per-dependency profiling (nullptr to detach). `profile` must
  /// outlive the actor; its guards must conjoin to this actor's compiled
  /// guards.
  void set_profile(const GuardProfile* profile) { profile_ = profile; }

  bool decided() const { return decided_.has_value(); }
  std::optional<EventLiteral> decided_literal() const { return decided_; }
  size_t parked_count() const { return parked_.size(); }
  /// Literals of currently parked attempts, in arrival order.
  std::vector<EventLiteral> ParkedLiterals() const;
  SymbolId symbol() const { return symbol_; }
  int site() const { return site_; }

 private:
  struct Parked {
    EventLiteral literal;
    AttemptCallback done;
  };

  /// A deferred trigger obligation (promise-backed, see
  /// TryAnswerPromiseRequest): the adopted residual, the literal to trigger
  /// when it is the only way left, and the memoized prefix-fold chain —
  /// chain[k] = need residuated by heard_[0..k), maintained only on the
  /// incremental path (see ReviewObligations for the order-safety argument).
  struct Obligation {
    const Expr* need;
    EventLiteral literal;
    std::vector<const Expr*> chain;
  };

  const Guard* CompiledGuard(EventLiteral literal) const {
    return literal.complemented() ? negative_guard_ : positive_guard_;
  }

  /// The heard_/promises_ fold of CurrentGuard over one contribution,
  /// counting visited guard nodes into `*nodes`.
  const Guard* ReduceContribution(const Guard* g, uint64_t* nodes) const;

  /// The compiled guard folded by heard_[0..heard_.size()) — through the
  /// per-polarity prefix-fold chain on the incremental path, from scratch
  /// otherwise. Chains are safe to memoize *per ordered-prefix position*:
  /// chain[k] depends only on the first k stamp-ordered entries, and an
  /// out-of-order arrival inserted at index i truncates every chain to
  /// length i+1 before any entry past the insertion point is reused.
  const Guard* HeardFold(EventLiteral literal) const;

  /// EvaluateNow through the flat evaluator when the host provides one.
  bool Evaluate(const Guard* g) const;

  /// True when `literal` is licensed right now by the flat bitmask
  /// evaluation of its ◇-free compiled guard against the heard set —
  /// firing then needs no symbolic reduction at all. False means "take the
  /// reduced-guard path", not "not permitted".
  bool FastPermitted(EventLiteral literal) const;

  /// Drops memoized state invalidated by an announcement inserted at
  /// heard_ index `idx` (folds of prefixes ≤ idx stay valid).
  void TruncateFoldChains(size_t idx);

  /// Replaces ◇E nodes whose residual is guaranteed by the held ordered
  /// promises with ⊤: every linearization of the promised events that is
  /// consistent with their after-sets must satisfy E.
  const Guard* DischargeDiamonds(const Guard* g) const;
  const EventAttributes& Attrs(EventLiteral literal) const {
    return literal.complemented() ? negative_attrs_ : positive_attrs_;
  }

  /// Makes `literal` occur: stamps, records, announces, resolves parked
  /// attempts of both polarities.
  void Occur(EventLiteral literal);

  /// Re-evaluates parked attempts and pending promise requests after any
  /// state change; loops to a fixpoint.
  void Reevaluate();

  /// Sends promise requests / triggers for the events the reduced guard of
  /// a parked literal still needs.
  void EmitNeeds(EventLiteral parked, const Guard* reduced);

  /// Answers `request` if this actor can now promise; returns true when
  /// consumed. Two grant paths: a parked attempt that is certain to follow
  /// the requester (Example 11), or — for a triggerable event — a
  /// trigger-backed promise that adopts the requester's residual as a
  /// deferred obligation.
  bool TryAnswerPromiseRequest(const RuntimeMessage& request);

  /// Re-examines deferred trigger obligations after an announcement:
  /// obligations whose residual is satisfied are dropped; obligations that
  /// can only be met by this event any more cause a self-trigger.
  void ReviewObligations();

  ActorHost* host_;
  SymbolId symbol_;
  int site_;
  const Guard* positive_guard_;
  const Guard* negative_guard_;
  EventAttributes positive_attrs_;
  EventAttributes negative_attrs_;
  const obs::ActorObs* obs_;
  const GuardProfile* profile_ = nullptr;
  /// Host capabilities resolved once at construction (virtual calls off the
  /// hot path). Null cache_ ⇒ the from-scratch reference behavior.
  ReductionCache* cache_ = nullptr;
  FlatEvaluator* flat_ = nullptr;
  /// True when cache_ is set: prefix-fold chains, the CurrentGuard version
  /// memo, and the heard-literal dedup set are maintained.
  bool incremental_ = false;

  std::optional<EventLiteral> decided_;
  /// (stamp, literal) occurrences heard, kept sorted by stamp.
  std::vector<std::pair<OccurrenceStamp, EventLiteral>> heard_;
  /// Promises ◇ℓ received: literal → events guaranteed to precede it.
  std::map<EventLiteral, std::set<EventLiteral>> promises_;
  std::vector<Parked> parked_;
  /// Promise requests we could not answer yet.
  std::vector<RuntimeMessage> pending_requests_;
  /// Dedup for outgoing requests (needed literal, requesting literal).
  std::set<std::pair<EventLiteral, EventLiteral>> requests_sent_;
  std::set<EventLiteral> triggers_sent_;
  /// Literals of this symbol already promised, per requester symbol.
  std::set<std::pair<EventLiteral, SymbolId>> promises_made_;
  /// Residuals this (triggerable) event has promised to see satisfied.
  std::vector<Obligation> obligations_;
  bool reevaluating_ = false;

  // ---- Incremental-evaluation state (maintained only when incremental_).
  /// O(1) duplicate-announcement detection (mirror of heard_'s literals).
  std::unordered_set<EventLiteral, EventLiteralHash> heard_literals_;
  /// Per-polarity prefix-fold chains: chain[k] = compiled guard reduced by
  /// heard_[0..k) in stamp order (chain[0] is the compiled guard itself).
  mutable std::vector<const Guard*> pos_chain_;
  mutable std::vector<const Guard*> neg_chain_;
  /// CurrentGuard results memoized against the knowledge version: any
  /// heard_/promises_ change bumps version_, invalidating both slots.
  /// Indexed by literal polarity.
  mutable const Guard* current_memo_[2] = {nullptr, nullptr};
  mutable uint64_t current_memo_version_[2] = {0, 0};
  uint64_t version_ = 1;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_EVENT_ACTOR_H_
