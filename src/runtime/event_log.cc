#include "runtime/event_log.h"

#include <utility>

#include "common/strings.h"

namespace cdes {
namespace {

constexpr char kHeaderV2[] = "cdeslog v2";
constexpr char kHeaderV3[] = "cdeslog v3";
constexpr char kTrailerPrefix[] = "checksum ";
constexpr char kSectionPrefix[] = "ckpt ";

uint64_t Fnv1a(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// The checksummed payload of one record line.
std::string RecordPayload(uint64_t seq, uint64_t time,
                          const std::string& literal) {
  return StrCat(seq, " ", time, " ", literal);
}

/// The checksummed content of a checkpoint section: its own framing fields
/// plus the payload, so neither can be tampered with independently.
std::string SectionChecksumInput(const EventLog::CheckpointSection& section,
                                 uint64_t nlines) {
  return StrCat(section.covered, " ", section.last_stamp.time, " ",
                section.last_stamp.seq, " ", nlines, "\n", section.payload);
}

uint64_t PayloadLineCount(const std::string& payload) {
  if (payload.empty()) return 0;
  uint64_t n = 1;
  for (char c : payload) {
    if (c == '\n') ++n;
  }
  return n;
}

bool ParseU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

void EventLog::Append(const Record& record) {
  if (!records_.empty()) {
    CDES_CHECK(!(record.stamp < records_.back().stamp))
        << "log stamps must be non-decreasing";
  } else if (checkpoint_ && checkpoint_->covered > 0) {
    CDES_CHECK(!(record.stamp < checkpoint_->last_stamp))
        << "log stamps must be non-decreasing across the checkpoint";
  }
  records_.push_back(record);
}

void EventLog::InstallCheckpoint(CheckpointSection section) {
  CDES_CHECK(section.covered == total_records())
      << "checkpoint covers " << section.covered << " records but the log has "
      << total_records();
  checkpoint_ = std::move(section);
  records_.clear();
}

OccurrenceStamp EventLog::last_stamp() const {
  CDES_CHECK(total_records() > 0) << "empty log has no last stamp";
  return records_.empty() ? checkpoint_->last_stamp : records_.back().stamp;
}

std::string EventLog::HeaderLine(uint64_t instance) {
  return StrCat(kHeaderV3, " ", instance, "\n");
}

std::string EventLog::RecordLine(const Record& record,
                                 const Alphabet& alphabet) {
  std::string payload = RecordPayload(record.stamp.seq, record.stamp.time,
                                      alphabet.LiteralName(record.literal));
  return StrCat(payload, " ", Fnv1a(payload), "\n");
}

std::string EventLog::SectionText(const CheckpointSection& section) {
  uint64_t nlines = PayloadLineCount(section.payload);
  std::string text =
      StrCat(kSectionPrefix, section.covered, " ", section.last_stamp.time, " ",
             section.last_stamp.seq, " ", nlines, " ",
             Fnv1a(SectionChecksumInput(section, nlines)), "\n");
  if (nlines > 0) text += StrCat(section.payload, "\n");
  return text;
}

std::string EventLog::SerializeOpen(const Alphabet& alphabet) const {
  std::string body = HeaderLine(instance_);
  if (checkpoint_) body += SectionText(*checkpoint_);
  for (const Record& r : records_) body += RecordLine(r, alphabet);
  return body;
}

std::string EventLog::Serialize(const Alphabet& alphabet) const {
  std::string body = SerializeOpen(alphabet);
  return StrCat(body, kTrailerPrefix, Fnv1a(body), "\n");
}

Result<EventLog> EventLog::Deserialize(const Alphabet& alphabet,
                                       std::string_view text) {
  return Parse(alphabet, text, /*tolerant=*/false, nullptr);
}

Result<uint64_t> EventLog::PeekInstance(std::string_view text) {
  size_t eol = text.find('\n');
  // An unterminated first line may be a header caught mid-write; its
  // instance digits could be truncated, which would route the log to the
  // wrong instance. Refuse rather than guess.
  if (eol == std::string_view::npos) {
    return Status::InvalidArgument("event log header torn (no newline)");
  }
  std::vector<std::string> fields = StrSplit(text.substr(0, eol), ' ');
  uint64_t instance = 0;
  if (fields.size() != 3 ||
      (StrCat(fields[0], " ", fields[1]) != kHeaderV2 &&
       StrCat(fields[0], " ", fields[1]) != kHeaderV3) ||
      !ParseU64(fields[2], &instance)) {
    return Status::InvalidArgument("not a cdes event log");
  }
  return instance;
}

Result<EventLog> EventLog::LoadTolerant(const Alphabet& alphabet,
                                        std::string_view text,
                                        bool* dropped_torn_tail) {
  return Parse(alphabet, text, /*tolerant=*/true, dropped_torn_tail);
}

Result<EventLog> EventLog::Parse(const Alphabet& alphabet,
                                 std::string_view text, bool tolerant,
                                 bool* dropped_torn_tail) {
  if (dropped_torn_tail != nullptr) *dropped_torn_tail = false;
  std::vector<std::string> lines = StrSplit(text, '\n');
  // A complete file ends in '\n', leaving one empty trailing split. A
  // missing final newline is itself evidence of a torn tail.
  bool ends_with_newline = !lines.empty() && lines.back().empty();
  if (ends_with_newline) lines.pop_back();
  if (lines.empty()) return Status::InvalidArgument("not a cdes event log");
  // A lone unterminated line may be a header whose instance digits were cut
  // mid-write — "cdeslog v3 12" torn to "cdeslog v3 1" parses fine but
  // names the wrong instance. Only a newline proves the header complete.
  if (lines.size() == 1 && !ends_with_newline) {
    return Status::InvalidArgument("event log header torn (no newline)");
  }

  std::vector<std::string> header = StrSplit(lines.front(), ' ');
  uint64_t instance = 0;
  if (header.size() != 3 ||
      (StrCat(header[0], " ", header[1]) != kHeaderV2 &&
       StrCat(header[0], " ", header[1]) != kHeaderV3) ||
      !ParseU64(header[2], &instance)) {
    return Status::InvalidArgument("not a cdes event log");
  }

  // Strip the trailer when present and intact. A crashed writer either
  // never started it (absent) or was killed mid-line (a `checksum ` line
  // that mismatches); both mean the same thing — the log was live — and the
  // per-record checksums vouch for every record line on their own. The one
  // thing a trailer line *does* prove, torn or not, is that every record
  // before it was already flushed: after popping one, nothing below may be
  // dropped as a torn record.
  bool has_trailer = false;
  bool torn_trailer = false;
  if (lines.size() >= 2 && lines.back().rfind(kTrailerPrefix, 0) == 0) {
    std::string body;
    for (size_t i = 0; i + 1 < lines.size(); ++i) body += lines[i] + "\n";
    if (lines.back() == StrCat(kTrailerPrefix, Fnv1a(body))) {
      has_trailer = true;
    } else if (!tolerant) {
      return Status::InvalidArgument("event log checksum mismatch");
    } else {
      torn_trailer = true;
    }
    lines.pop_back();
  } else if (!tolerant) {
    return Status::InvalidArgument("event log checksum trailer missing");
  }
  // Only a trailer-less tolerant load may discard torn tail lines.
  const bool tail_open = tolerant && !has_trailer && !torn_trailer;

  EventLog log;
  log.set_instance(instance);
  OccurrenceStamp prev_stamp;
  bool have_prev = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    bool final_line = i + 1 == lines.size();
    if (lines[i].rfind(kSectionPrefix, 0) == 0) {
      // Checkpoint section: `ckpt <covered> <time> <seq> <nlines> <crc>`
      // followed by <nlines> opaque payload lines.
      std::vector<std::string> fields = StrSplit(lines[i], ' ');
      CheckpointSection section;
      uint64_t nlines = 0, crc = 0;
      bool well_formed = fields.size() == 6 &&
                         ParseU64(fields[1], &section.covered) &&
                         ParseU64(fields[2], &section.last_stamp.time) &&
                         ParseU64(fields[3], &section.last_stamp.seq) &&
                         ParseU64(fields[4], &nlines) &&
                         ParseU64(fields[5], &crc);
      if (!well_formed) {
        // The line starts with `ckpt ` but does not frame a section; only a
        // write torn at end-of-file excuses that, and the records parsed
        // above already carry everything a torn section would have covered.
        if (tail_open && final_line) break;
        return Status::InvalidArgument(
            StrCat("malformed checkpoint section at line ", i + 1));
      }
      size_t payload_end = i + 1 + nlines;  // one past the last payload line
      bool extends_to_eof = payload_end >= lines.size();
      if (payload_end > lines.size()) {
        // Fewer payload lines than the framing promises: torn at EOF.
        if (tail_open) break;
        return Status::InvalidArgument(
            StrCat("truncated checkpoint section at line ", i + 1));
      }
      std::string payload;
      for (size_t j = i + 1; j < payload_end; ++j) {
        if (j > i + 1) payload += "\n";
        payload += lines[j];
      }
      section.payload = std::move(payload);
      if (crc != Fnv1a(SectionChecksumInput(section, nlines))) {
        // A final payload line torn mid-write mimics a complete block with a
        // bad checksum; at EOF that is a crash shape, anywhere else it is
        // corruption.
        if (tail_open && extends_to_eof) break;
        return Status::InvalidArgument(
            StrCat("checkpoint checksum mismatch at line ", i + 1));
      }
      // A checkpoint taken in this file covers exactly the records above
      // it. The exception is a checkpoint opening the file (no records, no
      // prior checkpoint): compaction physically discarded the prefix it
      // covers, so any coverage is legitimate there.
      bool opens_file = !log.checkpoint_ && log.records_.empty();
      if (!opens_file &&
          section.covered != (log.checkpoint_ ? log.checkpoint_->covered : 0) +
                                 log.records_.size()) {
        return Status::InvalidArgument(
            StrCat("checkpoint at line ", i + 1, " covers ", section.covered,
                   " records but the log holds ",
                   (log.checkpoint_ ? log.checkpoint_->covered : 0) +
                       log.records_.size()));
      }
      if (have_prev && section.covered > 0 &&
          section.last_stamp < prev_stamp) {
        return Status::InvalidArgument(
            StrCat("checkpoint stamp decreases at line ", i + 1));
      }
      if (section.covered > 0) {
        prev_stamp = section.last_stamp;
        have_prev = true;
      }
      // Last intact checkpoint wins: it covers every record parsed so far,
      // exactly as the compaction rewrite would have discarded them.
      log.checkpoint_ = std::move(section);
      log.records_.clear();
      i = payload_end - 1;  // loop ++ lands on the line after the payload
      continue;
    }
    std::vector<std::string> fields = StrSplit(lines[i], ' ');
    uint64_t seq = 0, time = 0, crc = 0;
    bool well_formed = fields.size() == 4 && ParseU64(fields[0], &seq) &&
                       ParseU64(fields[1], &time) && ParseU64(fields[3], &crc);
    if (well_formed) {
      well_formed = crc == Fnv1a(RecordPayload(seq, time, fields[2]));
    }
    if (!well_formed) {
      if (tail_open && final_line) {
        // Report a possibly-lost record only when the torn bytes could have
        // been one: record lines start with stamp digits, so a torn `ckpt`
        // or `checksum` line (or a stray fragment) is provably not a record.
        if (dropped_torn_tail != nullptr && !lines[i].empty() &&
            IsDigit(lines[i][0])) {
          *dropped_torn_tail = true;
        }
        break;
      }
      return Status::InvalidArgument(
          StrCat("malformed log record at line ", i + 1));
    }
    Record record;
    record.stamp.seq = seq;
    record.stamp.time = time;
    // A record whose checksum verifies was fully written, so a stamp going
    // backwards is never a torn tail — it means the file does not describe
    // one monotone history. Reject it here with a Status: Append's CHECK
    // guards programmer error, not untrusted input.
    if (have_prev && record.stamp < prev_stamp) {
      return Status::InvalidArgument(
          StrCat("log stamps decrease at line ", i + 1));
    }
    prev_stamp = record.stamp;
    have_prev = true;
    // A checksum-valid record naming an unknown event is corruption (or a
    // foreign workflow's log), never a torn tail: stay strict even when
    // tolerant.
    auto literal = alphabet.ParseLiteral(fields[2]);
    if (!literal.ok()) return literal.status();
    record.literal = literal.value();
    log.records_.push_back(record);
  }
  return log;
}

}  // namespace cdes
