#include "runtime/event_log.h"

#include "common/strings.h"

namespace cdes {
namespace {

constexpr char kHeader[] = "cdeslog v1";

uint64_t Fnv1a(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void EventLog::Append(const Record& record) {
  if (!records_.empty()) {
    CDES_CHECK(!(record.stamp < records_.back().stamp))
        << "log stamps must be non-decreasing";
  }
  records_.push_back(record);
}

std::string EventLog::Serialize(const Alphabet& alphabet) const {
  std::string body = StrCat(kHeader, "\n");
  for (const Record& r : records_) {
    body += StrCat(r.stamp.seq, " ", r.stamp.time, " ",
                   alphabet.LiteralName(r.literal), "\n");
  }
  return StrCat(body, "checksum ", Fnv1a(body), "\n");
}

Result<EventLog> EventLog::Deserialize(const Alphabet& alphabet,
                                       std::string_view text) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  // Allow (and drop) one trailing empty line.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() < 2 || lines.front() != kHeader) {
    return Status::InvalidArgument("not a cdes event log");
  }
  std::string checksum_line = lines.back();
  lines.pop_back();
  std::string body;
  for (const std::string& l : lines) body += l + "\n";
  if (checksum_line != StrCat("checksum ", Fnv1a(body))) {
    return Status::InvalidArgument("event log checksum mismatch");
  }
  EventLog log;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> fields = StrSplit(lines[i], ' ');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrCat("malformed log record at line ", i + 1));
    }
    Record record;
    record.stamp.seq = std::stoull(fields[0]);
    record.stamp.time = std::stoull(fields[1]);
    CDES_ASSIGN_OR_RETURN(record.literal, alphabet.ParseLiteral(fields[2]));
    log.Append(record);
  }
  return log;
}

}  // namespace cdes
