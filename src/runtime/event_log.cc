#include "runtime/event_log.h"

#include "common/strings.h"

namespace cdes {
namespace {

constexpr char kHeaderPrefix[] = "cdeslog v2";

uint64_t Fnv1a(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// The checksummed payload of one record line.
std::string RecordPayload(uint64_t seq, uint64_t time,
                          const std::string& literal) {
  return StrCat(seq, " ", time, " ", literal);
}

bool ParseU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

void EventLog::Append(const Record& record) {
  if (!records_.empty()) {
    CDES_CHECK(!(record.stamp < records_.back().stamp))
        << "log stamps must be non-decreasing";
  }
  records_.push_back(record);
}

std::string EventLog::Serialize(const Alphabet& alphabet) const {
  std::string body = StrCat(kHeaderPrefix, " ", instance_, "\n");
  for (const Record& r : records_) {
    std::string payload = RecordPayload(r.stamp.seq, r.stamp.time,
                                        alphabet.LiteralName(r.literal));
    body += StrCat(payload, " ", Fnv1a(payload), "\n");
  }
  return StrCat(body, "checksum ", Fnv1a(body), "\n");
}

Result<EventLog> EventLog::Deserialize(const Alphabet& alphabet,
                                       std::string_view text) {
  return Parse(alphabet, text, /*tolerant=*/false, nullptr);
}

Result<uint64_t> EventLog::PeekInstance(std::string_view text) {
  size_t eol = text.find('\n');
  std::string_view header =
      eol == std::string_view::npos ? text : text.substr(0, eol);
  std::vector<std::string> fields = StrSplit(header, ' ');
  uint64_t instance = 0;
  if (fields.size() != 3 ||
      StrCat(fields[0], " ", fields[1]) != kHeaderPrefix ||
      !ParseU64(fields[2], &instance)) {
    return Status::InvalidArgument("not a cdes event log");
  }
  return instance;
}

Result<EventLog> EventLog::LoadTolerant(const Alphabet& alphabet,
                                        std::string_view text,
                                        bool* dropped_torn_tail) {
  return Parse(alphabet, text, /*tolerant=*/true, dropped_torn_tail);
}

Result<EventLog> EventLog::Parse(const Alphabet& alphabet,
                                 std::string_view text, bool tolerant,
                                 bool* dropped_torn_tail) {
  if (dropped_torn_tail != nullptr) *dropped_torn_tail = false;
  std::vector<std::string> lines = StrSplit(text, '\n');
  // A complete file ends in '\n', leaving one empty trailing split. A
  // missing final newline is itself evidence of a torn tail.
  bool ends_with_newline = !lines.empty() && lines.back().empty();
  if (ends_with_newline) lines.pop_back();
  if (lines.empty()) return Status::InvalidArgument("not a cdes event log");

  std::vector<std::string> header = StrSplit(lines.front(), ' ');
  uint64_t instance = 0;
  if (header.size() != 3 || StrCat(header[0], " ", header[1]) != kHeaderPrefix ||
      !ParseU64(header[2], &instance)) {
    return Status::InvalidArgument("not a cdes event log");
  }

  // Strip the trailer when present and intact. A crashed writer never got
  // to write one, so in tolerant mode its absence only marks the tail torn.
  bool has_trailer = false;
  if (lines.size() >= 2 && lines.back().rfind("checksum ", 0) == 0) {
    std::string body;
    for (size_t i = 0; i + 1 < lines.size(); ++i) body += lines[i] + "\n";
    if (lines.back() == StrCat("checksum ", Fnv1a(body))) {
      has_trailer = true;
      lines.pop_back();
    } else if (!tolerant) {
      return Status::InvalidArgument("event log checksum mismatch");
    }
    // In tolerant mode a bad trailer line is treated as the torn tail: fall
    // through and let per-record checksums vouch for every real record.
  } else if (!tolerant) {
    return Status::InvalidArgument("event log checksum trailer missing");
  }

  EventLog log;
  log.set_instance(instance);
  for (size_t i = 1; i < lines.size(); ++i) {
    bool final_line = i + 1 == lines.size();
    bool may_drop = tolerant && final_line && !has_trailer;
    std::vector<std::string> fields = StrSplit(lines[i], ' ');
    uint64_t seq = 0, time = 0, crc = 0;
    bool well_formed = fields.size() == 4 && ParseU64(fields[0], &seq) &&
                       ParseU64(fields[1], &time) && ParseU64(fields[3], &crc);
    if (well_formed) {
      well_formed = crc == Fnv1a(RecordPayload(seq, time, fields[2]));
    }
    if (!well_formed) {
      if (may_drop) {
        if (dropped_torn_tail != nullptr) *dropped_torn_tail = true;
        break;
      }
      return Status::InvalidArgument(
          StrCat("malformed log record at line ", i + 1));
    }
    Record record;
    record.stamp.seq = seq;
    record.stamp.time = time;
    // A checksum-valid record naming an unknown event is corruption (or a
    // foreign workflow's log), never a torn tail: stay strict even when
    // tolerant.
    auto literal = alphabet.ParseLiteral(fields[2]);
    if (!literal.ok()) return literal.status();
    record.literal = literal.value();
    log.Append(record);
  }
  return log;
}

}  // namespace cdes
