#ifndef CDES_RUNTIME_EVENT_LOG_H_
#define CDES_RUNTIME_EVENT_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/event.h"
#include "runtime/messages.h"

namespace cdes {

/// An append-only log of event occurrences, in stamp order.
///
/// §5.1 invokes Gray's operation-id logging [7]: recording uniquely
/// identified events on persistent storage so that scheduler state can be
/// rebuilt after a failure. The distributed scheduler can be pointed at an
/// EventLog (GuardSchedulerOptions::durable_log); every occurrence is
/// appended before it is announced, and GuardScheduler::Recover replays a
/// log into a freshly built scheduler, reconstructing decided events,
/// per-actor knowledge, and reduced guards exactly.
///
/// The serialized form is a line-oriented text format with a checksum
/// trailer, standing in for an on-disk WAL.
class EventLog {
 public:
  struct Record {
    OccurrenceStamp stamp;
    EventLiteral literal;

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// Appends one occurrence; stamps must be non-decreasing.
  void Append(const Record& record);

  const std::vector<Record>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Renders the log: a header line, one "seq time literal" line per
  /// record, and a checksum trailer.
  std::string Serialize(const Alphabet& alphabet) const;

  /// Parses a serialized log. Literal names must already be interned in
  /// `alphabet` (recovery re-parses the workflow spec first). Fails on
  /// format errors, unknown events, or checksum mismatch.
  static Result<EventLog> Deserialize(const Alphabet& alphabet,
                                      std::string_view text);

 private:
  std::vector<Record> records_;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_EVENT_LOG_H_
