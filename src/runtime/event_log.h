#ifndef CDES_RUNTIME_EVENT_LOG_H_
#define CDES_RUNTIME_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/event.h"
#include "runtime/messages.h"

namespace cdes {

/// An append-only log of event occurrences, in stamp order.
///
/// §5.1 invokes Gray's operation-id logging [7]: recording uniquely
/// identified events on persistent storage so that scheduler state can be
/// rebuilt after a failure. The distributed scheduler can be pointed at an
/// EventLog (GuardSchedulerOptions::durable_log); every occurrence is
/// appended before it is announced, and GuardScheduler::Recover replays a
/// log into a freshly built scheduler, reconstructing decided events,
/// per-actor knowledge, and reduced guards exactly. The multi-instance
/// engine (src/engine) keeps one log per workflow instance and routes each
/// log back to a fresh instance in Engine::Recover via the instance id
/// carried in the header.
///
/// The serialized form (v2) is a line-oriented text format standing in for
/// an on-disk WAL:
///
///   cdeslog v2 <instance>
///   <seq> <time> <literal> <record-crc>     (one line per occurrence)
///   checksum <body-crc>                     (trailer, written at rest)
///
/// Every record line carries its own FNV checksum, so a log cut off
/// mid-append (a crash between the write and the flush of the final line)
/// is still recoverable: `LoadTolerant` drops the one torn trailing record
/// instead of failing the whole recovery, while the strict `Deserialize`
/// continues to reject any damage anywhere.
class EventLog {
 public:
  struct Record {
    OccurrenceStamp stamp;
    EventLiteral literal;

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// Appends one occurrence; stamps must be non-decreasing.
  void Append(const Record& record);

  const std::vector<Record>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// The workflow instance this log belongs to (0 for standalone
  /// schedulers). Serialized in the header; Engine::Recover uses it to
  /// route a log back to the instance it describes.
  uint64_t instance() const { return instance_; }
  void set_instance(uint64_t instance) { instance_ = instance; }

  /// Renders the log: the header line, one "seq time literal crc" line per
  /// record, and a whole-body checksum trailer.
  std::string Serialize(const Alphabet& alphabet) const;

  /// Strictly parses a serialized log. Literal names must already be
  /// interned in `alphabet` (recovery re-parses the workflow spec first).
  /// Fails on format errors, unknown events, any record checksum mismatch,
  /// or a missing/mismatching trailer.
  static Result<EventLog> Deserialize(const Alphabet& alphabet,
                                      std::string_view text);

  /// Reads just the instance id out of a serialized log's header, without
  /// needing an alphabet: Engine::Recover routes each log to its owning
  /// shard before any shard context exists.
  static Result<uint64_t> PeekInstance(std::string_view text);

  /// Crash-tolerant load: like Deserialize, but accepts a log whose final
  /// record line is torn (truncated mid-append) or whose trailer is absent
  /// — the torn record is dropped and everything before it is recovered.
  /// `dropped_torn_tail`, when non-null, reports whether a tail was
  /// discarded. Corruption anywhere other than the final line still fails:
  /// a torn middle would mean lying about the prefix.
  static Result<EventLog> LoadTolerant(const Alphabet& alphabet,
                                       std::string_view text,
                                       bool* dropped_torn_tail = nullptr);

 private:
  static Result<EventLog> Parse(const Alphabet& alphabet,
                                std::string_view text, bool tolerant,
                                bool* dropped_torn_tail);

  uint64_t instance_ = 0;
  std::vector<Record> records_;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_EVENT_LOG_H_
