#ifndef CDES_RUNTIME_EVENT_LOG_H_
#define CDES_RUNTIME_EVENT_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/event.h"
#include "runtime/messages.h"

namespace cdes {

/// An append-only log of event occurrences, in stamp order, optionally
/// compacted behind a checkpoint.
///
/// §5.1 invokes Gray's operation-id logging [7]: recording uniquely
/// identified events on persistent storage so that scheduler state can be
/// rebuilt after a failure. The distributed scheduler can be pointed at an
/// EventLog (GuardSchedulerOptions::durable_log); every occurrence is
/// appended before it is announced, and GuardScheduler::Recover replays a
/// log into a freshly built scheduler, reconstructing decided events,
/// per-actor knowledge, and reduced guards exactly. The multi-instance
/// engine (src/engine) keeps one log per workflow instance and routes each
/// log back to a fresh instance in Engine::Recover via the instance id
/// carried in the header.
///
/// The serialized form (v3) is a line-oriented text format standing in for
/// an on-disk WAL:
///
///   cdeslog v3 <instance>
///   ckpt <covered> <time> <seq> <nlines> <crc>   (checkpoint section, opt.)
///   <payload line> x nlines                      (opaque; runtime/checkpoint)
///   <seq> <time> <literal> <record-crc>          (one line per occurrence)
///   checksum <body-crc>                          (trailer, written at rest)
///
/// A checkpoint section snapshots everything the `covered` records from
/// genesis would reconstruct (see runtime/checkpoint.h for the payload
/// schema); once one is durable, the record prefix it covers can be
/// truncated and recovery replays only the suffix. The *last* intact
/// checkpoint wins: records preceding it in the file are the ones it
/// covers and are discarded on parse, which is what makes the two-phase
/// "append checkpoint, then compact-rewrite" crash-safe — a file caught
/// between the phases (prefix + checkpoint + nothing truncated yet) parses
/// to exactly the same state as the compacted file.
///
/// Every record line carries its own FNV checksum, so a log cut off
/// mid-append (a crash between the write and the flush of the final line)
/// is still recoverable: `LoadTolerant` drops the one torn trailing record
/// (or a checkpoint section torn at end-of-file, which the preceding
/// not-yet-truncated records cover) instead of failing the whole recovery,
/// while the strict `Deserialize` continues to reject any damage anywhere.
/// v2 logs (no checkpoint sections) parse unchanged.
class EventLog {
 public:
  struct Record {
    OccurrenceStamp stamp;
    EventLiteral literal;

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// One serialized checkpoint: an opaque snapshot payload (schema in
  /// runtime/checkpoint.h) plus the portion of the log it covers.
  struct CheckpointSection {
    /// Records from genesis folded into the snapshot; suffix records in
    /// the log continue after them.
    uint64_t covered = 0;
    /// Stamp of the last covered record; suffix stamps must not precede it.
    OccurrenceStamp last_stamp;
    /// '\n'-separated payload lines, no trailing newline.
    std::string payload;

    friend bool operator==(const CheckpointSection&,
                           const CheckpointSection&) = default;
  };

  /// Appends one occurrence; stamps must be non-decreasing (CHECK —
  /// callers append stamps they just issued, so regression is a programmer
  /// error; untrusted *serialized* input is validated by Parse, which
  /// returns a Status instead).
  void Append(const Record& record);

  /// Replaces the record prefix with a checkpoint (in-memory compaction):
  /// `section.covered` must equal total_records(), i.e. the snapshot must
  /// cover everything currently in the log. Later appends start the suffix.
  void InstallCheckpoint(CheckpointSection section);

  /// Suffix records (everything after the checkpoint; the whole log when
  /// there is none).
  const std::vector<Record>& records() const { return records_; }
  bool empty() const { return records_.empty() && !checkpoint_; }
  size_t size() const { return records_.size(); }
  /// Records ever appended: checkpoint-covered plus the suffix.
  uint64_t total_records() const {
    return (checkpoint_ ? checkpoint_->covered : 0) + records_.size();
  }
  /// Stamp of the newest record (suffix, or the checkpoint's last covered
  /// record when the suffix is empty). Requires total_records() > 0.
  OccurrenceStamp last_stamp() const;

  const CheckpointSection* checkpoint() const {
    return checkpoint_ ? &*checkpoint_ : nullptr;
  }

  /// The workflow instance this log belongs to (0 for standalone
  /// schedulers). Serialized in the header; Engine::Recover uses it to
  /// route a log back to the instance it describes.
  uint64_t instance() const { return instance_; }
  void set_instance(uint64_t instance) { instance_ = instance; }

  /// Renders the sealed log: header, checkpoint section (when present),
  /// record lines, and the whole-body checksum trailer.
  std::string Serialize(const Alphabet& alphabet) const;
  /// Renders the live (still-appendable) image: like Serialize but without
  /// the trailer — the shape a crashed writer's WAL file has on disk.
  std::string SerializeOpen(const Alphabet& alphabet) const;

  // ---- Line builders (shared with the engine's group-commit WAL, so an
  // ---- appended file is byte-identical to SerializeOpen of its log) ----
  static std::string HeaderLine(uint64_t instance);
  static std::string RecordLine(const Record& record, const Alphabet& alphabet);
  static std::string SectionText(const CheckpointSection& section);

  /// Strictly parses a serialized log (v2 or v3). Literal names must
  /// already be interned in `alphabet` (recovery re-parses the workflow
  /// spec first). Fails on format errors, unknown events, any checksum
  /// mismatch, decreasing stamps, or a missing/mismatching trailer.
  static Result<EventLog> Deserialize(const Alphabet& alphabet,
                                      std::string_view text);

  /// Reads just the instance id out of a serialized log's header, without
  /// needing an alphabet: Engine::Recover routes each log to its owning
  /// shard before any shard context exists. The header line must be
  /// newline-terminated — a header cut mid-write could otherwise parse
  /// with a truncated (wrong) instance id and route the log to the wrong
  /// instance.
  static Result<uint64_t> PeekInstance(std::string_view text);

  /// Crash-tolerant load: like Deserialize, but accepts the shapes a
  /// killed writer leaves behind — an absent trailer, a final record line
  /// torn mid-append, a trailer line itself torn mid-write (treated like
  /// an absent trailer), or a checkpoint section torn at end-of-file
  /// (dropped; the records before it were not yet truncated and carry the
  /// same state). `dropped_torn_tail`, when non-null, reports whether a
  /// possible *record* was discarded (a torn trailer or torn checkpoint
  /// sets it only when the torn line cannot be told apart from a record).
  /// Corruption anywhere other than the tail still fails: a torn middle
  /// would mean lying about the prefix.
  static Result<EventLog> LoadTolerant(const Alphabet& alphabet,
                                       std::string_view text,
                                       bool* dropped_torn_tail = nullptr);

 private:
  static Result<EventLog> Parse(const Alphabet& alphabet,
                                std::string_view text, bool tolerant,
                                bool* dropped_torn_tail);

  uint64_t instance_ = 0;
  std::optional<CheckpointSection> checkpoint_;
  std::vector<Record> records_;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_EVENT_LOG_H_
