#ifndef CDES_RUNTIME_MESSAGES_H_
#define CDES_RUNTIME_MESSAGES_H_

#include <cstdint>

#include "algebra/event.h"
#include "algebra/expr.h"
#include "sim/simulator.h"

namespace cdes {

/// Identity of one transport frame under the reliable-delivery layer
/// (runtime/reliable_transport.h): `seq` is monotonic per directed
/// (src, dst) site channel, assigned by the sender. Receivers suppress
/// frames whose id they have already delivered (the at-least-once
/// retransmission protocol makes duplicates routine), and acks echo the id
/// so the sender can retire the matching pending entry.
struct MessageId {
  int src = 0;
  int dst = 0;
  uint64_t seq = 0;

  friend bool operator<(const MessageId& a, const MessageId& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.seq < b.seq;
  }
  friend bool operator==(const MessageId&, const MessageId&) = default;
};

/// Total-order stamp attached to every occurrence. The runtime assimilates
/// occurrence announcements in stamp order, which is what makes the
/// order-sensitive ◇E residuation sound under message reordering (§6: "the
/// underlying execution mechanism should provide a consistent view of the
/// temporal order of events"). In the simulator the stamp is the global
/// occurrence instant plus a tie-breaking sequence number; a deployment
/// would use Lamport clocks or a sequencer.
struct OccurrenceStamp {
  SimTime time = 0;
  uint64_t seq = 0;

  friend bool operator<(const OccurrenceStamp& a, const OccurrenceStamp& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  friend bool operator==(const OccurrenceStamp&,
                         const OccurrenceStamp&) = default;
};

/// Messages exchanged among event actors (§4.3).
enum class RuntimeMessageKind {
  /// □ℓ: `literal` occurred at `stamp`.
  kAnnounce,
  /// ◇ℓ: `literal` is promised to occur eventually (sent point-to-point to
  /// the requester that the promise was validated against — Example 11).
  kPromise,
  /// The sender's parked event `requester` needs ◇`literal` (or □);
  /// the receiver owns `literal`'s symbol and may answer with kPromise.
  kRequestPromise,
  /// Proactive triggering of a triggerable event (§2, §3.3): the receiver
  /// should attempt `literal` on behalf of its agent.
  kTrigger,
};

struct RuntimeMessage {
  RuntimeMessageKind kind;
  /// The event the message is about (announced / promised / requested /
  /// triggered).
  EventLiteral literal;
  /// kAnnounce only: when the event occurred.
  OccurrenceStamp stamp;
  /// kRequestPromise only: the parked event that needs the promise.
  EventLiteral requester;
  /// kPromise only: events guaranteed to precede `literal` (the promiser's
  /// own □-obligations plus the requester it conditioned on). Receivers use
  /// these order guarantees to discharge ◇-sequences: ◇(b·c) needs not just
  /// "b and c will occur" but "c after b" (see EventActor::CurrentGuard).
  std::vector<EventLiteral> after;
  /// kRequestPromise only: the residual expression under the requester's
  /// blocking ◇, e.g. (c_buy + s_cancel). A triggerable receiver that
  /// grants a promise adopts it as a deferred obligation: it triggers
  /// itself only once the other alternatives of `need` have become
  /// impossible (the lazy "when necessary" triggering of Example 4).
  const Expr* need = nullptr;
  /// kRequestPromise only: events the requester's own guard guarantees to
  /// precede it (its □-atoms). A grantee may assume these occurred in its
  /// conditional-promise hypothetical: e.g. in the chain a·b·c, c can
  /// promise b ("◇c once you occur") because b's request carries a.
  std::vector<EventLiteral> implied;

  /// Causal trace context, stamped by the sending scheduler when a tracer
  /// is installed (0/0 = untraced). `trace_id` groups all messages of one
  /// logical unit (the engine uses the workflow instance id); `span_id`
  /// uniquely identifies this message so the exporter can draw a flow arrow
  /// from the send to the delivery — the context rides through the reliable
  /// transport, so retransmitted copies carry it too and the arrow lands on
  /// the delivery that finally assimilates.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_MESSAGES_H_
