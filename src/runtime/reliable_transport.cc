#include "runtime/reliable_transport.h"

#include <algorithm>

#include "common/strings.h"

namespace cdes {

ReliableTransport::ReliableTransport(Network* network,
                                     const ReliableTransportOptions& options)
    : network_(network), options_(options), sim_(network->sim()),
      tracer_(network->tracer()) {
  if (options_.initial_timeout == 0) {
    const NetworkOptions& nopts = network_->options();
    options_.initial_timeout = 2 * (nopts.base_latency + nopts.jitter) + 1;
  }
  if (options_.max_timeout == 0) {
    options_.max_timeout = 64 * options_.initial_timeout;
  }
  CDES_CHECK(options_.backoff >= 1.0);
  obs::MetricsRegistry* metrics = network_->metrics();
  retransmits_ = metrics->counter("net.retransmits");
  acks_ = metrics->counter("net.acks");
  delivered_ = metrics->counter("net.rel.delivered");
  duplicates_suppressed_ = metrics->counter("net.rel.duplicates_suppressed");
  abandoned_ = metrics->counter("net.rel.abandoned");
  retransmit_delay_ = metrics->histogram("net.retransmit_delay_us");
  ack_rtt_ = metrics->histogram("net.rel.ack_rtt_us");
}

std::string ReliableTransport::TraceKey(const MessageId& id) const {
  return StrCat("rel:", id.src, ":", id.dst, ":", id.seq);
}

void ReliableTransport::Send(int src, int dst, size_t bytes,
                             Simulator::Callback deliver) {
  if (src == dst || !network_->FaultInjectionActive()) {
    network_->Send(src, dst, bytes, std::move(deliver));
    return;
  }
  MessageId id{src, dst, next_seq_[{src, dst}]++};
  Pending& p = pending_[id];
  p.bytes = bytes;
  p.deliver = std::move(deliver);
  p.first_sent = sim_->now();
  p.timeout = options_.initial_timeout;
  if (tracer_ != nullptr) {
    tracer_->BeginAsync(obs::SpanCategory::kMessage,
                        StrCat("rel ", src, "→", dst), TraceKey(id),
                        sim_->now(), src, 0, {{"seq", StrCat(id.seq)}});
  }
  TransmitData(id);
  ArmTimer(id);
}

void ReliableTransport::TransmitData(const MessageId& id) {
  Pending& p = pending_.at(id);
  ++p.transmissions;
  network_->Send(id.src, id.dst, p.bytes, [this, id] { OnData(id); });
}

void ReliableTransport::ArmTimer(const MessageId& id) {
  sim_->Schedule(pending_.at(id).timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // acked in the meantime; stale timer
    Pending& p = it->second;
    if (options_.max_retransmits > 0 &&
        p.transmissions > options_.max_retransmits) {
      abandoned_->Increment();
      if (tracer_ != nullptr) {
        tracer_->EndAsync(TraceKey(id), sim_->now(), id.src, 0,
                          {{"outcome", "abandoned"}});
      }
      pending_.erase(it);
      return;
    }
    retransmits_->Increment();
    retransmit_delay_->Observe(sim_->now() - p.first_sent);
    if (tracer_ != nullptr) {
      tracer_->Instant(obs::SpanCategory::kMessage,
                       StrCat("retransmit ", id.src, "→", id.dst),
                       sim_->now(), id.src, 0,
                       {{"seq", StrCat(id.seq)},
                        {"attempt", StrCat(p.transmissions)}});
    }
    p.timeout = std::min(
        static_cast<SimTime>(static_cast<double>(p.timeout) *
                             options_.backoff),
        options_.max_timeout);
    TransmitData(id);
    ArmTimer(id);
  });
}

void ReliableTransport::OnData(const MessageId& id) {
  SeenIds& seen = seen_[{id.src, id.dst}];
  if (seen.Seen(id.seq)) {
    // Duplicate frame (network duplication, or a retransmission racing its
    // ack): suppress the payload but re-ack — the earlier ack may be lost.
    duplicates_suppressed_->Increment();
  } else {
    seen.Mark(id.seq);
    auto it = pending_.find(id);
    // The entry can only be missing if the sender abandoned the frame while
    // a copy was still in flight; the at-most-once contract says drop it.
    if (it != pending_.end()) {
      delivered_->Increment();
      if (it->second.deliver) it->second.deliver();
    }
  }
  network_->Send(id.dst, id.src, options_.ack_bytes,
                 [this, id] { OnAck(id); });
  acks_->Increment();
}

std::vector<TransportChannelState> ReliableTransport::SnapshotChannels() const {
  CDES_CHECK(pending_.empty())
      << "transport snapshot requires quiescence; " << pending_.size()
      << " frames still in flight";
  // Union of the channels either side has touched; std::map keeps the
  // result sorted by (src, dst), so the snapshot is deterministic.
  std::map<std::pair<int, int>, TransportChannelState> channels;
  for (const auto& [key, next] : next_seq_) {
    TransportChannelState& c = channels[key];
    c.src = key.first;
    c.dst = key.second;
    c.send_next = next;
  }
  for (const auto& [key, seen] : seen_) {
    TransportChannelState& c = channels[key];
    c.src = key.first;
    c.dst = key.second;
    c.recv_contiguous = seen.contiguous;
    c.recv_gapped.assign(seen.gapped.begin(), seen.gapped.end());
  }
  std::vector<TransportChannelState> out;
  out.reserve(channels.size());
  for (auto& [key, state] : channels) out.push_back(std::move(state));
  return out;
}

void ReliableTransport::RestoreChannels(
    const std::vector<TransportChannelState>& channels) {
  CDES_CHECK(next_seq_.empty() && seen_.empty() && pending_.empty())
      << "channel restore requires a fresh transport";
  for (const TransportChannelState& c : channels) {
    std::pair<int, int> key{c.src, c.dst};
    if (c.send_next > 0) next_seq_[key] = c.send_next;
    if (c.recv_contiguous > 0 || !c.recv_gapped.empty()) {
      SeenIds& seen = seen_[key];
      seen.contiguous = c.recv_contiguous;
      seen.gapped.insert(c.recv_gapped.begin(), c.recv_gapped.end());
    }
  }
}

void ReliableTransport::OnAck(const MessageId& id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // duplicate or late ack
  ack_rtt_->Observe(sim_->now() - it->second.first_sent);
  if (tracer_ != nullptr) {
    tracer_->EndAsync(TraceKey(id), sim_->now(), id.src, 0,
                      {{"transmissions",
                        StrCat(it->second.transmissions)}});
  }
  pending_.erase(it);
}

}  // namespace cdes
