#ifndef CDES_RUNTIME_RELIABLE_TRANSPORT_H_
#define CDES_RUNTIME_RELIABLE_TRANSPORT_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "runtime/messages.h"
#include "sim/network.h"

namespace cdes {

/// Durable image of one directed channel's exactly-once bookkeeping: the
/// sender's next sequence number and the receiver's delivered-id set
/// (watermark + gapped seqs). Snapshotted into checkpoints so a recovered
/// scheduler keeps suppressing duplicates of frames delivered before the
/// crash instead of replaying them. In-flight frames are deliberately NOT
/// part of the image — checkpoints are taken at instance quiescence, where
/// nothing is pending.
struct TransportChannelState {
  int src = 0;
  int dst = 0;
  /// Sender side: seq the next frame on this channel will carry.
  uint64_t send_next = 0;
  /// Receiver side: every seq < recv_contiguous was delivered ...
  uint64_t recv_contiguous = 0;
  /// ... plus these delivered seqs above the watermark (sorted).
  std::vector<uint64_t> recv_gapped;

  friend bool operator==(const TransportChannelState&,
                         const TransportChannelState&) = default;
};

struct ReliableTransportOptions {
  /// First retransmission fires this long after a send. 0 ⇒ derived from
  /// the network: 2 × (base_latency + jitter) + 1, a round trip at worst-
  /// case jitter. Tune upward for links with SetLinkLatency overrides.
  SimTime initial_timeout = 0;
  /// Timeout multiplier per retransmission (exponential backoff).
  double backoff = 2.0;
  /// Backoff ceiling. 0 ⇒ 64 × the initial timeout.
  SimTime max_timeout = 0;
  /// Wire size charged for an ack frame.
  size_t ack_bytes = 16;
  /// Give up after this many retransmissions of one frame (the payload is
  /// dropped and counted in "net.rel.abandoned"). 0 ⇒ retry forever —
  /// exactly-once delivery provided every partition eventually heals and
  /// drop_probability < 1.
  uint64_t max_retransmits = 0;
};

/// Exactly-once delivery over the simulated network's at-most-once
/// transport (§6: "the underlying execution mechanism should provide a
/// consistent view of the temporal order of events" — which presupposes
/// announcements are not lost or replayed).
///
/// Protocol: every remote payload gets a per-channel monotonic MessageId.
/// The sender keeps the payload pending and retransmits on a timeout with
/// exponential backoff until the receiver's ack retires it; the receiver
/// delivers each id at most once (a compacted seen-set per channel) and
/// re-acks duplicates, so lost acks are survived too. Occurrence *order*
/// is not transport business: announcements carry stamps and the actors'
/// hold-back queues assimilate them in stamp order (runtime/event_actor.h).
///
/// Pay-for-what-you-use: when the network has no fault injection
/// configured (Network::FaultInjectionActive() is false), and for local
/// src == dst messages, Send falls through to the raw network — no ids,
/// no acks, no timers, so fault-free runs are byte- and message-identical
/// to a transport-less build.
///
/// Instrumentation (into the network's registry / tracer): counters
/// "net.retransmits", "net.acks", "net.rel.delivered",
/// "net.rel.duplicates_suppressed", "net.rel.abandoned"; histograms
/// "net.retransmit_delay_us" (first send → each retransmission) and
/// "net.rel.ack_rtt_us" (first send → retiring ack); per-payload async
/// spans "rel src→dst" with "retransmit" instants for each retry.
class ReliableTransport {
 public:
  explicit ReliableTransport(Network* network,
                             const ReliableTransportOptions& options = {});

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Sends a payload of `bytes` from `src` to `dst`; `deliver` runs at the
  /// destination exactly once (unless retransmissions are capped and
  /// exhausted), regardless of transport loss or duplication.
  void Send(int src, int dst, size_t bytes, Simulator::Callback deliver);

  /// Serializes the per-channel watermark state for a checkpoint, sorted by
  /// (src, dst). Requires quiescence (no frames in flight): pending frames
  /// are soft state a checkpoint must not capture.
  std::vector<TransportChannelState> SnapshotChannels() const;

  /// Restores a SnapshotChannels image into a freshly built transport
  /// (nothing sent or delivered yet).
  void RestoreChannels(const std::vector<TransportChannelState>& channels);

  /// Payload frames still awaiting an ack.
  size_t in_flight() const { return pending_.size(); }
  uint64_t retransmits() const { return retransmits_->value(); }
  uint64_t acks() const { return acks_->value(); }
  uint64_t abandoned() const { return abandoned_->value(); }
  Network* network() const { return network_; }

 private:
  struct Pending {
    size_t bytes = 0;
    Simulator::Callback deliver;
    SimTime first_sent = 0;
    SimTime timeout = 0;
    uint64_t transmissions = 0;
  };

  /// Receiver-side delivered-id tracking for one directed channel: every
  /// seq < `contiguous` was delivered; `gapped` holds delivered seqs above
  /// the watermark (non-FIFO networks create gaps).
  struct SeenIds {
    uint64_t contiguous = 0;
    std::set<uint64_t> gapped;

    bool Seen(uint64_t seq) const {
      return seq < contiguous || gapped.count(seq) != 0;
    }
    void Mark(uint64_t seq) {
      gapped.insert(seq);
      while (gapped.erase(contiguous) != 0) ++contiguous;
    }
  };

  void TransmitData(const MessageId& id);
  void ArmTimer(const MessageId& id);
  void OnData(const MessageId& id);
  void OnAck(const MessageId& id);
  std::string TraceKey(const MessageId& id) const;

  Network* network_;
  ReliableTransportOptions options_;
  Simulator* sim_;
  obs::TraceRecorder* tracer_;
  obs::Counter* retransmits_ = nullptr;
  obs::Counter* acks_ = nullptr;
  obs::Counter* delivered_ = nullptr;
  obs::Counter* duplicates_suppressed_ = nullptr;
  obs::Counter* abandoned_ = nullptr;
  obs::Histogram* retransmit_delay_ = nullptr;
  obs::Histogram* ack_rtt_ = nullptr;

  std::map<std::pair<int, int>, uint64_t> next_seq_;
  std::map<MessageId, Pending> pending_;
  std::map<std::pair<int, int>, SeenIds> seen_;
};

}  // namespace cdes

#endif  // CDES_RUNTIME_RELIABLE_TRANSPORT_H_
