#include "sched/automata_scheduler.h"

#include <deque>
#include <set>

#include "algebra/residuation.h"

namespace cdes {

size_t DependencyAutomaton::Next(size_t state, EventLiteral literal) const {
  auto it = transitions.find({state, literal});
  // Residuation rule 6: events outside the residual's alphabet leave the
  // state unchanged; the graph stores only in-alphabet edges.
  return it == transitions.end() ? state : it->second;
}

DependencyAutomaton BuildDependencyAutomaton(Residuator* residuator,
                                             const Expr* dep) {
  DependencyAutomaton out;
  ResidualGraph graph = BuildResidualGraph(residuator, dep);
  out.states = graph.states;
  out.transitions.clear();
  for (const auto& [key, to] : graph.edges) {
    out.transitions[{key.first, key.second}] = to;
  }
  out.symbols = MentionedSymbols(residuator->NormalForm(dep));
  // A state is satisfiable when ⊤ is reachable (including being ⊤);
  // residuation strictly consumes symbols, so iterating to fixpoint over
  // the (acyclic) edge set terminates quickly.
  out.satisfiable.assign(out.states.size(), false);
  for (size_t i = 0; i < out.states.size(); ++i) {
    out.satisfiable[i] = out.states[i]->IsTop();
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, to] : graph.edges) {
      if (out.satisfiable[to] && !out.satisfiable[key.first]) {
        out.satisfiable[key.first] = true;
        changed = true;
      }
    }
  }
  return out;
}

AutomataScheduler::AutomataScheduler(WorkflowContext* ctx,
                                     const ParsedWorkflow& workflow,
                                     Network* network, int center_site,
                                     size_t message_bytes,
                                     obs::MetricsRegistry* metrics,
                                     obs::TraceRecorder* tracer)
    : ctx_(ctx), network_(network), center_site_(center_site),
      message_bytes_(message_bytes) {
  for (const Dependency& dep : workflow.spec.dependencies()) {
    automata_.push_back(BuildDependencyAutomaton(ctx->residuator(), dep.expr));
    current_.push_back(0);
  }
  for (const EventDecl& decl : workflow.events) {
    const AgentDecl* agent = workflow.FindAgent(decl.agent);
    sites_[decl.symbol] = agent != nullptr ? agent->site : 0;
  }
  cobs_.Init(metrics, tracer, ctx_->alphabet(), network_->sim(), center_site_,
             name(), sites_);
}

size_t AutomataScheduler::total_states() const {
  size_t n = 0;
  for (const DependencyAutomaton& a : automata_) n += a.states.size();
  return n;
}

size_t AutomataScheduler::total_transitions() const {
  size_t n = 0;
  for (const DependencyAutomaton& a : automata_) n += a.transitions.size();
  return n;
}

int AutomataScheduler::SiteOf(SymbolId symbol) const {
  auto it = sites_.find(symbol);
  return it == sites_.end() ? 0 : it->second;
}

void AutomataScheduler::Attempt(EventLiteral literal, AttemptCallback done) {
  int agent_site = SiteOf(literal.symbol());
  cobs_.CountAttempt(literal, agent_site);
  if (done) done = cobs_.Wrap(literal, std::move(done));
  network_->Send(agent_site, center_site_, message_bytes_,
                 [this, literal, done = std::move(done), agent_site] {
                   HandleAttempt(literal, done, agent_site);
                 });
}

void AutomataScheduler::Reply(int agent_site, const AttemptCallback& done,
                              Decision decision) {
  cobs_.CountDecision(decision);
  if (!done) return;
  network_->Send(center_site_, agent_site, message_bytes_,
                 [done, decision] { done(decision); });
}

void AutomataScheduler::HandleAttempt(EventLiteral literal,
                                      AttemptCallback done, int agent_site) {
  auto decided = decided_.find(literal.symbol());
  if (decided != decided_.end()) {
    Reply(agent_site, done,
          decided->second == literal ? Decision::kAccepted
                                     : Decision::kRejected);
    return;
  }
  if (CanAcceptNow(literal)) {
    ApplyOccurrence(literal);
    Reply(agent_site, done, Decision::kAccepted);
    Reevaluate();
    return;
  }
  if (!CanEverAccept(literal)) {
    Reply(agent_site, done, Decision::kRejected);
    return;
  }
  Reply(agent_site, done, Decision::kParked);
  parked_.push_back(Parked{literal, std::move(done), agent_site});
  cobs_.OnParked(parked_.size());
}

bool AutomataScheduler::CanAcceptNow(EventLiteral literal) const {
  for (size_t i = 0; i < automata_.size(); ++i) {
    size_t next = automata_[i].Next(current_[i], literal);
    if (!automata_[i].satisfiable[next]) return false;
  }
  return true;
}

bool AutomataScheduler::CanEverAccept(EventLiteral literal) const {
  for (size_t i = 0; i < automata_.size(); ++i) {
    const DependencyAutomaton& automaton = automata_[i];
    std::set<size_t> seen;
    std::deque<size_t> frontier = {current_[i]};
    bool viable = false;
    while (!viable && !frontier.empty()) {
      size_t state = frontier.front();
      frontier.pop_front();
      if (!seen.insert(state).second) continue;
      if (automaton.satisfiable[automaton.Next(state, literal)]) {
        viable = true;
        break;
      }
      for (const auto& [key, to] : automaton.transitions) {
        if (key.first != state) continue;
        if (key.second.symbol() == literal.symbol()) continue;
        if (decided_.count(key.second.symbol())) continue;
        frontier.push_back(to);
      }
    }
    if (!viable) return false;
  }
  return true;
}

void AutomataScheduler::ApplyOccurrence(EventLiteral literal) {
  cobs_.CountOccurrence(literal);
  decided_[literal.symbol()] = literal;
  history_.push_back(literal);
  for (size_t i = 0; i < automata_.size(); ++i) {
    current_[i] = automata_[i].Next(current_[i], literal);
  }
  for (const auto& listener : listeners_) listener(literal);
}

void AutomataScheduler::Reevaluate() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < parked_.size(); ++i) {
      EventLiteral literal = parked_[i].literal;
      auto decided = decided_.find(literal.symbol());
      if (decided != decided_.end()) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Reply(p.agent_site, p.done,
              decided->second == literal ? Decision::kAccepted
                                         : Decision::kRejected);
        changed = true;
        break;
      }
      if (CanAcceptNow(literal)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        ApplyOccurrence(literal);
        Reply(p.agent_site, p.done, Decision::kAccepted);
        changed = true;
        break;
      }
      if (!CanEverAccept(literal)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Reply(p.agent_site, p.done, Decision::kRejected);
        changed = true;
        break;
      }
    }
  }
}

}  // namespace cdes
