#ifndef CDES_SCHED_AUTOMATA_SCHEDULER_H_
#define CDES_SCHED_AUTOMATA_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "guards/workflow.h"
#include "sched/central_obs.h"
#include "sched/scheduler.h"
#include "sim/network.h"
#include "spec/ast.h"

namespace cdes {

/// A per-dependency finite automaton, precompiled from the reachable
/// residuals (the approach of Attie, Singh, Sheth & Rusinkiewicz [2],
/// discussed in the paper's §6: it "avoids generating product automata,
/// but the individual automata themselves can be quite large").
struct DependencyAutomaton {
  /// Expressions labelling each state (state 0 is initial).
  std::vector<const Expr*> states;
  /// transition[state][literal index] → next state (dense by literal).
  std::map<std::pair<size_t, EventLiteral>, size_t> transitions;
  /// Per state: can ⊤ still be reached (the run can complete correctly)?
  std::vector<bool> satisfiable;
  /// Symbols this dependency mentions.
  std::set<SymbolId> symbols;

  size_t Next(size_t state, EventLiteral literal) const;
};

/// Compiles `dep` to its automaton.
DependencyAutomaton BuildDependencyAutomaton(Residuator* residuator,
                                             const Expr* dep);

/// The centralized automata-driven baseline [2]. Decision policy is
/// identical to ResiduationScheduler (accept iff every automaton stays in
/// a satisfiable state), but all symbolic work happens at build time:
/// runtime transitions are table lookups. The trade-off measured by
/// bench_automata_size: table size can grow combinatorially with the
/// dependency alphabet, while guard expressions stay succinct.
class AutomataScheduler : public Scheduler {
 public:
  /// `metrics`/`tracer` (optional) install the observability layer: "sched.*"
  /// counters, decision-latency histograms, and lifecycle spans, same
  /// taxonomy as GuardScheduler (see docs/OBSERVABILITY.md). When neither is
  /// given, a private registry backs the counters at no extra cost.
  AutomataScheduler(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                    Network* network, int center_site = 0,
                    size_t message_bytes = 48,
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::TraceRecorder* tracer = nullptr);

  void Attempt(EventLiteral literal, AttemptCallback done) override;
  const Trace& history() const override { return history_; }
  std::string name() const override { return "automata-centralized"; }
  void AddOccurrenceListener(
      std::function<void(EventLiteral)> listener) override {
    listeners_.push_back(std::move(listener));
  }

  size_t parked_count() const { return parked_.size(); }
  /// Total precompiled states across all dependency automata.
  size_t total_states() const;
  /// Total precompiled transitions.
  size_t total_transitions() const;
  const std::vector<DependencyAutomaton>& automata() const {
    return automata_;
  }
  /// The registry the "sched.*" metrics report into (installed or private).
  obs::MetricsRegistry* metrics() const { return cobs_.metrics(); }
  obs::TraceRecorder* tracer() const { return cobs_.tracer(); }

 private:
  struct Parked {
    EventLiteral literal;
    AttemptCallback done;
    int agent_site;
  };

  void HandleAttempt(EventLiteral literal, AttemptCallback done,
                     int agent_site);
  bool CanAcceptNow(EventLiteral literal) const;
  bool CanEverAccept(EventLiteral literal) const;
  void ApplyOccurrence(EventLiteral literal);
  void Reevaluate();
  void Reply(int agent_site, const AttemptCallback& done, Decision decision);
  int SiteOf(SymbolId symbol) const;

  WorkflowContext* ctx_;
  Network* network_;
  int center_site_;
  size_t message_bytes_;
  std::vector<DependencyAutomaton> automata_;
  std::vector<size_t> current_;  // current state per automaton
  std::map<SymbolId, int> sites_;
  std::map<SymbolId, EventLiteral> decided_;
  std::vector<Parked> parked_;
  Trace history_;
  std::vector<std::function<void(EventLiteral)>> listeners_;
  CentralSchedulerObs cobs_;
};

}  // namespace cdes

#endif  // CDES_SCHED_AUTOMATA_SCHEDULER_H_
