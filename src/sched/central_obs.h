#ifndef CDES_SCHED_CENTRAL_OBS_H_
#define CDES_SCHED_CENTRAL_OBS_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/strings.h"
#include "obs/obs.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "spec/ast.h"

namespace cdes {

/// Observability shared by the two centralized baselines (residuation and
/// automata): both funnel every attempt through one center site, so their
/// lifecycle instrumentation is identical. Counter names match the
/// distributed scheduler's "sched.*" namespace so runs are comparable
/// metric-for-metric when each scheduler reports into its own registry.
///
/// As everywhere in the obs layer: a null tracer costs one branch per site,
/// and when no registry is installed a privately owned one backs the
/// always-on counters (same cost as the plain struct fields they replace).
class CentralSchedulerObs {
 public:
  void Init(obs::MetricsRegistry* metrics, obs::TraceRecorder* tracer,
            const Alphabet* alphabet, const Simulator* sim, int center_site,
            const std::string& scheduler_name,
            const std::map<SymbolId, int>& sites) {
    if (metrics != nullptr) {
      metrics_ = metrics;
    } else {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
      metrics_ = owned_metrics_.get();
    }
    tracer_ = tracer;
    alphabet_ = alphabet;
    sim_ = sim;
    center_site_ = center_site;
    observe_lifecycle_ = metrics != nullptr || tracer != nullptr;
    attempts_ = metrics_->counter("sched.attempts");
    occurrences_ = metrics_->counter("sched.occurrences");
    accepted_ = metrics_->counter("sched.decisions.accepted");
    rejected_ = metrics_->counter("sched.decisions.rejected");
    parks_ = metrics_->counter("sched.parks");
    violations_ = metrics_->counter("sched.violations");
    if (observe_lifecycle_) {
      decision_latency_ = metrics_->histogram("sched.decision_latency_us");
      parked_depth_ = metrics_->histogram("sched.parked_depth");
    }
    if (tracer_ != nullptr) {
      tracer_->NameProcess(center_site_,
                           StrCat("center ", scheduler_name,
                                  " (site ", center_site_, ")"));
      for (const auto& [symbol, site] : sites) {
        if (site != center_site_) {
          tracer_->NameProcess(site, StrCat("site ", site));
        }
        tracer_->NameLane(center_site_, symbol,
                          StrCat("event ", alphabet_->Name(symbol)));
      }
    }
  }

  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceRecorder* tracer() const { return tracer_; }

  /// Every arriving attempt, traced at the attempting agent's site.
  void CountAttempt(EventLiteral literal, int agent_site) {
    attempts_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Instant(obs::SpanCategory::kLifecycle,
                       StrCat("attempt ", alphabet_->LiteralName(literal)),
                       sim_->now(), agent_site, literal.symbol());
    }
  }

  /// Wraps an attempt callback with parked-span and decision-latency
  /// tracking. Call only for non-null callbacks; the per-decision counters
  /// live in CountDecision so fire-and-forget attempts still count.
  AttemptCallback Wrap(EventLiteral literal, AttemptCallback done) {
    if (!observe_lifecycle_) return done;
    SimTime start = sim_->now();
    std::string key = StrCat("cpark:", attempt_seq_++);
    return [this, literal, start, key = std::move(key),
            done = std::move(done)](Decision d) {
      SimTime now = sim_->now();
      std::string name = alphabet_->LiteralName(literal);
      if (d == Decision::kParked) {
        if (tracer_ != nullptr) {
          tracer_->BeginAsync(obs::SpanCategory::kLifecycle,
                              StrCat("parked ", name), key, now, center_site_,
                              literal.symbol());
        }
        done(d);
        return;
      }
      if (tracer_ != nullptr) {
        if (tracer_->HasOpenAsync(key)) {
          tracer_->EndAsync(key, now, center_site_, literal.symbol(),
                            {{"outcome", DecisionToString(d)}});
        }
        tracer_->Instant(obs::SpanCategory::kLifecycle,
                         StrCat(d == Decision::kAccepted ? "enabled "
                                                         : "rejected ",
                                name),
                         now, center_site_, literal.symbol());
      }
      if (decision_latency_ != nullptr) {
        decision_latency_->Observe(now - start);
      }
      done(d);
    };
  }

  /// Every decision made at the center (parks are counted by OnParked when
  /// the attempt actually joins the queue).
  void CountDecision(Decision d) {
    switch (d) {
      case Decision::kAccepted:
        accepted_->Increment();
        break;
      case Decision::kRejected:
        rejected_->Increment();
        break;
      case Decision::kParked:
        break;
    }
  }

  void OnParked(size_t depth_after) {
    parks_->Increment();
    if (parked_depth_ != nullptr) {
      parked_depth_->Observe(depth_after);
    }
  }

  void CountOccurrence(EventLiteral literal) {
    occurrences_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Instant(obs::SpanCategory::kLifecycle,
                       StrCat("occur ", alphabet_->LiteralName(literal)),
                       sim_->now(), center_site_, literal.symbol());
    }
  }

  void CountViolation() { violations_->Increment(); }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  const Alphabet* alphabet_ = nullptr;
  const Simulator* sim_ = nullptr;
  int center_site_ = 0;
  bool observe_lifecycle_ = false;
  obs::Counter* attempts_ = nullptr;
  obs::Counter* occurrences_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* parks_ = nullptr;
  obs::Counter* violations_ = nullptr;
  obs::Histogram* decision_latency_ = nullptr;
  obs::Histogram* parked_depth_ = nullptr;
  uint64_t attempt_seq_ = 0;
};

}  // namespace cdes

#endif  // CDES_SCHED_CENTRAL_OBS_H_
