#include "sched/diagnostics.h"

#include "common/strings.h"
#include "temporal/guard_needs.h"
#include "temporal/reduction.h"

namespace cdes {

std::vector<ParkedDiagnosis> DiagnoseParked(WorkflowContext* ctx,
                                            GuardScheduler* scheduler) {
  std::vector<ParkedDiagnosis> out;
  for (SymbolId symbol : scheduler->symbols()) {
    EventActor* actor = scheduler->actor(symbol);
    if (actor == nullptr) continue;
    for (EventLiteral literal : actor->ParkedLiterals()) {
      ParkedDiagnosis diagnosis;
      diagnosis.literal = literal;
      const Guard* reduced = actor->CurrentGuard(literal);
      diagnosis.guard = GuardToString(reduced, *ctx->alphabet());
      std::set<EventLiteral> diamond_needs, box_needs;
      CollectGuardNeeds(reduced, &diamond_needs, &box_needs);
      diamond_needs.insert(box_needs.begin(), box_needs.end());
      diagnosis.waiting_for.assign(diamond_needs.begin(),
                                   diamond_needs.end());
      // Doomed: a needed literal's symbol has already been decided the
      // other way somewhere in the system (the killing announcement may
      // still be in flight), and absorbing that occurrence zeroes the
      // guard.
      for (EventLiteral need : diagnosis.waiting_for) {
        EventActor* need_actor = scheduler->actor(need.symbol());
        if (need_actor == nullptr || !need_actor->decided()) continue;
        if (*need_actor->decided_literal() != need.Complemented()) continue;
        const Guard* after = ReduceGuard(
            ctx->guards(), ctx->residuator(), reduced,
            {AnnouncementKind::kOccurred, need.Complemented()});
        if (after->IsFalse()) {
          diagnosis.doomed = true;
          break;
        }
      }
      if (scheduler->profiler() != nullptr) {
        auto hottest = scheduler->profiler()->HottestFor(
            ctx->alphabet()->LiteralName(literal));
        if (hottest.has_value()) {
          diagnosis.hottest_site =
              StrCat(hottest->dependency, " (", hottest->source, ", ",
                     hottest->evaluations, " evals)");
        }
      }
      if (diagnosis.doomed && scheduler->tracer() != nullptr) {
        scheduler->tracer()->Instant(
            obs::SpanCategory::kLifecycle,
            StrCat("doomed ", ctx->alphabet()->LiteralName(literal)),
            scheduler->network()->sim()->now(), actor->site(), symbol,
            {{"guard", diagnosis.guard}});
      }
      out.push_back(std::move(diagnosis));
    }
  }
  return out;
}

std::string DiagnosisToString(const std::vector<ParkedDiagnosis>& diagnoses,
                              const Alphabet& alphabet) {
  if (diagnoses.empty()) return "no parked attempts\n";
  std::string out;
  for (const ParkedDiagnosis& d : diagnoses) {
    std::vector<std::string> needs;
    for (EventLiteral l : d.waiting_for) {
      needs.push_back(alphabet.LiteralName(l));
    }
    out += StrCat("parked ", alphabet.LiteralName(d.literal), ": guard ",
                  d.guard, "; waiting for {", StrJoin(needs, ", "), "}",
                  d.doomed ? " [doomed]" : "",
                  d.hottest_site.empty()
                      ? ""
                      : StrCat("; hottest guard: ", d.hottest_site),
                  "\n");
  }
  return out;
}

}  // namespace cdes
