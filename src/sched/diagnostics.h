#ifndef CDES_SCHED_DIAGNOSTICS_H_
#define CDES_SCHED_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "sched/guard_scheduler.h"

namespace cdes {

/// Operational introspection of a running distributed scheduler: what is
/// parked, what each parked event is still waiting for, and which of those
/// waits can still be met. Intended for operators debugging a stuck
/// workflow, and used by tests to assert progress properties.
struct ParkedDiagnosis {
  /// The waiting event and its current (reduced) guard.
  EventLiteral literal;
  std::string guard;
  /// Literals the guard still needs positive knowledge of (◇/□ atoms).
  std::vector<EventLiteral> waiting_for;
  /// True when some needed literal's symbol has been decided the other
  /// way and no alternative remains: the event will eventually be
  /// rejected, not enabled.
  bool doomed = false;
  /// When the scheduler runs with a guard profiler, the costliest
  /// profiled site for this event — "which dependency's guard is burning
  /// the time while this sits parked". Empty when profiling is off or the
  /// site was never evaluated.
  std::string hottest_site;
};

/// Diagnoses every parked attempt in `scheduler`.
std::vector<ParkedDiagnosis> DiagnoseParked(WorkflowContext* ctx,
                                            GuardScheduler* scheduler);

/// Human-readable rendering of a diagnosis set.
std::string DiagnosisToString(const std::vector<ParkedDiagnosis>& diagnoses,
                              const Alphabet& alphabet);

}  // namespace cdes

#endif  // CDES_SCHED_DIAGNOSTICS_H_
