#include "sched/guard_scheduler.h"

#include "algebra/semantics.h"
#include "common/strings.h"

namespace cdes {

std::string DecisionToString(Decision d) {
  switch (d) {
    case Decision::kAccepted:
      return "accepted";
    case Decision::kRejected:
      return "rejected";
    case Decision::kParked:
      return "parked";
  }
  return "unknown";
}

GuardScheduler::GuardScheduler(WorkflowContext* ctx,
                               const ParsedWorkflow& workflow,
                               Network* network,
                               const GuardSchedulerOptions& options)
    : ctx_(ctx), network_(network),
      transport_(std::make_unique<ReliableTransport>(network,
                                                     options.reliability)),
      options_(options) {
  Init(workflow, nullptr);
}

GuardScheduler::GuardScheduler(WorkflowContext* ctx,
                               CompiledWorkflowRef compiled,
                               const ParsedWorkflow& workflow,
                               Network* network,
                               const GuardSchedulerOptions& options)
    : ctx_(ctx), network_(network),
      transport_(std::make_unique<ReliableTransport>(network,
                                                     options.reliability)),
      options_(options) {
  CDES_CHECK(compiled != nullptr);
  Init(workflow, std::move(compiled));
}

void GuardScheduler::Init(const ParsedWorkflow& workflow,
                          CompiledWorkflowRef compiled) {
  const GuardSchedulerOptions& options = options_;
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = options.tracer;
  observe_lifecycle_ = options.lifecycle_instrumentation &&
                       (options.metrics != nullptr || tracer_ != nullptr);
  sent_announcements_ = metrics_->counter("sched.msgs.announce");
  sent_promises_ = metrics_->counter("sched.msgs.promise");
  sent_promise_requests_ = metrics_->counter("sched.msgs.promise_request");
  sent_triggers_ = metrics_->counter("sched.msgs.trigger");
  attempts_ = metrics_->counter("sched.attempts");
  occurrences_ = metrics_->counter("sched.occurrences");
  violation_counter_ = metrics_->counter("sched.violations");
  accepted_ = metrics_->counter("sched.decisions.accepted");
  rejected_ = metrics_->counter("sched.decisions.rejected");
  actor_obs_.tracer = tracer_;
  actor_obs_.alphabet = ctx_->alphabet();
  actor_obs_.sim = network_->sim();
  if (observe_lifecycle_) {
    decision_latency_ = metrics_->histogram("sched.decision_latency_us");
    actor_obs_.reduction_steps =
        metrics_->histogram("sched.guard_reduction_steps");
    actor_obs_.parked_depth = metrics_->histogram("sched.parked_depth");
    actor_obs_.parks = metrics_->counter("sched.parks");
  }
  if (options.symbolic_caches && options.metrics != nullptr) {
    // Cache effectiveness counters land next to the sched.* metrics. The
    // cache is per-context (per shard), so with many instance schedulers
    // sharing a context and registry this re-binds the same counters.
    ctx_->reduction_cache()->AttachMetrics(metrics_);
  }
  Status installed = compiled != nullptr
                         ? AddInstanceCompiled(std::move(compiled), workflow)
                         : AddInstance(workflow);
  CDES_CHECK(installed.ok()) << installed;
}

GuardSchedulerStats GuardScheduler::stats() const {
  GuardSchedulerStats out;
  out.announcements = sent_announcements_->value();
  out.promises = sent_promises_->value();
  out.promise_requests = sent_promise_requests_->value();
  out.triggers = sent_triggers_->value();
  return out;
}

Status GuardScheduler::AddInstance(const ParsedWorkflow& workflow) {
  CompileOptions copts;
  copts.simplify = options_.simplify_guards;
  CompiledWorkflow compiled = CompileWorkflow(ctx_, workflow.spec, copts);
  return Install(compiled, workflow);
}

Status GuardScheduler::AddInstanceCompiled(CompiledWorkflowRef compiled,
                                           const ParsedWorkflow& workflow) {
  CDES_RETURN_IF_ERROR(Install(*compiled, workflow));
  shared_compiles_.push_back(std::move(compiled));
  return Status::OK();
}

Status GuardScheduler::Install(const CompiledWorkflow& compiled,
                               const ParsedWorkflow& workflow) {
  for (SymbolId symbol : compiled.symbols()) {
    if (actors_.count(symbol)) {
      return Status::AlreadyExists(StrCat(
          "instance shares event symbol '", ctx_->alphabet()->Name(symbol),
          "' with an installed instance; instances must be symbol-disjoint"));
    }
  }
  impossible_ |= compiled.impossible();
  for (const Dependency& dep : workflow.spec.dependencies()) {
    spec_.Add(dep.name, dep.expr);
  }
  for (SymbolId symbol : compiled.symbols()) {
    symbols_.insert(symbol);
    int site = 0;
    EventAttributes attrs;
    const EventDecl* decl = workflow.FindEvent(symbol);
    if (decl != nullptr) {
      attrs = decl->attrs;
      const AgentDecl* agent = workflow.FindAgent(decl->agent);
      if (agent != nullptr) site = agent->site;
    }
    attrs_[symbol] = attrs;
    EventLiteral pos = EventLiteral::Positive(symbol);
    EventLiteral neg_lit = EventLiteral::Complement(symbol);
    compiled_guards_[pos] = compiled.GuardFor(pos);
    compiled_guards_[neg_lit] = compiled.GuardFor(neg_lit);
    // The complement literal is scheduler bookkeeping ("e will never
    // occur"): delayable and rejectable, never user-triggerable.
    EventAttributes negative;
    actors_[symbol] = std::make_unique<EventActor>(
        this, symbol, site, compiled.GuardFor(pos), compiled.GuardFor(neg_lit),
        attrs, negative, &actor_obs_);
    if (actor_index_.size() <= symbol) actor_index_.resize(symbol + 1, nullptr);
    actor_index_[symbol] = actors_[symbol].get();
    if (options_.profiler != nullptr) {
      // Split the compiled conjunction back into its per-dependency
      // contributions, each registered (deduplicated profiler-wide) as a
      // (dependency, event) site carrying the dependency's spec location.
      GuardProfile& profile = profiles_[symbol];
      profile.profiler = options_.profiler;
      for (EventLiteral l : {pos, neg_lit}) {
        std::vector<GuardProfile::Contribution>& dst =
            l.complemented() ? profile.negative : profile.positive;
        for (const auto& [di, g] : compiled.ContributionsFor(l)) {
          const Dependency& dep = compiled.dependencies()[di];
          dst.push_back(GuardProfile::Contribution{
              options_.profiler->RegisterSite(
                  dep.name, ctx_->alphabet()->LiteralName(l), dep.loc),
              g});
        }
      }
      actors_[symbol]->set_profile(&profile);
    }
    if (tracer_ != nullptr) {
      tracer_->NameProcess(site, StrCat("site ", site));
      tracer_->NameLane(site, symbol,
                        StrCat("actor ", ctx_->alphabet()->Name(symbol)));
    }
  }
  // Static subscriptions: an actor hears about every symbol its guards
  // mention (reduction can only shrink the mentioned set). Instances are
  // symbol-disjoint, so new subscriptions never involve old actors.
  for (SymbolId symbol : compiled.symbols()) {
    std::set<SymbolId> mentioned =
        GuardSymbols(compiled.GuardFor(EventLiteral::Positive(symbol)));
    std::set<SymbolId> neg =
        GuardSymbols(compiled.GuardFor(EventLiteral::Complement(symbol)));
    mentioned.insert(neg.begin(), neg.end());
    for (SymbolId m : mentioned) {
      if (m != symbol) subscribers_[m].insert(symbol);
    }
  }
  return Status::OK();
}

const Guard* GuardScheduler::CompiledGuardOf(EventLiteral literal) const {
  auto it = compiled_guards_.find(literal);
  return it == compiled_guards_.end() ? ctx_->guards()->True() : it->second;
}

void GuardScheduler::Attempt(EventLiteral literal, AttemptCallback done) {
  attempts_->Increment();
  if (impossible_) {
    // Some dependency is unsatisfiable: no event can ever be part of an
    // acceptable computation.
    rejected_->Increment();
    if (done) done(Decision::kRejected);
    return;
  }
  auto it = actors_.find(literal.symbol());
  if (it == actors_.end()) {
    // An event no dependency mentions is not significant for coordination
    // (§2): it occurs immediately and is not recorded. (Recording it
    // would also break trace validity for looping tasks, whose repeated
    // internal events are exactly the insignificant ones — §5.2.)
    accepted_->Increment();
    if (done) done(Decision::kAccepted);
    return;
  }
  EventActor* actor = it->second.get();
  if (observe_lifecycle_) {
    done = WrapAttempt(literal, actor->site(), std::move(done));
  }
  network_->sim()->Schedule(0, [actor, literal, done = std::move(done)] {
    actor->Attempt(literal, done);
  });
}

AttemptCallback GuardScheduler::WrapAttempt(EventLiteral literal, int site,
                                            AttemptCallback done) {
  uint64_t attempt_id = ++attempt_seq_;
  SimTime t0 = network_->sim()->now();
  uint64_t lane = literal.symbol();
  std::string name = ctx_->alphabet()->LiteralName(literal);
  if (tracer_ != nullptr) {
    tracer_->Instant(obs::SpanCategory::kLifecycle, StrCat("attempt ", name),
                     t0, site, lane);
  }
  return [this, t0, attempt_id, site, lane, name = std::move(name),
          done = std::move(done)](Decision decision) {
    SimTime now = network_->sim()->now();
    std::string park_key = StrCat("park:", attempt_id);
    if (decision == Decision::kParked) {
      if (tracer_ != nullptr) {
        tracer_->BeginAsync(obs::SpanCategory::kLifecycle,
                            StrCat("parked ", name), park_key, now, site,
                            lane);
      }
    } else {
      if (tracer_ != nullptr) {
        tracer_->EndAsync(park_key, now, site, lane,
                          {{"outcome", DecisionToString(decision)}});
        tracer_->Instant(obs::SpanCategory::kLifecycle,
                         StrCat(decision == Decision::kAccepted
                                    ? "enabled "
                                    : "rejected ",
                                name),
                         now, site, lane);
      }
      if (decision_latency_ != nullptr) decision_latency_->Observe(now - t0);
      (decision == Decision::kAccepted ? accepted_ : rejected_)->Increment();
    }
    if (done) done(decision);
  };
}

const Guard* GuardScheduler::CurrentGuardOf(EventLiteral literal) const {
  auto it = actors_.find(literal.symbol());
  if (it == actors_.end()) return CompiledGuardOf(literal);
  return it->second->CurrentGuard(literal);
}

EventActor* GuardScheduler::actor(SymbolId symbol) {
  auto it = actors_.find(symbol);
  return it == actors_.end() ? nullptr : it->second.get();
}

size_t GuardScheduler::parked_count() const {
  size_t n = 0;
  for (const auto& [symbol, actor] : actors_) n += actor->parked_count();
  return n;
}

void GuardScheduler::Close() {
  for (SymbolId s : Undecided()) {
    Attempt(EventLiteral::Complement(s), AttemptCallback());
  }
}

std::vector<SymbolId> GuardScheduler::Undecided() const {
  std::vector<SymbolId> out;
  for (const auto& [symbol, actor] : actors_) {
    if (!actor->decided()) out.push_back(symbol);
  }
  return out;
}

bool GuardScheduler::HistoryConsistent(bool require_satisfaction) const {
  for (const Dependency& dep : spec_.dependencies()) {
    const Expr* residual = ctx_->residuator()->ResiduateTrace(dep.expr,
                                                              history_);
    if (require_satisfaction) {
      if (!residual->IsTop()) return false;
    } else if (residual->IsZero()) {
      return false;
    }
  }
  return true;
}

namespace {

const char* MessageKindName(RuntimeMessageKind kind) {
  switch (kind) {
    case RuntimeMessageKind::kAnnounce:
      return "announce";
    case RuntimeMessageKind::kPromise:
      return "promise";
    case RuntimeMessageKind::kRequestPromise:
      return "promise_request";
    case RuntimeMessageKind::kTrigger:
      return "trigger";
  }
  return "unknown";
}

}  // namespace

void GuardScheduler::CountMessage(RuntimeMessageKind kind) {
  switch (kind) {
    case RuntimeMessageKind::kAnnounce:
      sent_announcements_->Increment();
      break;
    case RuntimeMessageKind::kPromise:
      sent_promises_->Increment();
      break;
    case RuntimeMessageKind::kRequestPromise:
      sent_promise_requests_->Increment();
      break;
    case RuntimeMessageKind::kTrigger:
      sent_triggers_->Increment();
      break;
  }
}

void GuardScheduler::TraceSend(SymbolId from, SymbolId target,
                               const RuntimeMessage& msg) {
  const Alphabet& alphabet = *ctx_->alphabet();
  int src_site = actors_.at(from)->site();
  SimTime now = network_->sim()->now();
  if (msg.span_id != 0) {
    // Flow arrow origin; TraceDeliver emits the matching end at the
    // destination when the message finally lands.
    tracer_->FlowStart(obs::SpanCategory::kMessage, MessageKindName(msg.kind),
                       msg.span_id, now, src_site, from);
  }
  switch (msg.kind) {
    case RuntimeMessageKind::kAnnounce:
    case RuntimeMessageKind::kTrigger:
      tracer_->Instant(obs::SpanCategory::kMessage,
                       StrCat(MessageKindName(msg.kind), " ",
                              alphabet.LiteralName(msg.literal)),
                       now, src_site, from,
                       {{"to", alphabet.Name(target)}});
      return;
    case RuntimeMessageKind::kRequestPromise:
      // Request → grant window: opened here, closed when the owner of the
      // needed literal sends back the matching kPromise.
      tracer_->BeginAsync(
          obs::SpanCategory::kPromise,
          StrCat("promise_request ", alphabet.LiteralName(msg.literal),
                 " for ", alphabet.LiteralName(msg.requester)),
          StrCat("preq:", alphabet.LiteralName(msg.literal), ":", from), now,
          src_site, from, {{"to", alphabet.Name(target)}});
      return;
    case RuntimeMessageKind::kPromise:
      tracer_->EndAsync(
          StrCat("preq:", alphabet.LiteralName(msg.literal), ":", target),
          now, src_site, from);
      tracer_->Instant(obs::SpanCategory::kPromise,
                       StrCat("promise ", alphabet.LiteralName(msg.literal)),
                       now, src_site, from,
                       {{"to", alphabet.Name(target)}});
      return;
  }
}

void GuardScheduler::TraceDeliver(const RuntimeMessage& msg,
                                  const EventActor* to) {
  if (tracer_ == nullptr || msg.span_id == 0) return;
  SimTime now = network_->sim()->now();
  tracer_->Instant(obs::SpanCategory::kMessage,
                   StrCat("assimilate ",
                          ctx_->alphabet()->LiteralName(msg.literal)),
                   now, to->site(), to->symbol(),
                   {{"kind", MessageKindName(msg.kind)},
                    {"trace", StrCat(msg.trace_id)}});
  tracer_->FlowEnd(obs::SpanCategory::kMessage, MessageKindName(msg.kind),
                   msg.span_id, now, to->site(), to->symbol());
}

void GuardScheduler::Broadcast(SymbolId from, const RuntimeMessage& msg) {
  auto it = subscribers_.find(from);
  if (it == subscribers_.end()) return;
  int src_site = actors_.at(from)->site();
  for (SymbolId target : it->second) {
    EventActor* actor = actors_.at(target).get();
    CountMessage(msg.kind);
    if (tracer_ != nullptr) {
      // Stamp causal context per target: each copy of the broadcast gets
      // its own span id, so every delivery draws its own flow arrow.
      RuntimeMessage traced = msg;
      traced.trace_id = options_.trace_id;
      traced.span_id = ++next_span_id_;
      TraceSend(from, target, traced);
      transport_->Send(src_site, actor->site(), options_.message_bytes,
                       [this, actor, traced] {
                         TraceDeliver(traced, actor);
                         actor->Receive(traced);
                       });
      continue;
    }
    transport_->Send(src_site, actor->site(), options_.message_bytes,
                     [actor, msg] { actor->Receive(msg); });
  }
}

void GuardScheduler::SendTo(SymbolId from, SymbolId target,
                            const RuntimeMessage& msg) {
  auto it = actors_.find(target);
  if (it == actors_.end()) return;
  EventActor* actor = it->second.get();
  int src_site = actors_.at(from)->site();
  CountMessage(msg.kind);
  if (tracer_ != nullptr) {
    RuntimeMessage traced = msg;
    traced.trace_id = options_.trace_id;
    traced.span_id = ++next_span_id_;
    TraceSend(from, target, traced);
    transport_->Send(src_site, actor->site(), options_.message_bytes,
                     [this, actor, traced] {
                       TraceDeliver(traced, actor);
                       actor->Receive(traced);
                     });
    return;
  }
  transport_->Send(src_site, actor->site(), options_.message_bytes,
                   [actor, msg] { actor->Receive(msg); });
}

OccurrenceStamp GuardScheduler::NextStamp() {
  return OccurrenceStamp{network_->sim()->now(), next_seq_++};
}

void GuardScheduler::RecordOccurrence(EventLiteral literal,
                                      OccurrenceStamp stamp) {
  // Write-ahead: the log entry lands before any announcement is sent, so a
  // crash never loses an occurrence other actors may have observed.
  if (options_.durable_log != nullptr) {
    options_.durable_log->Append(EventLog::Record{stamp, literal});
  }
  occurrences_->Increment();
  if (tracer_ != nullptr) {
    const EventActor* actor = actors_.at(literal.symbol()).get();
    tracer_->Instant(obs::SpanCategory::kLifecycle,
                     StrCat("occur ", ctx_->alphabet()->LiteralName(literal)),
                     stamp.time, actor->site(), literal.symbol(),
                     {{"seq", StrCat(stamp.seq)}});
  }
  history_.push_back(literal);
  for (const auto& listener : listeners_) listener(literal);
}

Status GuardScheduler::Recover(const EventLog& log) {
  if (!history_.empty()) {
    return Status::FailedPrecondition(
        "Recover must run on a fresh scheduler");
  }
  metrics_->counter("sched.recovered_records")
      ->Increment(log.records().size());
  if (tracer_ != nullptr) {
    tracer_->Complete(obs::SpanCategory::kRecovery, "recovery replay",
                      network_->sim()->now(), 0, 0, 0,
                      {{"records", StrCat(log.records().size())},
                       {"checkpointed",
                        log.checkpoint() != nullptr ? "1" : "0"}});
  }
  // Pass 0: when the log is compacted behind a checkpoint, its payload
  // stands in for replaying the covered prefix — restore the decided
  // history, the per-actor heard-residual baselines, the stamp sequence,
  // and the transport watermarks directly.
  if (log.checkpoint() != nullptr) {
    auto parsed = ParseCheckpoint(ctx_->guards(), *ctx_->alphabet(),
                                  log.checkpoint()->payload);
    if (!parsed.ok()) return parsed.status();
    const CheckpointState& state = parsed.value();
    metrics_->counter("sched.recovered_from_checkpoint")->Increment();
    for (EventLiteral literal : state.history) {
      EventActor* actor = FindActor(literal.symbol());
      if (actor == nullptr) {
        return Status::InvalidArgument(
            "checkpoint mentions an event outside this workflow");
      }
      if (actor->decided()) {
        return Status::InvalidArgument(
            StrCat("checkpoint decides symbol '",
                   ctx_->alphabet()->Name(literal.symbol()), "' twice"));
      }
      actor->RestoreOccurrence(literal);
      history_.push_back(literal);
    }
    for (const ActorCheckpoint& baseline : state.actors) {
      EventActor* actor = FindActor(baseline.symbol);
      if (actor == nullptr) {
        return Status::InvalidArgument(
            "checkpoint names an actor outside this workflow");
      }
      if (actor->decided()) {
        return Status::InvalidArgument(
            StrCat("checkpoint carries a baseline for decided symbol '",
                   ctx_->alphabet()->Name(baseline.symbol), "'"));
      }
      actor->RestoreBaseline(baseline.positive, baseline.negative);
    }
    if (state.next_seq > next_seq_) next_seq_ = state.next_seq;
    transport_->RestoreChannels(state.channels);
  }
  // Pass 1: restore decisions and the history, and advance the stamp
  // sequence past everything logged.
  for (const EventLog::Record& record : log.records()) {
    EventActor* actor = FindActor(record.literal.symbol());
    if (actor == nullptr) {
      return Status::InvalidArgument(
          "log mentions an event outside this workflow");
    }
    if (actor->decided()) {
      // Corrupt or foreign input: a symbol decides at most once, so a
      // well-formed log (or checkpoint + suffix) never repeats one. A
      // Status, not a CHECK — log bytes are untrusted.
      return Status::InvalidArgument(
          StrCat("log decides symbol '",
                 ctx_->alphabet()->Name(record.literal.symbol()),
                 "' twice"));
    }
    actor->RestoreOccurrence(record.literal);
    history_.push_back(record.literal);
    if (record.stamp.seq >= next_seq_) next_seq_ = record.stamp.seq + 1;
  }
  // Pass 2: replay suffix announcements synchronously, in stamp order, so
  // every actor's knowledge (and hence reduced guards) matches the
  // pre-crash state. Actors restored from checkpoint baselines fold the
  // suffix on top of them — residuation is a left fold, so baseline +
  // suffix equals folding the full history. No parked attempts exist yet,
  // so nothing can fire.
  for (const EventLog::Record& record : log.records()) {
    auto sub = subscribers_.find(record.literal.symbol());
    if (sub == subscribers_.end()) continue;
    RuntimeMessage announce{RuntimeMessageKind::kAnnounce, record.literal,
                            record.stamp, EventLiteral(), {}, nullptr, {}};
    for (SymbolId target : sub->second) {
      actor_index_[target]->Receive(announce);
    }
  }
  return Status::OK();
}

CheckpointState GuardScheduler::Snapshot() const {
  // Quiescence is the correctness boundary, not a convenience: an
  // announcement still in flight would be inside neither the snapshot's
  // baselines nor the post-checkpoint log suffix, and nobody re-announces
  // covered occurrences after recovery.
  CDES_CHECK(network_->sim()->pending() == 0)
      << "checkpoints require a quiescent instance";
  CheckpointState state;
  state.next_seq = next_seq_;
  state.clock = network_->sim()->now();
  state.history = history_;
  for (const auto& [symbol, actor] : actors_) {
    if (actor->decided()) continue;
    EventLiteral positive = EventLiteral::Positive(symbol);
    EventLiteral negative = EventLiteral::Complement(symbol);
    const Guard* heard_positive = actor->HeardResidual(positive);
    const Guard* heard_negative = actor->HeardResidual(negative);
    // Hash-consing makes "has this actor's knowledge moved its guards?" a
    // pointer comparison; untouched actors are omitted and recovery leaves
    // them on the compiled table.
    auto cp = compiled_guards_.find(positive);
    auto cn = compiled_guards_.find(negative);
    if (cp != compiled_guards_.end() && cp->second == heard_positive &&
        cn != compiled_guards_.end() && cn->second == heard_negative) {
      continue;
    }
    state.actors.push_back({symbol, heard_positive, heard_negative});
  }
  state.channels = transport_->SnapshotChannels();
  return state;
}

bool GuardScheduler::MayTrigger(EventLiteral literal) const {
  if (!options_.auto_trigger) return false;
  if (literal.complemented()) return false;
  auto it = attrs_.find(literal.symbol());
  if (it == attrs_.end()) return false;
  if (!it->second.triggerable) return false;
  auto actor_it = actors_.find(literal.symbol());
  return actor_it != actors_.end() && !actor_it->second->decided();
}

}  // namespace cdes
