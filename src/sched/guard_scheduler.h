#ifndef CDES_SCHED_GUARD_SCHEDULER_H_
#define CDES_SCHED_GUARD_SCHEDULER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "guards/workflow.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "runtime/checkpoint.h"
#include "runtime/event_actor.h"
#include "runtime/event_log.h"
#include "runtime/reliable_transport.h"
#include "sim/network.h"
#include "spec/ast.h"

namespace cdes {

struct GuardSchedulerOptions {
  /// Semantic canonicalization of compiled guards (Example 9 forms).
  bool simplify_guards = true;
  /// Proactively trigger triggerable events needed by parked guards.
  bool auto_trigger = true;
  /// Enable the conditional-promise consensus of Example 11.
  bool enable_promises = true;
  /// Memoized symbolic evaluation: actors use the context's shard-shared
  /// ReductionCache (assimilation becomes a hash probe after first touch),
  /// prefix-fold chains for the hold-back replay and trigger obligations,
  /// and the flat compiled evaluator for EvaluateNow and the ◇-free bitmask
  /// fast path. Off reproduces the from-scratch reference behavior —
  /// histories are identical either way (equivalence property tests pin
  /// this); the switch exists for those tests and for the before/after
  /// benchmarks.
  bool symbolic_caches = true;
  /// Estimated bytes per runtime message, for network accounting.
  size_t message_bytes = 48;
  /// Tuning for the reliable-delivery layer every protocol message rides
  /// on. The layer is pass-through (no ids, acks, or timers) unless the
  /// network has fault injection configured, so these knobs cost nothing
  /// on a reliable network.
  ReliableTransportOptions reliability;
  /// When set, every occurrence is appended (stamp + literal) before it is
  /// announced; GuardScheduler::Recover replays such a log after a crash.
  EventLog* durable_log = nullptr;
  /// When set, "sched.*" counters and histograms report into this registry;
  /// otherwise a private registry backs stats(). Installing a registry (or
  /// a tracer) also enables the per-attempt lifecycle instrumentation
  /// (decision latency, parked depth, guard-reduction steps).
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, records event-lifecycle spans (attempt → parked →
  /// enabled/rejected), occurrence instants, per-kind protocol sends, and
  /// promise request→grant spans. Null ⇒ every trace site is one
  /// branch-on-null.
  obs::TraceRecorder* tracer = nullptr;
  /// When set, guard evaluations are profiled per (dependency, event) site:
  /// actors evaluate each dependency's contribution separately and charge
  /// its reduction steps / visited nodes / sampled wall time to the shared
  /// profiler. Null ⇒ the split-evaluation path is never taken and costs
  /// nothing. The profiler may be shared across schedulers and threads
  /// (engine shards register into one).
  obs::GuardProfiler* profiler = nullptr;
  /// Trace id stamped (with a fresh span id) on every protocol message when
  /// a tracer is installed, so announcements, promises, and retransmits
  /// carry causal context across sites; exporters join the send and the
  /// delivery into one flow arrow. The engine sets this to the workflow
  /// instance id.
  uint64_t trace_id = 0;
  /// Per-attempt lifecycle instrumentation (decision-latency histogram,
  /// parked spans) costs one allocation per attempt; it is enabled whenever
  /// a registry or tracer is installed. Clearing this keeps the cheap
  /// counters but skips the per-attempt wrapping — the multi-instance
  /// engine does so on its throughput path, where thousands of instance
  /// schedulers share one shard registry.
  bool lifecycle_instrumentation = true;
};

/// Message-kind breakdown of the runtime traffic (the paper's message
/// protocol of §4.3: occurrence announcements, promises, promise requests,
/// and proactive triggers). Snapshot view assembled from the metrics
/// registry, kept for source compatibility; the registry is ground truth.
struct GuardSchedulerStats {
  uint64_t announcements = 0;
  uint64_t promises = 0;
  uint64_t promise_requests = 0;
  uint64_t triggers = 0;

  uint64_t total() const {
    return announcements + promises + promise_requests + triggers;
  }
};

/// The paper's contribution: the distributed, event-centric scheduler
/// (§4). One EventActor per event symbol lives at the site of its owning
/// agent; each actor holds precompiled guards for its two literals and
/// decides occurrences purely from local state plus incoming announcements
/// and promises. There is no central component: every message is
/// actor-to-actor through the simulated network.
class GuardScheduler : public Scheduler, public ActorHost {
 public:
  /// Compiles `workflow` in `ctx` and instantiates actors on `network`'s
  /// sites. Events without an agent (or agents without a site) live at
  /// site 0.
  GuardScheduler(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                 Network* network, const GuardSchedulerOptions& options = {});

  /// Like the above, but reuses an already compiled guard table instead of
  /// synthesizing one: `compiled` must have been produced from
  /// `workflow.spec` in `ctx` (same arenas). This is the multi-instance
  /// fast path — the engine compiles a spec once per shard and constructs
  /// thousands of instance schedulers against the same immutable table,
  /// skipping the exponential per-dependency canonicalization each time.
  GuardScheduler(WorkflowContext* ctx, CompiledWorkflowRef compiled,
                 const ParsedWorkflow& workflow, Network* network,
                 const GuardSchedulerOptions& options = {});

  /// Installs a further workflow instance at runtime (§5.1: "Attempting
  /// some key event binds the parameters of all events, thus instantiating
  /// the workflow afresh"): new actors are created for its events and
  /// scheduling of existing instances is unaffected. The new instance's
  /// symbols must be disjoint from every installed instance's (instances
  /// from a WorkflowTemplate are, by construction of the mangled names).
  Status AddInstance(const ParsedWorkflow& workflow);

  /// AddInstance against a precompiled guard table (see the shared-compile
  /// constructor); retains a reference so the table outlives the actors.
  Status AddInstanceCompiled(CompiledWorkflowRef compiled,
                             const ParsedWorkflow& workflow);

  // ---- Scheduler interface ----
  /// Schedules the attempt at the owning actor's site (agents are
  /// co-located with their events; the attempt itself crosses no link).
  void Attempt(EventLiteral literal, AttemptCallback done) override;
  const Trace& history() const override { return history_; }
  std::string name() const override { return "guard-distributed"; }
  void AddOccurrenceListener(
      std::function<void(EventLiteral)> listener) override {
    listeners_.push_back(std::move(listener));
  }

  // ---- Introspection ----
  /// The current (reduced) guard of a literal.
  const Guard* CurrentGuardOf(EventLiteral literal) const;
  /// The compiled (initial) guard of a literal.
  const Guard* CompiledGuardOf(EventLiteral literal) const;
  EventActor* actor(SymbolId symbol);
  size_t parked_count() const;
  size_t violations() const { return violations_; }
  /// Message-kind counters, read out of the metrics registry.
  GuardSchedulerStats stats() const;
  /// The registry the "sched.*" metrics report into (installed or private).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceRecorder* tracer() const { return tracer_; }
  /// The guard profiler evaluations report into, or nullptr.
  obs::GuardProfiler* profiler() const { return options_.profiler; }
  Network* network() const { return network_; }
  /// The exactly-once delivery layer protocol messages ride on.
  ReliableTransport* transport() const { return transport_.get(); }
  /// Symbols of all installed instances.
  const std::set<SymbolId>& symbols() const { return symbols_; }

  /// Drives the computation toward a maximal trace (the universe U_T over
  /// which guards are interpreted): attempts the complement of every still
  /// undecided symbol, in symbol order. Complements whose guard is not yet
  /// establishable park and resolve as other closures land. Call
  /// Simulator::Run afterwards; repeat until Undecided() is empty.
  void Close();

  /// Symbols no event (of either polarity) has decided yet.
  std::vector<SymbolId> Undecided() const;

  /// Rebuilds state from a durable log written by a previous (crashed)
  /// scheduler over the same workflow: decided events, per-actor
  /// knowledge, reduced guards, and the history are reconstructed exactly.
  /// A v3 log's checkpoint section, when present, stands in for the record
  /// prefix it covers — its payload restores the history, stamp sequence,
  /// per-actor heard-residual baselines, and transport watermarks directly,
  /// and only the suffix records are replayed. Promises and trigger
  /// obligations are soft state: they are not logged and are re-derived on
  /// demand (a parked attempt re-emits its promise requests). Must be
  /// called on a freshly constructed scheduler, before any attempts.
  Status Recover(const EventLog& log);

  /// Captures the durable portion of the live state as a checkpoint:
  /// history, stamp sequence, instance clock, heard-residual baselines of
  /// undecided actors whose guards have moved off the compiled table
  /// (pointer comparison — arenas hash-cons), and transport watermarks.
  /// Requires quiescence (no simulator events or transport frames in
  /// flight): a cut taken mid-announcement would capture one actor before
  /// hearing an occurrence that nobody will re-announce after recovery.
  /// Feeding the result through SerializeCheckpoint / EventLog's v3
  /// checkpoint section and back through Recover reproduces this
  /// scheduler's reduced guards exactly.
  CheckpointState Snapshot() const;
  /// True iff the history satisfies every dependency "so far" (no
  /// dependency residual is 0); with `maximal`, requires full satisfaction.
  bool HistoryConsistent(bool require_satisfaction = false) const;

  // ---- ActorHost interface (used by actors) ----
  void Broadcast(SymbolId from, const RuntimeMessage& msg) override;
  void SendTo(SymbolId from, SymbolId target,
              const RuntimeMessage& msg) override;
  OccurrenceStamp NextStamp() override;
  void RecordOccurrence(EventLiteral literal, OccurrenceStamp stamp) override;
  void RecordViolation(EventLiteral) override {
    ++violations_;
    violation_counter_->Increment();
  }
  bool MayTrigger(EventLiteral literal) const override;
  bool PromisesEnabled() const override { return options_.enable_promises; }
  GuardArena* guard_arena() override { return ctx_->guards(); }
  Residuator* residuator() override { return ctx_->residuator(); }
  ReductionCache* reduction_cache() override {
    return options_.symbolic_caches ? ctx_->reduction_cache() : nullptr;
  }
  FlatEvaluator* flat_evaluator() override {
    return options_.symbolic_caches ? ctx_->flat_evaluator() : nullptr;
  }

 private:
  /// Shared constructor body: resolves metric handles and installs the
  /// first instance (compiling it unless `compiled` is provided).
  void Init(const ParsedWorkflow& workflow, CompiledWorkflowRef compiled);
  /// Instantiates actors and subscriptions for one compiled instance.
  Status Install(const CompiledWorkflow& compiled,
                 const ParsedWorkflow& workflow);
  /// Wraps an attempt callback with lifecycle tracing and decision-latency
  /// accounting (only called when observe_lifecycle_).
  AttemptCallback WrapAttempt(EventLiteral literal, int site,
                              AttemptCallback done);
  void CountMessage(RuntimeMessageKind kind);
  /// O(1) actor lookup through the dense index; nullptr when `symbol` has
  /// no actor in this scheduler.
  EventActor* FindActor(SymbolId symbol) const {
    return symbol < actor_index_.size() ? actor_index_[symbol] : nullptr;
  }
  void TraceSend(SymbolId from, SymbolId target, const RuntimeMessage& msg);
  /// Assimilation instant + flow-arrow end at the destination actor; runs
  /// at final delivery (after any retransmits), so the arrow connects the
  /// original send to the delivery that actually landed.
  void TraceDeliver(const RuntimeMessage& msg, const EventActor* to);

  WorkflowContext* ctx_;
  Network* network_;
  std::unique_ptr<ReliableTransport> transport_;
  GuardSchedulerOptions options_;
  /// Per-literal compiled guards across all installed instances.
  std::map<EventLiteral, const Guard*> compiled_guards_;
  std::set<SymbolId> symbols_;
  bool impossible_ = false;
  std::map<SymbolId, std::unique_ptr<EventActor>> actors_;
  /// Dense SymbolId → actor view over actors_ (nullptr for symbols not
  /// installed here). Recover's restore/replay passes do one lookup per
  /// log record across tens of thousands of records; indexing a vector
  /// replaces a red-black-tree walk each time. actors_ keeps ownership
  /// and deterministic iteration order.
  std::vector<EventActor*> actor_index_;
  /// Per-actor contribution→site tables when options_.profiler is set
  /// (node-stable map: actors hold pointers into it).
  std::map<SymbolId, GuardProfile> profiles_;
  /// symbol → symbols of actors whose guards mention it.
  std::map<SymbolId, std::set<SymbolId>> subscribers_;
  std::map<SymbolId, EventAttributes> attrs_;
  Trace history_;
  std::vector<std::function<void(EventLiteral)>> listeners_;
  uint64_t next_seq_ = 0;
  size_t violations_ = 0;
  WorkflowSpec spec_;
  /// Shared compiled tables installed via AddInstanceCompiled, kept alive
  /// for the actors that point into them.
  std::vector<CompiledWorkflowRef> shared_compiles_;

  // ---- Observability (see docs/OBSERVABILITY.md) ----
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  /// True when an explicit registry or tracer is installed: enables the
  /// per-attempt wrapping that costs an allocation per attempt.
  bool observe_lifecycle_ = false;
  obs::ActorObs actor_obs_;
  /// Message-kind counters (always on; they replace the old stats_ struct).
  obs::Counter* sent_announcements_ = nullptr;
  obs::Counter* sent_promises_ = nullptr;
  obs::Counter* sent_promise_requests_ = nullptr;
  obs::Counter* sent_triggers_ = nullptr;
  obs::Counter* attempts_ = nullptr;
  obs::Counter* occurrences_ = nullptr;
  obs::Counter* violation_counter_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Histogram* decision_latency_ = nullptr;
  uint64_t attempt_seq_ = 0;
  /// Span-id generator for causal trace contexts (0 = unstamped).
  uint64_t next_span_id_ = 0;
};

}  // namespace cdes

#endif  // CDES_SCHED_GUARD_SCHEDULER_H_
