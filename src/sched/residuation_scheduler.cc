#include "sched/residuation_scheduler.h"

#include <deque>
#include <set>

namespace cdes {

ResiduationScheduler::ResiduationScheduler(WorkflowContext* ctx,
                                           const ParsedWorkflow& workflow,
                                           Network* network, int center_site,
                                           size_t message_bytes,
                                           obs::MetricsRegistry* metrics,
                                           obs::TraceRecorder* tracer)
    : ctx_(ctx), network_(network), center_site_(center_site),
      message_bytes_(message_bytes), dependencies_(workflow.spec.dependencies()) {
  residuals_.reserve(dependencies_.size());
  for (const Dependency& dep : dependencies_) {
    residuals_.push_back(ctx_->residuator()->NormalForm(dep.expr));
  }
  for (const EventDecl& decl : workflow.events) {
    attrs_[decl.symbol] = decl.attrs;
    const AgentDecl* agent = workflow.FindAgent(decl.agent);
    sites_[decl.symbol] = agent != nullptr ? agent->site : 0;
  }
  cobs_.Init(metrics, tracer, ctx_->alphabet(), network_->sim(), center_site_,
             name(), sites_);
}

int ResiduationScheduler::SiteOf(SymbolId symbol) const {
  auto it = sites_.find(symbol);
  return it == sites_.end() ? 0 : it->second;
}

void ResiduationScheduler::Attempt(EventLiteral literal, AttemptCallback done) {
  int agent_site = SiteOf(literal.symbol());
  cobs_.CountAttempt(literal, agent_site);
  if (done) done = cobs_.Wrap(literal, std::move(done));
  // Attempt message travels from the agent's site to the center.
  network_->Send(agent_site, center_site_, message_bytes_,
                 [this, literal, done = std::move(done), agent_site] {
                   HandleAttempt(literal, done, agent_site);
                 });
}

void ResiduationScheduler::Reply(int agent_site, const AttemptCallback& done,
                                 Decision decision) {
  cobs_.CountDecision(decision);
  if (!done) return;
  network_->Send(center_site_, agent_site, message_bytes_,
                 [done, decision] { done(decision); });
}

void ResiduationScheduler::HandleAttempt(EventLiteral literal,
                                         AttemptCallback done,
                                         int agent_site) {
  auto decided = decided_.find(literal.symbol());
  if (decided != decided_.end()) {
    Reply(agent_site, done,
          decided->second == literal ? Decision::kAccepted
                                     : Decision::kRejected);
    return;
  }
  if (CanAcceptNow(literal)) {
    ApplyOccurrence(literal);
    Reply(agent_site, done, Decision::kAccepted);
    Reevaluate();
    return;
  }
  if (!CanEverAccept(literal)) {
    EventAttributes attrs = attrs_.count(literal.symbol())
                                ? attrs_[literal.symbol()]
                                : EventAttributes{};
    if (!literal.complemented() && !attrs.rejectable) {
      // Forced admission of a nonrejectable event (abort-like).
      ++violations_;
      cobs_.CountViolation();
      ApplyOccurrence(literal);
      Reply(agent_site, done, Decision::kAccepted);
      Reevaluate();
    } else {
      Reply(agent_site, done, Decision::kRejected);
    }
    return;
  }
  Reply(agent_site, done, Decision::kParked);
  parked_.push_back(Parked{literal, std::move(done), agent_site});
  cobs_.OnParked(parked_.size());
}

bool ResiduationScheduler::Satisfiable(const Expr* e) {
  auto it = sat_cache_.find(e);
  if (it != sat_cache_.end()) return it->second;
  bool sat = IsSatisfiable(ctx_->residuator(), e);
  sat_cache_.emplace(e, sat);
  return sat;
}

bool ResiduationScheduler::CanAcceptNow(EventLiteral literal) {
  for (const Expr* residual : residuals_) {
    if (!Satisfiable(ctx_->residuator()->Residuate(residual, literal))) {
      return false;
    }
  }
  return true;
}

bool ResiduationScheduler::CanEverAccept(EventLiteral literal) {
  // ℓ is viable for a dependency if some residual reachable via events of
  // *other* symbols admits ℓ without losing satisfiability. Per-dependency
  // reachability on the residual DAG (residuals drop consumed symbols, so
  // this terminates).
  for (const Expr* residual : residuals_) {
    std::set<const Expr*> seen;
    std::deque<const Expr*> frontier = {residual};
    bool viable = false;
    while (!viable && !frontier.empty()) {
      const Expr* state = frontier.front();
      frontier.pop_front();
      if (!seen.insert(state).second) continue;
      if (Satisfiable(ctx_->residuator()->Residuate(state, literal))) {
        viable = true;
        break;
      }
      for (EventLiteral step : Gamma(state)) {
        if (step.symbol() == literal.symbol()) continue;
        if (decided_.count(step.symbol())) continue;
        frontier.push_back(ctx_->residuator()->Residuate(state, step));
      }
    }
    if (!viable) return false;
  }
  return true;
}

void ResiduationScheduler::ApplyOccurrence(EventLiteral literal) {
  cobs_.CountOccurrence(literal);
  decided_[literal.symbol()] = literal;
  history_.push_back(literal);
  for (const Expr*& residual : residuals_) {
    residual = ctx_->residuator()->Residuate(residual, literal);
  }
  for (const auto& listener : listeners_) listener(literal);
}

void ResiduationScheduler::Reevaluate() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < parked_.size(); ++i) {
      EventLiteral literal = parked_[i].literal;
      auto decided = decided_.find(literal.symbol());
      if (decided != decided_.end()) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Reply(p.agent_site, p.done,
              decided->second == literal ? Decision::kAccepted
                                         : Decision::kRejected);
        changed = true;
        break;
      }
      if (CanAcceptNow(literal)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        ApplyOccurrence(literal);
        Reply(p.agent_site, p.done, Decision::kAccepted);
        changed = true;
        break;
      }
      if (!CanEverAccept(literal)) {
        Parked p = std::move(parked_[i]);
        parked_.erase(parked_.begin() + i);
        Reply(p.agent_site, p.done, Decision::kRejected);
        changed = true;
        break;
      }
    }
  }
}

}  // namespace cdes
