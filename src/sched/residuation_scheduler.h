#ifndef CDES_SCHED_RESIDUATION_SCHEDULER_H_
#define CDES_SCHED_RESIDUATION_SCHEDULER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "guards/workflow.h"
#include "sched/central_obs.h"
#include "sched/scheduler.h"
#include "sim/network.h"
#include "spec/ast.h"

namespace cdes {

/// The centralized, dependency-centric scheduler (§3.3-3.4, Figure 2) —
/// the design the paper's distributed approach replaces. All dependencies
/// are represented as residual expressions at one site. Every attempt is a
/// round trip: agent site → center (attempt), center → agent site
/// (decision). Scheduling policy, per the Figure 2 state machine:
///
///   accept ℓ  iff every dependency's residual stays satisfiable after
///             residuating by ℓ (the trace can still be completed);
///   reject ℓ  iff ℓ can never become acceptable (no reachable residual,
///             via events of other symbols, admits ℓ) or ℓ̄ has occurred;
///   park   ℓ  otherwise, re-examined after every occurrence.
///
/// Note the semantic contrast with guards: this scheduler accepts f first
/// under D_< (committing to later reject e), while the guard scheduler
/// parks f until ē is guaranteed (Example 10). Both enforce every
/// dependency; they realize different subsets of the acceptable traces.
class ResiduationScheduler : public Scheduler {
 public:
  /// `metrics`/`tracer` (optional) install the observability layer: "sched.*"
  /// counters, decision-latency histograms, and lifecycle spans, same
  /// taxonomy as GuardScheduler (see docs/OBSERVABILITY.md). When neither is
  /// given, a private registry backs the counters at no extra cost.
  ResiduationScheduler(WorkflowContext* ctx, const ParsedWorkflow& workflow,
                       Network* network, int center_site = 0,
                       size_t message_bytes = 48,
                       obs::MetricsRegistry* metrics = nullptr,
                       obs::TraceRecorder* tracer = nullptr);

  void Attempt(EventLiteral literal, AttemptCallback done) override;
  const Trace& history() const override { return history_; }
  std::string name() const override { return "residuation-centralized"; }
  void AddOccurrenceListener(
      std::function<void(EventLiteral)> listener) override {
    listeners_.push_back(std::move(listener));
  }

  size_t parked_count() const { return parked_.size(); }
  /// Current residual of dependency `index` (Figure 2 state).
  const Expr* ResidualOf(size_t index) const { return residuals_[index]; }
  size_t violations() const { return violations_; }
  /// The registry the "sched.*" metrics report into (installed or private).
  obs::MetricsRegistry* metrics() const { return cobs_.metrics(); }
  obs::TraceRecorder* tracer() const { return cobs_.tracer(); }

 private:
  struct Parked {
    EventLiteral literal;
    AttemptCallback done;
    int agent_site;
  };

  /// Runs at the center: decides or parks an arriving attempt.
  void HandleAttempt(EventLiteral literal, AttemptCallback done,
                     int agent_site);
  bool CanAcceptNow(EventLiteral literal);
  bool CanEverAccept(EventLiteral literal);
  bool Satisfiable(const Expr* e);
  void ApplyOccurrence(EventLiteral literal);
  void Reevaluate();
  void Reply(int agent_site, const AttemptCallback& done, Decision decision);
  int SiteOf(SymbolId symbol) const;

  WorkflowContext* ctx_;
  Network* network_;
  int center_site_;
  size_t message_bytes_;
  std::vector<Dependency> dependencies_;
  std::vector<const Expr*> residuals_;
  std::map<SymbolId, int> sites_;
  std::map<SymbolId, EventAttributes> attrs_;
  std::map<SymbolId, EventLiteral> decided_;
  std::vector<Parked> parked_;
  std::unordered_map<const Expr*, bool> sat_cache_;
  Trace history_;
  std::vector<std::function<void(EventLiteral)>> listeners_;
  size_t violations_ = 0;
  CentralSchedulerObs cobs_;
};

}  // namespace cdes

#endif  // CDES_SCHED_RESIDUATION_SCHEDULER_H_
