#ifndef CDES_SCHED_SCHEDULER_H_
#define CDES_SCHED_SCHEDULER_H_

#include <functional>
#include <string>

#include "algebra/trace.h"

namespace cdes {

/// Outcome of an attempted event (§3.3): the scheduler accepts it (it
/// occurs), rejects it (it will never occur — equivalently its complement
/// is scheduled), or parks it awaiting more information.
enum class Decision { kAccepted, kRejected, kParked };

std::string DecisionToString(Decision d);

/// Callback through which a task agent learns the fate of its attempt.
/// Parked attempts resolve later with a second kAccepted/kRejected call;
/// the kParked notification itself is delivered immediately when the
/// scheduler parks.
using AttemptCallback = std::function<void(Decision)>;

/// Common surface of the three schedulers (distributed guard-based, and
/// the two centralized baselines), for tests and benchmarks that compare
/// them on identical workloads.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// A task agent attempts `literal` now. `done` may be invoked
  /// synchronously or after simulated message exchanges; it is invoked
  /// once with kParked if the attempt parks, then once more with the final
  /// decision when it resolves.
  virtual void Attempt(EventLiteral literal, AttemptCallback done) = 0;

  /// The sequence of occurred events so far, in occurrence order.
  virtual const Trace& history() const = 0;

  /// Human-readable scheduler name for reports.
  virtual std::string name() const = 0;

  /// Registers a callback invoked on every occurrence (in occurrence
  /// order). Task agents use this to observe events the scheduler
  /// triggered on their behalf.
  virtual void AddOccurrenceListener(
      std::function<void(EventLiteral)> listener) = 0;
};

}  // namespace cdes

#endif  // CDES_SCHED_SCHEDULER_H_
