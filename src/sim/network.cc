#include "sim/network.h"

namespace cdes {

void Network::Send(int src, int dst, size_t bytes,
                   Simulator::Callback deliver) {
  CDES_CHECK_LT(static_cast<size_t>(src), site_count_);
  CDES_CHECK_LT(static_cast<size_t>(dst), site_count_);
  SimTime latency;
  if (src == dst) {
    latency = options_.local_latency;
  } else {
    auto it = link_latency_.find({src, dst});
    latency = it != link_latency_.end() ? it->second : options_.base_latency;
    if (options_.jitter > 0) latency += rng_.Uniform(options_.jitter + 1);
  }
  SimTime arrival = sim_->now() + latency;
  if (options_.fifo_links) {
    SimTime& last = last_arrival_[{src, dst}];
    if (arrival < last) arrival = last;
    last = arrival;
  }
  if (options_.site_processing > 0) {
    // The destination handles one message at a time.
    SimTime& busy_until = site_busy_until_[dst];
    if (arrival < busy_until) arrival = busy_until;
    arrival += options_.site_processing;
    busy_until = arrival;
  }
  stats_.messages += 1;
  stats_.bytes += bytes;
  stats_.remote_messages += (src != dst) ? 1 : 0;
  stats_.total_latency += arrival - sim_->now();
  sim_->ScheduleAt(arrival, std::move(deliver));
}

}  // namespace cdes
