#include "sim/network.h"

#include "common/strings.h"

namespace cdes {

Network::Network(Simulator* sim, size_t site_count,
                 const NetworkOptions& options)
    : sim_(sim), site_count_(site_count), options_(options),
      rng_(options.seed), tracer_(options.tracer) {
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  messages_ = metrics_->counter("net.messages");
  bytes_ = metrics_->counter("net.bytes");
  remote_messages_ = metrics_->counter("net.remote_messages");
  latency_ = metrics_->histogram("net.latency_us");
  if (tracer_ != nullptr) {
    for (size_t s = 0; s < site_count_; ++s) {
      tracer_->NameProcess(static_cast<int>(s), StrCat("site ", s));
      tracer_->NameLane(static_cast<int>(s), 0, "transport");
    }
  }
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.messages = messages_->value();
  out.bytes = bytes_->value();
  out.remote_messages = remote_messages_->value();
  out.total_latency = latency_->sum();
  return out;
}

void Network::Send(int src, int dst, size_t bytes,
                   Simulator::Callback deliver) {
  CDES_CHECK_LT(static_cast<size_t>(src), site_count_);
  CDES_CHECK_LT(static_cast<size_t>(dst), site_count_);
  SimTime latency;
  if (src == dst) {
    latency = options_.local_latency;
  } else {
    auto it = link_latency_.find({src, dst});
    latency = it != link_latency_.end() ? it->second : options_.base_latency;
    if (options_.jitter > 0) latency += rng_.Uniform(options_.jitter + 1);
  }
  SimTime arrival = sim_->now() + latency;
  if (options_.fifo_links) {
    SimTime& last = last_arrival_[{src, dst}];
    if (arrival < last) arrival = last;
    last = arrival;
  }
  if (options_.site_processing > 0) {
    // The destination handles one message at a time.
    SimTime& busy_until = site_busy_until_[dst];
    if (arrival < busy_until) arrival = busy_until;
    arrival += options_.site_processing;
    busy_until = arrival;
  }
  messages_->Increment();
  bytes_->Increment(bytes);
  remote_messages_->Increment((src != dst) ? 1 : 0);
  latency_->Observe(arrival - sim_->now());
  if (tracer_ != nullptr) {
    std::string key = StrCat("net:", ++trace_seq_);
    tracer_->BeginAsync(obs::SpanCategory::kMessage,
                        StrCat("msg ", src, "→", dst), key, sim_->now(),
                        src, 0, {{"bytes", StrCat(bytes)}});
    sim_->ScheduleAt(arrival,
                     [this, key = std::move(key), dst,
                      deliver = std::move(deliver)] {
                       tracer_->EndAsync(key, sim_->now(), dst, 0);
                       deliver();
                     });
    return;
  }
  sim_->ScheduleAt(arrival, std::move(deliver));
}

}  // namespace cdes
