#include "sim/network.h"

#include "common/strings.h"

namespace cdes {

Network::Network(Simulator* sim, size_t site_count,
                 const NetworkOptions& options)
    : sim_(sim), site_count_(site_count), options_(options),
      rng_(options.seed), tracer_(options.tracer) {
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  messages_ = metrics_->counter("net.messages");
  bytes_ = metrics_->counter("net.bytes");
  remote_messages_ = metrics_->counter("net.remote_messages");
  dropped_ = metrics_->counter("net.dropped");
  duplicated_ = metrics_->counter("net.duplicated");
  partitioned_ = metrics_->counter("net.partitioned");
  latency_ = metrics_->histogram("net.latency_us");
  if (tracer_ != nullptr) {
    for (size_t s = 0; s < site_count_; ++s) {
      tracer_->NameProcess(static_cast<int>(s), StrCat("site ", s));
      tracer_->NameLane(static_cast<int>(s), 0, "transport");
    }
  }
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.messages = messages_->value();
  out.bytes = bytes_->value();
  out.remote_messages = remote_messages_->value();
  out.delivered = latency_->count();
  out.dropped = dropped_->value();
  out.duplicated = duplicated_->value();
  out.partitioned = partitioned_->value();
  out.total_latency = latency_->sum();
  return out;
}

void Network::SchedulePartition(std::set<int> group, SimTime from,
                                SimTime until) {
  if (until <= from || group.empty()) return;
  partitions_.push_back(PartitionWindow{std::move(group), from, until});
}

bool Network::Partitioned(int src, int dst, SimTime at) const {
  for (const PartitionWindow& w : partitions_) {
    if (at < w.from || at >= w.until) continue;
    if (w.group.count(src) != w.group.count(dst)) return true;
  }
  return false;
}

SimTime Network::DrawLatency(int src, int dst) {
  auto it = link_latency_.find({src, dst});
  SimTime latency =
      it != link_latency_.end() ? it->second : options_.base_latency;
  if (options_.jitter > 0) latency += rng_.Uniform(options_.jitter + 1);
  return latency;
}

void Network::ScheduleDelivery(int src, int dst, size_t bytes,
                               SimTime latency, Simulator::Callback deliver) {
  SimTime arrival = sim_->now() + latency;
  if (options_.fifo_links) {
    // Never deliver before an earlier message on the same link: the clamp
    // is what keeps jitter > base_latency (and duplicated copies) from
    // reordering a FIFO channel.
    SimTime last = last_arrival_[{src, dst}];
    if (arrival < last) arrival = last;
  }
  if (options_.site_processing > 0) {
    // The destination handles one message at a time.
    SimTime& busy_until = site_busy_until_[dst];
    if (arrival < busy_until) arrival = busy_until;
    arrival += options_.site_processing;
    busy_until = arrival;
  }
  if (options_.fifo_links) {
    // Record the final (post-processing) delivery time, so later traffic
    // clamps against when this message actually lands.
    last_arrival_[{src, dst}] = arrival;
  }
  latency_->Observe(arrival - sim_->now());
  if (tracer_ != nullptr) {
    std::string key = StrCat("net:", ++trace_seq_);
    tracer_->BeginAsync(obs::SpanCategory::kMessage,
                        StrCat("msg ", src, "→", dst), key, sim_->now(),
                        src, 0, {{"bytes", StrCat(bytes)}});
    sim_->ScheduleAt(arrival,
                     [this, key = std::move(key), dst,
                      deliver = std::move(deliver)] {
                       tracer_->EndAsync(key, sim_->now(), dst, 0);
                       deliver();
                     });
    return;
  }
  sim_->ScheduleAt(arrival, std::move(deliver));
}

void Network::Send(int src, int dst, size_t bytes,
                   Simulator::Callback deliver) {
  CDES_CHECK_LT(static_cast<size_t>(src), site_count_);
  CDES_CHECK_LT(static_cast<size_t>(dst), site_count_);
  messages_->Increment();
  bytes_->Increment(bytes);
  remote_messages_->Increment((src != dst) ? 1 : 0);
  if (src == dst) {
    // In-process delivery: immune to loss, duplication, and partitions.
    ScheduleDelivery(src, dst, bytes, options_.local_latency,
                     std::move(deliver));
    return;
  }
  if (Partitioned(src, dst, sim_->now())) {
    partitioned_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Instant(obs::SpanCategory::kMessage,
                       StrCat("lost ", src, "→", dst), sim_->now(), src, 0,
                       {{"cause", "partition"}});
    }
    return;
  }
  if (options_.drop_probability > 0 &&
      rng_.Bernoulli(options_.drop_probability)) {
    dropped_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Instant(obs::SpanCategory::kMessage,
                       StrCat("lost ", src, "→", dst), sim_->now(), src, 0,
                       {{"cause", "loss"}});
    }
    return;
  }
  SimTime latency = DrawLatency(src, dst);
  // Decide duplication before scheduling the original so the RNG stream
  // (and therefore the whole run) is a pure function of the send sequence.
  bool duplicate = options_.duplicate_probability > 0 &&
                   rng_.Bernoulli(options_.duplicate_probability);
  SimTime dup_latency = duplicate ? DrawLatency(src, dst) : 0;
  if (!duplicate) {
    ScheduleDelivery(src, dst, bytes, latency, std::move(deliver));
    return;
  }
  duplicated_->Increment();
  ScheduleDelivery(src, dst, bytes, latency, deliver);
  ScheduleDelivery(src, dst, bytes, dup_latency, std::move(deliver));
}

}  // namespace cdes
