#ifndef CDES_SIM_NETWORK_H_
#define CDES_SIM_NETWORK_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace cdes {

struct NetworkOptions {
  /// One-way latency between distinct sites, in ticks.
  SimTime base_latency = 1000;
  /// Uniform extra delay in [0, jitter] added per message.
  SimTime jitter = 0;
  /// Latency for messages within a site (actor to co-located actor).
  SimTime local_latency = 1;
  /// When true, messages on one (src, dst) link never overtake each other.
  bool fifo_links = true;
  /// Serial message-handling time at the destination site: each delivery
  /// occupies the receiving site for this many ticks, so a site that all
  /// traffic funnels through becomes a bottleneck (how centralized
  /// schedulers saturate under concurrent load).
  SimTime site_processing = 0;
  /// Probability that a remote message is silently lost (never delivered).
  /// Local (src == dst) messages are in-process and immune to all faults.
  double drop_probability = 0.0;
  /// Probability that a delivered remote message arrives a second time,
  /// with an independently drawn latency. With fifo_links the copy is
  /// clamped like any other message, so it cannot overtake later traffic.
  double duplicate_probability = 0.0;
  /// Seed for the jitter / fault streams.
  uint64_t seed = 1;
  /// When set, per-message counters and the delivery-latency histogram
  /// land in this registry ("net.*" names); otherwise the network keeps a
  /// private registry so stats() always works.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, every message becomes an in-flight async span (send at the
  /// source site, deliver at the destination site); lost messages become
  /// "lost" instants at the source.
  obs::TraceRecorder* tracer = nullptr;
};

/// Snapshot view of the network's "net.*" metrics, kept for source
/// compatibility with pre-obs callers; the registry is the ground truth.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t remote_messages = 0;
  /// Deliveries actually executed (original sends that survived the fault
  /// pipeline, plus duplicated copies). Equals `messages` on a fault-free
  /// network.
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t partitioned = 0;
  SimTime total_latency = 0;

  double MeanLatency() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(total_latency) / delivered;
  }
};

/// A simulated message-passing network among `site_count` sites.
///
/// Delivery is by callback: Send schedules `deliver` on the simulator after
/// the link latency. Latency = base (per-link override possible) + jitter.
/// With fifo_links, arrival times are clamped to be non-decreasing per link,
/// modelling one TCP-like channel per site pair; with it off, messages can
/// overtake (the adversarial mode used by failure-injection tests).
///
/// Fault injection (all drawn from the seeded RNG, so chaos runs replay
/// deterministically): per-message drop and duplication probabilities, and
/// scheduled site partitions. The fault pipeline runs at Send time — a
/// message already in flight when a partition window opens is delivered
/// (the decision models the send-side switch port, not the wire). Callers
/// that need exactly-once delivery on top of this at-most-once transport
/// layer a `ReliableTransport` (runtime/reliable_transport.h) above it.
class Network {
 public:
  Network(Simulator* sim, size_t site_count, const NetworkOptions& options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends a message of `bytes` from `src` to `dst`; `deliver` runs at the
  /// arrival time. Under fault injection the message may be dropped (never
  /// delivered) or duplicated (`deliver` runs twice).
  void Send(int src, int dst, size_t bytes, Simulator::Callback deliver);

  /// Overrides the base latency of one directed link.
  void SetLinkLatency(int src, int dst, SimTime base) {
    link_latency_[{src, dst}] = base;
  }

  /// Cuts every link crossing the boundary of `group` during [from, until):
  /// messages sent between a site in the group and a site outside it are
  /// dropped and counted in "net.partitioned". Windows may overlap; a
  /// window with `until` <= `from` is ignored.
  void SchedulePartition(std::set<int> group, SimTime from, SimTime until);

  /// Whether (src, dst) traffic is cut by a partition window at `at`.
  bool Partitioned(int src, int dst, SimTime at) const;

  /// True when any fault knob can affect a message sent now or later:
  /// nonzero drop/duplication probability, or any scheduled partition.
  /// Reliability layers use this to stay entirely out of the way (no ids,
  /// acks, or timers) on a reliable network.
  bool FaultInjectionActive() const {
    return options_.drop_probability > 0 ||
           options_.duplicate_probability > 0 || !partitions_.empty();
  }

  /// Snapshot assembled from the metrics registry.
  NetworkStats stats() const;
  /// The registry the "net.*" metrics report into (the installed one, or
  /// the private fallback).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceRecorder* tracer() const { return tracer_; }
  size_t site_count() const { return site_count_; }
  Simulator* sim() const { return sim_; }
  const NetworkOptions& options() const { return options_; }

 private:
  struct PartitionWindow {
    std::set<int> group;
    SimTime from;
    SimTime until;
  };

  /// Applies FIFO clamping and site processing to an arrival `latency`
  /// ticks away, records delivery metrics, and schedules `deliver`.
  void ScheduleDelivery(int src, int dst, size_t bytes, SimTime latency,
                        Simulator::Callback deliver);
  /// One fresh latency draw for a remote (src, dst) message.
  SimTime DrawLatency(int src, int dst);

  Simulator* sim_;
  size_t site_count_;
  NetworkOptions options_;
  Rng rng_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* messages_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* remote_messages_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* duplicated_ = nullptr;
  obs::Counter* partitioned_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  uint64_t trace_seq_ = 0;
  std::map<std::pair<int, int>, SimTime> link_latency_;
  std::map<std::pair<int, int>, SimTime> last_arrival_;
  std::map<int, SimTime> site_busy_until_;
  std::vector<PartitionWindow> partitions_;
};

}  // namespace cdes

#endif  // CDES_SIM_NETWORK_H_
