#include "sim/simulator.h"

#include "obs/metrics.h"

namespace cdes {

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  CDES_CHECK_GE(when, now_);
  queue_.push(Entry{when, seq_++, std::move(fn)});
}

void Simulator::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    steps_counter_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  steps_counter_ = metrics->counter("sim.steps");
  queue_depth_ = metrics->histogram("sim.queue_depth");
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // Copy out before popping: the callback may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.when;
  ++executed_;
  if (steps_counter_ != nullptr) {
    steps_counter_->Increment();
    queue_depth_->Observe(queue_.size());
  }
  entry.fn();
  return true;
}

size_t Simulator::Run(size_t max_steps) {
  size_t steps = 0;
  while (steps < max_steps && Step()) ++steps;
  return steps;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t steps = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
    ++steps;
  }
  if (now_ < until) now_ = until;
  return steps;
}

}  // namespace cdes
