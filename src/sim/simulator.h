#ifndef CDES_SIM_SIMULATOR_H_
#define CDES_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace cdes {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Virtual time, in microsecond ticks.
using SimTime = uint64_t;

/// A deterministic discrete-event simulator.
///
/// The workflow runtime executes on top of this instead of a physical
/// distributed system (see DESIGN.md, substitutions): every message delivery
/// and timer is an event in a single totally-ordered calendar, which makes
/// runs reproducible and lets benchmarks measure message counts and decision
/// latencies exactly.
///
/// Events scheduled for the same instant run in scheduling order.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now.
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Runs the next pending event. Returns false when the calendar is empty.
  bool Step();

  /// Runs until the calendar empties or `max_steps` events have executed;
  /// returns the number of events executed.
  size_t Run(size_t max_steps = SIZE_MAX);

  /// Runs events with time <= `until` (or until empty); returns the number
  /// executed. The clock advances to `until` if the calendar drains early.
  size_t RunUntil(SimTime until);

  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

  /// Reports per-step counters ("sim.steps", "sim.queue_depth") into
  /// `metrics`. Pass nullptr to detach. Uninstrumented simulators pay one
  /// null check per step.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
  obs::Counter* steps_counter_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
};

}  // namespace cdes

#endif  // CDES_SIM_SIMULATOR_H_
