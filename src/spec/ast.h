#ifndef CDES_SPEC_AST_H_
#define CDES_SPEC_AST_H_

#include <string>
#include <vector>

#include "common/source_location.h"
#include "guards/workflow.h"

namespace cdes {

/// Scheduling attributes of a significant event (§2, §3.3, [14]):
///   triggerable    — the scheduler may cause the event on its own accord
///                    (e.g. s_book, s_cancel in Example 4);
///   rejectable     — the scheduler may refuse an attempt (aborts are not
///                    rejectable: "the scheduler has no choice but to accept
///                    nonrejectable events like abort");
///   delayable      — the scheduler may park an attempt until its guard
///                    becomes true.
struct EventAttributes {
  bool triggerable = false;
  bool rejectable = true;
  bool delayable = true;

  friend bool operator==(const EventAttributes&,
                         const EventAttributes&) = default;
};

/// A declared task agent and the (simulated) site it runs on. `loc` is the
/// declaration's position in spec source (unknown when built by hand).
struct AgentDecl {
  std::string name;
  int site = 0;
  SourceLocation loc;
};

/// A declared significant event: its interned symbol, owning agent, and
/// attributes. Template-instantiated events carry the `use` statement's
/// location.
struct EventDecl {
  std::string name;
  SymbolId symbol = kInvalidSymbol;
  std::string agent;
  EventAttributes attrs;
  SourceLocation loc;
};

/// A fully parsed workflow: agents, events, and the dependency set.
struct ParsedWorkflow {
  std::string name;
  std::vector<AgentDecl> agents;
  std::vector<EventDecl> events;
  WorkflowSpec spec;

  /// The declaration for `symbol`, or nullptr.
  const EventDecl* FindEvent(SymbolId symbol) const;
  const EventDecl* FindEvent(std::string_view name) const;
  const AgentDecl* FindAgent(std::string_view name) const;
};

}  // namespace cdes

#endif  // CDES_SPEC_AST_H_
