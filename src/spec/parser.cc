#include "spec/parser.h"

#include <cctype>
#include <map>

#include "algebra/generator.h"
#include "common/strings.h"
#include "params/param_workflow.h"

namespace cdes {
namespace {

enum class TokenKind {
  kIdent,
  kInt,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kSemi,
  kColon,
  kComma,
  kAt,
  kPlus,
  kPipe,
  kDot,
  kTilde,
  kArrow,
  kLBracket,
  kRBracket,
  kLess,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

// "file:line:col: " (or "line:col: " when no file name is known) — the
// prefix every parse error and lint diagnostic starts with.
std::string LocPrefix(std::string_view filename, int line, int column) {
  std::string out;
  if (!filename.empty()) out += StrCat(filename, ":");
  out += StrCat(line, ":", column, ": ");
  return out;
}

class Lexer {
 public:
  Lexer(std::string_view text, std::string_view filename)
      : text_(text), filename_(filename) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      int line = line_, column = column_;
      if (pos_ >= text_.size()) {
        out.push_back({TokenKind::kEnd, "", line, column});
        return out;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          Advance();
        }
        out.push_back({TokenKind::kIdent,
                       std::string(text_.substr(start, pos_ - start)), line,
                       column});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          Advance();
        }
        out.push_back({TokenKind::kInt,
                       std::string(text_.substr(start, pos_ - start)), line,
                       column});
        continue;
      }
      if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        Advance();
        Advance();
        out.push_back({TokenKind::kArrow, "->", line, column});
        continue;
      }
      TokenKind kind;
      switch (c) {
        case '{': kind = TokenKind::kLBrace; break;
        case '}': kind = TokenKind::kRBrace; break;
        case '(': kind = TokenKind::kLParen; break;
        case ')': kind = TokenKind::kRParen; break;
        case ';': kind = TokenKind::kSemi; break;
        case ':': kind = TokenKind::kColon; break;
        case ',': kind = TokenKind::kComma; break;
        case '@': kind = TokenKind::kAt; break;
        case '+': kind = TokenKind::kPlus; break;
        case '|': kind = TokenKind::kPipe; break;
        case '.': kind = TokenKind::kDot; break;
        case '~': kind = TokenKind::kTilde; break;
        case '<': kind = TokenKind::kLess; break;
        case '[': kind = TokenKind::kLBracket; break;
        case ']': kind = TokenKind::kRBracket; break;
        default:
          return Status::InvalidArgument(
              StrCat(LocPrefix(filename_, line, column),
                     "unexpected character '", std::string(1, c), "'"));
      }
      Advance();
      out.push_back({kind, std::string(1, c), line, column});
    }
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::string_view filename_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  Parser(WorkflowContext* ctx, std::vector<Token> tokens,
         std::string_view filename)
      : ctx_(ctx), tokens_(std::move(tokens)), filename_(filename) {}

  Result<std::vector<ParsedWorkflow>> ParseAll() {
    std::vector<ParsedWorkflow> out;
    while (!At(TokenKind::kEnd)) {
      if (AtKeyword("template")) {
        CDES_RETURN_IF_ERROR(ParseTemplate());
        continue;
      }
      CDES_ASSIGN_OR_RETURN(ParsedWorkflow w, ParseOne());
      out.push_back(std::move(w));
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status ErrorAt(const Token& t, std::string message) {
    return Status::InvalidArgument(
        StrCat(LocPrefix(filename_, t.line, t.column), message));
  }

  Status ErrorHere(std::string message) {
    const Token& t = Peek();
    return ErrorAt(t, StrCat(message, t.text.empty()
                                          ? ""
                                          : StrCat(" (got '", t.text, "')")));
  }

  static SourceLocation Loc(const Token& t) {
    return SourceLocation{t.line, t.column};
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (!At(kind)) return ErrorHere(StrCat("expected ", what));
    Take();
    return Status::OK();
  }

  bool AtKeyword(std::string_view kw) const {
    return At(TokenKind::kIdent) && Peek().text == kw;
  }

  Result<ParsedWorkflow> ParseOne() {
    if (!AtKeyword("workflow")) {
      return ErrorHere("expected 'workflow'");
    }
    Take();
    if (!At(TokenKind::kIdent)) return ErrorHere("expected workflow name");
    ParsedWorkflow w;
    w.name = Take().text;
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    while (!At(TokenKind::kRBrace)) {
      if (AtKeyword("agent")) {
        CDES_RETURN_IF_ERROR(ParseAgent(&w));
      } else if (AtKeyword("event")) {
        CDES_RETURN_IF_ERROR(ParseEvent(&w));
      } else if (AtKeyword("dep")) {
        CDES_RETURN_IF_ERROR(ParseDep(&w));
      } else if (AtKeyword("use")) {
        CDES_RETURN_IF_ERROR(ParseUse(&w));
      } else {
        return ErrorHere("expected 'agent', 'event', 'dep', or 'use'");
      }
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    return w;
  }

  Status ParseAgent(ParsedWorkflow* w) {
    Token kw = Take();  // 'agent'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected agent name");
    AgentDecl agent;
    agent.loc = Loc(kw);
    agent.name = Take().text;
    if (w->FindAgent(agent.name) != nullptr) {
      return ErrorHere(StrCat("duplicate agent '", agent.name, "'"));
    }
    if (At(TokenKind::kAt)) {
      Take();
      if (!AtKeyword("site")) return ErrorHere("expected 'site'");
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kInt)) return ErrorHere("expected site number");
      agent.site = std::stoi(Take().text);
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    w->agents.push_back(std::move(agent));
    return Status::OK();
  }

  Status ParseEvent(ParsedWorkflow* w) {
    Token kw = Take();  // 'event'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected event name");
    EventDecl event;
    event.loc = Loc(kw);
    event.name = Take().text;
    if (w->FindEvent(event.name) != nullptr) {
      return ErrorHere(StrCat("duplicate event '", event.name, "'"));
    }
    event.symbol = ctx_->alphabet()->Intern(event.name);
    if (AtKeyword("agent")) {
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kIdent)) return ErrorHere("expected agent name");
      event.agent = Take().text;
      if (w->FindAgent(event.agent) == nullptr) {
        return ErrorHere(StrCat("unknown agent '", event.agent, "'"));
      }
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    if (AtKeyword("attrs")) {
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      while (true) {
        if (!At(TokenKind::kIdent)) return ErrorHere("expected attribute");
        std::string attr = Take().text;
        if (attr == "triggerable") {
          event.attrs.triggerable = true;
        } else if (attr == "nonrejectable") {
          event.attrs.rejectable = false;
        } else if (attr == "nondelayable") {
          event.attrs.delayable = false;
        } else {
          return ErrorHere(StrCat("unknown attribute '", attr, "'"));
        }
        if (At(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    w->events.push_back(std::move(event));
    return Status::OK();
  }

  Status ParseDep(ParsedWorkflow* w) {
    Token kw = Take();  // 'dep'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected dependency name");
    std::string name = Take().text;
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
    // Klein sugar: IDENT -> IDENT and IDENT < IDENT.
    if (At(TokenKind::kIdent) && (Peek(1).kind == TokenKind::kArrow ||
                                  Peek(1).kind == TokenKind::kLess)) {
      CDES_ASSIGN_OR_RETURN(SymbolId lhs, ResolveEvent(w, Take()));
      TokenKind op = Take().kind;
      if (!At(TokenKind::kIdent)) return ErrorHere("expected event name");
      CDES_ASSIGN_OR_RETURN(SymbolId rhs, ResolveEvent(w, Take()));
      const Expr* expr = op == TokenKind::kArrow
                             ? KleinImplies(ctx_->exprs(), lhs, rhs)
                             : KleinPrecedes(ctx_->exprs(), lhs, rhs);
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
      w->spec.Add(std::move(name), expr, Loc(kw));
      return Status::OK();
    }
    CDES_ASSIGN_OR_RETURN(const Expr* expr, ParseExpr(w));
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    w->spec.Add(std::move(name), expr, Loc(kw));
    return Status::OK();
  }

  // ---------------------------------------------------------- Templates

  Status ParseTemplate() {
    Take();  // 'template'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected template name");
    std::string name = Take().text;
    if (templates_.count(name)) {
      return ErrorHere(StrCat("duplicate template '", name, "'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<std::string> params;
    while (true) {
      if (!At(TokenKind::kIdent)) return ErrorHere("expected parameter name");
      params.push_back(Take().text);
      if (At(TokenKind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    WorkflowTemplate tmpl(name, params);
    std::set<std::string> declared_events;
    while (!At(TokenKind::kRBrace)) {
      if (AtKeyword("agent")) {
        CDES_RETURN_IF_ERROR(ParseTemplateAgent(&tmpl));
      } else if (AtKeyword("event")) {
        CDES_RETURN_IF_ERROR(ParseTemplateEvent(&tmpl, &declared_events));
      } else if (AtKeyword("dep")) {
        CDES_RETURN_IF_ERROR(ParseTemplateDep(&tmpl, declared_events));
      } else {
        return ErrorHere("expected 'agent', 'event', or 'dep'");
      }
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    templates_.emplace(name, std::move(tmpl));
    return Status::OK();
  }

  Status ParseTemplateAgent(WorkflowTemplate* tmpl) {
    Take();  // 'agent'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected agent name");
    std::string name = Take().text;
    int site = 0;
    if (At(TokenKind::kAt)) {
      Take();
      if (!AtKeyword("site")) return ErrorHere("expected 'site'");
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kInt)) return ErrorHere("expected site number");
      site = std::stoi(Take().text);
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    tmpl->AddAgent(name, site);
    return Status::OK();
  }

  Result<PAtom> ParseTemplateAtom(bool complemented) {
    if (!At(TokenKind::kIdent)) return ErrorHere("expected event name");
    PAtom atom;
    atom.event = Take().text;
    atom.complemented = complemented;
    if (At(TokenKind::kLBracket)) {
      Take();
      while (true) {
        if (At(TokenKind::kIdent)) {
          atom.args.push_back(PTerm::Var(Take().text));
        } else if (At(TokenKind::kInt)) {
          atom.args.push_back(PTerm::Val(std::stoll(Take().text)));
        } else {
          return ErrorHere("expected parameter or constant");
        }
        if (At(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }
    return atom;
  }

  Status ParseTemplateEvent(WorkflowTemplate* tmpl,
                            std::set<std::string>* declared) {
    Take();  // 'event'
    CDES_ASSIGN_OR_RETURN(PAtom atom, ParseTemplateAtom(false));
    if (!declared->insert(atom.event).second) {
      return ErrorHere(StrCat("duplicate event '", atom.event, "'"));
    }
    std::string agent;
    EventAttributes attrs;
    if (AtKeyword("agent")) {
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kIdent)) return ErrorHere("expected agent name");
      agent = Take().text;
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    if (AtKeyword("attrs")) {
      Take();
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      while (true) {
        if (!At(TokenKind::kIdent)) return ErrorHere("expected attribute");
        std::string attr = Take().text;
        if (attr == "triggerable") {
          attrs.triggerable = true;
        } else if (attr == "nonrejectable") {
          attrs.rejectable = false;
        } else if (attr == "nondelayable") {
          attrs.delayable = false;
        } else {
          return ErrorHere(StrCat("unknown attribute '", attr, "'"));
        }
        if (At(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    return tmpl->AddEvent(std::move(atom), agent, attrs);
  }

  Status ParseTemplateDep(WorkflowTemplate* tmpl,
                          const std::set<std::string>& declared) {
    Take();  // 'dep'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected dependency name");
    std::string name = Take().text;
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
    CDES_ASSIGN_OR_RETURN(PExpr expr, ParseTExpr(declared));
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    return tmpl->AddDependency(name, std::move(expr));
  }

  Result<PExpr> ParseTExpr(const std::set<std::string>& declared) {
    CDES_ASSIGN_OR_RETURN(PExpr first, ParseTAnd(declared));
    std::vector<PExpr> parts = {std::move(first)};
    while (At(TokenKind::kPlus)) {
      Take();
      CDES_ASSIGN_OR_RETURN(PExpr next, ParseTAnd(declared));
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return PExpr::Or(std::move(parts));
  }

  Result<PExpr> ParseTAnd(const std::set<std::string>& declared) {
    CDES_ASSIGN_OR_RETURN(PExpr first, ParseTSeq(declared));
    std::vector<PExpr> parts = {std::move(first)};
    while (At(TokenKind::kPipe)) {
      Take();
      CDES_ASSIGN_OR_RETURN(PExpr next, ParseTSeq(declared));
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return PExpr::And(std::move(parts));
  }

  Result<PExpr> ParseTSeq(const std::set<std::string>& declared) {
    CDES_ASSIGN_OR_RETURN(PExpr first, ParseTUnary(declared));
    std::vector<PExpr> parts = {std::move(first)};
    while (At(TokenKind::kDot)) {
      Take();
      CDES_ASSIGN_OR_RETURN(PExpr next, ParseTUnary(declared));
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return PExpr::Seq(std::move(parts));
  }

  Result<PExpr> ParseTUnary(const std::set<std::string>& declared) {
    if (At(TokenKind::kTilde)) {
      Take();
      Token name = Peek();
      CDES_ASSIGN_OR_RETURN(PAtom atom, ParseTemplateAtom(true));
      if (!declared.count(atom.event)) {
        return ErrorAt(name, StrCat("event '", atom.event,
                                    "' used before declaration"));
      }
      return PExpr::Atom(std::move(atom));
    }
    if (At(TokenKind::kLParen)) {
      Take();
      CDES_ASSIGN_OR_RETURN(PExpr inner, ParseTExpr(declared));
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (At(TokenKind::kInt) && Peek().text == "0") {
      Take();
      return PExpr::Zero();
    }
    if (AtKeyword("T")) {
      Take();
      return PExpr::Top();
    }
    if (At(TokenKind::kIdent)) {
      Token name = Peek();
      CDES_ASSIGN_OR_RETURN(PAtom atom, ParseTemplateAtom(false));
      if (!declared.count(atom.event)) {
        return ErrorAt(name, StrCat("event '", atom.event,
                                    "' used before declaration"));
      }
      return PExpr::Atom(std::move(atom));
    }
    return ErrorHere("expected event, '~', '0', 'T', or '('");
  }

  Status ParseUse(ParsedWorkflow* w) {
    Token kw = Take();  // 'use'
    if (!At(TokenKind::kIdent)) return ErrorHere("expected template name");
    std::string name = Take().text;
    auto it = templates_.find(name);
    if (it == templates_.end()) {
      return ErrorHere(StrCat("unknown template '", name, "'"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    Binding binding;
    size_t index = 0;
    const std::vector<std::string>& params = it->second.params();
    while (true) {
      if (!At(TokenKind::kInt)) return ErrorHere("expected parameter value");
      if (index >= params.size()) {
        return ErrorHere(StrCat("template '", name, "' takes ",
                                params.size(), " parameter(s)"));
      }
      binding[params[index++]] = std::stoll(Take().text);
      if (At(TokenKind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    if (index != params.size()) {
      return ErrorHere(StrCat("template '", name, "' takes ", params.size(),
                              " parameter(s)"));
    }
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    CDES_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    // Instantiated declarations point at the `use` statement: the template
    // body has no stable location once several instantiations coexist.
    size_t agents_before = w->agents.size();
    size_t events_before = w->events.size();
    size_t deps_before = w->spec.dependencies().size();
    CDES_RETURN_IF_ERROR(it->second.InstantiateInto(ctx_, binding, w));
    for (size_t i = agents_before; i < w->agents.size(); ++i) {
      w->agents[i].loc = Loc(kw);
    }
    for (size_t i = events_before; i < w->events.size(); ++i) {
      w->events[i].loc = Loc(kw);
    }
    for (size_t i = deps_before; i < w->spec.dependencies().size(); ++i) {
      w->spec.mutable_dependency(i)->loc = Loc(kw);
    }
    return Status::OK();
  }

  Result<SymbolId> ResolveEvent(ParsedWorkflow* w, const Token& token) {
    const EventDecl* decl = w->FindEvent(token.text);
    if (decl == nullptr) {
      return Status::InvalidArgument(
          StrCat(LocPrefix(filename_, token.line, token.column), "event '",
                 token.text, "' used before declaration"));
    }
    return decl->symbol;
  }

  Result<const Expr*> ParseExpr(ParsedWorkflow* w) {
    CDES_ASSIGN_OR_RETURN(const Expr* first, ParseAnd(w));
    std::vector<const Expr*> parts = {first};
    while (At(TokenKind::kPlus)) {
      Take();
      CDES_ASSIGN_OR_RETURN(const Expr* next, ParseAnd(w));
      parts.push_back(next);
    }
    return ctx_->exprs()->Or(parts);
  }

  Result<const Expr*> ParseAnd(ParsedWorkflow* w) {
    CDES_ASSIGN_OR_RETURN(const Expr* first, ParseSeq(w));
    std::vector<const Expr*> parts = {first};
    while (At(TokenKind::kPipe)) {
      Take();
      CDES_ASSIGN_OR_RETURN(const Expr* next, ParseSeq(w));
      parts.push_back(next);
    }
    return ctx_->exprs()->And(parts);
  }

  Result<const Expr*> ParseSeq(ParsedWorkflow* w) {
    CDES_ASSIGN_OR_RETURN(const Expr* first, ParseUnary(w));
    std::vector<const Expr*> parts = {first};
    while (At(TokenKind::kDot)) {
      Take();
      CDES_ASSIGN_OR_RETURN(const Expr* next, ParseUnary(w));
      parts.push_back(next);
    }
    return ctx_->exprs()->Seq(parts);
  }

  Result<const Expr*> ParseUnary(ParsedWorkflow* w) {
    if (At(TokenKind::kTilde)) {
      Take();
      if (!At(TokenKind::kIdent)) return ErrorHere("expected event after '~'");
      CDES_ASSIGN_OR_RETURN(SymbolId s, ResolveEvent(w, Take()));
      return ctx_->exprs()->Atom(EventLiteral::Complement(s));
    }
    if (At(TokenKind::kLParen)) {
      Take();
      CDES_ASSIGN_OR_RETURN(const Expr* inner, ParseExpr(w));
      CDES_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (At(TokenKind::kInt) && Peek().text == "0") {
      Take();
      return ctx_->exprs()->Zero();
    }
    if (AtKeyword("T")) {
      Take();
      return ctx_->exprs()->Top();
    }
    if (At(TokenKind::kIdent)) {
      CDES_ASSIGN_OR_RETURN(SymbolId s, ResolveEvent(w, Take()));
      return ctx_->exprs()->Atom(EventLiteral::Positive(s));
    }
    return ErrorHere("expected event, '~', '0', 'T', or '('");
  }

  WorkflowContext* ctx_;
  std::vector<Token> tokens_;
  std::string_view filename_;
  size_t pos_ = 0;
  std::map<std::string, WorkflowTemplate> templates_;
};

}  // namespace

const EventDecl* ParsedWorkflow::FindEvent(SymbolId symbol) const {
  for (const EventDecl& e : events) {
    if (e.symbol == symbol) return &e;
  }
  return nullptr;
}

const EventDecl* ParsedWorkflow::FindEvent(std::string_view name) const {
  for (const EventDecl& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const AgentDecl* ParsedWorkflow::FindAgent(std::string_view name) const {
  for (const AgentDecl& a : agents) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

Result<std::vector<ParsedWorkflow>> ParseWorkflows(WorkflowContext* ctx,
                                                   std::string_view text,
                                                   std::string_view filename) {
  Lexer lexer(text, filename);
  CDES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(ctx, std::move(tokens), filename);
  return parser.ParseAll();
}

Result<ParsedWorkflow> ParseWorkflow(WorkflowContext* ctx,
                                     std::string_view text,
                                     std::string_view filename) {
  CDES_ASSIGN_OR_RETURN(std::vector<ParsedWorkflow> all,
                        ParseWorkflows(ctx, text, filename));
  if (all.size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one workflow, found ", all.size()));
  }
  return std::move(all[0]);
}

std::string FormatWorkflow(const ParsedWorkflow& workflow,
                           const Alphabet& alphabet) {
  std::string out = StrCat("workflow ", workflow.name, " {\n");
  for (const AgentDecl& a : workflow.agents) {
    out += StrCat("  agent ", a.name, " @ site(", a.site, ");\n");
  }
  for (const EventDecl& e : workflow.events) {
    out += StrCat("  event ", e.name);
    if (!e.agent.empty()) out += StrCat(" agent(", e.agent, ")");
    std::vector<std::string> attrs;
    if (e.attrs.triggerable) attrs.push_back("triggerable");
    if (!e.attrs.rejectable) attrs.push_back("nonrejectable");
    if (!e.attrs.delayable) attrs.push_back("nondelayable");
    if (!attrs.empty()) out += StrCat(" attrs(", StrJoin(attrs, ", "), ")");
    out += ";\n";
  }
  for (const Dependency& d : workflow.spec.dependencies()) {
    out += StrCat("  dep ", d.name, ": ", ExprToString(d.expr, alphabet),
                  ";\n");
  }
  out += "}\n";
  return out;
}

}  // namespace cdes
