#ifndef CDES_SPEC_PARSER_H_
#define CDES_SPEC_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "guards/context.h"
#include "spec/ast.h"

namespace cdes {

/// Parses the textual workflow specification language.
///
/// Grammar (comments run from '#' to end of line):
///
///   spec      := (workflow | template)*
///   template  := "template" IDENT "(" IDENT {"," IDENT} ")" "{" titem* "}"
///   titem     := "agent" IDENT ["@" "site" "(" INT ")"] ";"
///              | "event" IDENT "[" targ {"," targ} "]"
///                        ["agent" "(" IDENT ")"]
///                        ["attrs" "(" attr {"," attr} ")"] ";"
///              | "dep" IDENT ":" texpr ";"
///   targ      := IDENT | INT                 (parameter or constant)
///   workflow  := "workflow" IDENT "{" item* "}"
///   item      := "agent" IDENT ["@" "site" "(" INT ")"] ";"
///              | "event" IDENT ["agent" "(" IDENT ")"]
///                        ["attrs" "(" attr {"," attr} ")"] ";"
///              | "dep" IDENT ":" dep ";"
///              | "use" IDENT "(" INT {"," INT} ")" ";"   (instantiate a
///                        template — §5.1, Example 12; positional binding)
///   attr      := "triggerable" | "nonrejectable" | "nondelayable"
///   dep       := IDENT "->" IDENT            (Klein e → f:  ~e + f)
///              | IDENT "<" IDENT             (Klein e < f:   ~e + ~f + e.f)
///              | expr
///   expr      := and {"+" and}               ('+' binds loosest)
///   and       := seq {"|" seq}
///   seq       := unary {"." unary}           ('.' binds tightest)
///   unary     := "~" IDENT | IDENT | "0" | "T" | "(" expr ")"
///
/// Template dependency expressions (texpr) follow the same operator grammar
/// with parametrized atoms IDENT "[" targ... "]". Templates must be
/// declared before the workflows that `use` them. Events must be declared
/// before they are used in a dependency; symbols are interned into the
/// context's alphabet.
///
/// Errors are formatted "file:line:col: message" ("line:col: message" when
/// `filename` is empty); declarations and dependencies in the result carry
/// their SourceLocation for analysis diagnostics.
Result<std::vector<ParsedWorkflow>> ParseWorkflows(
    WorkflowContext* ctx, std::string_view text,
    std::string_view filename = "");

/// Convenience: parses text that must contain exactly one workflow.
Result<ParsedWorkflow> ParseWorkflow(WorkflowContext* ctx,
                                     std::string_view text,
                                     std::string_view filename = "");

/// Renders a parsed workflow back into (canonical) spec text; the result
/// reparses to an equivalent workflow.
std::string FormatWorkflow(const ParsedWorkflow& workflow,
                           const Alphabet& alphabet);

}  // namespace cdes

#endif  // CDES_SPEC_PARSER_H_
