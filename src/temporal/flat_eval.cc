#include "temporal/flat_eval.h"

namespace cdes {

FlatProgram FlatProgram::Lower(const Guard* g) {
  FlatProgram p;
  // Iterative postorder with pointer dedup: each interned node gets exactly
  // one op, children precede parents.
  std::unordered_map<const Guard*, uint32_t> index;
  struct Frame {
    const Guard* node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({g});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (index.count(f.node)) {
      stack.pop_back();
      continue;
    }
    const std::vector<const Guard*>& kids = f.node->children();
    if (f.next_child < kids.size()) {
      const Guard* child = kids[f.next_child++];
      if (!index.count(child)) stack.push_back({child});
      continue;
    }
    FlatOp op;
    op.kind = f.node->kind();
    op.node = f.node;
    if (op.kind == GuardKind::kBox || op.kind == GuardKind::kNeg) {
      op.literal = f.node->literal();
    } else if (op.kind == GuardKind::kDiamond) {
      p.has_diamond = true;
    }
    if (!kids.empty()) {
      op.first_child = static_cast<uint32_t>(p.children.size());
      op.child_count = static_cast<uint32_t>(kids.size());
      for (const Guard* c : kids) p.children.push_back(index.at(c));
    }
    index.emplace(f.node, static_cast<uint32_t>(p.ops.size()));
    p.ops.push_back(op);
    stack.pop_back();
  }
  return p;
}

bool FlatProgram::EvaluateNow(std::vector<unsigned char>* scratch) const {
  std::vector<unsigned char>& v = *scratch;
  if (v.size() < ops.size()) v.resize(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const FlatOp& op = ops[i];
    switch (op.kind) {
      case GuardKind::kTrue:
      case GuardKind::kNeg:  // unheard ℓ: ¬ℓ holds at this instant
        v[i] = 1;
        break;
      case GuardKind::kFalse:
      case GuardKind::kBox:      // occurrence not yet known
      case GuardKind::kDiamond:  // guarantee not yet known
        v[i] = 0;
        break;
      case GuardKind::kAnd: {
        unsigned char r = 1;
        for (uint32_t c = 0; c < op.child_count; ++c) {
          r &= v[children[op.first_child + c]];
        }
        v[i] = r;
        break;
      }
      case GuardKind::kOr: {
        unsigned char r = 0;
        for (uint32_t c = 0; c < op.child_count; ++c) {
          r |= v[children[op.first_child + c]];
        }
        v[i] = r;
        break;
      }
    }
  }
  return v[ops.size() - 1] != 0;
}

const FlatProgram& FlatEvaluator::ProgramFor(const Guard* g) {
  auto it = programs_.find(g);
  if (it == programs_.end()) {
    it = programs_
             .emplace(g, std::make_unique<FlatProgram>(FlatProgram::Lower(g)))
             .first;
  }
  return *it->second;
}

bool FlatEvaluator::EvaluateNow(const Guard* g) {
  auto it = now_memo_.find(g);
  if (it != now_memo_.end()) return it->second;
  bool result = ProgramFor(g).EvaluateNow(&scratch_);
  now_memo_.emplace(g, result);
  return result;
}

const Guard* FlatEvaluator::Commit(GuardArena* arena, const Guard* g) {
  auto it = commit_memo_.find(g);
  if (it != commit_memo_.end()) return it->second;
  const FlatProgram& p = ProgramFor(g);
  // Same postorder sweep, with guard values: □→0, ¬→⊤, ◇ kept, +/| rebuilt
  // through the arena (which re-canonicalizes exactly like the recursive
  // CommitNow).
  std::vector<const Guard*>& v = guard_scratch_;
  if (v.size() < p.ops.size()) v.resize(p.ops.size());
  std::vector<const Guard*> kids;
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const FlatOp& op = p.ops[i];
    switch (op.kind) {
      case GuardKind::kFalse:
      case GuardKind::kTrue:
      case GuardKind::kDiamond:
        v[i] = op.node;
        break;
      case GuardKind::kBox:
        v[i] = arena->False();
        break;
      case GuardKind::kNeg:
        v[i] = arena->True();
        break;
      case GuardKind::kAnd:
      case GuardKind::kOr: {
        kids.clear();
        kids.reserve(op.child_count);
        for (uint32_t c = 0; c < op.child_count; ++c) {
          kids.push_back(v[p.children[op.first_child + c]]);
        }
        v[i] = op.kind == GuardKind::kAnd ? arena->And(kids) : arena->Or(kids);
        break;
      }
    }
  }
  const Guard* result = v[p.ops.size() - 1];
  commit_memo_.emplace(g, result);
  return result;
}

}  // namespace cdes
