#ifndef CDES_TEMPORAL_FLAT_EVAL_H_
#define CDES_TEMPORAL_FLAT_EVAL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "temporal/guard.h"

namespace cdes {

/// One instruction of a flattened guard program: the node kind plus either
/// a literal (□/¬) or a span into FlatProgram::children (+/|). `node` keeps
/// the originating interned guard node — ◇ evaluation and the CommitNow
/// projection need it back.
struct FlatOp {
  GuardKind kind;
  EventLiteral literal;
  const Guard* node;
  uint32_t first_child = 0;  // index into FlatProgram::children
  uint32_t child_count = 0;
};

/// A guard DAG lowered to a flat postorder instruction array: children
/// precede parents, shared sub-DAGs are deduplicated by interned pointer
/// (each distinct node appears once), and the last op is the root. A single
/// forward sweep with a value-per-op scratch evaluates the whole DAG
/// iteratively — no recursion, no pointer chasing beyond the child index
/// array, and shared subterms are evaluated once instead of once per
/// reference.
struct FlatProgram {
  std::vector<FlatOp> ops;
  std::vector<uint32_t> children;  // op indices, grouped per +/| node
  bool has_diamond = false;

  /// Lowers `g` (dedup by pointer, postorder).
  static FlatProgram Lower(const Guard* g);

  /// The optimistic runtime evaluation (≡ EventActor::EvaluateNow): ¬ℓ is
  /// true while ℓ is unheard, □/◇ require positive knowledge. `scratch` is
  /// caller-owned reusable storage.
  bool EvaluateNow(std::vector<unsigned char>* scratch) const;

  /// Evaluates against heard-set membership: □ℓ ↦ heard(ℓ), ¬ℓ ↦ ¬heard(ℓ).
  /// For a ◇-free guard this equals EvaluateNow of the guard folded by any
  /// heard announcements and promises (promises only ever decide ◇-parts
  /// and literals' complements, neither of which changes a □/¬ outcome
  /// under the optimistic evaluation) — the runtime's decided-literal
  /// bitmask fast path. Must not be used when has_diamond.
  template <typename HeardFn>
  bool EvaluateHeard(HeardFn&& heard,
                     std::vector<unsigned char>* scratch) const {
    std::vector<unsigned char>& v = *scratch;
    if (v.size() < ops.size()) v.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      const FlatOp& op = ops[i];
      switch (op.kind) {
        case GuardKind::kTrue:
          v[i] = 1;
          break;
        case GuardKind::kFalse:
        case GuardKind::kDiamond:
          v[i] = 0;
          break;
        case GuardKind::kBox:
          v[i] = heard(op.literal) ? 1 : 0;
          break;
        case GuardKind::kNeg:
          v[i] = heard(op.literal) ? 0 : 1;
          break;
        case GuardKind::kAnd: {
          unsigned char r = 1;
          for (uint32_t c = 0; c < op.child_count; ++c) {
            r &= v[children[op.first_child + c]];
          }
          v[i] = r;
          break;
        }
        case GuardKind::kOr: {
          unsigned char r = 0;
          for (uint32_t c = 0; c < op.child_count; ++c) {
            r |= v[children[op.first_child + c]];
          }
          v[i] = r;
          break;
        }
      }
    }
    return v[ops.size() - 1] != 0;
  }
};

/// Compiles interned guard nodes to FlatPrograms and memoizes the two pure
/// per-node projections the hot paths keep recomputing: the optimistic
/// EvaluateNow boolean and the CommitNow guard. Everything is keyed by
/// interned pointer (pointer equality is structural equality), so each
/// projection is computed once per distinct guard shape per shard, ever.
/// Thread-confined like the arenas it indexes (one per WorkflowContext).
class FlatEvaluator {
 public:
  /// The flat program of `g`, lowered on first touch. The reference stays
  /// valid for the evaluator's lifetime (programs are heap-pinned).
  const FlatProgram& ProgramFor(const Guard* g);

  /// Memoized optimistic evaluation (≡ the recursive
  /// EventActor::EvaluateNow — a pure function of the node).
  bool EvaluateNow(const Guard* g);

  /// Memoized CommitNow projection (≡ cdes::CommitNow), computed by one
  /// postorder sweep over the flat program. `arena` must be the arena `g`
  /// lives in.
  const Guard* Commit(GuardArena* arena, const Guard* g);

  /// Scratch buffer for the Evaluate* entry points (kept here so actor hot
  /// paths allocate nothing after warm-up).
  std::vector<unsigned char>* scratch() { return &scratch_; }

  size_t program_count() const { return programs_.size(); }

 private:
  std::unordered_map<const Guard*, std::unique_ptr<FlatProgram>> programs_;
  std::unordered_map<const Guard*, bool> now_memo_;
  std::unordered_map<const Guard*, const Guard*> commit_memo_;
  std::vector<unsigned char> scratch_;
  std::vector<const Guard*> guard_scratch_;
};

}  // namespace cdes

#endif  // CDES_TEMPORAL_FLAT_EVAL_H_
