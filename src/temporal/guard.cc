#include "temporal/guard.h"

#include <algorithm>

#include "common/strings.h"

namespace cdes {
namespace {

// Detects the local contradictions/tautologies among literal atoms that
// Example 8 derives: for the same index i,
//   □ℓ and ¬ℓ are boolean complements;
//   □ℓ and □ℓ̄ cannot both hold (one polarity per trace);
//   ◇ℓ and ◇ℓ̄ cannot both hold.
bool AtomsContradict(const Guard* a, const Guard* b) {
  if (a->kind() == GuardKind::kBox && b->kind() == GuardKind::kBox) {
    return a->literal() == b->literal().Complemented();
  }
  if ((a->kind() == GuardKind::kBox && b->kind() == GuardKind::kNeg) ||
      (a->kind() == GuardKind::kNeg && b->kind() == GuardKind::kBox)) {
    return a->literal() == b->literal();
  }
  if (a->kind() == GuardKind::kDiamond && b->kind() == GuardKind::kDiamond) {
    const Expr* ea = a->expr();
    const Expr* eb = b->expr();
    return ea->IsAtom() && eb->IsAtom() &&
           ea->literal() == eb->literal().Complemented();
  }
  return false;
}

bool AtomsExhaustive(const Guard* a, const Guard* b) {
  // □ℓ + ¬ℓ = ⊤ and ◇ℓ + ◇ℓ̄ = ⊤ (Example 8 results (b) and (e)).
  if ((a->kind() == GuardKind::kBox && b->kind() == GuardKind::kNeg) ||
      (a->kind() == GuardKind::kNeg && b->kind() == GuardKind::kBox)) {
    return a->literal() == b->literal();
  }
  if (a->kind() == GuardKind::kDiamond && b->kind() == GuardKind::kDiamond) {
    const Expr* ea = a->expr();
    const Expr* eb = b->expr();
    return ea->IsAtom() && eb->IsAtom() &&
           ea->literal() == eb->literal().Complemented();
  }
  return false;
}

void CollectGuardSymbols(const Guard* g, std::set<SymbolId>* out) {
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
      return;
    case GuardKind::kBox:
    case GuardKind::kNeg:
      out->insert(g->literal().symbol());
      return;
    case GuardKind::kDiamond: {
      std::set<SymbolId> inner = MentionedSymbols(g->expr());
      out->insert(inner.begin(), inner.end());
      return;
    }
    case GuardKind::kAnd:
    case GuardKind::kOr:
      for (const Guard* c : g->children()) CollectGuardSymbols(c, out);
      return;
  }
}

int GuardPrecedence(GuardKind kind) {
  switch (kind) {
    case GuardKind::kOr:
      return 1;
    case GuardKind::kAnd:
      return 2;
    default:
      return 3;
  }
}

void PrintGuard(const Guard* g, const Alphabet& alphabet, int parent_prec,
                std::string* out) {
  int prec = GuardPrecedence(g->kind());
  switch (g->kind()) {
    case GuardKind::kFalse:
      *out += "0";
      return;
    case GuardKind::kTrue:
      *out += "T";
      return;
    case GuardKind::kBox:
      *out += StrCat("[]", alphabet.LiteralName(g->literal()));
      return;
    case GuardKind::kNeg:
      *out += StrCat("!", alphabet.LiteralName(g->literal()));
      return;
    case GuardKind::kDiamond:
      *out += StrCat("<>(", ExprToString(g->expr(), alphabet), ")");
      return;
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      const char* sep = g->kind() == GuardKind::kAnd ? " | " : " + ";
      bool parens = prec < parent_prec;
      if (parens) *out += "(";
      bool first = true;
      for (const Guard* c : g->children()) {
        if (!first) *out += sep;
        first = false;
        PrintGuard(c, alphabet, prec + 1, out);
      }
      if (parens) *out += ")";
      return;
    }
  }
}

}  // namespace

size_t GuardArena::NodeKeyHash::operator()(const NodeKey& k) const {
  size_t h = static_cast<size_t>(k.kind) * 0x9E3779B97F4A7C15ULL;
  h ^= std::hash<uint32_t>()(k.literal_index) + (h << 6);
  h ^= std::hash<const void*>()(k.expr) + (h << 6) + (h >> 2);
  for (const Guard* c : k.children) {
    h ^= std::hash<uint64_t>()(c->id()) + 0x9E3779B9u + (h << 6) + (h >> 2);
  }
  return h;
}

GuardArena::GuardArena(ExprArena* exprs) : exprs_(exprs) {
  false_ = Intern(GuardKind::kFalse, EventLiteral(), nullptr, {});
  true_ = Intern(GuardKind::kTrue, EventLiteral(), nullptr, {});
}

const Guard* GuardArena::Intern(GuardKind kind, EventLiteral literal,
                                const Expr* expr,
                                std::vector<const Guard*> children) {
  NodeKey key{kind, literal.valid() ? literal.index() : 0xFFFFFFFFu, expr,
              children};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  auto node = std::unique_ptr<Guard>(
      new Guard(kind, literal, expr, std::move(children), nodes_.size()));
  const Guard* ptr = node.get();
  nodes_.push_back(std::move(node));
  interned_.emplace(std::move(key), ptr);
  return ptr;
}

const Guard* GuardArena::Box(EventLiteral literal) {
  CDES_CHECK(literal.valid());
  return Intern(GuardKind::kBox, literal, nullptr, {});
}

const Guard* GuardArena::Neg(EventLiteral literal) {
  CDES_CHECK(literal.valid());
  return Intern(GuardKind::kNeg, literal, nullptr, {});
}

const Guard* GuardArena::Diamond(const Expr* expr) {
  if (expr->IsTop()) return true_;
  if (expr->IsZero()) return false_;
  // Maximal traces decide every symbol one way (U_T), so a choice offering
  // both polarities of a symbol is eventually satisfied: ◇(…+e+ē+…) = ⊤
  // (Example 8 (b)).
  if (expr->kind() == ExprKind::kOr) {
    for (const Expr* a : expr->children()) {
      if (!a->IsAtom()) continue;
      for (const Expr* b : expr->children()) {
        if (b->IsAtom() && b->literal() == a->literal().Complemented()) {
          return true_;
        }
      }
    }
  }
  return Intern(GuardKind::kDiamond, EventLiteral(), expr, {});
}

const Guard* GuardArena::And(std::span<const Guard* const> children) {
  std::vector<const Guard*> flat;
  for (const Guard* c : children) {
    if (c->IsFalse()) return false_;
    if (c->IsTrue()) continue;
    if (c->kind() == GuardKind::kAnd) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const Guard* a, const Guard* b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  for (size_t i = 0; i < flat.size(); ++i) {
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (AtomsContradict(flat[i], flat[j])) return false_;
    }
  }
  if (flat.empty()) return true_;
  if (flat.size() == 1) return flat[0];
  return Intern(GuardKind::kAnd, EventLiteral(), nullptr, std::move(flat));
}

const Guard* GuardArena::Or(std::span<const Guard* const> children) {
  std::vector<const Guard*> flat;
  for (const Guard* c : children) {
    if (c->IsTrue()) return true_;
    if (c->IsFalse()) continue;
    if (c->kind() == GuardKind::kOr) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const Guard* a, const Guard* b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  for (size_t i = 0; i < flat.size(); ++i) {
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (AtomsExhaustive(flat[i], flat[j])) return true_;
    }
  }
  // ◇E1 + ◇E2 = ◇(E1 + E2): keep sibling eventualities as one residual so
  // the runtime sees the full set of alternatives (this also keeps
  // trigger obligations honest — see runtime/event_actor.cc).
  std::vector<const Expr*> diamond_exprs;
  for (const Guard* c : flat) {
    if (c->kind() == GuardKind::kDiamond) diamond_exprs.push_back(c->expr());
  }
  if (diamond_exprs.size() >= 2) {
    std::vector<const Guard*> rest;
    for (const Guard* c : flat) {
      if (c->kind() != GuardKind::kDiamond) rest.push_back(c);
    }
    const Guard* merged = Diamond(exprs_->Or(diamond_exprs));
    if (merged->IsTrue()) return true_;
    rest.push_back(merged);
    std::sort(rest.begin(), rest.end(),
              [](const Guard* a, const Guard* b) { return a->id() < b->id(); });
    flat = std::move(rest);
  }
  if (flat.empty()) return false_;
  if (flat.size() == 1) return flat[0];
  return Intern(GuardKind::kOr, EventLiteral(), nullptr, std::move(flat));
}

std::set<SymbolId> GuardSymbols(const Guard* g) {
  std::set<SymbolId> out;
  CollectGuardSymbols(g, &out);
  return out;
}

std::string GuardToString(const Guard* g, const Alphabet& alphabet) {
  std::string out;
  PrintGuard(g, alphabet, 0, &out);
  return out;
}

}  // namespace cdes
