#ifndef CDES_TEMPORAL_GUARD_H_
#define CDES_TEMPORAL_GUARD_H_

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/expr.h"

namespace cdes {

/// Node kinds of the temporal guard language T (§4.1), restricted to the
/// forms guard synthesis actually produces (Definition 2):
///
///   0 / ⊤   — constants
///   □ℓ      — literal ℓ has occurred (equals ℓ under stability, Semantics 7)
///   ¬ℓ      — literal ℓ has not (yet) occurred (Semantics 14)
///   ◇E      — algebra expression E will eventually be satisfied on the
///             (maximal) trace (Semantics 13); residuals D/e appear here
///   +, |    — disjunction and conjunction
///
/// General nesting like ¬(E1·E2) or □(E1+E2) never arises from Definition 2
/// and is intentionally unrepresentable.
enum class GuardKind { kFalse, kTrue, kBox, kNeg, kDiamond, kAnd, kOr };

/// An immutable, arena-owned node of a guard DAG. As with Expr, nodes are
/// hash-consed: pointer equality is structural equality.
class Guard {
 public:
  GuardKind kind() const { return kind_; }

  /// The literal of a kBox / kNeg node.
  EventLiteral literal() const {
    CDES_DCHECK(kind_ == GuardKind::kBox || kind_ == GuardKind::kNeg);
    return literal_;
  }

  /// The residual expression of a kDiamond node.
  const Expr* expr() const {
    CDES_DCHECK(kind_ == GuardKind::kDiamond);
    return expr_;
  }

  /// Children of kAnd / kOr nodes, sorted by id.
  const std::vector<const Guard*>& children() const { return children_; }

  uint64_t id() const { return id_; }

  bool IsTrue() const { return kind_ == GuardKind::kTrue; }
  bool IsFalse() const { return kind_ == GuardKind::kFalse; }

 private:
  friend class GuardArena;
  Guard(GuardKind kind, EventLiteral literal, const Expr* expr,
        std::vector<const Guard*> children, uint64_t id)
      : kind_(kind), literal_(literal), expr_(expr),
        children_(std::move(children)), id_(id) {}

  GuardKind kind_;
  EventLiteral literal_;
  const Expr* expr_;
  std::vector<const Guard*> children_;
  uint64_t id_;
};

/// Factory and owner of hash-consed guard nodes.
///
/// Construction performs local canonicalization:
///   ◇⊤ = ⊤, ◇0 = 0 (a maximal trace always eventually satisfies ⊤).
///   And/Or: flattened, constants absorbed, duplicates dropped, sorted;
///   the complementary-literal identities of Example 8 are applied for
///   same-literal pairs: □ℓ|¬ℓ = 0, □ℓ+¬ℓ = ⊤ ("¬e is the boolean
///   complement of □e"), and for opposite literals □ℓ|□ℓ̄ = 0.
/// Deeper identities (entailments like □f̄ ⊆ ¬f) are handled by
/// SimplifyGuard in temporal/simplify.h.
class GuardArena {
 public:
  /// Guards embed expressions of `exprs` under ◇; the arena aliases it.
  explicit GuardArena(ExprArena* exprs);

  GuardArena(const GuardArena&) = delete;
  GuardArena& operator=(const GuardArena&) = delete;

  const Guard* False() const { return false_; }
  const Guard* True() const { return true_; }

  const Guard* Box(EventLiteral literal);
  const Guard* Neg(EventLiteral literal);
  const Guard* Diamond(const Expr* expr);

  const Guard* And(std::span<const Guard* const> children);
  const Guard* And(const Guard* a, const Guard* b) {
    const Guard* kids[] = {a, b};
    return And(kids);
  }

  const Guard* Or(std::span<const Guard* const> children);
  const Guard* Or(const Guard* a, const Guard* b) {
    const Guard* kids[] = {a, b};
    return Or(kids);
  }

  ExprArena* exprs() const { return exprs_; }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeKey {
    GuardKind kind;
    uint32_t literal_index;
    const Expr* expr;
    std::vector<const Guard*> children;
    bool operator==(const NodeKey& other) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };

  const Guard* Intern(GuardKind kind, EventLiteral literal, const Expr* expr,
                      std::vector<const Guard*> children);

  ExprArena* exprs_;
  std::deque<std::unique_ptr<Guard>> nodes_;
  std::unordered_map<NodeKey, const Guard*, NodeKeyHash> interned_;
  const Guard* false_ = nullptr;
  const Guard* true_ = nullptr;
};

/// Symbols mentioned anywhere in `g` (Box/Neg literals and ◇-expressions).
std::set<SymbolId> GuardSymbols(const Guard* g);

/// Pretty prints: "[]e" for □e, "!e" for ¬e, "<>(...)" for ◇, with `+`
/// binding looser than `|`.
std::string GuardToString(const Guard* g, const Alphabet& alphabet);

}  // namespace cdes

#endif  // CDES_TEMPORAL_GUARD_H_
