#include "temporal/guard_needs.h"

namespace cdes {

void CollectExprAtoms(const Expr* e, std::set<EventLiteral>* out) {
  if (e->IsAtom()) {
    out->insert(e->literal());
    return;
  }
  for (const Expr* c : e->children()) CollectExprAtoms(c, out);
}

void CollectGuardNeeds(const Guard* g,
                       std::map<EventLiteral, const Expr*>* diamond_needs,
                       std::set<EventLiteral>* box_needs) {
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
    case GuardKind::kNeg:
      return;
    case GuardKind::kBox:
      box_needs->insert(g->literal());
      return;
    case GuardKind::kDiamond: {
      // Every literal mentioned in the residual can help discharge it.
      std::set<EventLiteral> atoms;
      CollectExprAtoms(g->expr(), &atoms);
      for (EventLiteral l : atoms) diamond_needs->emplace(l, g->expr());
      return;
    }
    case GuardKind::kAnd:
    case GuardKind::kOr:
      for (const Guard* c : g->children()) {
        CollectGuardNeeds(c, diamond_needs, box_needs);
      }
      return;
  }
}

void CollectGuardNeeds(const Guard* g, std::set<EventLiteral>* diamond_needs,
                       std::set<EventLiteral>* box_needs) {
  std::map<EventLiteral, const Expr*> with_context;
  CollectGuardNeeds(g, &with_context, box_needs);
  for (const auto& [literal, expr] : with_context) {
    static_cast<void>(expr);
    diamond_needs->insert(literal);
  }
}

std::set<EventLiteral> ImpliedBoxes(const Guard* g) {
  switch (g->kind()) {
    case GuardKind::kBox:
      return {g->literal()};
    case GuardKind::kAnd: {
      std::set<EventLiteral> out;
      for (const Guard* c : g->children()) {
        std::set<EventLiteral> inner = ImpliedBoxes(c);
        out.insert(inner.begin(), inner.end());
      }
      return out;
    }
    case GuardKind::kOr: {
      // Only □-atoms common to every disjunct are guaranteed.
      bool first = true;
      std::set<EventLiteral> out;
      for (const Guard* c : g->children()) {
        std::set<EventLiteral> inner = ImpliedBoxes(c);
        if (first) {
          out = std::move(inner);
          first = false;
        } else {
          std::set<EventLiteral> merged;
          for (EventLiteral l : out) {
            if (inner.count(l)) merged.insert(l);
          }
          out = std::move(merged);
        }
        if (out.empty()) return out;
      }
      return out;
    }
    default:
      return {};
  }
}

}  // namespace cdes
