#ifndef CDES_TEMPORAL_GUARD_NEEDS_H_
#define CDES_TEMPORAL_GUARD_NEEDS_H_

#include <map>
#include <set>

#include "temporal/guard.h"

namespace cdes {

/// Inserts every atom literal of `e` into `out` (the alphabet of one
/// expression, with polarity — MentionedSymbols without the polarity
/// erasure).
void CollectExprAtoms(const Expr* e, std::set<EventLiteral>* out);

/// Structural "what is this guard waiting for?" extraction, shared by the
/// runtime's need-emission (runtime/event_actor), the operator diagnostics
/// (sched/diagnostics), and the static wait-graph analysis (analysis/).
///
/// Collects the literals a (possibly reduced) guard still waits on:
/// literals under ◇ (satisfiable by promises or occurrences) into
/// `diamond_needs` and □ literals (satisfiable only by occurrences) into
/// `box_needs`. ¬ℓ nodes impose no wait — they are true until ℓ occurs.
void CollectGuardNeeds(const Guard* g, std::set<EventLiteral>* diamond_needs,
                       std::set<EventLiteral>* box_needs);

/// As above, but each ◇-need is paired with the residual expression it
/// appears in (used by the runtime to attach the residual to promise
/// requests). When a literal occurs under several ◇ nodes, an arbitrary
/// one of the residuals is kept.
void CollectGuardNeeds(const Guard* g,
                       std::map<EventLiteral, const Expr*>* diamond_needs,
                       std::set<EventLiteral>* box_needs);

/// The literals guaranteed to have occurred before the guarded event can:
/// the □-atoms every disjunct of `g` requires (And: union of children;
/// Or: intersection). The runtime attaches these to promises as order
/// guarantees; the static analyzer uses them as the must-wait edges of the
/// wait graph — an Or-disjunct that avoids a □ breaks the wait, so only
/// □-atoms common to all disjuncts are unavoidable.
std::set<EventLiteral> ImpliedBoxes(const Guard* g);

}  // namespace cdes

#endif  // CDES_TEMPORAL_GUARD_NEEDS_H_
