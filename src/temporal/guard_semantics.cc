#include "temporal/guard_semantics.h"

#include <algorithm>

namespace cdes {

bool HoldsAtExpr(const Trace& u, size_t index, const Expr* e) {
  CDES_DCHECK(index <= u.size());
  Trace prefix(u.begin(), u.begin() + index);
  return Satisfies(prefix, e);
}

bool HoldsAt(const Trace& u, size_t index, const Guard* g) {
  CDES_DCHECK(index <= u.size());
  switch (g->kind()) {
    case GuardKind::kFalse:
      return false;
    case GuardKind::kTrue:
      return true;
    case GuardKind::kBox: {
      for (size_t j = 0; j < index; ++j) {
        if (u[j] == g->literal()) return true;
      }
      return false;
    }
    case GuardKind::kNeg: {
      for (size_t j = 0; j < index; ++j) {
        if (u[j] == g->literal()) return false;
      }
      return true;
    }
    case GuardKind::kDiamond:
      // Satisfaction of an event expression only grows along the trace, so
      // "eventually" collapses to satisfaction by the full maximal trace.
      return Satisfies(u, g->expr());
    case GuardKind::kAnd:
      return std::all_of(g->children().begin(), g->children().end(),
                         [&](const Guard* c) { return HoldsAt(u, index, c); });
    case GuardKind::kOr:
      return std::any_of(g->children().begin(), g->children().end(),
                         [&](const Guard* c) { return HoldsAt(u, index, c); });
  }
  return false;
}

std::vector<GuardPoint> GuardStateSpace(const std::set<SymbolId>& symbols) {
  // Build maximal traces over a dense re-indexing of `symbols`, then map
  // back to the caller's symbol ids.
  std::vector<SymbolId> ordered(symbols.begin(), symbols.end());
  std::vector<GuardPoint> out;
  for (const Trace& dense : EnumerateMaximalTraces(ordered.size())) {
    Trace mapped;
    mapped.reserve(dense.size());
    for (EventLiteral l : dense) {
      mapped.push_back(EventLiteral(ordered[l.symbol()], l.complemented()));
    }
    for (size_t i = 0; i <= mapped.size(); ++i) {
      out.push_back(GuardPoint{mapped, i});
    }
  }
  return out;
}

std::vector<bool> TruthVector(const Guard* g,
                              const std::vector<GuardPoint>& space) {
  std::vector<bool> out;
  out.reserve(space.size());
  for (const GuardPoint& p : space) {
    out.push_back(HoldsAt(p.trace, p.index, g));
  }
  return out;
}

bool GuardEquivalent(const Guard* a, const Guard* b) {
  std::set<SymbolId> symbols = GuardSymbols(a);
  std::set<SymbolId> symbols_b = GuardSymbols(b);
  symbols.insert(symbols_b.begin(), symbols_b.end());
  std::vector<GuardPoint> space = GuardStateSpace(symbols);
  return TruthVector(a, space) == TruthVector(b, space);
}

}  // namespace cdes
