#ifndef CDES_TEMPORAL_GUARD_SEMANTICS_H_
#define CDES_TEMPORAL_GUARD_SEMANTICS_H_

#include <vector>

#include "algebra/semantics.h"
#include "algebra/trace.h"
#include "temporal/guard.h"

namespace cdes {

/// u ⊨_i E for an algebra expression coerced into T (Semantics 7-11):
/// satisfaction of E by the prefix of the first `index` events of u. An
/// event atom is satisfied from the index where it occurs onward
/// (stability); sequences require their parts in order within the prefix.
bool HoldsAtExpr(const Trace& u, size_t index, const Expr* e);

/// u ⊨_i g for a guard (Semantics 7-14). `u` must be a maximal trace over
/// the symbols the caller cares about (the universe U_T of §4.1);
/// `index` ranges over 0..u.size().
///
///   □ℓ — ℓ occurred within the first `index` events;
///   ¬ℓ — ℓ did not occur within the first `index` events;
///   ◇E — E is satisfied by the full maximal trace (by stability,
///        ∃j≥i: u ⊨_j E collapses to satisfaction at the end);
///   +/| — boolean.
bool HoldsAt(const Trace& u, size_t index, const Guard* g);

/// A point of the guard state space: a maximal trace and an index into it.
struct GuardPoint {
  Trace trace;
  size_t index;
};

/// All (maximal trace, index) points over `symbols` (in SymbolId order of
/// the set passed); guards over those symbols are fully characterized by
/// their truth values on these points. Size: 2^k · k! · (k+1).
std::vector<GuardPoint> GuardStateSpace(const std::set<SymbolId>& symbols);

/// Truth values of `g` over `space`.
std::vector<bool> TruthVector(const Guard* g,
                              const std::vector<GuardPoint>& space);

/// Semantic equivalence over the union of the two guards' symbols.
bool GuardEquivalent(const Guard* a, const Guard* b);

}  // namespace cdes

#endif  // CDES_TEMPORAL_GUARD_SEMANTICS_H_
