#include "temporal/reduction.h"

namespace cdes {
namespace {

template <bool kCount>
const Guard* ReduceOnOccurred(GuardArena* arena, Residuator* residuator,
                              const Guard* g, EventLiteral l,
                              uint64_t* nodes) {
  if constexpr (kCount) ++*nodes;
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
      return g;
    case GuardKind::kBox:
      if (g->literal() == l) return arena->True();
      if (g->literal() == l.Complemented()) return arena->False();
      return g;
    case GuardKind::kNeg:
      if (g->literal() == l) return arena->False();
      if (g->literal() == l.Complemented()) return arena->True();
      return g;
    case GuardKind::kDiamond:
      return arena->Diamond(residuator->Residuate(g->expr(), l));
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      std::vector<const Guard*> kids;
      kids.reserve(g->children().size());
      for (const Guard* c : g->children()) {
        kids.push_back(ReduceOnOccurred<kCount>(arena, residuator, c, l,
                                                nodes));
      }
      return g->kind() == GuardKind::kAnd ? arena->And(kids)
                                          : arena->Or(kids);
    }
  }
  return g;
}

template <bool kCount>
const Guard* ReduceOnPromised(GuardArena* arena, const Guard* g,
                              EventLiteral l, uint64_t* nodes) {
  if constexpr (kCount) ++*nodes;
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
      return g;
    case GuardKind::kBox:
      // A promise of ℓ rules ℓ̄ out forever but does not make ℓ occurred.
      if (g->literal() == l.Complemented()) return arena->False();
      return g;
    case GuardKind::kNeg:
      if (g->literal() == l.Complemented()) return arena->True();
      return g;
    case GuardKind::kDiamond: {
      const Expr* e = g->expr();
      if (e->IsAtom() && e->literal() == l) return arena->True();
      // An Or alternative consisting of exactly the promised atom will be
      // satisfied eventually.
      if (e->kind() == ExprKind::kOr) {
        for (const Expr* c : e->children()) {
          if (c->IsAtom() && c->literal() == l) return arena->True();
        }
      }
      // Branches that require ℓ̄ can never be satisfied any more.
      const Expr* pruned =
          PruneImpossibleLiteral(arena->exprs(), e, l.Complemented());
      return arena->Diamond(pruned);
    }
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      std::vector<const Guard*> kids;
      kids.reserve(g->children().size());
      for (const Guard* c : g->children()) {
        kids.push_back(ReduceOnPromised<kCount>(arena, c, l, nodes));
      }
      return g->kind() == GuardKind::kAnd ? arena->And(kids)
                                          : arena->Or(kids);
    }
  }
  return g;
}

/// The memoizing mirror of the two walks above. Composite nodes (◇/+/|)
/// probe the cache before reducing and store after; □/¬/constants are a
/// couple of compares — cheaper than the probe — and are computed inline.
/// Results are bit-identical to the plain walk: both intern through the
/// same arenas and the cache only ever stores the walk's own outputs.
template <bool kPromised>
const Guard* ReduceCached(GuardArena* arena, Residuator* residuator,
                          const Guard* g, EventLiteral l, uint64_t ann,
                          ReductionCache* cache) {
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
      return g;
    case GuardKind::kBox:
      if constexpr (kPromised) {
        if (g->literal() == l.Complemented()) return arena->False();
        return g;
      } else {
        if (g->literal() == l) return arena->True();
        if (g->literal() == l.Complemented()) return arena->False();
        return g;
      }
    case GuardKind::kNeg:
      if constexpr (kPromised) {
        if (g->literal() == l.Complemented()) return arena->True();
        return g;
      } else {
        if (g->literal() == l) return arena->False();
        if (g->literal() == l.Complemented()) return arena->True();
        return g;
      }
    case GuardKind::kDiamond:
    case GuardKind::kAnd:
    case GuardKind::kOr:
      break;
  }
  if (const Guard* memo = cache->Find(g, ann)) return memo;
  const Guard* result;
  if (g->kind() == GuardKind::kDiamond) {
    if constexpr (kPromised) {
      result = ReduceOnPromised<false>(arena, g, l, nullptr);
    } else {
      result = arena->Diamond(residuator->Residuate(g->expr(), l));
    }
  } else {
    std::vector<const Guard*> kids;
    kids.reserve(g->children().size());
    for (const Guard* c : g->children()) {
      kids.push_back(ReduceCached<kPromised>(arena, residuator, c, l, ann,
                                             cache));
    }
    result = g->kind() == GuardKind::kAnd ? arena->And(kids) : arena->Or(kids);
  }
  cache->Store(g, ann, result);
  return result;
}

}  // namespace

const Guard* ReduceGuard(GuardArena* arena, Residuator* residuator,
                         const Guard* g, const Announcement& announcement,
                         ReductionCache* cache) {
  if (cache != nullptr) {
    uint64_t ann = ReductionCache::KeyOf(announcement);
    if (announcement.kind == AnnouncementKind::kOccurred) {
      return ReduceCached<false>(arena, residuator, g, announcement.literal,
                                 ann, cache);
    }
    return ReduceCached<true>(arena, residuator, g, announcement.literal, ann,
                              cache);
  }
  if (announcement.kind == AnnouncementKind::kOccurred) {
    return ReduceOnOccurred<false>(arena, residuator, g, announcement.literal,
                                   nullptr);
  }
  return ReduceOnPromised<false>(arena, g, announcement.literal, nullptr);
}

const Guard* ReduceGuardCounted(GuardArena* arena, Residuator* residuator,
                                const Guard* g,
                                const Announcement& announcement,
                                uint64_t* nodes) {
  if (announcement.kind == AnnouncementKind::kOccurred) {
    return ReduceOnOccurred<true>(arena, residuator, g, announcement.literal,
                                  nodes);
  }
  return ReduceOnPromised<true>(arena, g, announcement.literal, nodes);
}

const Guard* CommitNow(GuardArena* arena, const Guard* g) {
  switch (g->kind()) {
    case GuardKind::kFalse:
    case GuardKind::kTrue:
    case GuardKind::kDiamond:
      return g;
    case GuardKind::kBox:
      return arena->False();
    case GuardKind::kNeg:
      return arena->True();
    case GuardKind::kAnd:
    case GuardKind::kOr: {
      std::vector<const Guard*> kids;
      kids.reserve(g->children().size());
      for (const Guard* c : g->children()) kids.push_back(CommitNow(arena, c));
      return g->kind() == GuardKind::kAnd ? arena->And(kids)
                                          : arena->Or(kids);
    }
  }
  return g;
}

const Expr* PruneImpossibleLiteral(ExprArena* arena, const Expr* e,
                                   EventLiteral dead) {
  switch (e->kind()) {
    case ExprKind::kZero:
    case ExprKind::kTop:
      return e;
    case ExprKind::kAtom:
      return e->literal() == dead ? arena->Zero() : e;
    case ExprKind::kSeq:
    case ExprKind::kOr:
    case ExprKind::kAnd: {
      std::vector<const Expr*> kids;
      kids.reserve(e->children().size());
      for (const Expr* c : e->children()) {
        kids.push_back(PruneImpossibleLiteral(arena, c, dead));
      }
      switch (e->kind()) {
        case ExprKind::kSeq:
          return arena->Seq(kids);
        case ExprKind::kOr:
          return arena->Or(kids);
        default:
          return arena->And(kids);
      }
    }
  }
  return e;
}

}  // namespace cdes
