#ifndef CDES_TEMPORAL_REDUCTION_H_
#define CDES_TEMPORAL_REDUCTION_H_

#include "algebra/residuation.h"
#include "temporal/guard.h"

namespace cdes {

/// What an event actor can announce to the actors whose guards mention it
/// (§4.3): that the event has occurred (□e), or a promise that it will
/// eventually occur (◇e) used to resolve mutually-referential guards
/// (Example 11).
enum class AnnouncementKind { kOccurred, kPromised };

struct Announcement {
  AnnouncementKind kind;
  EventLiteral literal;

  friend bool operator==(const Announcement&, const Announcement&) = default;
};

/// Assimilates one announcement into a guard, applying the §4.3 proof
/// rules. On □ℓ:
///   □ℓ → ⊤, ¬ℓ → 0, □ℓ̄ → 0, ¬ℓ̄ → ⊤, and ◇E → ◇(E/ℓ)
/// (the residuation handles ◇ℓ → ⊤ and kills branches requiring ℓ̄ or a
/// violated order). On ◇ℓ (a promise):
///   ◇ℓ → ⊤, □ℓ̄ → 0, ◇ℓ̄-requiring branches die, ¬ℓ̄ → ⊤,
/// while □ℓ and ¬ℓ are deliberately unaffected — a promised event has not
/// *occurred* yet.
///
/// IMPORTANT: ◇E reduction by residuation is order-sensitive; occurrence
/// announcements must be assimilated in occurrence order (the runtime's
/// hold-back queue guarantees this — see runtime/event_actor.h).
const Guard* ReduceGuard(GuardArena* arena, Residuator* residuator,
                         const Guard* g, const Announcement& announcement);

/// ReduceGuard that additionally accumulates into `*nodes` the number of
/// guard nodes visited by the reduction walk — the profiler's
/// "expression-tree nodes" metric. The counting walk is a separate template
/// instantiation, so the plain overload above compiles without the counter
/// and profiling off costs nothing.
const Guard* ReduceGuardCounted(GuardArena* arena, Residuator* residuator,
                                const Guard* g,
                                const Announcement& announcement,
                                uint64_t* nodes);

/// Replaces every atom `dead` inside `e` with 0 (the event can no longer
/// occur) and rebuilds. Unlike residuation this consumes no ordering
/// information.
const Expr* PruneImpossibleLiteral(ExprArena* arena, const Expr* e,
                                   EventLiteral dead);

/// The "commit now" projection of a reduced guard: the condition under
/// which an event may fire at the current instant per the declarative
/// HoldsAt semantics (Definition 4 / Semantics 13-14), rather than the
/// runtime's optimistic EvaluateNow.
///   □ℓ → 0   (ℓ has not occurred within the prefix, so the past cannot
///             license the firing through it)
///   ¬ℓ → ⊤   (ℓ has not occurred within the prefix, so ¬ℓ holds now)
///   ◇E kept  (an obligation on the remainder of the maximal trace)
/// The result therefore mentions only ◇-atoms and constants: 0 means the
/// firing is not permitted; anything else is the obligation the rest of
/// the trace must discharge (the model checker conjoins it into the path
/// commitment and residuates it by each subsequent occurrence, starting
/// with the fired literal itself — ◇ sees the full trace).
const Guard* CommitNow(GuardArena* arena, const Guard* g);

}  // namespace cdes

#endif  // CDES_TEMPORAL_REDUCTION_H_
