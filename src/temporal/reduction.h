#ifndef CDES_TEMPORAL_REDUCTION_H_
#define CDES_TEMPORAL_REDUCTION_H_

#include <unordered_map>

#include "algebra/residuation.h"
#include "obs/metrics.h"
#include "temporal/guard.h"

namespace cdes {

/// What an event actor can announce to the actors whose guards mention it
/// (§4.3): that the event has occurred (□e), or a promise that it will
/// eventually occur (◇e) used to resolve mutually-referential guards
/// (Example 11).
enum class AnnouncementKind { kOccurred, kPromised };

struct Announcement {
  AnnouncementKind kind;
  EventLiteral literal;

  friend bool operator==(const Announcement&, const Announcement&) = default;
};

/// Assimilates one announcement into a guard, applying the §4.3 proof
/// rules. On □ℓ:
///   □ℓ → ⊤, ¬ℓ → 0, □ℓ̄ → 0, ¬ℓ̄ → ⊤, and ◇E → ◇(E/ℓ)
/// (the residuation handles ◇ℓ → ⊤ and kills branches requiring ℓ̄ or a
/// violated order). On ◇ℓ (a promise):
///   ◇ℓ → ⊤, □ℓ̄ → 0, ◇ℓ̄-requiring branches die, ¬ℓ̄ → ⊤,
/// while □ℓ and ¬ℓ are deliberately unaffected — a promised event has not
/// *occurred* yet.
///
/// Memo of guard reductions keyed on (interned guard node, announcement),
/// living alongside a GuardArena and sharing its lifetime and thread
/// confinement (one per WorkflowContext, hence one per engine shard — no
/// locks). Guards are hash-consed, so the key is one pointer plus the
/// announcement's packed literal index; after the first touch of a
/// (node, announcement) pair, ReduceGuard is a single hash probe. The memo
/// is consulted at composite nodes (◇/+/|) only: □, ¬, and constants reduce
/// in a couple of compares, cheaper than the probe itself.
///
/// Reduction is a pure function of (node, announcement) over arenas that
/// only ever grow, so entries never invalidate; every workflow instance
/// resident on a shard shares one cache against the shard's compiled guard
/// table, which is what makes assimilation cost amortize across thousands
/// of instances.
class ReductionCache {
 public:
  /// Packs an announcement into the memo key: literal index ⊕ kind bit.
  static uint64_t KeyOf(const Announcement& a) {
    return (static_cast<uint64_t>(a.literal.index()) << 1) |
           (a.kind == AnnouncementKind::kPromised ? 1u : 0u);
  }

  const Guard* Find(const Guard* g, uint64_t ann) {
    auto it = map_.find(Key{g, ann});
    if (it == map_.end()) {
      ++misses_;
      if (miss_counter_ != nullptr) miss_counter_->Increment();
      return nullptr;
    }
    ++hits_;
    if (hit_counter_ != nullptr) hit_counter_->Increment();
    return it->second;
  }

  void Store(const Guard* g, uint64_t ann, const Guard* reduced) {
    map_.emplace(Key{g, ann}, reduced);
  }

  /// Mirrors hits/misses into `guards.reduction_cache_{hits,misses}`
  /// counters of `registry` (get-or-create; re-attach is idempotent for a
  /// fixed registry). Counters start from the registry's current values —
  /// raw hits()/misses() remain the cache-lifetime truth.
  void AttachMetrics(obs::MetricsRegistry* registry) {
    hit_counter_ = registry->counter("guards.reduction_cache_hits");
    miss_counter_ = registry->counter("guards.reduction_cache_misses");
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return map_.size(); }

 private:
  struct Key {
    const Guard* g;
    uint64_t ann;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<const void*>()(k.g);
      h ^= std::hash<uint64_t>()(k.ann) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return h;
    }
  };

  std::unordered_map<Key, const Guard*, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

/// IMPORTANT: ◇E reduction by residuation is order-sensitive; occurrence
/// announcements must be assimilated in occurrence order (the runtime's
/// hold-back queue guarantees this — see runtime/event_actor.h).
///
/// With `cache` non-null the reduction walk memoizes composite nodes in it;
/// null reproduces the plain walk (results are identical — the cache stores
/// only values the walk itself computed on the same arenas).
const Guard* ReduceGuard(GuardArena* arena, Residuator* residuator,
                         const Guard* g, const Announcement& announcement,
                         ReductionCache* cache = nullptr);

/// ReduceGuard that additionally accumulates into `*nodes` the number of
/// guard nodes visited by the reduction walk — the profiler's
/// "expression-tree nodes" metric. The counting walk is a separate template
/// instantiation, so the plain overload above compiles without the counter
/// and profiling off costs nothing.
const Guard* ReduceGuardCounted(GuardArena* arena, Residuator* residuator,
                                const Guard* g,
                                const Announcement& announcement,
                                uint64_t* nodes);

/// Replaces every atom `dead` inside `e` with 0 (the event can no longer
/// occur) and rebuilds. Unlike residuation this consumes no ordering
/// information.
const Expr* PruneImpossibleLiteral(ExprArena* arena, const Expr* e,
                                   EventLiteral dead);

/// The "commit now" projection of a reduced guard: the condition under
/// which an event may fire at the current instant per the declarative
/// HoldsAt semantics (Definition 4 / Semantics 13-14), rather than the
/// runtime's optimistic EvaluateNow.
///   □ℓ → 0   (ℓ has not occurred within the prefix, so the past cannot
///             license the firing through it)
///   ¬ℓ → ⊤   (ℓ has not occurred within the prefix, so ¬ℓ holds now)
///   ◇E kept  (an obligation on the remainder of the maximal trace)
/// The result therefore mentions only ◇-atoms and constants: 0 means the
/// firing is not permitted; anything else is the obligation the rest of
/// the trace must discharge (the model checker conjoins it into the path
/// commitment and residuates it by each subsequent occurrence, starting
/// with the fired literal itself — ◇ sees the full trace).
const Guard* CommitNow(GuardArena* arena, const Guard* g);

}  // namespace cdes

#endif  // CDES_TEMPORAL_REDUCTION_H_
