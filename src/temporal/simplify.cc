#include "temporal/simplify.h"

#include <algorithm>

namespace cdes {
namespace {

// All pruning below works relative to a *care set*: points of the state
// space where the rewritten guard must agree with the target vector.
// Points outside the care set are don't-cares (e.g. inside an Or child,
// points where another sibling is already true).

bool MatchesOnCare(const std::vector<bool>& vec, const std::vector<bool>& care,
                   const std::vector<bool>& target) {
  for (size_t i = 0; i < vec.size(); ++i) {
    if (care[i] && vec[i] != target[i]) return false;
  }
  return true;
}

bool ConstantOnCare(const std::vector<bool>& care,
                    const std::vector<bool>& target, bool value) {
  for (size_t i = 0; i < care.size(); ++i) {
    if (care[i] && target[i] != value) return false;
  }
  return true;
}

const Guard* Prune(GuardArena* arena, const Guard* g,
                   const std::vector<GuardPoint>& space,
                   const std::vector<bool>& care,
                   const std::vector<bool>& target) {
  if (ConstantOnCare(care, target, true)) return arena->True();
  if (ConstantOnCare(care, target, false)) return arena->False();
  if (g->kind() != GuardKind::kAnd && g->kind() != GuardKind::kOr) return g;

  // Promote a child that already matches on the care set.
  for (const Guard* c : g->children()) {
    if (MatchesOnCare(TruthVector(c, space), care, target)) {
      return Prune(arena, c, space, care, target);
    }
  }

  // Drop children while the node still matches on the care set.
  const Guard* current = g;
  bool changed = true;
  while (changed && (current->kind() == GuardKind::kAnd ||
                     current->kind() == GuardKind::kOr)) {
    changed = false;
    for (size_t i = 0; i < current->children().size(); ++i) {
      std::vector<const Guard*> kids;
      for (size_t j = 0; j < current->children().size(); ++j) {
        if (j != i) kids.push_back(current->children()[j]);
      }
      const Guard* candidate = current->kind() == GuardKind::kAnd
                                   ? arena->And(kids)
                                   : arena->Or(kids);
      if (MatchesOnCare(TruthVector(candidate, space), care, target)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  if (current->kind() != GuardKind::kAnd &&
      current->kind() != GuardKind::kOr) {
    return Prune(arena, current, space, care, target);
  }

  // Simplify each child under the don't-cares granted by its siblings:
  // for Or, a point already covered by another true sibling (with target
  // true) lets the child do anything; dually for And with a false sibling.
  bool is_and = current->kind() == GuardKind::kAnd;
  std::vector<const Guard*> kids(current->children());
  for (size_t i = 0; i < kids.size(); ++i) {
    std::vector<bool> sibling_covers(space.size(), false);
    for (size_t j = 0; j < kids.size(); ++j) {
      if (j == i) continue;
      std::vector<bool> vj = TruthVector(kids[j], space);
      for (size_t p = 0; p < space.size(); ++p) {
        // Or: sibling true covers target-true points.
        // And: sibling false covers target-false points.
        if (is_and ? (!vj[p] && !target[p]) : (vj[p] && target[p])) {
          sibling_covers[p] = true;
        }
      }
    }
    std::vector<bool> child_care(space.size());
    for (size_t p = 0; p < space.size(); ++p) {
      child_care[p] = care[p] && !sibling_covers[p];
    }
    kids[i] = Prune(arena, kids[i], space, child_care, target);
  }
  const Guard* rebuilt = is_and ? arena->And(kids) : arena->Or(kids);
  // The rebuild must still match; fall back to the input if a degenerate
  // interaction between don't-cares broke it (cannot happen for correct
  // care propagation, but we never trade correctness for succinctness).
  if (!MatchesOnCare(TruthVector(rebuilt, space), care, target)) {
    return current;
  }
  // Child simplification may enable further drops (e.g. a child weakened
  // into subsuming a sibling); iterate to a fixpoint.
  if (rebuilt != current) {
    return Prune(arena, rebuilt, space, care, target);
  }
  return rebuilt;
}

}  // namespace

const Guard* SimplifyGuard(GuardArena* arena, const Guard* g) {
  std::set<SymbolId> symbols = GuardSymbols(g);
  std::vector<GuardPoint> space = GuardStateSpace(symbols);
  std::vector<bool> target = TruthVector(g, space);
  std::vector<bool> care(space.size(), true);
  return Prune(arena, g, space, care, target);
}

bool GuardIsValid(const Guard* g) {
  std::vector<GuardPoint> space = GuardStateSpace(GuardSymbols(g));
  std::vector<bool> v = TruthVector(g, space);
  return std::all_of(v.begin(), v.end(), [](bool b) { return b; });
}

bool GuardIsUnsatisfiable(const Guard* g) {
  std::vector<GuardPoint> space = GuardStateSpace(GuardSymbols(g));
  std::vector<bool> v = TruthVector(g, space);
  return std::none_of(v.begin(), v.end(), [](bool b) { return b; });
}

}  // namespace cdes
