#ifndef CDES_TEMPORAL_SIMPLIFY_H_
#define CDES_TEMPORAL_SIMPLIFY_H_

#include "temporal/guard.h"
#include "temporal/guard_semantics.h"

namespace cdes {

/// Semantically canonicalizing simplifier.
///
/// Computes the guard's truth vector over the state space of its mentioned
/// symbols (exact, since guards only inspect those symbols) and then
/// greedily prunes: constants, child replacement, and child dropping in
/// And/Or nodes, accepting any rewrite that preserves the vector. This is
/// how guards collapse to the paper's succinct forms, e.g. Example 9's
/// G(D_<, e) = ¬f and G(D_<, f) = ◇ē + □e.
///
/// Exponential in the number of mentioned symbols (2^k·k!·(k+1) points);
/// guards of one dependency mention |Γ_D| symbols, which is small in
/// practice. For guards over many symbols prefer the cheap constructor
/// rules and runtime reduction only.
const Guard* SimplifyGuard(GuardArena* arena, const Guard* g);

/// True iff `g` holds on every point of its state space (i.e. ≡ ⊤).
bool GuardIsValid(const Guard* g);

/// True iff `g` holds on no point (i.e. ≡ 0).
bool GuardIsUnsatisfiable(const Guard* g);

}  // namespace cdes

#endif  // CDES_TEMPORAL_SIMPLIFY_H_
