#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "agents/task_agent.h"
#include "agents/task_model.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace cdes {
namespace {

// ----------------------------------------------------------- TaskModel

TEST(TaskModelTest, RdaTransactionShape) {
  TaskModel rda = TaskModel::RdaTransaction("buy");
  EXPECT_EQ(rda.initial(), "initial");
  EXPECT_EQ(rda.states().size(), 4u);
  auto next = rda.Next("initial", "start");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), "active");
  EXPECT_EQ(rda.Next("active", "commit").value(), "committed");
  EXPECT_EQ(rda.Next("active", "abort").value(), "aborted");
  EXPECT_FALSE(rda.Next("initial", "commit").ok());
  EXPECT_FALSE(rda.HasLoop());
  EXPECT_TRUE(rda.IsTerminal("committed"));
  EXPECT_TRUE(rda.IsTerminal("aborted"));
  EXPECT_FALSE(rda.IsTerminal("active"));
}

TEST(TaskModelTest, TransitionControls) {
  TaskModel rda = TaskModel::RdaTransaction("t");
  EXPECT_EQ(rda.FindTransition("initial", "start")->control,
            TransitionControl::kTriggerable);
  EXPECT_EQ(rda.FindTransition("active", "commit")->control,
            TransitionControl::kControllable);
  EXPECT_EQ(rda.FindTransition("active", "abort")->control,
            TransitionControl::kUncontrollable);
}

TEST(TaskModelTest, TypicalApplicationHasLoop) {
  TaskModel app = TaskModel::TypicalApplication("app");
  EXPECT_TRUE(app.HasLoop());
  EXPECT_EQ(app.Next("working", "step").value(), "working");
  EXPECT_EQ(app.EventsFrom("working").size(), 3u);
}

TEST(TaskModelTest, AddStateIdempotent) {
  TaskModel m("m", "s0");
  m.AddState("s1");
  m.AddState("s1");
  m.AddTransition("s0", "go", "s1");
  EXPECT_EQ(m.states().size(), 2u);
}

TEST(TaskModelTest, CycleDetectionOnDiamond) {
  TaskModel m("m", "a");
  m.AddTransition("a", "x", "b");
  m.AddTransition("a", "y", "c");
  m.AddTransition("b", "z", "d");
  m.AddTransition("c", "w", "d");
  EXPECT_FALSE(m.HasLoop());  // diamond, no cycle
  m.AddTransition("d", "back", "a");
  EXPECT_TRUE(m.HasLoop());
}

// ----------------------------------------------------------- TaskAgent

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

struct AgentWorld {
  AgentWorld() {
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    CDES_CHECK(parsed.ok()) << parsed.status();
    workflow = std::move(parsed).value();
    NetworkOptions nopts;
    nopts.base_latency = 50;
    network = std::make_unique<Network>(&sim, 4, nopts);
    sched = std::make_unique<GuardScheduler>(&ctx, workflow, network.get());

    buy = std::make_unique<TaskAgent>(TaskModel::RdaTransaction("buy"), &ctx,
                                      sched.get());
    CDES_CHECK(buy->MapEvent("start", "s_buy").ok());
    CDES_CHECK(buy->MapEvent("commit", "c_buy").ok());

    book = std::make_unique<TaskAgent>(TaskModel::RdaTransaction("book"),
                                       &ctx, sched.get());
    CDES_CHECK(book->MapEvent("start", "s_book").ok());
    CDES_CHECK(book->MapEvent("commit", "c_book").ok());
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  ParsedWorkflow workflow;
  std::unique_ptr<GuardScheduler> sched;
  std::unique_ptr<TaskAgent> buy;
  std::unique_ptr<TaskAgent> book;
};

TEST(TaskAgentTest, HappyPathAdvancesBothAgents) {
  AgentWorld w;
  ASSERT_TRUE(w.buy->Attempt("start").ok());
  w.sim.Run();
  // The scheduler triggered s_book; the book agent observed it and moved.
  EXPECT_EQ(w.buy->state(), "active");
  EXPECT_EQ(w.book->state(), "active");

  ASSERT_TRUE(w.book->Attempt("commit").ok());
  w.sim.Run();
  EXPECT_EQ(w.book->state(), "committed");

  ASSERT_TRUE(w.buy->Attempt("commit").ok());
  w.sim.Run();
  EXPECT_EQ(w.buy->state(), "committed");
  EXPECT_TRUE(w.sched->HistoryConsistent());
}

TEST(TaskAgentTest, CommitBeforeBookParksAgentAttempt) {
  AgentWorld w;
  ASSERT_TRUE(w.buy->Attempt("start").ok());
  w.sim.Run();
  ASSERT_TRUE(w.buy->Attempt("commit").ok());
  w.sim.Run();
  // Parked: buy stays active until book commits.
  EXPECT_EQ(w.buy->state(), "active");
  EXPECT_EQ(w.buy->LastDecision("commit").value(), Decision::kParked);
  ASSERT_TRUE(w.book->Attempt("commit").ok());
  w.sim.Run();
  EXPECT_EQ(w.buy->state(), "committed");
  EXPECT_EQ(w.buy->LastDecision("commit").value(), Decision::kAccepted);
}

TEST(TaskAgentTest, InvalidTransitionFails) {
  AgentWorld w;
  Status s = w.buy->Attempt("commit");  // from initial: no such transition
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(w.buy->state(), "initial");
}

TEST(TaskAgentTest, UnmappedEventsRunLocally) {
  AgentWorld w;
  TaskAgent app(TaskModel::TypicalApplication("app"), &w.ctx, w.sched.get());
  ASSERT_TRUE(app.Attempt("start").ok());
  EXPECT_EQ(app.state(), "working");
  // The internal loop never consults the scheduler and never blocks.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(app.Attempt("step").ok());
    EXPECT_EQ(app.state(), "working");
  }
  ASSERT_TRUE(app.Attempt("finish").ok());
  EXPECT_EQ(app.state(), "done");
  EXPECT_TRUE(w.sched->history().empty());
}

TEST(TaskAgentTest, MapUnknownEventFails) {
  AgentWorld w;
  TaskAgent agent(TaskModel::RdaTransaction("x"), &w.ctx, w.sched.get());
  EXPECT_EQ(agent.MapEvent("start", "no_such_event").code(),
            StatusCode::kNotFound);
}

TEST(TaskAgentTest, LastDecisionUnknownBeforeAttempt) {
  AgentWorld w;
  EXPECT_FALSE(w.buy->LastDecision("start").ok());
}

}  // namespace
}  // namespace cdes
