#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "algebra/event.h"
#include "algebra/expr.h"
#include "algebra/generator.h"
#include "algebra/semantics.h"
#include "algebra/trace.h"
#include "common/rng.h"

namespace cdes {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() {
    e_ = alphabet_.Intern("e");
    f_ = alphabet_.Intern("f");
    pe_ = EventLiteral::Positive(e_);
    ne_ = EventLiteral::Complement(e_);
    pf_ = EventLiteral::Positive(f_);
    nf_ = EventLiteral::Complement(f_);
  }

  Alphabet alphabet_;
  ExprArena arena_;
  SymbolId e_, f_;
  EventLiteral pe_, ne_, pf_, nf_;
};

// ---------------------------------------------------------------- Alphabet

TEST_F(AlgebraTest, InternIsIdempotent) {
  EXPECT_EQ(alphabet_.Intern("e"), e_);
  EXPECT_EQ(alphabet_.Intern("g"), alphabet_.Intern("g"));
  EXPECT_EQ(alphabet_.size(), 3u);
}

TEST_F(AlgebraTest, FindUnknownSymbol) {
  EXPECT_EQ(alphabet_.Find("nope"), kInvalidSymbol);
  EXPECT_EQ(alphabet_.Find("e"), e_);
}

TEST_F(AlgebraTest, LiteralNames) {
  EXPECT_EQ(alphabet_.LiteralName(pe_), "e");
  EXPECT_EQ(alphabet_.LiteralName(ne_), "~e");
}

TEST_F(AlgebraTest, ParseLiteral) {
  auto r = alphabet_.ParseLiteral("~f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), nf_);
  EXPECT_FALSE(alphabet_.ParseLiteral("~zzz").ok());
}

TEST_F(AlgebraTest, InternLiteralAddsSymbol) {
  EventLiteral l = alphabet_.InternLiteral("~h");
  EXPECT_TRUE(l.complemented());
  EXPECT_EQ(alphabet_.Name(l.symbol()), "h");
}

TEST_F(AlgebraTest, ComplementIsInvolution) {
  EXPECT_EQ(pe_.Complemented(), ne_);
  EXPECT_EQ(ne_.Complemented(), pe_);
  EXPECT_EQ(pe_.Complemented().Complemented(), pe_);
}

// ------------------------------------------------------------------ Traces

TEST_F(AlgebraTest, TraceValidity) {
  EXPECT_TRUE(IsValidTrace({}));
  EXPECT_TRUE(IsValidTrace({pe_, pf_}));
  EXPECT_FALSE(IsValidTrace({pe_, pe_}));   // event twice
  EXPECT_FALSE(IsValidTrace({pe_, ne_}));   // e and ē together
  EXPECT_TRUE(IsValidTrace({ne_, nf_}));
}

TEST_F(AlgebraTest, CanExtendChecksSymbolNotPolarity) {
  Trace u = {pe_};
  EXPECT_FALSE(CanExtend(u, pe_));
  EXPECT_FALSE(CanExtend(u, ne_));
  EXPECT_TRUE(CanExtend(u, pf_));
  EXPECT_TRUE(CanExtend(u, nf_));
}

TEST_F(AlgebraTest, Example1UniverseHas13Traces) {
  // Example 1: Γ = {e, ē, f, f̄} yields exactly the 13 listed traces.
  std::vector<Trace> universe =
      EnumerateUniverse({pe_, ne_, pf_, nf_});
  EXPECT_EQ(universe.size(), 13u);
  std::set<std::string> rendered;
  for (const Trace& u : universe) rendered.insert(TraceToString(u, alphabet_));
  EXPECT_TRUE(rendered.count("<>"));
  EXPECT_TRUE(rendered.count("<e>"));
  EXPECT_TRUE(rendered.count("<f ~e>"));
  EXPECT_TRUE(rendered.count("<~e ~f>"));
  EXPECT_FALSE(rendered.count("<e ~e>"));
}

TEST_F(AlgebraTest, MaximalTraces) {
  std::vector<Trace> maximal = EnumerateMaximalTraces(2);
  EXPECT_EQ(maximal.size(), 8u);  // 2^2 · 2!
  for (const Trace& u : maximal) EXPECT_TRUE(IsMaximalTrace(u, 2));
  EXPECT_FALSE(IsMaximalTrace({pe_}, 2));
  EXPECT_TRUE(IsMaximalTrace({pe_, nf_}, 2));
}

TEST_F(AlgebraTest, TraceToString) {
  EXPECT_EQ(TraceToString({pe_, nf_}, alphabet_), "<e ~f>");
  EXPECT_EQ(TraceToString({}, alphabet_), "<>");
}

// --------------------------------------------------------- Expression arena

TEST_F(AlgebraTest, HashConsingUnifiesStructure) {
  const Expr* a = arena_.Or(arena_.Atom(pe_), arena_.Atom(pf_));
  const Expr* b = arena_.Or(arena_.Atom(pf_), arena_.Atom(pe_));
  EXPECT_EQ(a, b);  // commutativity via sorted children
  const Expr* c = arena_.Or(a, arena_.Atom(pe_));
  EXPECT_EQ(a, c);  // flatten + dedupe
}

TEST_F(AlgebraTest, OrIdentities) {
  const Expr* e = arena_.Atom(pe_);
  EXPECT_EQ(arena_.Or(e, arena_.Zero()), e);
  EXPECT_EQ(arena_.Or(e, arena_.Top()), arena_.Top());
  EXPECT_EQ(arena_.Or(std::span<const Expr* const>{}), arena_.Zero());
  EXPECT_EQ(arena_.Or(e, e), e);
}

TEST_F(AlgebraTest, AndIdentities) {
  const Expr* e = arena_.Atom(pe_);
  EXPECT_EQ(arena_.And(e, arena_.Top()), e);
  EXPECT_EQ(arena_.And(e, arena_.Zero()), arena_.Zero());
  EXPECT_EQ(arena_.And(e, e), e);
}

TEST_F(AlgebraTest, SeqIdentities) {
  const Expr* e = arena_.Atom(pe_);
  const Expr* f = arena_.Atom(pf_);
  EXPECT_EQ(arena_.Seq(e, arena_.Top()), e);     // ⊤ is the identity of ·
  EXPECT_EQ(arena_.Seq(arena_.Top(), e), e);
  EXPECT_EQ(arena_.Seq(e, arena_.Zero()), arena_.Zero());
  // Definition 1: no trace carries a symbol twice or in both polarities.
  EXPECT_EQ(arena_.Seq(e, e), arena_.Zero());
  EXPECT_EQ(arena_.Seq(e, arena_.Atom(ne_)), arena_.Zero());
  EXPECT_NE(arena_.Seq(e, f), arena_.Seq(f, e));  // order matters
}

TEST_F(AlgebraTest, SeqAssociativityViaFlattening) {
  const Expr* e = arena_.Atom(pe_);
  const Expr* f = arena_.Atom(pf_);
  SymbolId g = alphabet_.Intern("g");
  const Expr* gg = arena_.Atom(EventLiteral::Positive(g));
  EXPECT_EQ(arena_.Seq(arena_.Seq(e, f), gg), arena_.Seq(e, arena_.Seq(f, gg)));
}

TEST_F(AlgebraTest, GammaIncludesComplements) {
  // Γ_E is "the set of events mentioned in E, and their complements".
  const Expr* d = KleinImplies(&arena_, e_, f_);  // ē + f
  std::vector<EventLiteral> gamma = Gamma(d);
  EXPECT_EQ(gamma.size(), 4u);
  EXPECT_NE(std::find(gamma.begin(), gamma.end(), pe_), gamma.end());
  EXPECT_NE(std::find(gamma.begin(), gamma.end(), nf_), gamma.end());

  std::vector<EventLiteral> side = GammaExcluding(d, pe_);
  EXPECT_EQ(side.size(), 2u);
  EXPECT_EQ(side[0], pf_);
  EXPECT_EQ(side[1], nf_);
}

TEST_F(AlgebraTest, ExprToStringPrecedence) {
  const Expr* d = KleinPrecedes(&arena_, e_, f_);
  std::string s = ExprToString(d, alphabet_);
  // Children are sorted by arena id, so exact order depends on creation;
  // the string must contain the sequence without parentheses and the
  // complements with '~'.
  EXPECT_NE(s.find("e . f"), std::string::npos);
  EXPECT_NE(s.find("~e"), std::string::npos);
  EXPECT_NE(s.find("~f"), std::string::npos);
  EXPECT_EQ(s.find("("), std::string::npos);

  const Expr* seq_of_or =
      arena_.Seq(arena_.Or(arena_.Atom(pe_), arena_.Atom(ne_)),
                 arena_.Atom(pf_));
  std::string t = ExprToString(seq_of_or, alphabet_);
  EXPECT_NE(t.find("("), std::string::npos);
  EXPECT_EQ(ExprToString(arena_.Zero(), alphabet_), "0");
  EXPECT_EQ(ExprToString(arena_.Top(), alphabet_), "T");
}

// -------------------------------------------------------------- Semantics

TEST_F(AlgebraTest, AtomSatisfiedAnywhere) {
  const Expr* e = arena_.Atom(pe_);
  EXPECT_TRUE(Satisfies({pe_}, e));
  EXPECT_TRUE(Satisfies({pf_, pe_}, e));
  EXPECT_FALSE(Satisfies({pf_}, e));
  EXPECT_FALSE(Satisfies({}, e));
  // The complement literal must itself occur to satisfy the ē atom.
  EXPECT_FALSE(Satisfies({pf_}, arena_.Atom(ne_)));
  EXPECT_TRUE(Satisfies({nf_, ne_}, arena_.Atom(ne_)));
}

TEST_F(AlgebraTest, Example1Denotations) {
  std::vector<Trace> universe = EnumerateUniverse({pe_, ne_, pf_, nf_});
  // [[0]] = {} and [[⊤]] = U_E.
  EXPECT_TRUE(Denotation(arena_.Zero(), universe).empty());
  EXPECT_EQ(Denotation(arena_.Top(), universe).size(), 13u);
  // [[e]] = {<e>, <e f>, <f e>, <e ~f>, <~f e>}.
  EXPECT_EQ(Denotation(arena_.Atom(pe_), universe).size(), 5u);
  // [[e·f]] = {<e f>}.
  const Expr* ef = arena_.Seq(arena_.Atom(pe_), arena_.Atom(pf_));
  std::vector<size_t> den = Denotation(ef, universe);
  ASSERT_EQ(den.size(), 1u);
  EXPECT_EQ(TraceToString(universe[den[0]], alphabet_), "<e f>");
  // [[e + ē]] ≠ U_E and [[e | ē]] = {}.
  const Expr* either = arena_.Or(arena_.Atom(pe_), arena_.Atom(ne_));
  EXPECT_LT(Denotation(either, universe).size(), universe.size());
  const Expr* both = arena_.And(arena_.Atom(pe_), arena_.Atom(ne_));
  EXPECT_TRUE(Denotation(both, universe).empty());
}

TEST_F(AlgebraTest, Example2KleinImplies) {
  // D_→ = ē + f: on any satisfying trace where e occurs, f occurs too;
  // no order is imposed.
  const Expr* d = KleinImplies(&arena_, e_, f_);
  EXPECT_TRUE(Satisfies({pe_, pf_}, d));
  EXPECT_TRUE(Satisfies({pf_, pe_}, d));   // f before e is fine
  EXPECT_TRUE(Satisfies({ne_}, d));        // e never occurs
  EXPECT_TRUE(Satisfies({ne_, nf_}, d));
  EXPECT_FALSE(Satisfies({pe_}, d));       // e occurred, f undecided: not yet
  EXPECT_FALSE(Satisfies({pe_, nf_}, d));  // e occurred, f never will
}

TEST_F(AlgebraTest, Example3KleinPrecedes) {
  // D_< = ē + f̄ + e·f: if both occur, e precedes f.
  const Expr* d = KleinPrecedes(&arena_, e_, f_);
  EXPECT_TRUE(Satisfies({pe_, pf_}, d));
  EXPECT_FALSE(Satisfies({pf_, pe_}, d));  // f before e violates it
  EXPECT_TRUE(Satisfies({ne_, pf_}, d));
  EXPECT_TRUE(Satisfies({pe_, nf_}, d));
  EXPECT_TRUE(Satisfies({ne_, nf_}, d));
  EXPECT_FALSE(Satisfies({pe_}, d));       // f still undecided
}

TEST_F(AlgebraTest, SatisfactionIsExtensionMonotone) {
  // If u ⊨ E then every valid extension of u satisfies E (stability of
  // occurrence). Checked for a few hand-built expressions over all traces.
  SymbolId g = alphabet_.Intern("g");
  std::vector<const Expr*> exprs = {
      arena_.Atom(pe_),
      KleinImplies(&arena_, e_, f_),
      KleinPrecedes(&arena_, e_, f_),
      arena_.Seq(arena_.Atom(pe_),
                 arena_.Or(arena_.Atom(pf_), arena_.Atom(nf_))),
      arena_.And(KleinImplies(&arena_, e_, f_),
                 KleinPrecedes(&arena_, f_, g)),
  };
  std::vector<EventLiteral> lits = {pe_, ne_, pf_, nf_,
                                    EventLiteral::Positive(g),
                                    EventLiteral::Complement(g)};
  std::vector<Trace> universe = EnumerateUniverse(lits);
  for (const Expr* ex : exprs) {
    for (const Trace& u : universe) {
      if (!Satisfies(u, ex)) continue;
      for (EventLiteral l : lits) {
        if (!CanExtend(u, l)) continue;
        Trace v = u;
        v.push_back(l);
        EXPECT_TRUE(Satisfies(v, ex))
            << ExprToString(ex, alphabet_) << " lost on extension "
            << TraceToString(v, alphabet_);
      }
    }
  }
}

TEST_F(AlgebraTest, DistributivityHoldsSemantically) {
  // · distributes over + and over | (§3.2). Verified by denotation.
  const Expr* e = arena_.Atom(pe_);
  const Expr* f = arena_.Atom(pf_);
  SymbolId g = alphabet_.Intern("g");
  const Expr* gg = arena_.Atom(EventLiteral::Positive(g));

  const Expr* lhs_or = arena_.Seq(arena_.Or(e, f), gg);
  const Expr* rhs_or = arena_.Or(arena_.Seq(e, gg), arena_.Seq(f, gg));
  EXPECT_TRUE(ExprEquivalent(lhs_or, rhs_or));

  const Expr* lhs_and = arena_.Seq(arena_.And(e, f), gg);
  const Expr* rhs_and = arena_.And(arena_.Seq(e, gg), arena_.Seq(f, gg));
  EXPECT_TRUE(ExprEquivalent(lhs_and, rhs_and));

  // Left-sided versions.
  const Expr* lhs_or2 = arena_.Seq(gg, arena_.Or(e, f));
  const Expr* rhs_or2 = arena_.Or(arena_.Seq(gg, e), arena_.Seq(gg, f));
  EXPECT_TRUE(ExprEquivalent(lhs_or2, rhs_or2));
  const Expr* lhs_and2 = arena_.Seq(gg, arena_.And(e, f));
  const Expr* rhs_and2 = arena_.And(arena_.Seq(gg, e), arena_.Seq(gg, f));
  EXPECT_TRUE(ExprEquivalent(lhs_and2, rhs_and2));
}

TEST_F(AlgebraTest, ExprEquivalentDistinguishes) {
  EXPECT_FALSE(ExprEquivalent(arena_.Atom(pe_), arena_.Atom(pf_)));
  EXPECT_FALSE(ExprEquivalent(arena_.Seq(arena_.Atom(pe_), arena_.Atom(pf_)),
                              arena_.Seq(arena_.Atom(pf_), arena_.Atom(pe_))));
  EXPECT_TRUE(ExprEquivalent(arena_.Top(), arena_.Top()));
  // e·⊤ ≡ e even with extra unrelated symbols in the universe.
  EXPECT_TRUE(ExprEquivalent(arena_.Atom(pe_),
                             arena_.Seq(arena_.Atom(pe_), arena_.Top())));
}

// ------------------------------------------------------------- Generators

TEST_F(AlgebraTest, GeneratorIsDeterministic) {
  RandomExprOptions options;
  Rng rng1(42), rng2(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GenerateRandomExpr(&arena_, &rng1, options),
              GenerateRandomExpr(&arena_, &rng2, options));
  }
}

TEST_F(AlgebraTest, GeneratorRespectsSymbolCount) {
  RandomExprOptions options;
  options.symbol_count = 2;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Expr* ex = GenerateRandomExpr(&arena_, &rng, options);
    for (SymbolId s : MentionedSymbols(ex)) EXPECT_LT(s, 2u);
  }
}

TEST_F(AlgebraTest, ChainAndOrderedIfAllShapes) {
  SymbolId g = alphabet_.Intern("g");
  const Expr* chain = Chain(&arena_, {e_, f_, g});
  EXPECT_EQ(chain->kind(), ExprKind::kSeq);
  EXPECT_EQ(chain->children().size(), 3u);
  EXPECT_TRUE(Satisfies({pe_, pf_, EventLiteral::Positive(g)}, chain));
  EXPECT_FALSE(Satisfies({pf_, pe_, EventLiteral::Positive(g)}, chain));

  const Expr* ordered = OrderedIfAll(&arena_, {e_, f_});
  EXPECT_TRUE(ExprEquivalent(ordered, KleinPrecedes(&arena_, e_, f_)));
}

}  // namespace
}  // namespace cdes
