#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/wait_graph.h"
#include "spec/parser.h"

namespace cdes {
namespace {

using analysis::AnalyzeOptions;
using analysis::AnalyzeWorkflow;
using analysis::Diagnostic;
using analysis::Rule;
using analysis::Severity;

class AnalysisTest : public ::testing::Test {
 protected:
  std::vector<Diagnostic> Lint(std::string_view text,
                               const AnalyzeOptions& options = {}) {
    auto parsed = ParseWorkflow(&ctx_, text, "test.wf");
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    if (!parsed.ok()) return {};
    return AnalyzeWorkflow(&ctx_, parsed.value(), options);
  }

  static size_t Count(const std::vector<Diagnostic>& diagnostics, Rule rule) {
    size_t n = 0;
    for (const Diagnostic& d : diagnostics) n += d.rule == rule;
    return n;
  }

  static const Diagnostic* Find(const std::vector<Diagnostic>& diagnostics,
                                Rule rule) {
    for (const Diagnostic& d : diagnostics) {
      if (d.rule == rule) return &d;
    }
    return nullptr;
  }

  WorkflowContext ctx_;
};

// ------------------------------------------------------------- CL001/CL002

TEST_F(AnalysisTest, UnsatisfiableDependencyIsAnErrorAndSuppressesRest) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep impossible: e | ~e;
  dep fine: e < f;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kUnsatisfiableDep);
  EXPECT_EQ(diagnostics[0].severity, Severity::kError);
  EXPECT_EQ(diagnostics[0].loc.line, 6);
  EXPECT_EQ(diagnostics[0].loc.column, 3);
  EXPECT_TRUE(analysis::HasFindings(diagnostics));
}

TEST_F(AnalysisTest, VacuousDependencyIsAWarning) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep always: e + ~e;
  dep ord: e < f;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kVacuousDep);
  EXPECT_EQ(diagnostics[0].severity, Severity::kWarning);
  EXPECT_EQ(diagnostics[0].loc.line, 6);
  // Warnings alone do not fail the lint.
  EXPECT_FALSE(analysis::HasFindings(diagnostics));
  EXPECT_TRUE(analysis::HasFindings(diagnostics, Severity::kWarning));
}

// ------------------------------------------------------------- CL003/CL004

TEST_F(AnalysisTest, DeadEventGuardIsAnError) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  dep never: ~e;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kDeadEvent);
  // Blamed on the event declaration, not the dependency.
  EXPECT_EQ(diagnostics[0].loc.line, 4);
  EXPECT_NE(diagnostics[0].message.find("'e'"), std::string::npos);
}

TEST_F(AnalysisTest, ForcedEventIsAWarning) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  dep must: e;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kForcedEvent);
  EXPECT_EQ(diagnostics[0].severity, Severity::kWarning);
}

// ------------------------------------------------------------- CL005/CL006

TEST_F(AnalysisTest, MutualBoxWaitIsAStaticDeadlock) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep first:  ~e + f . e;
  dep second: ~f + e . f;
}
)");
  // One cycle diagnostic; the per-member dead-event findings are subsumed.
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kStaticDeadlock);
  EXPECT_EQ(diagnostics[0].severity, Severity::kError);
  EXPECT_NE(diagnostics[0].message.find("e waits for f"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("f waits for e"), std::string::npos);
}

TEST_F(AnalysisTest, DiamondCyclesAreResolvedByPromisesNotDeadlocks) {
  // Mutually referential Klein implications (e → f and f → e) look cyclic
  // but are ◇-waits: the runtime's promise protocol resolves them
  // (Example 11), so the analyzer must stay silent.
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep x: e -> f;
  dep y: f -> e;
}
)");
  EXPECT_TRUE(diagnostics.empty())
      << analysis::FormatDiagnostics(diagnostics);
}

TEST_F(AnalysisTest, WaitingOnADeadLiteralIsAnError) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep never: ~f;
  dep after: f . e + ~e;
}
)");
  const Diagnostic* wait = Find(diagnostics, Rule::kWaitOnDead);
  ASSERT_NE(wait, nullptr) << analysis::FormatDiagnostics(diagnostics);
  EXPECT_NE(wait->message.find("e waits for f"), std::string::npos);
  // f's own guard is dead, reported separately.
  EXPECT_EQ(Count(diagnostics, Rule::kDeadEvent), 1u);
}

// ------------------------------------------------------------------- CL007

TEST_F(AnalysisTest, DuplicateDependencyIsRedundant) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep one: e < f;
  dep two: e < f;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kRedundantDep);
  EXPECT_EQ(diagnostics[0].loc.line, 7);  // the later duplicate is blamed
  EXPECT_NE(diagnostics[0].message.find("duplicates"), std::string::npos);
}

TEST_F(AnalysisTest, EntailedDependencyIsRedundant) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep strong: e . f;
  dep weak: e < f;
}
)");
  const Diagnostic* redundant = Find(diagnostics, Rule::kRedundantDep);
  ASSERT_NE(redundant, nullptr) << analysis::FormatDiagnostics(diagnostics);
  EXPECT_NE(redundant->message.find("'weak'"), std::string::npos);
  EXPECT_NE(redundant->message.find("'strong'"), std::string::npos);
  EXPECT_EQ(redundant->loc.line, 7);
}

TEST_F(AnalysisTest, RedundancyPassCanBeDisabled) {
  AnalyzeOptions options;
  options.check_redundancy = false;
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep one: e < f;
  dep two: e < f;
}
)",
                                             options);
  EXPECT_EQ(Count(diagnostics, Rule::kRedundantDep), 0u);
}

TEST_F(AnalysisTest, DependencyEntailsIsDirectional) {
  auto parsed = ParseWorkflow(&ctx_, R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep strong: e . f;
  dep weak: e < f;
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Expr* strong = parsed.value().spec.dependencies()[0].expr;
  const Expr* weak = parsed.value().spec.dependencies()[1].expr;
  EXPECT_TRUE(analysis::DependencyEntails(&ctx_, strong, weak));
  EXPECT_FALSE(analysis::DependencyEntails(&ctx_, weak, strong));
  EXPECT_TRUE(analysis::DependencyEntails(&ctx_, weak, weak));
}

// --------------------------------------------------------- CL008 – CL010

TEST_F(AnalysisTest, HandBuiltSpecWithUndeclaredAndUnassignedEvents) {
  // The parser enforces declaration-before-use, so CL008/CL009 can only
  // arise in programmatically built workflows.
  ParsedWorkflow w;
  w.name = "hand";
  SymbolId e = ctx_.alphabet()->Intern("e");
  SymbolId ghost = ctx_.alphabet()->Intern("ghost");
  w.events.push_back(EventDecl{"e", e, /*agent=*/"", {}, {}});
  w.spec.Add("d",
             ctx_.exprs()->Seq(
                 ctx_.exprs()->Atom(EventLiteral::Positive(ghost)),
                 ctx_.exprs()->Atom(EventLiteral::Positive(e))));
  std::vector<Diagnostic> diagnostics = AnalyzeWorkflow(&ctx_, w);
  EXPECT_EQ(Count(diagnostics, Rule::kUndeclaredEvent), 1u);
  EXPECT_EQ(Count(diagnostics, Rule::kUnassignedEvent), 1u);
  const Diagnostic* undeclared = Find(diagnostics, Rule::kUndeclaredEvent);
  ASSERT_NE(undeclared, nullptr);
  EXPECT_NE(undeclared->message.find("'ghost'"), std::string::npos);
}

TEST_F(AnalysisTest, UnconstrainedEventIsANote) {
  std::vector<Diagnostic> diagnostics = Lint(R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  event idle agent(a);
  dep ord: e < f;
}
)");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kUnconstrainedEvent);
  EXPECT_EQ(diagnostics[0].severity, Severity::kNote);
  EXPECT_EQ(diagnostics[0].loc.line, 6);
  EXPECT_FALSE(analysis::HasFindings(diagnostics, Severity::kWarning));
}

// ------------------------------------------------------- source locations

TEST_F(AnalysisTest, ParserThreadsSourceLocations) {
  auto parsed = ParseWorkflow(&ctx_, R"(workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep ord: e < f;
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ParsedWorkflow& w = parsed.value();
  ASSERT_EQ(w.agents.size(), 1u);
  EXPECT_EQ(w.agents[0].loc.line, 2);
  EXPECT_EQ(w.agents[0].loc.column, 3);
  ASSERT_EQ(w.events.size(), 2u);
  EXPECT_EQ(w.events[0].loc.line, 3);
  EXPECT_EQ(w.events[1].loc.line, 4);
  ASSERT_EQ(w.spec.dependencies().size(), 1u);
  EXPECT_EQ(w.spec.dependencies()[0].loc.line, 5);
  EXPECT_EQ(w.spec.dependencies()[0].loc.column, 3);
}

TEST_F(AnalysisTest, ParseErrorsCarryFileLineColumn) {
  auto parsed = ParseWorkflow(&ctx_, "workflow t {\n  dep d: ghost;\n}\n",
                              "broken.wf");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("broken.wf:2:10:"),
            std::string::npos)
      << parsed.status();
}

// ------------------------------------------------------------- formatting

TEST_F(AnalysisTest, FormatAndJsonRenderings) {
  Diagnostic d = analysis::MakeDiagnostic(Rule::kDeadEvent, "boom",
                                          SourceLocation{4, 7});
  d.file = "x.wf";
  EXPECT_EQ(analysis::FormatDiagnostic(d),
            "x.wf:4:7: error: boom [CL003 dead-event]");
  std::string json = analysis::DiagnosticsToJson({&d, 1});
  EXPECT_NE(json.find("\"code\": \"CL003\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"dead-event\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
}

// ----------------------------------------------------- shipped spec files

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST_F(AnalysisTest, EveryShippedSpecLintsClean) {
  const char* kGoodSpecs[] = {"order.wf", "travel.wf", "travel_template.wf"};
  for (const char* name : kGoodSpecs) {
    std::string path =
        std::string(CDES_SOURCE_DIR "/examples/specs/") + name;
    WorkflowContext ctx;
    auto parsed = ParseWorkflows(&ctx, ReadFileOrDie(path), name);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    for (const ParsedWorkflow& w : parsed.value()) {
      std::vector<Diagnostic> diagnostics = AnalyzeWorkflow(&ctx, w);
      EXPECT_TRUE(diagnostics.empty())
          << name << ":\n" << analysis::FormatDiagnostics(diagnostics);
    }
  }
}

struct BadFixture {
  const char* name;
  Rule rule;
  int line;
};

TEST_F(AnalysisTest, BadFixturesProduceTheirDocumentedRule) {
  const BadFixture kFixtures[] = {
      {"unsat.spec", Rule::kUnsatisfiableDep, 7},
      {"dead_guard.spec", Rule::kDeadEvent, 6},
      {"deadlock.spec", Rule::kStaticDeadlock, 11},
  };
  for (const BadFixture& fixture : kFixtures) {
    std::string path =
        std::string(CDES_SOURCE_DIR "/examples/specs/bad/") + fixture.name;
    WorkflowContext ctx;
    auto parsed = ParseWorkflows(&ctx, ReadFileOrDie(path), fixture.name);
    ASSERT_TRUE(parsed.ok()) << fixture.name << ": " << parsed.status();
    ASSERT_EQ(parsed.value().size(), 1u);
    std::vector<Diagnostic> diagnostics =
        AnalyzeWorkflow(&ctx, parsed.value()[0]);
    EXPECT_TRUE(analysis::HasFindings(diagnostics)) << fixture.name;
    const Diagnostic* found = Find(diagnostics, fixture.rule);
    ASSERT_NE(found, nullptr)
        << fixture.name << ":\n" << analysis::FormatDiagnostics(diagnostics);
    EXPECT_EQ(found->loc.line, fixture.line) << fixture.name;
  }
}

TEST_F(AnalysisTest, UndeclaredFixtureFailsToParseWithLocation) {
  std::string path = CDES_SOURCE_DIR "/examples/specs/bad/undeclared.spec";
  WorkflowContext ctx;
  auto parsed = ParseWorkflows(&ctx, ReadFileOrDie(path), "undeclared.spec");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("undeclared.spec:7:"),
            std::string::npos)
      << parsed.status();
  EXPECT_NE(parsed.status().message().find("'ghost'"), std::string::npos);
}

// -------------------------------------------------------------- wait graph

TEST_F(AnalysisTest, WaitGraphExposesMustEdgesOnly) {
  auto parsed = ParseWorkflow(&ctx_, R"(
workflow t {
  agent a @ site(0);
  event e agent(a);
  event f agent(a);
  dep d: ~e + f . e;
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  CompileOptions raw;
  raw.simplify = false;
  CompiledWorkflow compiled =
      CompileWorkflow(&ctx_, parsed.value().spec, raw);
  analysis::WaitGraph graph = analysis::BuildWaitGraph(compiled);
  SymbolId e = parsed.value().FindEvent("e")->symbol;
  SymbolId f = parsed.value().FindEvent("f")->symbol;
  EventLiteral pe = EventLiteral::Positive(e);
  // e must wait for f's occurrence; nothing else must-waits.
  ASSERT_TRUE(graph.edges.count(pe));
  EXPECT_TRUE(graph.edges.at(pe).count(EventLiteral::Positive(f)));
  EXPECT_FALSE(graph.edges.count(EventLiteral::Positive(f)));
  EXPECT_TRUE(analysis::FindWaitCycles(graph).empty());
}

}  // namespace
}  // namespace cdes
