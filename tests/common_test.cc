#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace cdes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad expression");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad expression");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad expression");
}

TEST(StatusTest, EveryCodeHasName) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted,
        StatusCode::kAborted}) {
    EXPECT_FALSE(StatusCodeToString(c).empty());
    EXPECT_NE(StatusCodeToString(c), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusDegradesToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  CDES_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

Status CheckPositive(int x) {
  CDES_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoubledPositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad = DoubledPositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckPositive(3).ok());
  EXPECT_EQ(CheckPositive(0).code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, StrJoin) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, "+"), "1+2+3");
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("x=", 3, ", y=", 4.5), "x=3, y=4.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("workflow", "work"));
  EXPECT_FALSE(StartsWith("work", "workflow"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  // All residues eventually appear.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

}  // namespace
}  // namespace cdes
