// Schedule-space verification of the guard discipline (see
// guards/verifier.h): every prefix reachable under optimistic ¬ evaluation
// is explored and checked for safety, ¬-race freedom, and terminal
// satisfaction. Exhaustive over the alphabet — it covers every
// interleaving a distributed execution could produce.

#include <gtest/gtest.h>

#include <vector>

#include "algebra/generator.h"
#include "common/strings.h"
#include "guards/verifier.h"

namespace cdes {
namespace {

::testing::AssertionResult Verified(WorkflowContext* ctx,
                                    const WorkflowSpec& spec) {
  Result<VerificationReport> report = VerifyScheduleSpace(ctx, spec);
  if (!report.ok()) {
    return ::testing::AssertionFailure() << report.status();
  }
  if (!report.value().ok()) {
    return ::testing::AssertionFailure()
           << report.value().ToString(*ctx->alphabet());
  }
  return ::testing::AssertionSuccess();
}

TEST(ScheduleSpaceTest, CanonicalDependencies) {
  struct Case {
    const char* name;
    std::function<const Expr*(WorkflowContext*)> make;
  };
  std::vector<Case> cases = {
      {"precedes",
       [](WorkflowContext* ctx) {
         return KleinPrecedes(ctx->exprs(), ctx->alphabet()->Intern("e"),
                              ctx->alphabet()->Intern("f"));
       }},
      {"implies",
       [](WorkflowContext* ctx) {
         return KleinImplies(ctx->exprs(), ctx->alphabet()->Intern("e"),
                             ctx->alphabet()->Intern("f"));
       }},
      {"chain3",
       [](WorkflowContext* ctx) {
         return Chain(ctx->exprs(), {ctx->alphabet()->Intern("a"),
                                     ctx->alphabet()->Intern("b"),
                                     ctx->alphabet()->Intern("c")});
       }},
      {"either-order",
       [](WorkflowContext* ctx) {
         SymbolId e = ctx->alphabet()->Intern("e");
         SymbolId f = ctx->alphabet()->Intern("f");
         const Expr* parts[] = {
             ctx->exprs()->Atom(EventLiteral::Complement(e)),
             ctx->exprs()->Atom(EventLiteral::Complement(f)),
             ctx->exprs()->Seq(ctx->exprs()->Atom(EventLiteral::Positive(e)),
                               ctx->exprs()->Atom(EventLiteral::Positive(f))),
             ctx->exprs()->Seq(ctx->exprs()->Atom(EventLiteral::Positive(f)),
                               ctx->exprs()->Atom(EventLiteral::Positive(e)))};
         return ctx->exprs()->Or(parts);
       }},
      {"ordered-if-all-3",
       [](WorkflowContext* ctx) {
         return OrderedIfAll(ctx->exprs(), {ctx->alphabet()->Intern("a"),
                                            ctx->alphabet()->Intern("b"),
                                            ctx->alphabet()->Intern("c")});
       }},
  };
  for (const Case& c : cases) {
    WorkflowContext ctx;
    WorkflowSpec spec;
    spec.Add(c.name, c.make(&ctx));
    EXPECT_TRUE(Verified(&ctx, spec)) << c.name;
  }
}

TEST(ScheduleSpaceTest, TravelWorkflowFullSpace) {
  WorkflowContext ctx;
  WorkflowSpec spec;
  SymbolId s_buy = ctx.alphabet()->Intern("s_buy");
  SymbolId c_buy = ctx.alphabet()->Intern("c_buy");
  SymbolId s_book = ctx.alphabet()->Intern("s_book");
  SymbolId c_book = ctx.alphabet()->Intern("c_book");
  SymbolId s_cancel = ctx.alphabet()->Intern("s_cancel");
  auto atom = [&](SymbolId s, bool complemented = false) {
    return ctx.exprs()->Atom(EventLiteral(s, complemented));
  };
  spec.Add("d1", ctx.exprs()->Or(atom(s_buy, true), atom(s_book)));
  spec.Add("d2", ctx.exprs()->Or(atom(c_buy, true),
                                 ctx.exprs()->Seq(atom(c_book),
                                                  atom(c_buy))));
  const Expr* d3_parts[] = {atom(c_book, true), atom(c_buy), atom(s_cancel)};
  spec.Add("d3", ctx.exprs()->Or(d3_parts));
  EXPECT_TRUE(Verified(&ctx, spec));
}

TEST(ScheduleSpaceTest, ReportsStatesExplored) {
  WorkflowContext ctx;
  WorkflowSpec spec;
  spec.Add("d", KleinPrecedes(ctx.exprs(), ctx.alphabet()->Intern("e"),
                              ctx.alphabet()->Intern("f")));
  auto report = VerifyScheduleSpace(&ctx, spec);
  ASSERT_TRUE(report.ok());
  // Prefixes over 2 symbols: fewer than the whole universe (blocked
  // orders are not reachable) but more than the maximal traces.
  EXPECT_GT(report.value().states_explored, 4u);
  EXPECT_NE(report.value().ToString(*ctx.alphabet()).find("ok"),
            std::string::npos);
}

TEST(ScheduleSpaceTest, StateCapReturnsOutOfRange) {
  WorkflowContext ctx;
  WorkflowSpec spec;
  std::vector<SymbolId> symbols;
  for (int i = 0; i < 5; ++i) {
    symbols.push_back(ctx.alphabet()->Intern(StrCat("s", i)));
  }
  spec.Add("d", OrderedIfAll(ctx.exprs(), symbols));
  VerifyOptions options;
  options.max_states = 10;
  auto report = VerifyScheduleSpace(&ctx, spec, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfRange);
}

TEST(ScheduleSpaceTest, ImpossibleWorkflowTriviallySafe) {
  WorkflowContext ctx;
  WorkflowSpec spec;
  spec.Add("never", ctx.exprs()->Zero());
  auto report = VerifyScheduleSpace(&ctx, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok());
}

struct SweepParam {
  uint64_t seed;
  size_t symbol_count;
  size_t dependency_count;
};

class ScheduleSpaceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleSpaceSweep, RandomWorkflowsAreRaceFreeAndSafe) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  RandomExprOptions options;
  options.symbol_count = param.symbol_count;
  options.max_depth = 3;
  options.constant_probability = 0.05;
  for (int iter = 0; iter < 20; ++iter) {
    WorkflowContext ctx;
    WorkflowSpec spec;
    for (size_t d = 0; d < param.dependency_count; ++d) {
      spec.Add(StrCat("d", d), GenerateRandomExpr(ctx.exprs(), &rng, options));
    }
    EXPECT_TRUE(Verified(&ctx, spec)) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleSpaceSweep,
                         ::testing::Values(SweepParam{31, 2, 1},
                                           SweepParam{32, 2, 2},
                                           SweepParam{33, 3, 1},
                                           SweepParam{34, 3, 2},
                                           SweepParam{35, 3, 3},
                                           SweepParam{36, 4, 1}));

}  // namespace
}  // namespace cdes
