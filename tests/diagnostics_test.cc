#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "obs/profiler.h"
#include "obs/trace_recorder.h"
#include "sched/diagnostics.h"
#include "spec/parser.h"

namespace cdes {
namespace {

struct DiagWorld {
  explicit DiagWorld(const char* spec_text,
                     obs::TraceRecorder* tracer = nullptr,
                     obs::GuardProfiler* profiler = nullptr) {
    auto parsed = ParseWorkflow(&ctx, spec_text);
    CDES_CHECK(parsed.ok()) << parsed.status();
    workflow = std::move(parsed).value();
    NetworkOptions nopts;
    nopts.base_latency = 100;
    network = std::make_unique<Network>(&sim, 4, nopts);
    GuardSchedulerOptions sopts;
    sopts.tracer = tracer;
    sopts.profiler = profiler;
    sched = std::make_unique<GuardScheduler>(&ctx, workflow, network.get(),
                                             sopts);
  }

  void AttemptAndRun(const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    sched->Attempt(lit.value(), AttemptCallback());
    sim.Run();
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  ParsedWorkflow workflow;
  std::unique_ptr<GuardScheduler> sched;
};

constexpr char kChainSpec[] = R"(
workflow ch {
  event a;
  event b;
  event c;
  dep d: a . b . c;
}
)";

TEST(DiagnosticsTest, NothingParked) {
  DiagWorld w(kChainSpec);
  EXPECT_TRUE(DiagnoseParked(&w.ctx, w.sched.get()).empty());
  EXPECT_EQ(DiagnosisToString({}, *w.ctx.alphabet()), "no parked attempts\n");
}

TEST(DiagnosticsTest, ReportsWaitSetOfParkedEvent) {
  DiagWorld w(kChainSpec);
  w.AttemptAndRun("c");  // parks: needs a then b first
  std::vector<ParkedDiagnosis> diagnoses =
      DiagnoseParked(&w.ctx, w.sched.get());
  ASSERT_EQ(diagnoses.size(), 1u);
  EXPECT_EQ(w.ctx.alphabet()->LiteralName(diagnoses[0].literal), "c");
  EXPECT_FALSE(diagnoses[0].doomed);
  // The wait set names a and b (the residual a.b under ◇).
  std::string rendered =
      DiagnosisToString(diagnoses, *w.ctx.alphabet());
  EXPECT_NE(rendered.find("parked c"), std::string::npos);
  EXPECT_NE(rendered.find("a"), std::string::npos);
  EXPECT_NE(rendered.find("b"), std::string::npos);
}

TEST(DiagnosticsTest, ParkedEventClearsAfterUnblocking) {
  // 2-chain e.f: f parks on □e; attempting e resolves through the promise
  // handshake (e needs ◇f, parked f grants it) and both fire.
  DiagWorld w(R"(
workflow ch2 {
  event e;
  event f;
  dep d: e . f;
}
)");
  w.AttemptAndRun("f");
  EXPECT_EQ(DiagnoseParked(&w.ctx, w.sched.get()).size(), 1u);
  w.AttemptAndRun("e");
  EXPECT_TRUE(DiagnoseParked(&w.ctx, w.sched.get()).empty());
  EXPECT_TRUE(w.sched->HistoryConsistent(true));
}

TEST(DiagnosticsTest, ThreeChainResolvesThroughOrderedPromises) {
  // All of a, b, c attempted out of order under a·b·c. a needs ◇(b·c) —
  // an *ordered* eventuality that single promises cannot certify. The
  // ordered-promise protocol resolves it: c promises b (assuming b's
  // implied □a), b promises a and forwards c's promise with its
  // after-set {a, b}; a's ◇(b·c) discharges because every after-consistent
  // linearization of the promised events satisfies b·c. Everything fires,
  // in dependency order.
  DiagWorld w(kChainSpec);
  w.AttemptAndRun("b");
  w.AttemptAndRun("c");
  w.AttemptAndRun("a");
  EXPECT_TRUE(DiagnoseParked(&w.ctx, w.sched.get()).empty());
  EXPECT_EQ(TraceToString(w.sched->history(), *w.ctx.alphabet()),
            "<a b c>");
  EXPECT_TRUE(w.sched->HistoryConsistent(true));

  // Causal order flows through as well.
  DiagWorld causal(kChainSpec);
  causal.AttemptAndRun("a");
  causal.AttemptAndRun("b");
  causal.AttemptAndRun("c");
  EXPECT_TRUE(DiagnoseParked(&causal.ctx, causal.sched.get()).empty());
  EXPECT_TRUE(causal.sched->HistoryConsistent(true));
}

TEST(DiagnosticsTest, UnorderedDiamondPairDoesNotDischarge) {
  // ◇(b·c) must NOT discharge from unordered promises: with dependency
  // b + c (either, unordered) there is no after-constraint between them,
  // so an event needing the *ordered* ◇(b·c) keeps waiting.
  DiagWorld w(R"(
workflow mix {
  event a;
  event b;
  event c;
  dep order_after_a: ~a + b . c;   # if a occurs, b then c must follow
}
)");
  // b and c parked? No — their guards under this dependency are
  // permissive until a occurs; attempt a first: it parks on ◇(b·c).
  std::vector<Decision> a_decisions;
  auto lit = w.ctx.alphabet()->ParseLiteral("a");
  ASSERT_TRUE(lit.ok());
  w.sched->Attempt(lit.value(), [&](Decision d) { a_decisions.push_back(d); });
  w.sim.Run();
  EXPECT_EQ(a_decisions.back(), Decision::kParked);
  // b then c occur (their guards allow it); their announcements discharge
  // the ordered residual step by step and a fires.
  w.AttemptAndRun("b");
  w.AttemptAndRun("c");
  EXPECT_EQ(a_decisions.back(), Decision::kAccepted);
  EXPECT_TRUE(w.sched->HistoryConsistent(true));
}

TEST(DiagnosticsTest, DoomedWhenNeededEventForeclosed) {
  // c parks needing □b (chain b.c). We then foreclose b out of band
  // (RestoreOccurrence models a decision whose announcement has not yet
  // reached c): the diagnosis flags the parked attempt as doomed. Note
  // that synthesized guards make this state hard to reach organically —
  // the guard on ~b itself demands ◇~c while c is parked — which is the
  // verifier's race-freedom property showing up in the small.
  DiagWorld w(R"(
workflow ch2 {
  event b;
  event c;
  dep d: b . c;
}
)");
  w.AttemptAndRun("c");
  SymbolId b = w.ctx.alphabet()->Find("b");
  ASSERT_NE(b, kInvalidSymbol);
  w.sched->actor(b)->RestoreOccurrence(EventLiteral::Complement(b));
  std::vector<ParkedDiagnosis> diagnoses =
      DiagnoseParked(&w.ctx, w.sched.get());
  ASSERT_EQ(diagnoses.size(), 1u);
  EXPECT_TRUE(diagnoses[0].doomed);
  EXPECT_NE(DiagnosisToString(diagnoses, *w.ctx.alphabet()).find("[doomed]"),
            std::string::npos);
}

TEST(DiagnosticsTest, DoomedDiagnosisEmitsTraceInstant) {
  // Same foreclosure scenario as above, with the tracer installed: the
  // diagnosis completes the lifecycle taxonomy (attempt → parked → doomed)
  // by stamping a "doomed" instant on the parked actor's lane.
  obs::TraceRecorder recorder;
  DiagWorld w(R"(
workflow ch2 {
  event b;
  event c;
  dep d: b . c;
}
)",
              &recorder);
  w.AttemptAndRun("c");
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "attempt c",
                                 obs::TraceEvent::Phase::kInstant),
            1u);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "parked c",
                                 obs::TraceEvent::Phase::kAsyncBegin),
            1u);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "doomed",
                                 obs::TraceEvent::Phase::kInstant),
            0u);
  SymbolId b = w.ctx.alphabet()->Find("b");
  ASSERT_NE(b, kInvalidSymbol);
  w.sched->actor(b)->RestoreOccurrence(EventLiteral::Complement(b));
  std::vector<ParkedDiagnosis> diagnoses =
      DiagnoseParked(&w.ctx, w.sched.get());
  ASSERT_EQ(diagnoses.size(), 1u);
  ASSERT_TRUE(diagnoses[0].doomed);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "doomed c",
                                 obs::TraceEvent::Phase::kInstant),
            1u);
  // Without the tracer the same diagnosis records nothing extra — the
  // doomed instant rides on DiagnoseParked, it never self-installs.
  DiagWorld plain(R"(
workflow ch2 {
  event b;
  event c;
  dep d: b . c;
}
)");
  EXPECT_EQ(plain.sched->tracer(), nullptr);
}

TEST(DiagnosticsTest, RendersOneLinePerParkedAttempt) {
  DiagWorld w(kChainSpec);
  w.AttemptAndRun("c");  // parks waiting on a·b
  w.AttemptAndRun("b");  // parks waiting on a
  std::vector<ParkedDiagnosis> diagnoses =
      DiagnoseParked(&w.ctx, w.sched.get());
  ASSERT_EQ(diagnoses.size(), 2u);
  std::string rendered = DiagnosisToString(diagnoses, *w.ctx.alphabet());
  EXPECT_NE(rendered.find("parked b"), std::string::npos);
  EXPECT_NE(rendered.find("parked c"), std::string::npos);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 2);
}

TEST(DiagnosticsTest, NamesHottestGuardSiteWhenProfiled) {
  // Without a profiler the diagnosis carries no site attribution.
  {
    DiagWorld w(kChainSpec);
    w.AttemptAndRun("c");
    std::vector<ParkedDiagnosis> diagnoses =
        DiagnoseParked(&w.ctx, w.sched.get());
    ASSERT_EQ(diagnoses.size(), 1u);
    EXPECT_TRUE(diagnoses[0].hottest_site.empty());
  }
  // With one, the parked line points at the dependency whose guard is
  // burning the evaluations while the event sits parked.
  obs::GuardProfiler profiler(/*sample_every=*/1);
  DiagWorld w(kChainSpec, /*tracer=*/nullptr, &profiler);
  w.AttemptAndRun("c");
  std::vector<ParkedDiagnosis> diagnoses =
      DiagnoseParked(&w.ctx, w.sched.get());
  ASSERT_EQ(diagnoses.size(), 1u);
  EXPECT_NE(diagnoses[0].hottest_site.find("d"), std::string::npos);
  EXPECT_NE(diagnoses[0].hottest_site.find("evals"), std::string::npos);
  std::string rendered = DiagnosisToString(diagnoses, *w.ctx.alphabet());
  EXPECT_NE(rendered.find("hottest guard: d"), std::string::npos);
}

}  // namespace
}  // namespace cdes
