#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "runtime/checkpoint.h"
#include "runtime/event_log.h"
#include "runtime/reliable_transport.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace cdes {
namespace {

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

// ------------------------------------------------------ v3 checkpoint logs

EventLog::CheckpointSection SectionFor(const EventLog& log,
                                       std::string payload) {
  EventLog::CheckpointSection section;
  section.covered = log.total_records();
  section.last_stamp = log.last_stamp();
  section.payload = std::move(payload);
  return section;
}

TEST(EventLogV3Test, CheckpointRoundTrips) {
  Alphabet alphabet;
  alphabet.Intern("e");
  alphabet.Intern("f");
  EventLog log;
  log.set_instance(9);
  log.Append({OccurrenceStamp{100, 0}, EventLiteral::Positive(0)});
  log.Append({OccurrenceStamp{250, 1}, EventLiteral::Complement(1)});
  log.InstallCheckpoint(SectionFor(log, "meta 2 250\nhist e ~f"));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_records(), 2u);
  log.Append({OccurrenceStamp{300, 2}, EventLiteral::Positive(1)});

  for (bool sealed : {true, false}) {
    std::string text =
        sealed ? log.Serialize(alphabet) : log.SerializeOpen(alphabet);
    auto parsed = sealed ? EventLog::Deserialize(alphabet, text)
                         : EventLog::LoadTolerant(alphabet, text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed.value().instance(), 9u);
    ASSERT_NE(parsed.value().checkpoint(), nullptr);
    EXPECT_EQ(*parsed.value().checkpoint(), *log.checkpoint());
    EXPECT_EQ(parsed.value().records(), log.records());
    EXPECT_EQ(parsed.value().total_records(), 3u);
  }
}

TEST(EventLogV3Test, PreCompactionFileParsesLikeCompacted) {
  // State B (crash between checkpoint append and truncation): covered
  // records still physically precede the checkpoint section. The parse
  // must land on exactly the state the compacted file (state C) gives.
  Alphabet alphabet;
  alphabet.Intern("e");
  EventLog::Record r1{OccurrenceStamp{10, 0}, EventLiteral::Positive(0)};
  EventLog::Record r2{OccurrenceStamp{20, 1}, EventLiteral::Complement(0)};
  EventLog::Record r3{OccurrenceStamp{30, 2}, EventLiteral::Positive(0)};
  EventLog::CheckpointSection section;
  section.covered = 2;
  section.last_stamp = r2.stamp;
  section.payload = "meta 2 20\nhist e ~e";

  std::string state_b = EventLog::HeaderLine(7) +
                        EventLog::RecordLine(r1, alphabet) +
                        EventLog::RecordLine(r2, alphabet) +
                        EventLog::SectionText(section) +
                        EventLog::RecordLine(r3, alphabet);
  std::string state_c = EventLog::HeaderLine(7) +
                        EventLog::SectionText(section) +
                        EventLog::RecordLine(r3, alphabet);

  bool dropped = true;
  auto b = EventLog::LoadTolerant(alphabet, state_b, &dropped);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_FALSE(dropped);
  auto c = EventLog::LoadTolerant(alphabet, state_c);
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_NE(b.value().checkpoint(), nullptr);
  EXPECT_EQ(*b.value().checkpoint(), *c.value().checkpoint());
  EXPECT_EQ(b.value().records(), c.value().records());
  ASSERT_EQ(b.value().size(), 1u);
  EXPECT_EQ(b.value().records()[0], r3);
  EXPECT_EQ(b.value().total_records(), 3u);
}

TEST(EventLogV3Test, TornCheckpointAtEofFallsBackToRecords) {
  // Crash mid-way through appending the checkpoint section (phase 1 torn):
  // the covered records are still intact above it and carry the state.
  Alphabet alphabet;
  alphabet.Intern("e");
  EventLog::Record r1{OccurrenceStamp{10, 0}, EventLiteral::Positive(0)};
  EventLog::Record r2{OccurrenceStamp{20, 1}, EventLiteral::Complement(0)};
  EventLog::CheckpointSection section;
  section.covered = 2;
  section.last_stamp = r2.stamp;
  section.payload = "meta 2 20\nhist e ~e";
  std::string full = EventLog::HeaderLine(3) +
                     EventLog::RecordLine(r1, alphabet) +
                     EventLog::RecordLine(r2, alphabet) +
                     EventLog::SectionText(section);
  size_t ckpt_at = full.find("ckpt ");
  for (size_t cut = ckpt_at; cut < full.size(); ++cut) {
    auto torn = EventLog::LoadTolerant(alphabet, full.substr(0, cut));
    ASSERT_TRUE(torn.ok()) << "cut " << cut << ": " << torn.status();
    if (torn.value().checkpoint() == nullptr) {
      EXPECT_EQ(torn.value().records(),
                (std::vector<EventLog::Record>{r1, r2}))
          << "cut " << cut;
    } else {
      EXPECT_EQ(*torn.value().checkpoint(), section) << "cut " << cut;
    }
    EXPECT_EQ(torn.value().total_records(), 2u) << "cut " << cut;
  }
}

TEST(EventLogV3Test, ByteTruncationSweepNeverFabricatesState) {
  // Chop a state-B file (records + checkpoint + suffix, no trailer — the
  // live WAL shape) at every byte. Tolerant load must either fail cleanly
  // or produce a prefix of the true history — never wrong records.
  Alphabet alphabet;
  alphabet.Intern("e");
  alphabet.Intern("f");
  std::vector<EventLog::Record> all = {
      {OccurrenceStamp{10, 0}, EventLiteral::Positive(0)},
      {OccurrenceStamp{20, 1}, EventLiteral::Complement(1)},
      {OccurrenceStamp{30, 2}, EventLiteral::Positive(1)},
      {OccurrenceStamp{40, 3}, EventLiteral::Complement(0)},
      {OccurrenceStamp{55, 4}, EventLiteral::Positive(0)},
  };
  EventLog::CheckpointSection section;
  section.covered = 3;
  section.last_stamp = all[2].stamp;
  section.payload = "meta 3 30\nhist e ~f f";

  std::string text = EventLog::HeaderLine(11);
  for (size_t i = 0; i < 3; ++i)
    text += EventLog::RecordLine(all[i], alphabet);
  text += EventLog::SectionText(section);
  for (size_t i = 3; i < all.size(); ++i)
    text += EventLog::RecordLine(all[i], alphabet);

  size_t ok_count = 0;
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    auto got = EventLog::LoadTolerant(alphabet, text.substr(0, cut));
    if (!got.ok()) continue;  // clean failure (e.g. torn header) is fine
    ++ok_count;
    const EventLog& log = got.value();
    // Known prefix length: checkpoint coverage plus explicit records.
    ASSERT_LE(log.total_records(), all.size()) << "cut " << cut;
    size_t base = 0;
    if (log.checkpoint() != nullptr) {
      EXPECT_EQ(*log.checkpoint(), section) << "cut " << cut;
      base = section.covered;
    }
    for (size_t i = 0; i < log.records().size(); ++i) {
      EXPECT_EQ(log.records()[i], all[base + i]) << "cut " << cut;
    }
  }
  EXPECT_GT(ok_count, 0u);
  // The full file parses to the checkpointed form.
  auto full = EventLog::LoadTolerant(alphabet, text);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().total_records(), all.size());
  ASSERT_NE(full.value().checkpoint(), nullptr);
}

TEST(EventLogV3Test, TornHeaderRejected) {
  // A header cut mid-write (no newline) could carry a truncated instance
  // id; both the parser and the router peek must refuse it.
  EXPECT_FALSE(EventLog::LoadTolerant(Alphabet(), "cdeslog v3 41").ok());
  EXPECT_FALSE(EventLog::PeekInstance("cdeslog v3 41").ok());
  auto ok = EventLog::PeekInstance("cdeslog v3 418\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 418u);
}

TEST(EventLogV3Test, TornTrailerDropsNothing) {
  // A trailer line torn mid-write ("checksum 1a") proves every record
  // line above it was already flushed: tolerant load keeps them all and
  // must NOT report a dropped record.
  Alphabet alphabet;
  alphabet.Intern("e");
  EventLog log;
  log.Append({OccurrenceStamp{5, 0}, EventLiteral::Positive(0)});
  log.Append({OccurrenceStamp{6, 1}, EventLiteral::Complement(0)});
  std::string text = log.Serialize(alphabet);
  size_t trailer = text.rfind("checksum ");
  for (size_t keep : {size_t{9}, size_t{10}, size_t{11}}) {
    std::string torn = text.substr(0, trailer + keep);
    EXPECT_FALSE(EventLog::Deserialize(alphabet, torn).ok());
    bool dropped = true;
    auto got = EventLog::LoadTolerant(alphabet, torn, &dropped);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(dropped) << "keep " << keep;
    EXPECT_EQ(got.value().records(), log.records());
  }
}

TEST(EventLogV3Test, DecreasingStampsRejectedOnParse) {
  // Untrusted serialized input with regressing stamps is a Status, not a
  // crash: both loaders refuse it.
  Alphabet alphabet;
  alphabet.Intern("e");
  std::string text =
      EventLog::HeaderLine(1) +
      EventLog::RecordLine({OccurrenceStamp{50, 1}, EventLiteral::Positive(0)},
                           alphabet) +
      EventLog::RecordLine({OccurrenceStamp{40, 0}, EventLiteral::Positive(0)},
                           alphabet);
  auto got = EventLog::LoadTolerant(alphabet, text);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("decrease"), std::string::npos)
      << got.status();
}

TEST(EventLogV3DeathTest, AppendChecksStampMonotonicity) {
  EventLog log;
  log.Append({OccurrenceStamp{50, 1}, EventLiteral::Positive(0)});
  EXPECT_DEATH(
      log.Append({OccurrenceStamp{40, 0}, EventLiteral::Positive(0)}), "");
}

TEST(EventLogV3DeathTest, CheckpointMustCoverWholeLog) {
  EventLog log;
  log.Append({OccurrenceStamp{10, 0}, EventLiteral::Positive(0)});
  EventLog::CheckpointSection section;
  section.covered = 5;  // log only has 1 record
  section.last_stamp = OccurrenceStamp{10, 0};
  EXPECT_DEATH(log.InstallCheckpoint(section), "");
}

// --------------------------------------------------------- guard sexprs

struct SexprWorld {
  SexprWorld() {
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    CDES_CHECK(parsed.ok());
    workflow = std::move(parsed).value();
  }
  EventLiteral Lit(const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    return lit.value();
  }
  WorkflowContext ctx;
  ParsedWorkflow workflow;
};

TEST(SexprTest, GuardRoundTripIsPointerExact) {
  SexprWorld w;
  GuardArena* g = w.ctx.guards();
  ExprArena* x = w.ctx.exprs();
  const Expr* seq = x->Seq(x->Atom(w.Lit("c_buy")), x->Atom(w.Lit("c_book")));
  const Guard* cases[] = {
      g->True(),
      g->False(),
      g->Box(w.Lit("s_buy")),
      g->Neg(w.Lit("~c_buy")),
      g->Diamond(seq),
      g->And(g->Box(w.Lit("s_buy")), g->Diamond(seq)),
      g->Or(g->Neg(w.Lit("c_book")),
            g->And(g->Box(w.Lit("~s_cancel")), g->Diamond(x->Atom(w.Lit("c_buy"))))),
  };
  for (const Guard* guard : cases) {
    std::string sexpr = GuardToSexpr(guard, *w.ctx.alphabet());
    auto back = GuardFromSexpr(g, *w.ctx.alphabet(), sexpr);
    ASSERT_TRUE(back.ok()) << sexpr << ": " << back.status();
    // Hash-consing: re-parsing a canonical node re-interns the identical
    // pointer, which is what lets recovery compare baselines by address.
    EXPECT_EQ(back.value(), guard) << sexpr;
  }
}

TEST(SexprTest, ExprRoundTripIsPointerExact) {
  SexprWorld w;
  ExprArena* x = w.ctx.exprs();
  const Expr* cases[] = {
      x->Zero(),
      x->Top(),
      x->Atom(w.Lit("s_buy")),
      x->Seq(x->Atom(w.Lit("c_buy")), x->Atom(w.Lit("c_book"))),
      x->Or(x->Atom(w.Lit("~c_buy")),
            x->And(x->Atom(w.Lit("s_book")), x->Atom(w.Lit("s_buy")))),
  };
  for (const Expr* expr : cases) {
    std::string sexpr = ExprToSexpr(expr, *w.ctx.alphabet());
    auto back = ExprFromSexpr(x, *w.ctx.alphabet(), sexpr);
    ASSERT_TRUE(back.ok()) << sexpr << ": " << back.status();
    EXPECT_EQ(back.value(), expr) << sexpr;
  }
}

TEST(SexprTest, MalformedSexprsRejected) {
  SexprWorld w;
  for (const char* bad :
       {"", "(", ")", "(and (box s_buy)", "(box nope)", "(box)",
        "(frob s_buy)", "(and (box s_buy)))", "s_buy extra"}) {
    EXPECT_FALSE(
        GuardFromSexpr(w.ctx.guards(), *w.ctx.alphabet(), bad).ok())
        << "guard sexpr: " << bad;
  }
  for (const char* bad : {"", "(seq", "(seq nope)", "(frob s_buy)"}) {
    EXPECT_FALSE(ExprFromSexpr(w.ctx.exprs(), *w.ctx.alphabet(), bad).ok())
        << "expr sexpr: " << bad;
  }
}

// --------------------------------------------------- checkpoint payloads

TEST(CheckpointPayloadTest, RoundTrips) {
  SexprWorld w;
  GuardArena* g = w.ctx.guards();
  CheckpointState state;
  state.next_seq = 7;
  state.clock = 4200;
  state.history = {w.Lit("s_book"), w.Lit("s_buy"), w.Lit("~c_book")};
  ActorCheckpoint actor;
  actor.symbol = w.Lit("c_buy").symbol();
  actor.positive = g->And(g->Box(w.Lit("c_book")), g->Neg(w.Lit("~c_buy")));
  actor.negative = g->Diamond(w.ctx.exprs()->Atom(w.Lit("s_cancel")));
  state.actors.push_back(actor);
  TransportChannelState chan;
  chan.src = 0;
  chan.dst = 1;
  chan.send_next = 4;
  chan.recv_contiguous = 3;
  chan.recv_gapped = {5, 8};
  state.channels.push_back(chan);

  std::string payload = SerializeCheckpoint(state, *w.ctx.alphabet());
  auto back = ParseCheckpoint(g, *w.ctx.alphabet(), payload);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().next_seq, state.next_seq);
  EXPECT_EQ(back.value().clock, state.clock);
  EXPECT_EQ(back.value().history, state.history);
  ASSERT_EQ(back.value().actors.size(), 1u);
  EXPECT_EQ(back.value().actors[0].symbol, actor.symbol);
  EXPECT_EQ(back.value().actors[0].positive, actor.positive);
  EXPECT_EQ(back.value().actors[0].negative, actor.negative);
  EXPECT_EQ(back.value().channels, state.channels);
  // Determinism: serializing the parsed state reproduces the payload.
  EXPECT_EQ(SerializeCheckpoint(back.value(), *w.ctx.alphabet()), payload);
}

TEST(CheckpointPayloadTest, MalformedPayloadsRejected) {
  SexprWorld w;
  GuardArena* g = w.ctx.guards();
  const Alphabet& a = *w.ctx.alphabet();
  // A valid meta prefix for this world's alphabet, to isolate later lines.
  const std::string meta = StrCat("meta 1 10 ", a.size(), " ",
                                  AlphabetFingerprint(a, a.size()));
  EXPECT_FALSE(ParseCheckpoint(g, a, "").ok());
  EXPECT_FALSE(ParseCheckpoint(g, a, "hist 0").ok());    // no meta first
  EXPECT_FALSE(ParseCheckpoint(g, a, "meta 1 10").ok());  // pre-v3 meta arity
  EXPECT_FALSE(ParseCheckpoint(g, a, meta).ok());         // no hist
  EXPECT_FALSE(ParseCheckpoint(g, a, StrCat(meta, "\nhist nope")).ok());
  // Out-of-range symbol ids, in hist and actor position.
  EXPECT_FALSE(
      ParseCheckpoint(g, a, StrCat(meta, "\nhist ", a.size())).ok());
  EXPECT_FALSE(ParseCheckpoint(g, a, StrCat(meta, "\nhist\nactor ", a.size(),
                                            "\npos ^GT\nneg ^GT"))
                   .ok());
  // Truncated actor block.
  EXPECT_FALSE(
      ParseCheckpoint(g, a, StrCat(meta, "\nhist\nactor 0\npos ^GT")).ok());
  EXPECT_FALSE(ParseCheckpoint(g, a, StrCat(meta, "\nhist\nwhat 3")).ok());
  // Fingerprint or symbol-count mismatch: same grammar, different alphabet.
  EXPECT_FALSE(ParseCheckpoint(
                   g, a, StrCat("meta 1 10 ", a.size(), " 12345\nhist"))
                   .ok());
  EXPECT_FALSE(ParseCheckpoint(g, a, StrCat("meta 1 10 ", a.size() + 1, " ",
                                            AlphabetFingerprint(a, a.size()),
                                            "\nhist"))
                   .ok());
}

// ------------------------------------------------- transport watermarks

TEST(TransportSnapshotTest, RestoreThenSnapshotRoundTrips) {
  Simulator sim;
  NetworkOptions nopts;
  nopts.drop_probability = 0.2;  // arm fault injection: reliable path on
  Network net(&sim, 3, nopts);
  ReliableTransport fresh(&net);

  std::vector<TransportChannelState> channels;
  TransportChannelState c01;
  c01.src = 0;
  c01.dst = 1;
  c01.send_next = 6;
  c01.recv_contiguous = 4;
  c01.recv_gapped = {6, 9};
  channels.push_back(c01);
  TransportChannelState c21;
  c21.src = 2;
  c21.dst = 1;
  c21.send_next = 2;
  channels.push_back(c21);

  fresh.RestoreChannels(channels);
  EXPECT_EQ(fresh.SnapshotChannels(), channels);
}

TEST(TransportSnapshotTest, LiveTrafficSnapshotSurvivesRestore) {
  Simulator sim;
  NetworkOptions nopts;
  nopts.drop_probability = 0.3;
  nopts.seed = 7;
  Network net(&sim, 2, nopts);
  ReliableTransport transport(&net);
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    transport.Send(0, 1, 64, [&] { ++delivered; });
  }
  sim.Run();
  ASSERT_EQ(transport.in_flight(), 0u);  // quiescent
  EXPECT_EQ(delivered, 5);

  auto snapshot = transport.SnapshotChannels();
  ASSERT_FALSE(snapshot.empty());
  Simulator sim2;
  Network net2(&sim2, 2, nopts);
  ReliableTransport restored(&net2);
  restored.RestoreChannels(snapshot);
  EXPECT_EQ(restored.SnapshotChannels(), snapshot);
}

// ------------------------------------- scheduler checkpoints, end to end

struct LoggedWorld {
  explicit LoggedWorld(EventLog* log) {
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    CDES_CHECK(parsed.ok());
    workflow = std::move(parsed).value();
    NetworkOptions nopts;
    nopts.base_latency = 100;
    network = std::make_unique<Network>(&sim, 4, nopts);
    GuardSchedulerOptions options;
    options.durable_log = log;
    sched = std::make_unique<GuardScheduler>(&ctx, workflow, network.get(),
                                             options);
  }

  Decision AttemptAndRun(const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    Decision last = Decision::kParked;
    sched->Attempt(lit.value(), [&](Decision d) { last = d; });
    sim.Run();
    return last;
  }

  void CloseToMaximal() {
    for (int round = 0; round < 8 && !sched->Undecided().empty(); ++round) {
      sched->Close();
      sim.Run();
    }
  }

  std::string History() {
    return TraceToString(sched->history(), *ctx.alphabet());
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  ParsedWorkflow workflow;
  std::unique_ptr<GuardScheduler> sched;
};

TEST(SchedulerCheckpointTest, SnapshotRecoverMatchesGenesisReplay) {
  // Run half the workflow, checkpoint + compact the live log, run the
  // rest. Recovery through the checkpointed log must agree — history and
  // every undecided guard — with recovery through full genesis replay.
  EventLog checkpointed;
  std::string full_history;
  std::string genesis_text;
  {
    LoggedWorld w(&checkpointed);
    EXPECT_EQ(w.AttemptAndRun("s_buy"), Decision::kAccepted);
    EXPECT_EQ(w.AttemptAndRun("c_book"), Decision::kAccepted);

    genesis_text = checkpointed.SerializeOpen(*w.ctx.alphabet());
    CheckpointState state = w.sched->Snapshot();
    EXPECT_EQ(state.history.size(), checkpointed.size());
    checkpointed.InstallCheckpoint(SectionFor(
        checkpointed, SerializeCheckpoint(state, *w.ctx.alphabet())));

    EXPECT_EQ(w.AttemptAndRun("c_buy"), Decision::kAccepted);
    full_history = w.History();
    // Suffix records landed after the checkpoint; genesis text gets the
    // same suffix for the comparison run.
    for (const auto& record : checkpointed.records()) {
      genesis_text += EventLog::RecordLine(record, *w.ctx.alphabet());
    }
  }
  ASSERT_NE(checkpointed.checkpoint(), nullptr);
  ASSERT_GT(checkpointed.size(), 0u);

  LoggedWorld from_ckpt(nullptr);
  ASSERT_TRUE(from_ckpt.sched->Recover(checkpointed).ok());
  EXPECT_EQ(from_ckpt.History(), full_history);

  LoggedWorld from_genesis(nullptr);
  auto genesis_log =
      EventLog::LoadTolerant(*from_genesis.ctx.alphabet(), genesis_text);
  ASSERT_TRUE(genesis_log.ok()) << genesis_log.status();
  EXPECT_EQ(genesis_log.value().checkpoint(), nullptr);
  ASSERT_TRUE(from_genesis.sched->Recover(genesis_log.value()).ok());
  EXPECT_EQ(from_genesis.History(), full_history);

  for (const char* name : {"s_cancel", "~s_cancel"}) {
    auto lit_c = from_ckpt.ctx.alphabet()->ParseLiteral(name);
    auto lit_g = from_genesis.ctx.alphabet()->ParseLiteral(name);
    ASSERT_TRUE(lit_c.ok() && lit_g.ok());
    EXPECT_EQ(GuardToString(from_ckpt.sched->CurrentGuardOf(lit_c.value()),
                            *from_ckpt.ctx.alphabet()),
              GuardToString(from_genesis.sched->CurrentGuardOf(lit_g.value()),
                            *from_genesis.ctx.alphabet()))
        << name;
  }

  // Both recovered worlds finish to the same consistent maximal trace.
  from_ckpt.CloseToMaximal();
  from_genesis.CloseToMaximal();
  EXPECT_TRUE(from_ckpt.sched->Undecided().empty());
  EXPECT_TRUE(from_ckpt.sched->HistoryConsistent(true));
  EXPECT_EQ(from_ckpt.History(), from_genesis.History());
}

TEST(SchedulerCheckpointTest, CrashPointSweepOverCheckpointWrite) {
  // Simulate kill -9 at every byte between "checkpoint appended" (state B)
  // and "prefix truncated" (state C): chop the state-B image everywhere.
  // Whatever tolerant load recovers, a fresh scheduler must accept it and
  // close to a maximal trace whose prefix matches the uninterrupted run.
  EventLog log;
  std::string reference_history;
  std::string state_b;
  {
    LoggedWorld w(&log);
    EXPECT_EQ(w.AttemptAndRun("s_buy"), Decision::kAccepted);
    state_b = log.SerializeOpen(*w.ctx.alphabet());  // records so far
    CheckpointState state = w.sched->Snapshot();
    EventLog::CheckpointSection section =
        SectionFor(log, SerializeCheckpoint(state, *w.ctx.alphabet()));
    state_b += EventLog::SectionText(section);  // phase-1 append
    EXPECT_EQ(w.AttemptAndRun("c_book"), Decision::kAccepted);
    reference_history = w.History();
  }

  LoggedWorld uninterrupted(nullptr);
  ASSERT_TRUE(uninterrupted.sched->Recover(log).ok());
  uninterrupted.CloseToMaximal();
  std::string maximal = uninterrupted.History();

  for (size_t cut = 0; cut <= state_b.size(); ++cut) {
    auto got = EventLog::LoadTolerant(*uninterrupted.ctx.alphabet(),
                                      state_b.substr(0, cut));
    if (!got.ok()) continue;  // torn header region: cleanly refused
    LoggedWorld w(nullptr);
    auto parsed = EventLog::LoadTolerant(*w.ctx.alphabet(),
                                         state_b.substr(0, cut));
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(w.sched->Recover(parsed.value()).ok()) << "cut " << cut;
    // Replay what the crash interrupted, then close: the outcome must be
    // byte-identical to the uninterrupted world's maximal trace.
    w.AttemptAndRun("s_buy");
    w.AttemptAndRun("c_book");
    EXPECT_EQ(w.History(), reference_history) << "cut " << cut;
    w.AttemptAndRun("c_buy");
    uninterrupted.AttemptAndRun("c_buy");
    w.CloseToMaximal();
    EXPECT_TRUE(w.sched->HistoryConsistent(true)) << "cut " << cut;
  }
}

TEST(SchedulerCheckpointTest, RecoverRejectsDoubleDecidedLog) {
  // A log (or checkpoint) that decides the same symbol twice is corrupt
  // input: Recover must return a Status, not crash the process.
  LoggedWorld probe(nullptr);
  auto lit = probe.ctx.alphabet()->ParseLiteral("s_buy");
  ASSERT_TRUE(lit.ok());
  EventLog log;
  log.Append({OccurrenceStamp{10, 0}, lit.value()});
  log.Append({OccurrenceStamp{20, 1}, lit.value()});
  LoggedWorld w(nullptr);
  Status status = w.sched->Recover(log);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("twice"), std::string::npos) << status;
}

}  // namespace
}  // namespace cdes
