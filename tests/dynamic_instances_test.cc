// Dynamic workflow instantiation (§5.1: "Attempting some key event binds
// the parameters of all events, thus instantiating the workflow afresh"):
// instances are installed into a running scheduler as customers arrive,
// without disturbing in-flight instances.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/strings.h"
#include "params/param_workflow.h"
#include "sched/guard_scheduler.h"

namespace cdes {
namespace {

struct DynamicWorld {
  DynamicWorld() {
    travel = std::make_unique<WorkflowTemplate>(TravelTemplate());
    NetworkOptions nopts;
    nopts.base_latency = 100;
    network = std::make_unique<Network>(&sim, 8, nopts);
    // Boot with the first customer only.
    auto first = travel->Instantiate(&ctx, {{"cid", 1}});
    CDES_CHECK(first.ok());
    sched = std::make_unique<GuardScheduler>(&ctx, first.value(),
                                             network.get());
  }

  Status Arrive(ParamValue cid) {
    CDES_ASSIGN_OR_RETURN(ParsedWorkflow instance,
                          travel->Instantiate(&ctx, {{"cid", cid}}));
    return sched->AddInstance(instance);
  }

  Decision AttemptAndRun(const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    Decision last = Decision::kParked;
    sched->Attempt(lit.value(), [&](Decision d) { last = d; });
    sim.Run();
    return last;
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  std::unique_ptr<WorkflowTemplate> travel;
  std::unique_ptr<GuardScheduler> sched;
};

TEST(DynamicInstancesTest, CustomerArrivesMidFlight) {
  DynamicWorld w;
  // Customer 1 is mid-workflow...
  EXPECT_EQ(w.AttemptAndRun("s_buy[1]"), Decision::kAccepted);
  EXPECT_EQ(w.AttemptAndRun("c_book[1]"), Decision::kAccepted);
  // ...when customer 2 arrives.
  ASSERT_TRUE(w.Arrive(2).ok());
  EXPECT_EQ(w.AttemptAndRun("s_buy[2]"), Decision::kAccepted);
  // Both continue independently.
  EXPECT_EQ(w.AttemptAndRun("c_buy[1]"), Decision::kAccepted);
  EXPECT_EQ(w.AttemptAndRun("c_book[2]"), Decision::kAccepted);
  EXPECT_EQ(w.AttemptAndRun("~c_buy[2]"), Decision::kAccepted);
  EXPECT_TRUE(w.sched->HistoryConsistent());
  EXPECT_EQ(w.sched->symbols().size(), 10u);
}

TEST(DynamicInstancesTest, ManyArrivalsInterleaved) {
  DynamicWorld w;
  for (ParamValue cid = 2; cid <= 12; ++cid) {
    ASSERT_TRUE(w.Arrive(cid).ok());
    // Each arrival starts immediately, interleaved with older instances.
    EXPECT_EQ(w.AttemptAndRun(StrCat("s_buy[", cid, "]")),
              Decision::kAccepted);
  }
  for (ParamValue cid = 1; cid <= 12; ++cid) {
    if (cid == 1) {
      EXPECT_EQ(w.AttemptAndRun("s_buy[1]"), Decision::kAccepted);
    }
    EXPECT_EQ(w.AttemptAndRun(StrCat("c_book[", cid, "]")),
              Decision::kAccepted);
    EXPECT_EQ(w.AttemptAndRun(StrCat("c_buy[", cid, "]")),
              Decision::kAccepted);
  }
  EXPECT_TRUE(w.sched->HistoryConsistent());
}

TEST(DynamicInstancesTest, DuplicateInstanceRejected) {
  DynamicWorld w;
  EXPECT_TRUE(w.Arrive(2).ok());
  EXPECT_EQ(w.Arrive(2).code(), StatusCode::kAlreadyExists);
  // Customer 1 (installed at construction) also collides.
  EXPECT_EQ(w.Arrive(1).code(), StatusCode::kAlreadyExists);
}

TEST(DynamicInstancesTest, ArrivalDoesNotDisturbParkedAttempts) {
  DynamicWorld w;
  ASSERT_EQ(w.AttemptAndRun("s_buy[1]"), Decision::kAccepted);
  std::vector<Decision> c_buy_decisions;
  auto lit = w.ctx.alphabet()->ParseLiteral("c_buy[1]");
  ASSERT_TRUE(lit.ok());
  w.sched->Attempt(lit.value(),
                   [&](Decision d) { c_buy_decisions.push_back(d); });
  w.sim.Run();
  EXPECT_EQ(c_buy_decisions.back(), Decision::kParked);

  ASSERT_TRUE(w.Arrive(2).ok());
  EXPECT_EQ(w.AttemptAndRun("s_buy[2]"), Decision::kAccepted);
  // The parked commit is untouched by the arrival and resolves normally.
  EXPECT_EQ(c_buy_decisions.back(), Decision::kParked);
  EXPECT_EQ(w.AttemptAndRun("c_book[1]"), Decision::kAccepted);
  EXPECT_EQ(c_buy_decisions.back(), Decision::kAccepted);
}

}  // namespace
}  // namespace cdes
