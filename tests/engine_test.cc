// Tests for the multi-instance workflow engine (src/engine): sharded
// execution, determinism across shard counts, admission backpressure,
// durable-log recovery (including torn tails), and the metrics snapshot.
// The TSan stress cases at the bottom run under the CI thread-sanitizer job.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/json.h"

namespace cdes::engine {
namespace {

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

EngineSpecRef TravelSpec() {
  auto spec = EngineSpec::FromText(kTravelSpec);
  CDES_CHECK(spec.ok()) << spec.status();
  return spec.value();
}

/// A deterministic mix of customer journeys, keyed by instance index.
InstanceScript ScriptFor(size_t i) {
  InstanceScript script;
  script.tag = 1000 + i;
  switch (i % 3) {
    case 0:  // happy path: both transactions commit
      script.attempts = {"s_buy", "c_book", "c_buy"};
      break;
    case 1:  // compensation: the purchase aborts, booking gets cancelled
      script.attempts = {"s_buy", "c_book", "~c_buy"};
      break;
    default:  // the customer never buys
      script.attempts = {"~s_buy"};
      break;
  }
  return script;
}

std::map<uint64_t, InstanceResult> ById(std::vector<InstanceResult> results) {
  std::map<uint64_t, InstanceResult> by_id;
  for (InstanceResult& r : results) by_id[r.id] = std::move(r);
  return by_id;
}

TEST(EngineTest, SingleInstanceHappyPath) {
  EngineOptions opts;
  opts.shards = 1;
  Engine eng(TravelSpec(), opts);
  auto id = eng.Submit(ScriptFor(0));
  ASSERT_TRUE(id.ok()) << id.status();
  eng.Drain();
  auto results = eng.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  const InstanceResult& r = results[0];
  EXPECT_EQ(r.id, id.value());
  EXPECT_EQ(r.tag, 1000u);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.maximal);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.accepted, 3u);
  EXPECT_GE(r.events, 4u);  // three scripted commits + auto-triggered s_book
  EXPECT_NE(r.history.find("c_buy"), std::string::npos);
}

TEST(EngineTest, ManyInstancesAllConsistent) {
  EngineOptions opts;
  opts.shards = 2;
  Engine eng(TravelSpec(), opts);
  constexpr size_t kInstances = 60;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  }
  eng.Drain();
  eng.Stop();
  auto results = eng.TakeResults();
  ASSERT_EQ(results.size(), kInstances);
  for (const InstanceResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << "instance " << r.id << ": " << r.error;
    EXPECT_TRUE(r.maximal) << "instance " << r.id;
    EXPECT_TRUE(r.consistent) << "instance " << r.id << ": " << r.history;
  }
  // Modulo placement spread both shards' worth of work.
  EngineMetricsSnapshot snap = eng.Metrics();
  EXPECT_EQ(snap.shard_instances[0], kInstances / 2);
  EXPECT_EQ(snap.shard_instances[1], kInstances / 2);
}

// The headline determinism guarantee: same seed + same submission order
// produce identical per-instance histories no matter how many shards the
// engine runs (placement and thread interleaving must not leak into any
// instance's world).
TEST(EngineTest, DeterministicAcrossShardCounts) {
  constexpr size_t kInstances = 48;
  std::map<uint64_t, std::string> reference;
  for (size_t shards : {1u, 2u, 4u}) {
    EngineOptions opts;
    opts.shards = shards;
    opts.seed = 12345;
    opts.jitter = 500;  // make the seeded RNG actually shape each world
    Engine eng(TravelSpec(), opts);
    for (size_t i = 0; i < kInstances; ++i) {
      ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
    }
    eng.Drain();
    auto by_id = ById(eng.TakeResults());
    ASSERT_EQ(by_id.size(), kInstances);
    if (reference.empty()) {
      for (const auto& [id, r] : by_id) reference[id] = r.history;
      continue;
    }
    for (const auto& [id, r] : by_id) {
      EXPECT_EQ(r.history, reference[id])
          << "instance " << id << " diverged at " << shards << " shards";
    }
  }
}

// A different seed must actually change something (otherwise the previous
// test would pass vacuously on constant output).
TEST(EngineTest, SeedReachesInstanceWorlds) {
  auto run = [](uint64_t seed) {
    EngineOptions opts;
    opts.shards = 1;
    opts.seed = seed;
    opts.jitter = 500;
    Engine eng(TravelSpec(), opts);
    for (size_t i = 0; i < 16; ++i) (void)eng.Submit(ScriptFor(i));
    eng.Drain();
    uint64_t total_time = 0;
    for (const InstanceResult& r : eng.TakeResults()) total_time += r.sim_time;
    return total_time;
  };
  // Latency jitter is drawn from the seeded per-instance RNG, so the
  // aggregate simulated time differs across seeds.
  EXPECT_NE(run(1), run(999));
}

TEST(EngineTest, BackpressureRejectsWhenFull) {
  EngineOptions opts;
  opts.shards = 2;
  opts.max_in_flight = 4;
  opts.start_paused = true;  // nothing completes until Resume
  Engine eng(TravelSpec(), opts);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(eng.TrySubmit(ScriptFor(i)).ok());
  }
  auto overflow = eng.TrySubmit(ScriptFor(4));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(eng.Metrics().instances_rejected, 1u);
  EXPECT_EQ(eng.Metrics().instances_in_flight, 4u);

  eng.Drain();  // resumes, then waits
  EXPECT_EQ(eng.Metrics().instances_in_flight, 0u);
  // Capacity is back: the same submission is admitted now.
  EXPECT_TRUE(eng.TrySubmit(ScriptFor(4)).ok());
  eng.Drain();
  EXPECT_EQ(eng.TakeResults().size(), 5u);
}

TEST(EngineTest, UnknownEventSurfacesAsInstanceError) {
  EngineOptions opts;
  opts.shards = 1;
  Engine eng(TravelSpec(), opts);
  InstanceScript script;
  script.attempts = {"s_buy", "no_such_event"};
  ASSERT_TRUE(eng.Submit(std::move(script)).ok());
  eng.Drain();
  auto results = eng.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].error.find("no_such_event"), std::string::npos);
  EXPECT_FALSE(results[0].consistent);
}

TEST(EngineTest, RecoverResumesFromDurableLogs) {
  // Phase 1: run instances that stop mid-workflow (no closure), keeping
  // durable logs — stand-ins for instances in flight at a crash.
  std::vector<std::string> logs;
  std::map<uint64_t, std::string> pre_crash_history;
  {
    EngineOptions opts;
    opts.shards = 2;
    opts.durable_logs = true;
    Engine eng(TravelSpec(), opts);
    for (size_t i = 0; i < 6; ++i) {
      InstanceScript script;
      script.tag = i;
      script.attempts = {"s_buy", "c_book"};
      script.close = false;  // leave c_buy / s_cancel undecided
      ASSERT_TRUE(eng.Submit(std::move(script)).ok());
    }
    eng.Drain();
    for (InstanceResult& r : eng.TakeResults()) {
      ASSERT_TRUE(r.error.empty()) << r.error;
      ASSERT_FALSE(r.maximal);
      ASSERT_FALSE(r.log_text.empty());
      pre_crash_history[r.id] = r.history;
      logs.push_back(std::move(r.log_text));
    }
  }

  // Phase 2: a fresh engine rebuilds every instance from its log and
  // closes it to a maximal trace.
  EngineOptions opts;
  opts.shards = 2;
  opts.durable_logs = true;
  Engine eng(TravelSpec(), opts);
  ASSERT_TRUE(eng.Recover(logs).ok());
  eng.Drain();
  auto by_id = ById(eng.TakeResults());
  ASSERT_EQ(by_id.size(), 6u);
  for (const auto& [id, r] : by_id) {
    EXPECT_TRUE(r.error.empty()) << "instance " << id << ": " << r.error;
    EXPECT_TRUE(r.maximal) << "instance " << id;
    EXPECT_TRUE(r.consistent) << "instance " << id << ": " << r.history;
    // The recovered history extends the pre-crash one (rendered traces are
    // "<a b c>", so drop the closing bracket before the prefix check).
    std::string prefix = pre_crash_history[id];
    ASSERT_FALSE(prefix.empty());
    prefix.pop_back();
    EXPECT_EQ(r.history.rfind(prefix, 0), 0u)
        << "instance " << id << ": '" << r.history << "' does not extend '"
        << pre_crash_history[id] << "'";
    EXPECT_GT(r.history.size(), pre_crash_history[id].size());
  }
  // New submissions allocate above every recovered id.
  auto next = eng.Submit(ScriptFor(0));
  ASSERT_TRUE(next.ok());
  EXPECT_GE(next.value(), 6u);
  eng.Drain();
}

TEST(EngineTest, RecoverToleratesTornTail) {
  std::string log_text;
  {
    EngineOptions opts;
    opts.shards = 1;
    opts.durable_logs = true;
    Engine eng(TravelSpec(), opts);
    InstanceScript script;
    script.attempts = {"s_buy", "c_book"};
    script.close = false;
    ASSERT_TRUE(eng.Submit(std::move(script)).ok());
    eng.Drain();
    auto results = eng.TakeResults();
    ASSERT_EQ(results.size(), 1u);
    log_text = results[0].log_text;
    ASSERT_FALSE(log_text.empty());
  }
  // Simulate a crash mid-append: drop the trailer and cut the final record
  // line in half.
  size_t trailer = log_text.rfind("checksum ");
  ASSERT_NE(trailer, std::string::npos);
  std::string torn = log_text.substr(0, trailer);
  size_t last_line = torn.rfind('\n', torn.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  torn = torn.substr(0, last_line + 1 + (torn.size() - last_line) / 2);

  EngineOptions opts;
  opts.shards = 1;
  Engine eng(TravelSpec(), opts);
  ASSERT_TRUE(eng.Recover({torn}).ok());
  eng.Drain();
  auto results = eng.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].error.empty()) << results[0].error;
  // The torn final record is gone, but the instance still closes maximally.
  EXPECT_TRUE(results[0].maximal);
  EXPECT_TRUE(results[0].consistent) << results[0].history;
}

TEST(EngineTest, MetricsSnapshotAddsUp) {
  EngineOptions opts;
  opts.shards = 2;
  Engine eng(TravelSpec(), opts);
  constexpr size_t kInstances = 20;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  }
  eng.Drain();
  eng.Stop();
  EngineMetricsSnapshot snap = eng.Metrics();
  EXPECT_EQ(snap.shards, 2u);
  EXPECT_EQ(snap.instances_submitted, kInstances);
  EXPECT_EQ(snap.instances_completed, kInstances);
  EXPECT_EQ(snap.instances_in_flight, 0u);
  EXPECT_GT(snap.events, 0u);
  EXPECT_GT(snap.sim_steps, snap.events);  // machinery outweighs occurrences
  uint64_t shard_sum = 0;
  for (uint64_t n : snap.shard_instances) shard_sum += n;
  EXPECT_EQ(shard_sum, kInstances);

  obs::MetricsRegistry registry;
  snap.PublishTo(&registry);
  EXPECT_EQ(registry.gauge("engine.instances.completed")->value(),
            static_cast<double>(kInstances));
  EXPECT_EQ(registry.gauge("engine.shards")->value(), 2.0);
  EXPECT_FALSE(snap.ToString().empty());

  // Shard-private scheduler registries are readable after Stop and carry
  // the per-event counters for every instance the shard ran.
  uint64_t occurrences = 0;
  for (size_t k = 0; k < eng.shard_count(); ++k) {
    const auto& counters = eng.shard_metrics(k).counters();
    auto it = counters.find("sched.occurrences");
    ASSERT_NE(it, counters.end()) << "shard " << k;
    occurrences += it->second->value();
  }
  EXPECT_EQ(occurrences, snap.events);
}

TEST(EngineTest, InstanceSpansRecordedWhenTraced) {
  obs::TraceRecorder recorder;
  EngineOptions opts;
  opts.shards = 2;
  opts.tracer = &recorder;
  Engine eng(TravelSpec(), opts);
  for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  eng.Drain();
  eng.Stop();
  size_t spans = 0;
  for (const auto& ev : recorder.events()) {
    if (ev.name.rfind("instance ", 0) == 0) ++spans;
  }
  EXPECT_EQ(spans, 8u);
}

/// Finds `name` in the snapshot's histogram digests, or nullptr.
const EngineMetricsSnapshot::HistogramSummary* FindHistogram(
    const EngineMetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(EngineTest, LatencyHistogramsSummarizedInSnapshot) {
  EngineOptions opts;
  opts.shards = 2;
  opts.lifecycle_metrics = true;
  Engine eng(TravelSpec(), opts);
  constexpr size_t kInstances = 12;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  }
  eng.Drain();
  eng.Stop();
  EngineMetricsSnapshot snap = eng.Metrics();
  // Submit→complete and admission-wait are observed once per instance in
  // the manager's registry.
  const auto* lat = FindHistogram(snap, "engine.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, kInstances);
  EXPECT_GE(lat->p99, lat->p50);
  const auto* wait = FindHistogram(snap, "engine.admission_wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, kInstances);
  // After Stop the worker-confined shard registries merge in too: the
  // per-instance scheduler lifecycle histograms become engine-level
  // digests (that is what lifecycle_metrics buys).
  EXPECT_NE(FindHistogram(snap, "sched.decision_latency_us"), nullptr);

  // PublishTo exports each digest as <name>.{count,mean,p50,p99,max}
  // gauges, and ToString renders one line per histogram.
  obs::MetricsRegistry registry;
  snap.PublishTo(&registry);
  EXPECT_EQ(registry.gauge("engine.latency_us.count")->value(),
            static_cast<double>(kInstances));
  EXPECT_NE(snap.ToString().find("engine.latency_us"), std::string::npos);
}

TEST(EngineTest, TelemetryFileStreamsParseableSnapshots) {
  const std::string path =
      ::testing::TempDir() + "cdes_engine_telemetry.jsonl";
  std::remove(path.c_str());
  EngineOptions opts;
  opts.shards = 2;
  Engine eng(TravelSpec(), opts);
  ASSERT_TRUE(
      eng.StartTelemetryFile(std::chrono::milliseconds(5), path).ok());
  constexpr size_t kInstances = 16;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  }
  eng.Drain();
  eng.Stop();  // joins the publisher, then emits one final covering line
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line, last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    last = line;
    // Every line is one valid JSON object (the cdes-top contract).
    EXPECT_TRUE(obs::ParseJson(line).ok()) << line;
  }
  ASSERT_GE(lines, 1u);
  auto parsed = obs::ParseJson(last);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue& snap = parsed.value();
  EXPECT_DOUBLE_EQ(snap.Find("schema_version")->number(), 2.0);
  EXPECT_DOUBLE_EQ(snap.Find("completed")->number(),
                   static_cast<double>(kInstances));
  EXPECT_DOUBLE_EQ(snap.Find("in_flight")->number(), 0.0);
  ASSERT_NE(snap.Find("shard_queue_depth"), nullptr);
  EXPECT_EQ(snap.Find("shard_queue_depth")->array().size(), 2u);
  // The final line lands after shutdown, so it carries the full-run
  // latency histogram.
  const obs::JsonValue* hist = snap.Find("histograms");
  ASSERT_NE(hist, nullptr);
  const obs::JsonValue* lat = hist->Find("engine.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number(),
                   static_cast<double>(kInstances));
  std::remove(path.c_str());
}

TEST(EngineTest, FlowEventsLinkSubmitToCompletion) {
  obs::TraceRecorder recorder;
  obs::GuardProfiler profiler(/*sample_every=*/1);
  EngineOptions opts;
  opts.shards = 2;
  opts.tracer = &recorder;
  opts.profiler = &profiler;
  Engine eng(TravelSpec(), opts);
  constexpr size_t kInstances = 10;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  }
  eng.Drain();
  eng.Stop();
  // Each instance gets a flow arrow from its submit slice on the engine
  // lane to its completion span on whichever shard ran it.
  std::set<uint64_t> start_ids, end_ids;
  for (const obs::TraceEvent& e : recorder.events()) {
    if (e.name != "instance") continue;
    if (e.phase == obs::TraceEvent::Phase::kFlowStart) {
      EXPECT_EQ(e.pid, kEngineTracePid);
      EXPECT_TRUE(start_ids.insert(e.id).second) << e.id;
    } else if (e.phase == obs::TraceEvent::Phase::kFlowEnd) {
      EXPECT_LT(e.pid, 2);  // a shard lane
      EXPECT_TRUE(end_ids.insert(e.id).second) << e.id;
    }
  }
  EXPECT_EQ(start_ids.size(), kInstances);
  EXPECT_EQ(start_ids, end_ids);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kSim, "submit ",
                                 obs::TraceEvent::Phase::kComplete),
            kInstances);
  // With the shared profiler attached, the JSONL snapshot line names the
  // hottest guard sites.
  auto parsed = obs::ParseJson(eng.Metrics().ToJsonLine(123, &profiler));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* hot = parsed.value().Find("hot_guards");
  ASSERT_NE(hot, nullptr);
  ASSERT_FALSE(hot->array().empty());
  EXPECT_NE(hot->array()[0].Find("site"), nullptr);
}

TEST(EngineTest, RecoverRejectsDuplicateInstanceIds) {
  // Two logs claiming the same instance id would run the instance twice on
  // its shard; Recover must refuse the whole batch up front, before any
  // instance materializes.
  std::string log_text;
  {
    EngineOptions opts;
    opts.shards = 1;
    opts.durable_logs = true;
    Engine eng(TravelSpec(), opts);
    InstanceScript script;
    script.attempts = {"s_buy"};
    script.close = false;
    ASSERT_TRUE(eng.Submit(std::move(script)).ok());
    eng.Drain();
    auto results = eng.TakeResults();
    ASSERT_EQ(results.size(), 1u);
    log_text = results[0].log_text;
  }
  EngineOptions opts;
  opts.shards = 2;
  Engine eng(TravelSpec(), opts);
  Status status = eng.Recover({log_text, log_text});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate instance id"), std::string::npos)
      << status;
  // Nothing was admitted: the engine drains instantly with no results.
  EXPECT_EQ(eng.Metrics().instances_in_flight, 0u);
  eng.Drain();
  EXPECT_TRUE(eng.TakeResults().empty());
}

TEST(EngineTest, CheckpointedLogRecoversLikeGenesisLog) {
  // The same instance run twice: once with plain durable logs (genesis
  // replay on recovery) and once with an aggressive checkpoint policy
  // (restore + empty suffix). Recovery must land both on the same maximal
  // history.
  const std::string dir = ::testing::TempDir() + "cdes_ckpt_engine";
  std::filesystem::remove_all(dir);
  auto run_phase1 = [&](bool checkpointed) {
    EngineOptions opts;
    opts.shards = 1;
    if (checkpointed) {
      opts.wal_dir = dir;
      opts.checkpoint_every = 1;  // compact at every quiescent turn
    } else {
      opts.durable_logs = true;
    }
    Engine eng(TravelSpec(), opts);
    InstanceScript script;
    script.attempts = {"s_buy", "c_book"};
    script.close = false;
    CDES_CHECK(eng.Submit(std::move(script)).ok());
    eng.Drain();
    eng.Stop();
    auto results = eng.TakeResults();
    CDES_CHECK(results.size() == 1);
    CDES_CHECK(results[0].error.empty()) << results[0].error;
    if (checkpointed) {
      // The policy actually fired and the sealed log carries a section.
      auto it = eng.shard_metrics(0).counters().find("engine.checkpoints");
      CDES_CHECK(it != eng.shard_metrics(0).counters().end());
      CDES_CHECK(it->second->value() > 0);
      CDES_CHECK(results[0].log_text.find("ckpt ") != std::string::npos);
    } else {
      CDES_CHECK(results[0].log_text.find("ckpt ") == std::string::npos);
    }
    return results[0].log_text;
  };
  std::string genesis_log = run_phase1(false);
  std::string checkpointed_log = run_phase1(true);
  // Completed instances retire their WAL files; the sealed log is the
  // durable record.
  size_t leftover = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);

  auto recover = [&](const std::string& log_text) {
    EngineOptions opts;
    opts.shards = 1;
    Engine eng(TravelSpec(), opts);
    CDES_CHECK(eng.Recover({log_text}).ok());
    eng.Drain();
    auto results = eng.TakeResults();
    CDES_CHECK(results.size() == 1);
    CDES_CHECK(results[0].error.empty()) << results[0].error;
    CDES_CHECK(results[0].maximal);
    CDES_CHECK(results[0].consistent);
    return results[0].history;
  };
  EXPECT_EQ(recover(checkpointed_log), recover(genesis_log));
  std::filesystem::remove_all(dir);
}

TEST(EngineTest, WalDirAbortThenRecoverDir) {
  // Crash smoke: run a wal_dir engine with group commit and a checkpoint
  // policy, kill it mid-flight (Abort), and point a fresh engine at the
  // directory. Every instance recovered from disk must be one the dead
  // engine never reported, and must close to a consistent maximal trace.
  const std::string dir = ::testing::TempDir() + "cdes_wal_abort";
  std::filesystem::remove_all(dir);
  std::set<uint64_t> completed_before_crash;
  constexpr size_t kInstances = 24;
  {
    EngineOptions opts;
    opts.shards = 2;
    opts.wal_dir = dir;
    opts.checkpoint_every = 2;
    opts.group_commit_records = 3;
    Engine eng(TravelSpec(), opts);
    for (size_t i = 0; i < kInstances; ++i) {
      ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
    }
    eng.Abort();  // simulated kill -9: in-flight instances stay on disk
    for (const InstanceResult& r : eng.TakeResults()) {
      completed_before_crash.insert(r.id);
    }
  }

  EngineOptions opts;
  opts.shards = 2;
  opts.wal_dir = dir;  // the restarted engine keeps journaling
  Engine eng(TravelSpec(), opts);
  ASSERT_TRUE(eng.RecoverDir(dir).ok());
  eng.Drain();
  for (const InstanceResult& r : eng.TakeResults()) {
    EXPECT_EQ(completed_before_crash.count(r.id), 0u)
        << "instance " << r.id << " recovered although already completed";
    EXPECT_TRUE(r.error.empty()) << "instance " << r.id << ": " << r.error;
    EXPECT_TRUE(r.maximal) << "instance " << r.id;
    EXPECT_TRUE(r.consistent) << "instance " << r.id << ": " << r.history;
  }
  // Recovered instances completed and retired their files.
  size_t leftover = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(dir);
}

TEST(EngineTest, RecoverDirOnMissingDirectoryFails) {
  EngineOptions opts;
  opts.shards = 1;
  Engine eng(TravelSpec(), opts);
  EXPECT_FALSE(eng.RecoverDir("/nonexistent/cdes/wal").ok());
}

// ---- TSan stress: run under the CI thread-sanitizer job ----

// Submissions, metric snapshots, and result draining race against four
// worker shards; TSan checks the mailbox/atomics story, the assertions
// check nothing is lost.
TEST(EngineStressTest, ConcurrentSubmitSnapshotAndDrain) {
  EngineOptions opts;
  opts.shards = 4;
  opts.max_in_flight = 64;
  opts.max_resident_per_shard = 8;
  Engine eng(TravelSpec(), opts);
  constexpr size_t kInstances = 300;
  std::vector<InstanceResult> results;
  for (size_t i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());  // blocks on backpressure
    if (i % 17 == 0) {
      (void)eng.Metrics();
      for (auto& r : eng.TakeResults()) results.push_back(std::move(r));
    }
  }
  eng.Drain();
  eng.Stop();
  for (auto& r : eng.TakeResults()) results.push_back(std::move(r));
  ASSERT_EQ(results.size(), kInstances);
  for (const InstanceResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << "instance " << r.id << ": " << r.error;
    EXPECT_TRUE(r.consistent) << "instance " << r.id;
  }
}

TEST(EngineStressTest, StopWithWorkStillQueued) {
  EngineOptions opts;
  opts.shards = 4;
  opts.start_paused = true;
  Engine eng(TravelSpec(), opts);
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(eng.Submit(ScriptFor(i)).ok());
  // Stop resumes the shards and lets them drain their mailboxes before
  // joining: nothing already admitted is dropped.
  eng.Stop();
  EXPECT_EQ(eng.TakeResults().size(), 100u);
}

}  // namespace
}  // namespace cdes::engine
