// Failure injection: the distributed scheduler under adversarial message
// timing (non-FIFO links, heavy jitter, extreme latency asymmetry),
// concurrent conflicting attempts, and mid-workflow aborts. Every run must
// realize a history satisfying all dependencies; fixed seeds must
// reproduce identical histories.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace cdes {
namespace {

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

struct ChaosWorld {
  ChaosWorld(const char* spec, const NetworkOptions& nopts) {
    auto parsed = ParseWorkflow(&ctx, spec);
    CDES_CHECK(parsed.ok()) << parsed.status();
    workflow = std::move(parsed).value();
    network = std::make_unique<Network>(&sim, 4, nopts);
    sched = std::make_unique<GuardScheduler>(&ctx, workflow, network.get());
  }

  void AttemptAt(SimTime when, const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    sim.ScheduleAt(when, [this, lit] {
      sched->Attempt(lit.value(), AttemptCallback());
    });
  }

  std::string RunAndHistory() {
    sim.Run();
    return TraceToString(sched->history(), *ctx.alphabet());
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  ParsedWorkflow workflow;
  std::unique_ptr<GuardScheduler> sched;
};

TEST(FailureInjectionTest, NonFifoHeavyJitterStaysConsistent) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 5000;  // 50x the base latency
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    // All attempts land nearly simultaneously.
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "c_buy");
    w.RunAndHistory();
    EXPECT_TRUE(w.sched->HistoryConsistent()) << "seed " << seed;
    EXPECT_EQ(w.sched->violations(), 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, DeterministicUnderFixedSeed) {
  auto run = [](uint64_t seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 2000;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "~c_buy");
    return w.RunAndHistory();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(8), run(8));
}

TEST(FailureInjectionTest, ExtremeLatencyAsymmetry) {
  NetworkOptions nopts;
  nopts.base_latency = 100;
  ChaosWorld w(kTravelSpec, nopts);
  // One direction of the inter-enterprise link is 1000x slower.
  w.network->SetLinkLatency(0, 1, 100000);
  w.AttemptAt(0, "s_buy");
  w.AttemptAt(10, "c_book");
  w.AttemptAt(20, "c_buy");
  w.RunAndHistory();
  EXPECT_TRUE(w.sched->HistoryConsistent());
  // Everything still completes: 3 requested + triggered booking.
  EXPECT_GE(w.sched->history().size(), 4u);
}

TEST(FailureInjectionTest, ConflictingConcurrentAttempts) {
  // e and f attempted at the same instant under e < f from different
  // sites: whatever the interleaving, the history must satisfy the order.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 500;
    nopts.jitter = 1500;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(R"(
workflow prec {
  agent a @ site(0);
  agent b @ site(1);
  event e agent(a);
  event f agent(b);
  dep d: e < f;
}
)",
                 nopts);
    w.AttemptAt(0, "f");
    w.AttemptAt(0, "e");
    std::string history = w.RunAndHistory();
    EXPECT_TRUE(w.sched->HistoryConsistent(true)) << history;
    EXPECT_EQ(history, "<e f>");  // f must wait for e's announcement
  }
}

TEST(FailureInjectionTest, OpposingLiteralsRaceOneWins) {
  // The task attempts commit while (from another site's perspective) the
  // workflow is being closed with the complement: exactly one polarity
  // must win and the loser must be rejected.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 300;
    nopts.jitter = 900;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(500, "c_book");
    w.AttemptAt(1000, "c_buy");
    w.AttemptAt(1000, "~c_buy");
    w.RunAndHistory();
    int buy_decisions = 0;
    for (EventLiteral l : w.sched->history()) {
      buy_decisions += (w.ctx.alphabet()->Name(l.symbol()) == "c_buy");
    }
    EXPECT_EQ(buy_decisions, 1) << "seed " << seed;
    EXPECT_TRUE(w.sched->HistoryConsistent()) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, AbortMidWorkflowForcesThrough) {
  // An abort (nonrejectable, nondelayable) lands mid-workflow; the
  // dependency "abort precludes commit" then rejects the commit, and the
  // closed workflow is consistent.
  constexpr char kAbortSpec[] = R"(
workflow ab {
  agent air @ site(0);
  event s_buy agent(air);
  event c_buy agent(air);
  event a_buy agent(air) attrs(nonrejectable, nondelayable);
  dep d1: s_buy -> c_buy;
  dep d2: ~a_buy + ~c_buy;   # abort and commit cannot both happen
}
)";
  NetworkOptions nopts;
  nopts.base_latency = 100;
  ChaosWorld w(kAbortSpec, nopts);

  std::vector<std::pair<std::string, Decision>> decisions;
  auto attempt = [&](SimTime when, const std::string& name) {
    auto lit = w.ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    w.sim.ScheduleAt(when, [&w, lit, name, &decisions] {
      w.sched->Attempt(lit.value(), [name, &decisions](Decision d) {
        decisions.emplace_back(name, d);
      });
    });
  };
  attempt(0, "s_buy");
  attempt(100, "a_buy");   // abort arrives before the commit attempt
  attempt(200, "c_buy");
  w.sim.Run();

  bool abort_accepted = false, commit_rejected = false;
  for (const auto& [name, d] : decisions) {
    if (name == "a_buy") abort_accepted |= (d == Decision::kAccepted);
    if (name == "c_buy") commit_rejected |= (d == Decision::kRejected);
  }
  EXPECT_TRUE(abort_accepted);
  EXPECT_TRUE(commit_rejected);
  // d1 (s_buy -> c_buy) is now violated — the history records the abort's
  // consequence faithfully rather than hiding it.
  // d2 holds: commit never occurred.
  const Expr* d2 = w.workflow.spec.dependencies()[1].expr;
  EXPECT_FALSE(w.ctx.residuator()
                   ->ResiduateTrace(d2, w.sched->history())
                   ->IsZero());
}

TEST(FailureInjectionTest, SiteProcessingBottleneckPreservesCorrectness) {
  NetworkOptions nopts;
  nopts.base_latency = 100;
  nopts.site_processing = 250;
  ChaosWorld w(kTravelSpec, nopts);
  w.AttemptAt(0, "s_buy");
  w.AttemptAt(0, "c_book");
  w.AttemptAt(0, "c_buy");
  w.RunAndHistory();
  EXPECT_TRUE(w.sched->HistoryConsistent());
}

}  // namespace
}  // namespace cdes
