// Failure injection: the distributed scheduler under adversarial message
// timing (non-FIFO links, heavy jitter, extreme latency asymmetry),
// message loss / duplication / partitions, concurrent conflicting
// attempts, and mid-workflow aborts. Every run must realize a history
// satisfying all dependencies; fixed seeds must reproduce identical
// histories and identical fault/recovery metrics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"
#include "temporal/guard.h"

namespace cdes {
namespace {

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

struct ChaosWorld {
  ChaosWorld(const char* spec, const NetworkOptions& nopts) {
    auto parsed = ParseWorkflow(&ctx, spec);
    CDES_CHECK(parsed.ok()) << parsed.status();
    workflow = std::move(parsed).value();
    network = std::make_unique<Network>(&sim, 4, nopts);
    sched = std::make_unique<GuardScheduler>(&ctx, workflow, network.get());
  }

  void AttemptAt(SimTime when, const std::string& name) {
    auto lit = ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    sim.ScheduleAt(when, [this, lit] {
      sched->Attempt(lit.value(), AttemptCallback());
    });
  }

  std::string RunAndHistory() {
    sim.Run();
    return TraceToString(sched->history(), *ctx.alphabet());
  }

  WorkflowContext ctx;
  Simulator sim;
  std::unique_ptr<Network> network;
  ParsedWorkflow workflow;
  std::unique_ptr<GuardScheduler> sched;
};

TEST(FailureInjectionTest, NonFifoHeavyJitterStaysConsistent) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 5000;  // 50x the base latency
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    // All attempts land nearly simultaneously.
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "c_buy");
    w.RunAndHistory();
    EXPECT_TRUE(w.sched->HistoryConsistent()) << "seed " << seed;
    EXPECT_EQ(w.sched->violations(), 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, DeterministicUnderFixedSeed) {
  auto run = [](uint64_t seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 2000;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "~c_buy");
    return w.RunAndHistory();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(8), run(8));
}

TEST(FailureInjectionTest, ExtremeLatencyAsymmetry) {
  NetworkOptions nopts;
  nopts.base_latency = 100;
  ChaosWorld w(kTravelSpec, nopts);
  // One direction of the inter-enterprise link is 1000x slower.
  w.network->SetLinkLatency(0, 1, 100000);
  w.AttemptAt(0, "s_buy");
  w.AttemptAt(10, "c_book");
  w.AttemptAt(20, "c_buy");
  w.RunAndHistory();
  EXPECT_TRUE(w.sched->HistoryConsistent());
  // Everything still completes: 3 requested + triggered booking.
  EXPECT_GE(w.sched->history().size(), 4u);
}

TEST(FailureInjectionTest, ConflictingConcurrentAttempts) {
  // e and f attempted at the same instant under e < f from different
  // sites: whatever the interleaving, the history must satisfy the order.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 500;
    nopts.jitter = 1500;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(R"(
workflow prec {
  agent a @ site(0);
  agent b @ site(1);
  event e agent(a);
  event f agent(b);
  dep d: e < f;
}
)",
                 nopts);
    w.AttemptAt(0, "f");
    w.AttemptAt(0, "e");
    std::string history = w.RunAndHistory();
    EXPECT_TRUE(w.sched->HistoryConsistent(true)) << history;
    EXPECT_EQ(history, "<e f>");  // f must wait for e's announcement
  }
}

TEST(FailureInjectionTest, OpposingLiteralsRaceOneWins) {
  // The task attempts commit while (from another site's perspective) the
  // workflow is being closed with the complement: exactly one polarity
  // must win and the loser must be rejected.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 300;
    nopts.jitter = 900;
    nopts.fifo_links = false;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(500, "c_book");
    w.AttemptAt(1000, "c_buy");
    w.AttemptAt(1000, "~c_buy");
    w.RunAndHistory();
    int buy_decisions = 0;
    for (EventLiteral l : w.sched->history()) {
      buy_decisions += (w.ctx.alphabet()->Name(l.symbol()) == "c_buy");
    }
    EXPECT_EQ(buy_decisions, 1) << "seed " << seed;
    EXPECT_TRUE(w.sched->HistoryConsistent()) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, AbortMidWorkflowForcesThrough) {
  // An abort (nonrejectable, nondelayable) lands mid-workflow; the
  // dependency "abort precludes commit" then rejects the commit, and the
  // closed workflow is consistent.
  constexpr char kAbortSpec[] = R"(
workflow ab {
  agent air @ site(0);
  event s_buy agent(air);
  event c_buy agent(air);
  event a_buy agent(air) attrs(nonrejectable, nondelayable);
  dep d1: s_buy -> c_buy;
  dep d2: ~a_buy + ~c_buy;   # abort and commit cannot both happen
}
)";
  NetworkOptions nopts;
  nopts.base_latency = 100;
  ChaosWorld w(kAbortSpec, nopts);

  std::vector<std::pair<std::string, Decision>> decisions;
  auto attempt = [&](SimTime when, const std::string& name) {
    auto lit = w.ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(lit.ok());
    w.sim.ScheduleAt(when, [&w, lit, name, &decisions] {
      w.sched->Attempt(lit.value(), [name, &decisions](Decision d) {
        decisions.emplace_back(name, d);
      });
    });
  };
  attempt(0, "s_buy");
  attempt(100, "a_buy");   // abort arrives before the commit attempt
  attempt(200, "c_buy");
  w.sim.Run();

  bool abort_accepted = false, commit_rejected = false;
  for (const auto& [name, d] : decisions) {
    if (name == "a_buy") abort_accepted |= (d == Decision::kAccepted);
    if (name == "c_buy") commit_rejected |= (d == Decision::kRejected);
  }
  EXPECT_TRUE(abort_accepted);
  EXPECT_TRUE(commit_rejected);
  // d1 (s_buy -> c_buy) is now violated — the history records the abort's
  // consequence faithfully rather than hiding it.
  // d2 holds: commit never occurred.
  const Expr* d2 = w.workflow.spec.dependencies()[1].expr;
  EXPECT_FALSE(w.ctx.residuator()
                   ->ResiduateTrace(d2, w.sched->history())
                   ->IsZero());
}

TEST(FailureInjectionTest, SiteProcessingBottleneckPreservesCorrectness) {
  NetworkOptions nopts;
  nopts.base_latency = 100;
  nopts.site_processing = 250;
  ChaosWorld w(kTravelSpec, nopts);
  w.AttemptAt(0, "s_buy");
  w.AttemptAt(0, "c_book");
  w.AttemptAt(0, "c_buy");
  w.RunAndHistory();
  EXPECT_TRUE(w.sched->HistoryConsistent());
}

// ---- Loss / duplication / partitions over the reliable-delivery layer ----

TEST(FailureInjectionTest, ChaosSweepTerminatesConsistently) {
  // 50 seeds; loss rate ramps to 0.3, frames duplicate, and the car
  // enterprise falls off the network once mid-run. Every run must still
  // realize a full consistent history — the reliable-delivery layer turns
  // the lossy transport back into the exactly-once channel the guard
  // protocol assumes.
  uint64_t total_retransmits = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 500;
    nopts.fifo_links = false;
    nopts.drop_probability = 0.006 * static_cast<double>(seed);  // ≤ 0.3
    nopts.duplicate_probability = 0.1;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.network->SchedulePartition({1}, 1000, 15000);  // one cut + heal
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "c_buy");
    w.RunAndHistory();
    EXPECT_TRUE(w.sched->HistoryConsistent()) << "seed " << seed;
    EXPECT_EQ(w.sched->violations(), 0u) << "seed " << seed;
    // 3 requested events + the triggered s_book all decided.
    EXPECT_GE(w.sched->history().size(), 4u) << "seed " << seed;
    total_retransmits += w.sched->transport()->retransmits();
  }
  EXPECT_GT(total_retransmits, 0u);
}

TEST(FailureInjectionTest, ChaosReplayIsDeterministic) {
  // Same seed + same fault knobs + same partition schedule ⇒ the same
  // history and the same value for every net.* metric, including the
  // loss/duplication/retransmission counters.
  auto run = [](uint64_t seed) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    nopts.jitter = 800;
    nopts.fifo_links = false;
    nopts.drop_probability = 0.25;
    nopts.duplicate_probability = 0.15;
    nopts.seed = seed;
    ChaosWorld w(kTravelSpec, nopts);
    w.network->SchedulePartition({0}, 2000, 9000);
    w.AttemptAt(0, "s_buy");
    w.AttemptAt(1, "c_book");
    w.AttemptAt(2, "c_buy");
    std::string history = w.RunAndHistory();
    return history + "|" + w.network->metrics()->ToJson();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(12), run(12));
  EXPECT_NE(run(5), run(12));
}

TEST(FailureInjectionTest, FaultFreeRunsPayNothingForTheTransport) {
  // With every fault knob at zero the reliable layer is passthrough: the
  // raw message count and the history are identical to the seed behavior —
  // no acks, no retransmissions, no id bookkeeping.
  NetworkOptions nopts;
  nopts.base_latency = 100;
  nopts.jitter = 300;
  nopts.seed = 4;
  ChaosWorld w(kTravelSpec, nopts);
  w.AttemptAt(0, "s_buy");
  w.AttemptAt(1, "c_book");
  w.AttemptAt(2, "c_buy");
  w.RunAndHistory();
  EXPECT_TRUE(w.sched->HistoryConsistent());
  EXPECT_EQ(w.sched->transport()->acks(), 0u);
  EXPECT_EQ(w.sched->transport()->retransmits(), 0u);
  EXPECT_EQ(w.network->stats().dropped, 0u);
  EXPECT_EQ(w.network->stats().duplicated, 0u);
}

// ---- Announcement ordering at the actors (the hold-back queue) ----

RuntimeMessage Announce(EventLiteral literal, SimTime when, uint64_t seq) {
  RuntimeMessage m;
  m.kind = RuntimeMessageKind::kAnnounce;
  m.literal = literal;
  m.stamp = OccurrenceStamp{when, seq};
  return m;
}

constexpr char kSeqSpec[] = R"(
workflow seq {
  agent left @ site(0);
  agent right @ site(1);
  event a agent(left);
  event b agent(left);
  event f agent(right);
  dep d: ~f + a . b . f;
}
)";

TEST(AnnouncementOrderingTest, HoldBackQueueAssimilatesInStampOrder) {
  // □ announcements delivered out of occurrence order — and duplicated —
  // must reduce an actor's guard exactly as in-order single delivery does:
  // the hold-back queue replays occurrences in stamp order, and a repeated
  // announcement of the same literal is dropped at assimilation.
  auto reduced_guard = [](const std::vector<std::pair<const char*, int>>&
                              deliveries) {
    NetworkOptions nopts;
    nopts.base_latency = 100;
    ChaosWorld w(kSeqSpec, nopts);
    auto f = w.ctx.alphabet()->ParseLiteral("f");
    CDES_CHECK(f.ok());
    EventActor* actor = w.sched->actor(f.value().symbol());
    for (const auto& [name, seq] : deliveries) {
      auto lit = w.ctx.alphabet()->ParseLiteral(name);
      CDES_CHECK(lit.ok());
      actor->Receive(
          Announce(lit.value(), static_cast<SimTime>(100 * seq), seq));
      w.sim.Run();
    }
    return GuardToString(actor->CurrentGuard(f.value()), *w.ctx.alphabet());
  };
  std::string in_order = reduced_guard({{"a", 1}, {"b", 2}});
  // Reordered: b's announcement overtakes a's.
  EXPECT_EQ(reduced_guard({{"b", 2}, {"a", 1}}), in_order);
  // Duplicated and reordered: every announcement delivered twice.
  EXPECT_EQ(reduced_guard({{"b", 2}, {"a", 1}, {"b", 2}, {"a", 1}}),
            in_order);
  // The reduction really happened (the guard is not still the compiled
  // form waiting on a and b).
  EXPECT_NE(reduced_guard({}), in_order);
}

constexpr char kLazySpec[] = R"(
workflow lazy {
  agent w1 @ site(0);
  agent w2 @ site(1);
  agent trig @ site(2);
  agent cons @ site(3);
  event x agent(w1);
  event y agent(w2);
  event z agent(w1);
  event t agent(trig) attrs(triggerable);
  event req agent(cons);
  dep d1: ~req + x . y + t + z;
}
)";

TEST(AnnouncementOrderingTest, LateAnnouncementDoesNotCorruptObligation) {
  // Regression: deferred trigger obligations must fold the occurrence log
  // from scratch in stamp order on every review. Storing a partially
  // residuated obligation and folding arrivals into it incrementally
  // corrupts it on an unordered network: here y's announcement (stamp
  // 2000) arrives before x's (stamp 1000), and an arrival-order fold kills
  // the x·y alternative via (x·y)/y = 0 — permanently. When ~z then rules
  // out z, the corrupted residual says "only t is left" and t fires even
  // though x·y long since satisfied the requester.
  NetworkOptions nopts;
  nopts.base_latency = 100;
  ChaosWorld w(kLazySpec, nopts);
  // req parks on ◇(x·y + t + z); triggerable t answers with a
  // trigger-backed promise and adopts the residual as an obligation.
  w.AttemptAt(0, "req");
  w.sim.Run();
  auto lit = [&w](const char* name) {
    auto parsed = w.ctx.alphabet()->ParseLiteral(name);
    CDES_CHECK(parsed.ok());
    return parsed.value();
  };
  EventActor* t_actor = w.sched->actor(lit("t").symbol());
  // Announcements reach t's site out of occurrence order: y first, then
  // the earlier-stamped x, then ~z.
  t_actor->Receive(Announce(lit("y"), 2000, 2));
  w.sim.Run();
  t_actor->Receive(Announce(lit("x"), 1000, 1));
  w.sim.Run();
  t_actor->Receive(Announce(lit("~z"), 3000, 3));
  w.sim.Run();
  // x·y materialized, so triggering t is unnecessary; a corrupted
  // obligation would have fired it at the ~z review.
  for (EventLiteral l : w.sched->history()) {
    EXPECT_NE(w.ctx.alphabet()->Name(l.symbol()), "t")
        << "spurious trigger of t: "
        << TraceToString(w.sched->history(), *w.ctx.alphabet());
  }
  EXPECT_TRUE(w.sched->HistoryConsistent());
}

}  // namespace
}  // namespace cdes
