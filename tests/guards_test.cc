#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/generator.h"
#include "guards/context.h"
#include "common/strings.h"
#include "guards/workflow.h"
#include "temporal/guard_semantics.h"
#include "temporal/simplify.h"

namespace cdes {
namespace {

class GuardsTest : public ::testing::Test {
 protected:
  GuardsTest() {
    e_ = ctx_.alphabet()->Intern("e");
    f_ = ctx_.alphabet()->Intern("f");
    pe_ = EventLiteral::Positive(e_);
    ne_ = EventLiteral::Complement(e_);
    pf_ = EventLiteral::Positive(f_);
    nf_ = EventLiteral::Complement(f_);
  }

  const Expr* Atom(EventLiteral l) { return ctx_.exprs()->Atom(l); }
  const Guard* Synth(const Expr* d, EventLiteral l) {
    return ctx_.synthesizer()->SynthesizeSimplified(d, l);
  }

  WorkflowContext ctx_;
  SymbolId e_, f_;
  EventLiteral pe_, ne_, pf_, nf_;
};

// ----------------------------------------------------- Example 9, 1 to 8

TEST_F(GuardsTest, Example9Item1TopYieldsTop) {
  EXPECT_EQ(ctx_.synthesizer()->Synthesize(ctx_.exprs()->Top(), pe_),
            ctx_.guards()->True());
}

TEST_F(GuardsTest, Example9Item2ZeroYieldsZero) {
  EXPECT_EQ(ctx_.synthesizer()->Synthesize(ctx_.exprs()->Zero(), pe_),
            ctx_.guards()->False());
}

TEST_F(GuardsTest, Example9Item3OwnAtomYieldsTop) {
  EXPECT_EQ(ctx_.synthesizer()->Synthesize(Atom(pe_), pe_),
            ctx_.guards()->True());
}

TEST_F(GuardsTest, Example9Item4ComplementAtomYieldsZero) {
  EXPECT_EQ(ctx_.synthesizer()->Synthesize(Atom(ne_), pe_),
            ctx_.guards()->False());
}

TEST_F(GuardsTest, Example9Item5GuardOfNotEUnderPrecedes) {
  // G(D_<, ē) = ⊤: the complement of e may occur at any time.
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  EXPECT_EQ(Synth(d, ne_), ctx_.guards()->True());
}

TEST_F(GuardsTest, Example9Item6GuardOfEUnderPrecedes) {
  // G(D_<, e) = ¬f: e may occur while f has not yet occurred.
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  EXPECT_EQ(Synth(d, pe_), ctx_.guards()->Neg(pf_));
}

TEST_F(GuardsTest, Example9Item7GuardOfNotFUnderPrecedes) {
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  EXPECT_EQ(Synth(d, nf_), ctx_.guards()->True());
}

TEST_F(GuardsTest, Example9Item8GuardOfFUnderPrecedes) {
  // G(D_<, f) = ◇ē + □e: f may occur once e has occurred or ē is
  // guaranteed.
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  const Guard* expected = ctx_.guards()->Or(
      ctx_.guards()->Diamond(Atom(ne_)), ctx_.guards()->Box(pe_));
  EXPECT_EQ(Synth(d, pf_), expected);
}

TEST_F(GuardsTest, Example11MutualDiamondGuards) {
  // D_→ = ē + f gives e the guard ◇f; the transpose f̄ + e gives f the
  // guard ◇e — the circular-promise situation of Example 11.
  const Expr* d = KleinImplies(ctx_.exprs(), e_, f_);
  EXPECT_EQ(Synth(d, pe_), ctx_.guards()->Diamond(Atom(pf_)));
  const Expr* transpose = KleinImplies(ctx_.exprs(), f_, e_);
  EXPECT_EQ(Synth(transpose, pf_), ctx_.guards()->Diamond(Atom(pe_)));
  // The complements are unconstrained by their own dependency.
  EXPECT_EQ(Synth(d, ne_), ctx_.guards()->True());
  EXPECT_EQ(Synth(d, pf_), ctx_.guards()->True());
}

// ----------------------------------------------- Theorems 2, 4; Lemmas 3, 5

TEST_F(GuardsTest, Theorem2GuardOfDisjointChoiceDistributes) {
  SymbolId g = ctx_.alphabet()->Intern("g");
  SymbolId h = ctx_.alphabet()->Intern("h");
  const Expr* d1 = KleinPrecedes(ctx_.exprs(), e_, f_);
  const Expr* d2 = KleinImplies(ctx_.exprs(), g, h);
  const Expr* combined = ctx_.exprs()->Or(d1, d2);
  for (EventLiteral l : {pe_, pf_, ne_, nf_}) {
    const Guard* lhs = ctx_.synthesizer()->Synthesize(combined, l);
    const Guard* rhs = ctx_.guards()->Or(
        ctx_.synthesizer()->Synthesize(d1, l),
        ctx_.synthesizer()->Synthesize(d2, l));
    EXPECT_TRUE(GuardEquivalent(lhs, rhs));
  }
}

TEST_F(GuardsTest, Theorem4GuardOfDisjointConjunctionDistributes) {
  SymbolId g = ctx_.alphabet()->Intern("g");
  SymbolId h = ctx_.alphabet()->Intern("h");
  const Expr* d1 = KleinPrecedes(ctx_.exprs(), e_, f_);
  const Expr* d2 = KleinPrecedes(ctx_.exprs(), g, h);
  const Expr* combined = ctx_.exprs()->And(d1, d2);
  for (EventLiteral l :
       {pe_, pf_, EventLiteral::Positive(g), EventLiteral::Positive(h)}) {
    const Guard* lhs = ctx_.synthesizer()->Synthesize(combined, l);
    const Guard* rhs = ctx_.guards()->And(
        ctx_.synthesizer()->Synthesize(d1, l),
        ctx_.synthesizer()->Synthesize(d2, l));
    EXPECT_TRUE(GuardEquivalent(lhs, rhs));
  }
}

TEST_F(GuardsTest, Lemma3CaseSplitOnUnrelatedEvent) {
  // G(D, e) = ¬g|G(D, e) + □g|G(D/g, e) for any g ∉ {e, ē}.
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  for (EventLiteral g : {pf_, nf_}) {
    const Guard* lhs = ctx_.synthesizer()->Synthesize(d, pe_);
    const Guard* rhs = ctx_.guards()->Or(
        ctx_.guards()->And(ctx_.guards()->Neg(g), lhs),
        ctx_.guards()->And(
            ctx_.guards()->Box(g),
            ctx_.synthesizer()->Synthesize(
                ctx_.residuator()->Residuate(d, g), pe_)));
    EXPECT_TRUE(GuardEquivalent(lhs, rhs));
  }
}

TEST_F(GuardsTest, Lemma5PathSumMatchesDefinition2) {
  // Over random small dependencies, Definition 2 and the Π(D) path sum
  // produce semantically identical guards.
  Rng rng(808);
  RandomExprOptions options;
  options.symbol_count = 2;
  options.max_depth = 3;
  for (int iter = 0; iter < 40; ++iter) {
    const Expr* d = GenerateRandomExpr(ctx_.exprs(), &rng, options);
    // Lemma 5 concerns events on some path of Π(D): literals whose symbol
    // survives normalization.
    for (SymbolId s : MentionedSymbols(ctx_.residuator()->NormalForm(d))) {
      for (EventLiteral l :
           {EventLiteral::Positive(s), EventLiteral::Complement(s)}) {
        const Guard* def2 = ctx_.synthesizer()->Synthesize(d, l);
        const Guard* paths = ctx_.synthesizer()->SynthesizeViaPaths(d, l);
        EXPECT_TRUE(GuardEquivalent(def2, paths))
            << ExprToString(d, *ctx_.alphabet()) << " at literal "
            << ctx_.alphabet()->LiteralName(l);
      }
    }
  }
}

TEST_F(GuardsTest, PathGuardShape) {
  // G(e1·e2·e3, e2) = □e1 | ¬e3 | ◇e3.
  SymbolId g = ctx_.alphabet()->Intern("g");
  Trace path = {pe_, pf_, EventLiteral::Positive(g)};
  const Guard* pg = ctx_.synthesizer()->PathGuard(path, 1);
  const Guard* expected = ctx_.guards()->And(
      ctx_.guards()->And(ctx_.guards()->Box(pe_),
                         ctx_.guards()->Neg(EventLiteral::Positive(g))),
      ctx_.guards()->Diamond(Atom(EventLiteral::Positive(g))));
  EXPECT_EQ(pg, expected);
}

// ---------------------------------------------------- Workflow compilation

TEST_F(GuardsTest, CompiledWorkflowConjoinsMentioningDependencies) {
  WorkflowSpec spec;
  spec.Add("prec", KleinPrecedes(ctx_.exprs(), e_, f_));
  spec.Add("impl", KleinImplies(ctx_.exprs(), e_, f_));
  CompiledWorkflow cw = CompileWorkflow(&ctx_, spec);
  // Guard on e: ¬f (from D_<) conjoined with ◇f (from D_→).
  const Guard* expected = ctx_.guards()->And(
      ctx_.guards()->Neg(pf_), ctx_.guards()->Diamond(Atom(pf_)));
  EXPECT_EQ(cw.GuardFor(pe_), expected);
  EXPECT_EQ(cw.ContributionsFor(pe_).size(), 2u);
  // Unmentioned literals default to ⊤.
  SymbolId z = ctx_.alphabet()->Intern("z");
  EXPECT_EQ(cw.GuardFor(EventLiteral::Positive(z)), ctx_.guards()->True());
  EXPECT_TRUE(cw.ContributionsFor(EventLiteral::Positive(z)).empty());
}

TEST_F(GuardsTest, TravelWorkflowCommitOrderGuard) {
  // Example 4's dependency (2): c̄_buy + c_book·c_buy localizes the guard
  // □c_book on c_buy — buy commits only after book committed.
  SymbolId c_buy = ctx_.alphabet()->Intern("c_buy");
  SymbolId c_book = ctx_.alphabet()->Intern("c_book");
  const Expr* d2 = ctx_.exprs()->Or(
      Atom(EventLiteral::Complement(c_buy)),
      ctx_.exprs()->Seq(Atom(EventLiteral::Positive(c_book)),
                        Atom(EventLiteral::Positive(c_buy))));
  EXPECT_EQ(Synth(d2, EventLiteral::Positive(c_buy)),
            ctx_.guards()->Box(EventLiteral::Positive(c_book)));
  // c_book may commit as long as c_buy has not yet committed (committing
  // afterwards could not restore the required order).
  EXPECT_EQ(Synth(d2, EventLiteral::Positive(c_book)),
            ctx_.guards()->Neg(EventLiteral::Positive(c_buy)));
}

TEST_F(GuardsTest, GeneratesMatchesDefinition4) {
  WorkflowSpec spec;
  spec.Add("prec", KleinPrecedes(ctx_.exprs(), e_, f_));
  CompiledWorkflow cw = CompileWorkflow(&ctx_, spec);
  EXPECT_TRUE(cw.Generates({pe_, pf_}));
  EXPECT_FALSE(cw.Generates({pf_, pe_}));  // f blocked before e decided
  EXPECT_TRUE(cw.Generates({ne_, pf_}));
  EXPECT_TRUE(cw.Generates({nf_, pe_}));
}

// --------------------------------------------------- Theorem 6 (property)

struct Theorem6Param {
  uint64_t seed;
  size_t symbol_count;
  size_t dependency_count;
  bool simplify;
};

class Theorem6Test : public ::testing::TestWithParam<Theorem6Param> {};

TEST_P(Theorem6Test, GeneratesIffSatisfiesAllDependencies) {
  const Theorem6Param param = GetParam();
  Rng rng(param.seed);
  RandomExprOptions options;
  options.symbol_count = param.symbol_count;
  options.max_depth = 3;
  for (int iter = 0; iter < 15; ++iter) {
    WorkflowContext ctx;
    WorkflowSpec spec;
    for (size_t d = 0; d < param.dependency_count; ++d) {
      spec.Add(StrCat("d", d), GenerateRandomExpr(ctx.exprs(), &rng, options));
    }
    CompileOptions copts;
    copts.simplify = param.simplify;
    CompiledWorkflow cw = CompileWorkflow(&ctx, spec, copts);
    // Theorem 6 quantifies over maximal traces on the full alphabet.
    for (const Trace& u : EnumerateMaximalTraces(param.symbol_count)) {
      EXPECT_EQ(cw.Generates(u), SatisfiesAll(spec, u))
          << "iter " << iter << " trace index";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem6Test,
    ::testing::Values(Theorem6Param{11, 2, 1, false},
                      Theorem6Param{12, 2, 2, false},
                      Theorem6Param{13, 3, 1, false},
                      Theorem6Param{14, 3, 2, false},
                      Theorem6Param{15, 3, 3, false},
                      Theorem6Param{16, 2, 2, true},
                      Theorem6Param{17, 3, 2, true}));

TEST_F(GuardsTest, SynthesisCacheGrowsAndIsReused) {
  const Expr* d = KleinPrecedes(ctx_.exprs(), e_, f_);
  ctx_.synthesizer()->Synthesize(d, pe_);
  size_t after_first = ctx_.synthesizer()->cache_size();
  EXPECT_GT(after_first, 0u);
  ctx_.synthesizer()->Synthesize(d, pe_);
  EXPECT_EQ(ctx_.synthesizer()->cache_size(), after_first);
}

}  // namespace
}  // namespace cdes
