#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/generator.h"
#include "algebra/trace.h"
#include "analysis/analyzer.h"
#include "analysis/model_checker.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sched/guard_scheduler.h"
#include "spec/parser.h"

namespace cdes {
namespace {

using analysis::AnalyzeOptions;
using analysis::AnalyzeWorkflow;
using analysis::CheckResult;
using analysis::CheckWorkflow;
using analysis::Diagnostic;
using analysis::ModelCheckOptions;
using analysis::Rule;
using analysis::Severity;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Fixture(const char* rel) {
  return std::string(CDES_SOURCE_DIR "/") + rel;
}

size_t Count(const std::vector<Diagnostic>& diagnostics, Rule rule) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) n += d.rule == rule;
  return n;
}

const Diagnostic* Find(const std::vector<Diagnostic>& diagnostics, Rule rule) {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// ------------------------------------------------------- golden fixtures

TEST(ModelCheckerGoldenTest, ReachDeadlockFixture) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(
      &ctx, ReadFile(Fixture("examples/specs/bad/reach_deadlock.spec")));
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // The fixture's whole point: the static analyzer is clean...
  std::vector<Diagnostic> statics = AnalyzeWorkflow(&ctx, parsed.value());
  EXPECT_FALSE(analysis::HasFindings(statics, Severity::kWarning))
      << analysis::FormatDiagnostics(statics);

  // ...and the reachability checker finds the path-dependent deadlock.
  CheckResult result = CheckWorkflow(&ctx, parsed.value());
  EXPECT_FALSE(result.stats.bounded) << result.stats.bound_reason;
  EXPECT_EQ(result.stats.deadlock_states, 1u);
  ASSERT_EQ(Count(result.diagnostics, Rule::kReachableDeadlock), 1u);
  const Diagnostic& d = *Find(result.diagnostics, Rule::kReachableDeadlock);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("blocked by dependency 'left'"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("blocked by dependency 'right'"), std::string::npos)
      << d.message;

  // Shortest counterexample: boot the s_go branch, then decide the four
  // padding events — six steps, starting s_init then s_go; the pads can
  // come in any discovery order.
  ASSERT_EQ(d.trace.size(), 6u);
  EXPECT_EQ(d.trace[0].literal, "s_init");
  EXPECT_EQ(d.trace[0].dependency, "boot");
  EXPECT_EQ(d.trace[1].literal, "s_go");
  std::vector<std::string> pads;
  for (size_t i = 2; i < d.trace.size(); ++i) {
    pads.push_back(d.trace[i].literal);
    // Satellite requirement: every step carries its owning dependency's
    // source location.
    EXPECT_TRUE(d.trace[i].loc.known()) << d.trace[i].literal;
    EXPECT_FALSE(d.trace[i].dependency.empty());
  }
  std::sort(pads.begin(), pads.end());
  EXPECT_EQ(pads, (std::vector<std::string>{"p1", "p2", "p3", "p4"}));

  // The blocked events are still live on other branches, so they are not
  // CL021; the wedge is the only finding.
  EXPECT_EQ(Count(result.diagnostics, Rule::kUnreachableEvent), 0u);
  EXPECT_EQ(Count(result.diagnostics, Rule::kGuardSpecMismatch), 0u);
}

TEST(ModelCheckerGoldenTest, UnreachableEventFixture) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(
      &ctx, ReadFile(Fixture("examples/specs/bad/unreachable_event.spec")));
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  std::vector<Diagnostic> statics = AnalyzeWorkflow(&ctx, parsed.value());
  EXPECT_FALSE(analysis::HasFindings(statics, Severity::kWarning))
      << analysis::FormatDiagnostics(statics);

  CheckResult result = CheckWorkflow(&ctx, parsed.value());
  EXPECT_FALSE(result.stats.bounded) << result.stats.bound_reason;
  EXPECT_GT(result.stats.accepted_states, 0u);
  EXPECT_EQ(result.stats.deadlock_states, 0u);
  ASSERT_EQ(Count(result.diagnostics, Rule::kUnreachableEvent), 1u);
  const Diagnostic& d = *Find(result.diagnostics, Rule::kUnreachableEvent);
  EXPECT_NE(d.message.find("'g'"), std::string::npos) << d.message;
  EXPECT_TRUE(d.loc.known());
  EXPECT_EQ(Count(result.diagnostics, Rule::kReachableDeadlock), 0u);
  EXPECT_EQ(Count(result.diagnostics, Rule::kGuardSpecMismatch), 0u);
}

TEST(ModelCheckerGoldenTest, ShippedGoodSpecsVerifyClean) {
  for (const char* rel : {"examples/specs/travel.wf", "examples/specs/order.wf",
                          "examples/specs/travel_template.wf"}) {
    WorkflowContext ctx;
    auto parsed = ParseWorkflows(&ctx, ReadFile(Fixture(rel)), rel);
    ASSERT_TRUE(parsed.ok()) << rel << ": " << parsed.status();
    for (const ParsedWorkflow& w : parsed.value()) {
      CheckResult result = CheckWorkflow(&ctx, w);
      EXPECT_TRUE(result.diagnostics.empty())
          << rel << ": " << analysis::FormatDiagnostics(result.diagnostics);
      EXPECT_FALSE(result.stats.bounded)
          << rel << ": " << result.stats.bound_reason;
      EXPECT_GT(result.stats.accepted_states, 0u) << rel;
    }
  }
}

// ------------------------------------------------- budgets and bounding

TEST(ModelCheckerBudgetTest, StateBudgetSuppressesAbsenceRules) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(
      &ctx, ReadFile(Fixture("examples/specs/bad/unreachable_event.spec")));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ModelCheckOptions options;
  options.max_states = 2;
  CheckResult result = CheckWorkflow(&ctx, parsed.value(), options);
  EXPECT_TRUE(result.stats.bounded);
  EXPECT_NE(result.stats.bound_reason.find("state budget"), std::string::npos)
      << result.stats.bound_reason;
  // CL021/CL022 are absence claims; a bounded run must not make them.
  EXPECT_EQ(Count(result.diagnostics, Rule::kUnreachableEvent), 0u);
  EXPECT_EQ(Count(result.diagnostics, Rule::kUnexercisedDep), 0u);
}

TEST(ModelCheckerBudgetTest, SymbolCapReportsBoundedNotExplored) {
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(
      &ctx, ReadFile(Fixture("examples/specs/bad/reach_deadlock.spec")));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ModelCheckOptions options;
  options.max_symbols = 4;  // the fixture mentions 8
  CheckResult result = CheckWorkflow(&ctx, parsed.value(), options);
  EXPECT_TRUE(result.stats.bounded);
  EXPECT_EQ(result.stats.states_explored, 0u);
  EXPECT_TRUE(result.diagnostics.empty());
}

// ------------------------------------------ satellite: location fallback

TEST(ModelCheckerLocationTest, Cl005FallsBackToDependencyLocation) {
  // A programmatic workflow with no event declarations: CL005 (and CL008)
  // used to print the default-constructed 0:0; now they anchor at the
  // first dependency mentioning the symbol.
  WorkflowContext ctx;
  SymbolId e = ctx.alphabet()->Intern("e");
  SymbolId f = ctx.alphabet()->Intern("f");
  ExprArena* arena = ctx.exprs();
  auto atom = [&](SymbolId s, bool c) {
    return arena->Atom(EventLiteral(s, c));
  };
  ParsedWorkflow w;
  w.name = "prog";
  // first: ~e + f.e ; second: ~f + e.f — the CL005 mutual wait.
  w.spec.Add("first",
             arena->Or(atom(e, true),
                       arena->Seq(atom(f, false), atom(e, false))),
             SourceLocation{7, 3});
  w.spec.Add("second",
             arena->Or(atom(f, true),
                       arena->Seq(atom(e, false), atom(f, false))),
             SourceLocation{8, 3});
  std::vector<Diagnostic> diagnostics = AnalyzeWorkflow(&ctx, w);
  const Diagnostic* d = Find(diagnostics, Rule::kStaticDeadlock);
  ASSERT_NE(d, nullptr) << analysis::FormatDiagnostics(diagnostics);
  EXPECT_TRUE(d->loc.known());
  EXPECT_EQ(d->loc.line, 7);
  EXPECT_EQ(d->loc.column, 3);
}

// --------------------------------------------------- property: semantics

// Random spec fodder: `count` dependencies over `symbols` pre-interned
// symbols, drawn without constants so every dependency says something.
std::vector<const Expr*> RandomDeps(WorkflowContext* ctx, Rng* rng,
                                    size_t symbols, size_t count) {
  RandomExprOptions options;
  options.symbol_count = symbols;
  options.max_depth = 3;
  options.max_arity = 3;
  options.constant_probability = 0.0;
  std::vector<const Expr*> out;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(GenerateRandomExpr(ctx->exprs(), rng, options));
  }
  return out;
}

// The checker's acceptance predicate must agree with the declarative
// Definition 4 (CompiledWorkflow::Generates) on *every* maximal trace —
// this is what makes CL023 an actual Theorem 6 check rather than a third
// semantics.
TEST(ModelCheckerPropertyTest, GuardAcceptsAgreesWithGeneratesEverywhere) {
  constexpr size_t kSymbols = 4;
  size_t checked = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    WorkflowContext ctx;
    for (size_t i = 0; i < kSymbols; ++i) {
      ctx.alphabet()->Intern(StrCat("e", i));
    }
    Rng rng(seed);
    ParsedWorkflow w;
    w.name = "rnd";
    size_t d = 0;
    for (const Expr* expr : RandomDeps(&ctx, &rng, kSymbols, 2)) {
      w.spec.Add(StrCat("d", d++), expr);
    }
    CompiledWorkflow compiled = CompileWorkflow(&ctx, w.spec);
    if (compiled.impossible() || compiled.symbols().size() != kSymbols) {
      continue;  // trivial, or some symbol unmentioned (trace mismatch)
    }
    analysis::StateSpace space(&ctx, compiled);
    for (const Trace& u : EnumerateMaximalTraces(kSymbols)) {
      bool generates = compiled.Generates(u);
      ASSERT_EQ(space.GuardAccepts(u), generates)
          << "seed " << seed << " trace "
          << TraceToString(u, *ctx.alphabet());
      // Theorem 6 on the side: generated ⇔ satisfies-all.
      ASSERT_EQ(generates, SatisfiesAll(w.spec, u))
          << "seed " << seed << " trace "
          << TraceToString(u, *ctx.alphabet());
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);  // the skip-guard must not eat the test
}

// Partial-order reduction is an optimization, not a semantics: rule
// counts, acceptance stats, and deadlock stats must be identical with it
// on and off; only states_explored may shrink.
TEST(ModelCheckerPropertyTest, PartialOrderReductionPreservesFindings) {
  constexpr size_t kSymbols = 5;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    WorkflowContext ctx;
    for (size_t i = 0; i < kSymbols; ++i) {
      ctx.alphabet()->Intern(StrCat("e", i));
    }
    Rng rng(seed * 977 + 11);
    ParsedWorkflow w;
    w.name = "rnd";
    size_t d = 0;
    for (const Expr* expr : RandomDeps(&ctx, &rng, kSymbols, 3)) {
      w.spec.Add(StrCat("d", d++), expr);
    }
    if (CompileWorkflow(&ctx, w.spec).impossible()) continue;
    ModelCheckOptions naive;
    naive.partial_order_reduction = false;
    ModelCheckOptions reduced;
    reduced.partial_order_reduction = true;
    CheckResult full = CheckWorkflow(&ctx, w, naive);
    CheckResult por = CheckWorkflow(&ctx, w, reduced);
    ASSERT_FALSE(full.stats.bounded) << seed;
    ASSERT_FALSE(por.stats.bounded) << seed;
    for (Rule rule : {Rule::kReachableDeadlock, Rule::kUnreachableEvent,
                      Rule::kUnexercisedDep, Rule::kGuardSpecMismatch}) {
      EXPECT_EQ(Count(full.diagnostics, rule), Count(por.diagnostics, rule))
          << "seed " << seed << " rule " << analysis::RuleCode(rule) << "\n"
          << "naive:\n" << analysis::FormatDiagnostics(full.diagnostics)
          << "por:\n" << analysis::FormatDiagnostics(por.diagnostics);
    }
    EXPECT_EQ(full.stats.accepted_states, por.stats.accepted_states) << seed;
    EXPECT_EQ(full.stats.deadlock_states > 0, por.stats.deadlock_states > 0)
        << seed;
    EXPECT_LE(por.stats.states_explored, full.stats.states_explored) << seed;
  }
}

// ------------------------------------- property: scheduler closure check

// Every history the runtime scheduler actually produces (attempts plus
// Close()) must be a member of the checker's accepted maximal-trace set.
TEST(ModelCheckerPropertyTest, SchedulerClosureIsAcceptedByChecker) {
  constexpr size_t kSymbols = 4;
  size_t closed = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    WorkflowContext gen_ctx;
    for (size_t i = 0; i < kSymbols; ++i) {
      gen_ctx.alphabet()->Intern(StrCat("e", i));
    }
    Rng rng(seed * 131 + 7);
    std::string text = "workflow rnd {\n  agent a @ site(0);\n";
    for (size_t i = 0; i < kSymbols; ++i) {
      text += StrCat("  event e", i, " agent(a);\n");
    }
    size_t d = 0;
    for (const Expr* expr : RandomDeps(&gen_ctx, &rng, kSymbols, 2)) {
      text += StrCat("  dep d", d++, ": ",
                     ExprToString(expr, *gen_ctx.alphabet()), ";\n");
    }
    text += "}\n";

    WorkflowContext ctx;
    auto parsed = ParseWorkflow(&ctx, text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    CompiledWorkflow compiled = CompileWorkflow(&ctx, parsed.value().spec);
    if (compiled.impossible()) continue;

    // Only drive the scheduler on specs the checker proved wedge-free:
    // a deadlocked spec would park the closure forever.
    CheckResult result = CheckWorkflow(&ctx, parsed.value());
    ASSERT_FALSE(result.stats.bounded) << seed;
    if (result.stats.deadlock_states > 0 ||
        result.stats.accepted_states == 0) {
      continue;
    }

    Simulator sim;
    NetworkOptions nopts;
    nopts.base_latency = 50;
    nopts.seed = seed;
    Network network(&sim, 4, nopts);
    GuardScheduler sched(&ctx, parsed.value(), &network);
    // Attempt a random half of the events positively, then close.
    for (size_t i = 0; i < kSymbols; ++i) {
      if (rng.Next() % 2 == 0) {
        auto lit = ctx.alphabet()->ParseLiteral(StrCat("e", i));
        ASSERT_TRUE(lit.ok());
        sched.Attempt(lit.value(), AttemptCallback());
        sim.Run();
      }
    }
    for (int round = 0; round < 8 && !sched.Undecided().empty(); ++round) {
      sched.Close();
      sim.Run();
    }
    if (!sched.Undecided().empty()) continue;  // parked on a doomed attempt
    if (!sched.HistoryConsistent(true)) continue;

    analysis::StateSpace space(&ctx, compiled);
    EXPECT_TRUE(space.GuardAccepts(sched.history()))
        << "seed " << seed << " history "
        << TraceToString(sched.history(), *ctx.alphabet()) << "\n" << text;
    ++closed;
  }
  // Most random seeds wedge, self-contradict, or park a doomed attempt and
  // are rightly skipped; what matters is a healthy count of full closures
  // actually cross-checked against the accepted set.
  EXPECT_GT(closed, 10u);
}

}  // namespace
}  // namespace cdes
