#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/trace.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/prom.h"
#include "sched/automata_scheduler.h"
#include "sched/guard_scheduler.h"
#include "sched/residuation_scheduler.h"
#include "spec/parser.h"

namespace cdes {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersAreGetOrCreateWithStableAddresses) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("x.count");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(registry.counter("x.count"), c);
  EXPECT_EQ(registry.counter_count(), 1u);
  registry.gauge("x.depth")->Set(3.5);
  EXPECT_DOUBLE_EQ(registry.gauge("x.depth")->value(), 3.5);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("lat", {1, 2, 4});
  for (uint64_t v : {0u, 1u, 2u, 3u, 4u, 100u}) h->Observe(v);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_EQ(h->sum(), 110u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 100u);
  ASSERT_EQ(h->buckets().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->buckets()[0], 2u);      // 0, 1
  EXPECT_EQ(h->buckets()[1], 1u);      // 2
  EXPECT_EQ(h->buckets()[2], 2u);      // 3, 4
  EXPECT_EQ(h->buckets()[3], 1u);      // 100 (overflow)
  EXPECT_LE(h->Percentile(0.5), 4u);
  // Same name returns the existing histogram even with different bounds.
  EXPECT_EQ(registry.histogram("lat", {7}), h);
}

TEST(MetricsTest, PercentileEdgeCases) {
  obs::MetricsRegistry registry;
  // An empty histogram reports zeros, never divides by its zero count.
  obs::Histogram* empty = registry.histogram("empty", {1, 2, 4});
  EXPECT_EQ(empty->Percentile(0.5), 0u);
  EXPECT_EQ(empty->min(), 0u);
  EXPECT_EQ(empty->max(), 0u);
  EXPECT_DOUBLE_EQ(empty->Mean(), 0.0);
  // Samples above the top bound land in the overflow bucket; percentiles
  // that resolve there report the observed max, not a fabricated bound.
  obs::Histogram* high = registry.histogram("high", {1, 2, 4});
  high->Observe(100);
  EXPECT_EQ(high->count(), 1u);
  EXPECT_EQ(high->Percentile(0.5), 100u);
  EXPECT_EQ(high->Percentile(0.99), 100u);
  // Out-of-range p clamps instead of reading past the buckets.
  obs::Histogram* h = registry.histogram("clamped", {1, 2, 4});
  h->Observe(1);
  h->Observe(2);
  EXPECT_EQ(h->Percentile(-0.5), h->Percentile(0.0));
  EXPECT_EQ(h->Percentile(1.5), h->Percentile(1.0));
}

TEST(MetricsTest, HistogramMergeCombinesPerShardSamples) {
  obs::MetricsRegistry a, b;
  obs::Histogram* ha = a.histogram("lat", {1, 2, 4});
  obs::Histogram* hb = b.histogram("lat", {1, 2, 4});
  ha->Observe(0);
  ha->Observe(3);
  hb->Observe(2);
  hb->Observe(100);
  ASSERT_TRUE(ha->MergeFrom(*hb));
  EXPECT_EQ(ha->count(), 4u);
  EXPECT_EQ(ha->sum(), 105u);
  EXPECT_EQ(ha->min(), 0u);
  EXPECT_EQ(ha->max(), 100u);
  ASSERT_EQ(ha->buckets().size(), 4u);
  EXPECT_EQ(ha->buckets()[0], 1u);  // 0
  EXPECT_EQ(ha->buckets()[1], 1u);  // 2
  EXPECT_EQ(ha->buckets()[2], 1u);  // 3
  EXPECT_EQ(ha->buckets()[3], 1u);  // 100 (overflow)
  // Bound-mismatched merges are refused and leave the target untouched.
  obs::Histogram* other = a.histogram("other", {8});
  other->Observe(1);
  EXPECT_FALSE(ha->MergeFrom(*other));
  EXPECT_EQ(ha->count(), 4u);
  EXPECT_EQ(ha->sum(), 105u);
}

TEST(MetricsTest, RegistryMergeFoldsShardRegistries) {
  obs::MetricsRegistry engine, shard;
  engine.counter("events")->Increment(3);
  shard.counter("events")->Increment(4);
  shard.counter("parks")->Increment(1);
  engine.gauge("depth")->Set(1.0);
  shard.gauge("depth")->Set(9.0);
  shard.histogram("lat", {1, 2, 4})->Observe(3);
  engine.histogram("mismatch", {1});
  shard.histogram("mismatch", {5})->Observe(2);
  // Counters add, gauges take the source's value, absent histograms are
  // adopted with the source's bounds; the one bound mismatch is skipped
  // and counted in the return value.
  EXPECT_EQ(engine.MergeFrom(shard), 1u);
  EXPECT_EQ(engine.counter("events")->value(), 7u);
  EXPECT_EQ(engine.counter("parks")->value(), 1u);
  EXPECT_DOUBLE_EQ(engine.gauge("depth")->value(), 9.0);
  EXPECT_EQ(engine.histogram("lat")->count(), 1u);
  EXPECT_EQ(engine.histogram("lat")->bounds(),
            (std::vector<uint64_t>{1, 2, 4}));
  EXPECT_EQ(engine.histogram("mismatch")->count(), 0u);
}

TEST(MetricsTest, ExponentialBoundsDouble) {
  std::vector<uint64_t> bounds = obs::MetricsRegistry::ExponentialBounds(1, 5);
  EXPECT_EQ(bounds, (std::vector<uint64_t>{1, 2, 4, 8, 16}));
}

TEST(MetricsTest, ToJsonIsValidAndDeterministic) {
  obs::MetricsRegistry registry;
  registry.counter("b")->Increment(2);
  registry.counter("a")->Increment(1);
  registry.gauge("g")->Set(1.5);
  registry.histogram("h", {10})->Observe(5);
  std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* counters = parsed.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("a")->number(), 1.0);
  const obs::JsonValue* h = parsed.value().Find("histograms");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->Find("h"), nullptr);
  EXPECT_DOUBLE_EQ(h->Find("h")->Find("count")->number(), 1.0);
}

// ----------------------------------------------------------------- JSON

TEST(JsonTest, ParsesEscapesAndNesting) {
  auto parsed = obs::ParseJson(
      R"({"s": "a\"bA", "n": [1, -2.5e1, true, null]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().Find("s")->string(), "a\"bA");
  const auto& arr = parsed.value().Find("n")->array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_DOUBLE_EQ(arr[1].number(), -25.0);
  EXPECT_TRUE(arr[2].bool_value());
  EXPECT_TRUE(arr[3].is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("'single'").ok());
}

TEST(JsonTest, EscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

// ------------------------------------------------------------- Prometheus

TEST(PromTest, GoldenTextExposition) {
  obs::MetricsRegistry registry;
  registry.counter("sched.msgs.announce")->Increment(3);
  registry.gauge("queue.depth")->Set(2.5);
  obs::Histogram* h = registry.histogram("lat.us", {1, 2, 4});
  for (uint64_t v : {0u, 1u, 2u, 3u, 4u, 100u}) h->Observe(v);
  // Exact text: names sanitized to the Prometheus charset with the cdes_
  // prefix, disjoint registry buckets re-expressed cumulatively, and the
  // +Inf bucket equal to _count.
  EXPECT_EQ(obs::PrometheusText(registry),
            "# TYPE cdes_sched_msgs_announce counter\n"
            "cdes_sched_msgs_announce 3\n"
            "# TYPE cdes_queue_depth gauge\n"
            "cdes_queue_depth 2.5\n"
            "# TYPE cdes_lat_us histogram\n"
            "cdes_lat_us_bucket{le=\"1\"} 2\n"
            "cdes_lat_us_bucket{le=\"2\"} 3\n"
            "cdes_lat_us_bucket{le=\"4\"} 5\n"
            "cdes_lat_us_bucket{le=\"+Inf\"} 6\n"
            "cdes_lat_us_sum 110\n"
            "cdes_lat_us_count 6\n");
}

// ---------------------------------------------------------- TraceRecorder

TEST(TraceRecorderTest, AsyncSpansPairByKey) {
  obs::TraceRecorder recorder;
  uint64_t id = recorder.BeginAsync(obs::SpanCategory::kMessage, "msg", "k1",
                                    10, 0, 0);
  EXPECT_NE(id, 0u);
  EXPECT_TRUE(recorder.HasOpenAsync("k1"));
  // Re-opening an open key is refused.
  EXPECT_EQ(recorder.BeginAsync(obs::SpanCategory::kMessage, "msg", "k1", 11,
                                0, 0),
            0u);
  EXPECT_TRUE(recorder.EndAsync("k1", 20, 1, 0));
  EXPECT_FALSE(recorder.HasOpenAsync("k1"));
  EXPECT_FALSE(recorder.EndAsync("k1", 21, 1, 0));
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].id, recorder.events()[1].id);
  EXPECT_EQ(recorder.events()[0].phase, obs::TraceEvent::Phase::kAsyncBegin);
  EXPECT_EQ(recorder.events()[1].phase, obs::TraceEvent::Phase::kAsyncEnd);
  // The key is reusable after close, with a fresh correlation id.
  uint64_t id2 = recorder.BeginAsync(obs::SpanCategory::kMessage, "msg", "k1",
                                     30, 0, 0);
  EXPECT_NE(id2, 0u);
  EXPECT_NE(id2, id);
}

TEST(TraceRecorderTest, CountEventsFiltersByCategoryPrefixAndPhase) {
  obs::TraceRecorder recorder;
  recorder.Instant(obs::SpanCategory::kLifecycle, "occur a", 1, 0, 0);
  recorder.Instant(obs::SpanCategory::kLifecycle, "occur b", 2, 0, 1);
  recorder.Instant(obs::SpanCategory::kMessage, "occur c", 3, 0, 0);
  recorder.Complete(obs::SpanCategory::kLifecycle, "occurrence window", 1, 5,
                    0, 0);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "occur",
                                 obs::TraceEvent::Phase::kInstant),
            2u);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kMessage, "occur",
                                 obs::TraceEvent::Phase::kInstant),
            1u);
  EXPECT_EQ(recorder.CountEvents(obs::SpanCategory::kLifecycle, "occur",
                                 obs::TraceEvent::Phase::kComplete),
            1u);
}

TEST(TraceRecorderTest, RingCapacityBoundsRetainedEvents) {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder recorder;
  recorder.set_capacity(4);
  recorder.AttachMetrics(&metrics);
  for (uint64_t ts = 1; ts <= 6; ++ts) {
    recorder.Instant(obs::SpanCategory::kSim, "tick", ts, 0, 0);
  }
  // The ring overwrote the two oldest events and counted them, both in
  // dropped_events() and in the attached registry counter.
  EXPECT_EQ(recorder.events().size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 2u);
  EXPECT_EQ(metrics.counter("trace.dropped_events")->value(), 2u);
  std::vector<uint64_t> kept;
  for (const obs::TraceEvent& e : recorder.events()) kept.push_back(e.ts);
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(kept, (std::vector<uint64_t>{3, 4, 5, 6}));
  // A wrapped ring is in ring order, not chronological; the exporter must
  // still produce a globally ts-sorted trace.
  auto parsed = obs::ParseJson(obs::ChromeTraceJson(recorder));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::vector<double> ts;
  for (const obs::JsonValue& e : parsed.value().Find("traceEvents")->array()) {
    if (e.Find("ph")->string() != "M") ts.push_back(e.Find("ts")->number());
  }
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));

  // Capacity 0 removes the bound.
  obs::TraceRecorder unbounded;
  unbounded.set_capacity(0);
  for (uint64_t t = 0; t < 10; ++t) {
    unbounded.Instant(obs::SpanCategory::kSim, "tick", t, 0, 0);
  }
  EXPECT_EQ(unbounded.events().size(), 10u);
  EXPECT_EQ(unbounded.dropped_events(), 0u);
}

// ------------------------------------------------------- Chrome exporter

TEST(ChromeTraceTest, ExportsWellFormedSortedJson) {
  obs::TraceRecorder recorder;
  recorder.NameProcess(0, "site 0");
  recorder.NameLane(0, 7, "actor e");
  // Recorded out of ts order on purpose: the exporter must sort.
  recorder.Instant(obs::SpanCategory::kLifecycle, "late", 50, 0, 7,
                   {{"k", "v"}});
  recorder.Instant(obs::SpanCategory::kLifecycle, "early", 10, 0, 7);
  recorder.Complete(obs::SpanCategory::kSim, "phase", 20, 15, 0, 7);
  std::string json = obs::ChromeTraceJson(recorder);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<double> ts;
  bool saw_process_name = false, saw_thread_name = false;
  for (const obs::JsonValue& e : events->array()) {
    const std::string& ph = e.Find("ph")->string();
    if (ph == "M") {
      const std::string& name = e.Find("name")->string();
      saw_process_name |= name == "process_name";
      saw_thread_name |= name == "thread_name";
      continue;
    }
    ts.push_back(e.Find("ts")->number());
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  // The complete span kept its duration, the instant its args.
  EXPECT_NE(json.find("\"dur\": 15"), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\""), std::string::npos);
}

TEST(ChromeTraceTest, FlowEventsCarryIdAndBindToEnclosingSlice) {
  obs::TraceRecorder recorder;
  recorder.Complete(obs::SpanCategory::kSim, "submit 7", 10, 2, 9, 0);
  recorder.FlowStart(obs::SpanCategory::kSim, "instance", 7, 10, 9, 0);
  recorder.Complete(obs::SpanCategory::kSim, "instance 7", 40, 5, 1, 7);
  recorder.FlowEnd(obs::SpanCategory::kSim, "instance", 7, 42, 1, 7);
  auto parsed = obs::ParseJson(obs::ChromeTraceJson(recorder));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* start = nullptr;
  const obs::JsonValue* end = nullptr;
  for (const obs::JsonValue& e : parsed.value().Find("traceEvents")->array()) {
    if (e.Find("ph")->string() == "s") start = &e;
    if (e.Find("ph")->string() == "f") end = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(end, nullptr);
  // Viewers join the pair on (name, cat, id); the end binds to the
  // enclosing slice ("bp": "e"), so the arrow lands on the span the
  // flow terminates inside rather than whatever slice starts next.
  EXPECT_DOUBLE_EQ(start->Find("id")->number(), 7.0);
  EXPECT_DOUBLE_EQ(end->Find("id")->number(), 7.0);
  EXPECT_EQ(start->Find("name")->string(), end->Find("name")->string());
  EXPECT_EQ(start->Find("cat")->string(), end->Find("cat")->string());
  ASSERT_NE(end->Find("bp"), nullptr);
  EXPECT_EQ(end->Find("bp")->string(), "e");
  EXPECT_EQ(start->Find("bp"), nullptr);
}

// --------------------------------------------------------- GuardProfiler

TEST(GuardProfilerTest, SitesDedupAndAccumulate) {
  obs::GuardProfiler profiler(/*sample_every=*/1);
  profiler.set_source("travel.wf");
  SourceLocation loc;
  loc.line = 15;
  loc.column = 3;
  obs::GuardProfiler::Site* site = profiler.RegisterSite("d1", "s_book", loc);
  ASSERT_NE(site, nullptr);
  // Same (dependency, event) key → the same shared handle, so shards
  // compiling the same spec pool their counts into one site.
  EXPECT_EQ(profiler.RegisterSite("d1", "s_book", loc), site);
  EXPECT_EQ(profiler.site_count(), 1u);
  EXPECT_TRUE(profiler.BeginEvaluation(site));  // sample_every=1: always
  profiler.Record(site, /*residuation_steps=*/5, /*nodes_visited=*/7,
                  /*wall_ns=*/100, /*sampled=*/true);
  std::vector<obs::GuardSiteStats> snap = profiler.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].dependency, "d1");
  EXPECT_EQ(snap[0].event, "s_book");
  EXPECT_EQ(snap[0].source, "travel.wf:15:3");
  EXPECT_EQ(snap[0].evaluations, 1u);
  EXPECT_EQ(snap[0].residuation_steps, 5u);
  EXPECT_EQ(snap[0].nodes_visited, 7u);
  EXPECT_DOUBLE_EQ(snap[0].EstimatedWallNs(), 100.0);
  EXPECT_EQ(profiler.total_evaluations(), 1u);
}

TEST(GuardProfilerTest, SamplingTimesEveryNthEvaluation) {
  obs::GuardProfiler profiler(/*sample_every=*/4);
  obs::GuardProfiler::Site* site =
      profiler.RegisterSite("d", "e", SourceLocation{});
  size_t sampled = 0;
  for (int i = 0; i < 8; ++i) {
    bool timed = profiler.BeginEvaluation(site);
    if (timed) ++sampled;
    profiler.Record(site, 1, 1, /*wall_ns=*/100, timed);
  }
  EXPECT_EQ(sampled, 2u);  // evaluations 0 and 4
  std::vector<obs::GuardSiteStats> snap = profiler.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].evaluations, 8u);
  EXPECT_EQ(snap[0].sampled_evaluations, 2u);
  EXPECT_EQ(snap[0].source, "?");  // unknown location, no source file
  // 2 samples × 100ns each, scaled back up to all 8 evaluations.
  EXPECT_DOUBLE_EQ(snap[0].EstimatedWallNs(), 800.0);
}

TEST(GuardProfilerTest, RankingReportsAndCollapsedStacks) {
  obs::GuardProfiler profiler(/*sample_every=*/1);
  SourceLocation loc;
  loc.line = 2;
  loc.column = 1;
  obs::GuardProfiler::Site* cold = profiler.RegisterSite("d_cold", "a", loc);
  obs::GuardProfiler::Site* hot = profiler.RegisterSite("d_hot", "a", loc);
  profiler.BeginEvaluation(cold);
  profiler.Record(cold, 1, 1, 10, true);
  for (int i = 0; i < 3; ++i) {
    profiler.BeginEvaluation(hot);
    profiler.Record(hot, 4, 4, 500, true);
  }
  std::vector<obs::GuardSiteStats> top = profiler.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].dependency, "d_hot");
  auto hottest = profiler.HottestFor("a");
  ASSERT_TRUE(hottest.has_value());
  EXPECT_EQ(hottest->dependency, "d_hot");
  EXPECT_FALSE(profiler.HottestFor("zzz").has_value());
  // The report table carries the source attribution.
  std::string report = profiler.TopKReport(10);
  EXPECT_NE(report.find("d_hot"), std::string::npos);
  EXPECT_NE(report.find("2:1"), std::string::npos);
  // Collapsed stacks are "source;dependency;event weight" lines weighted
  // by estimated wall ns, hottest first (flamegraph.pl input).
  std::string collapsed = profiler.CollapsedStacks();
  EXPECT_TRUE(StartsWith(collapsed, "2:1;d_hot;a 1500\n")) << collapsed;
  EXPECT_NE(collapsed.find("2:1;d_cold;a 10\n"), std::string::npos);
}

// ----------------------------------------------------------- Integration

constexpr char kTravelSpec[] = R"(
workflow travel {
  agent air @ site(0);
  agent car @ site(1);
  event s_buy    agent(air);
  event c_buy    agent(air);
  event s_book   agent(car) attrs(triggerable);
  event c_book   agent(car);
  event s_cancel agent(car) attrs(triggerable);
  dep d1: ~s_buy + s_book;
  dep d2: ~c_buy + c_book . c_buy;
  dep d3: ~c_book + c_buy + s_cancel;
}
)";

struct ObsWorld {
  ObsWorld() {
    auto parsed = ParseWorkflow(&ctx, kTravelSpec);
    CDES_CHECK(parsed.ok()) << parsed.status();
    workflow = std::move(parsed).value();
    NetworkOptions nopts;
    nopts.base_latency = 1000;
    nopts.metrics = &metrics;
    nopts.tracer = &recorder;
    network = std::make_unique<Network>(&sim, 2, nopts);
  }

  void Drive(Scheduler* sched, const std::vector<std::string>& script) {
    for (const std::string& name : script) {
      auto lit = ctx.alphabet()->ParseLiteral(name);
      CDES_CHECK(lit.ok()) << lit.status();
      sched->Attempt(lit.value(), AttemptCallback());
      sim.Run();
    }
  }

  WorkflowContext ctx;
  ParsedWorkflow workflow;
  Simulator sim;
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  std::unique_ptr<Network> network;
};

TEST(ObsIntegrationTest, TravelSpansReconcileWithGuardSchedulerStats) {
  ObsWorld w;
  w.sim.AttachMetrics(&w.metrics);
  GuardSchedulerOptions sopts;
  sopts.metrics = &w.metrics;
  sopts.tracer = &w.recorder;
  GuardScheduler sched(&w.ctx, w.workflow, w.network.get(), sopts);
  w.Drive(&sched, {"s_buy", "c_book", "c_buy"});
  ASSERT_TRUE(sched.HistoryConsistent());

  // Every occurrence in history() has exactly one "occur" instant.
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle, "occur ",
                                   obs::TraceEvent::Phase::kInstant),
            sched.history().size());
  // Registry counters are the ground truth behind stats(): both views and
  // the traced send instants must reconcile exactly.
  GuardSchedulerStats stats = sched.stats();
  EXPECT_EQ(w.metrics.counter("sched.msgs.announce")->value(),
            stats.announcements);
  EXPECT_EQ(w.metrics.counter("sched.msgs.promise")->value(), stats.promises);
  EXPECT_EQ(w.metrics.counter("sched.msgs.promise_request")->value(),
            stats.promise_requests);
  EXPECT_EQ(w.metrics.counter("sched.msgs.trigger")->value(), stats.triggers);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kMessage, "announce ",
                                   obs::TraceEvent::Phase::kInstant),
            stats.announcements);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kMessage, "trigger ",
                                   obs::TraceEvent::Phase::kInstant),
            stats.triggers);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kPromise, "promise ",
                                   obs::TraceEvent::Phase::kInstant),
            stats.promises);
  // Attempts: 3 scripted; occurrences: history. The network reported in
  // too, and the simulator stepped at least once per message.
  EXPECT_EQ(w.metrics.counter("sched.attempts")->value(), 3u);
  EXPECT_EQ(w.metrics.counter("sched.occurrences")->value(),
            sched.history().size());
  EXPECT_EQ(w.metrics.counter("net.messages")->value(),
            w.network->stats().messages);
  EXPECT_GE(w.metrics.counter("sim.steps")->value(),
            w.network->stats().messages);

  // The exported Chrome trace is valid JSON with globally sorted ts.
  auto parsed = obs::ParseJson(obs::ChromeTraceJson(w.recorder));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::vector<double> ts;
  for (const obs::JsonValue& e : parsed.value().Find("traceEvents")->array()) {
    if (e.Find("ph")->string() != "M") ts.push_back(e.Find("ts")->number());
  }
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_EQ(ts.size(), w.recorder.events().size());
}

TEST(ObsIntegrationTest, LifecycleInstrumentationIsOffWithoutObservers) {
  // No metrics/tracer installed: the scheduler still serves stats() from
  // its private registry, but records no lifecycle histograms or spans.
  WorkflowContext ctx;
  auto parsed = ParseWorkflow(&ctx, kTravelSpec);
  ASSERT_TRUE(parsed.ok());
  Simulator sim;
  NetworkOptions nopts;
  nopts.base_latency = 1000;
  Network net(&sim, 2, nopts);
  GuardScheduler sched(&ctx, parsed.value(), &net);
  auto lit = ctx.alphabet()->ParseLiteral("s_buy");
  ASSERT_TRUE(lit.ok());
  sched.Attempt(lit.value(), AttemptCallback());
  sim.Run();
  EXPECT_EQ(sched.tracer(), nullptr);
  ASSERT_NE(sched.metrics(), nullptr);
  EXPECT_GT(sched.stats().total(), 0u);
  EXPECT_EQ(sched.metrics()->histogram_count(), 0u);
}

TEST(ObsIntegrationTest, CentralizedSchedulersReportSameTaxonomy) {
  {
    ObsWorld w;
    ResiduationScheduler sched(&w.ctx, w.workflow, w.network.get(),
                               /*center_site=*/0, /*message_bytes=*/48,
                               &w.metrics, &w.recorder);
    w.Drive(&sched, {"s_buy", "s_book", "c_book", "c_buy"});
    EXPECT_EQ(w.metrics.counter("sched.occurrences")->value(),
              sched.history().size());
    EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle, "occur ",
                                     obs::TraceEvent::Phase::kInstant),
              sched.history().size());
    EXPECT_EQ(w.metrics.counter("sched.attempts")->value(), 4u);
    EXPECT_EQ(w.metrics.counter("sched.decisions.accepted")->value(),
              sched.history().size());
  }
  {
    ObsWorld w;
    AutomataScheduler sched(&w.ctx, w.workflow, w.network.get(),
                            /*center_site=*/0, /*message_bytes=*/48,
                            &w.metrics, &w.recorder);
    w.Drive(&sched, {"s_buy", "s_book", "c_book", "c_buy"});
    EXPECT_EQ(w.metrics.counter("sched.occurrences")->value(),
              sched.history().size());
    EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle, "occur ",
                                     obs::TraceEvent::Phase::kInstant),
              sched.history().size());
  }
}

TEST(ObsIntegrationTest, ParkedWindowOpensAndClosesAroundDecision) {
  ObsWorld w;
  GuardSchedulerOptions sopts;
  sopts.metrics = &w.metrics;
  sopts.tracer = &w.recorder;
  GuardScheduler sched(&w.ctx, w.workflow, w.network.get(), sopts);
  std::vector<Decision> decisions;
  auto lit = w.ctx.alphabet()->ParseLiteral("c_buy");
  ASSERT_TRUE(lit.ok());
  // c_buy needs c_book first: it parks.
  sched.Attempt(lit.value(), [&](Decision d) { decisions.push_back(d); });
  w.sim.Run();
  ASSERT_EQ(decisions.back(), Decision::kParked);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle, "parked ",
                                   obs::TraceEvent::Phase::kAsyncBegin),
            1u);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle, "parked ",
                                   obs::TraceEvent::Phase::kAsyncEnd),
            0u);
  // c_book also parks transiently on its ◇(c_buy + s_cancel) guard before
  // the promise handshake resolves it, so assert on c_buy's spans by name.
  w.Drive(&sched, {"c_book"});
  ASSERT_EQ(decisions.back(), Decision::kAccepted);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle,
                                   "parked c_buy",
                                   obs::TraceEvent::Phase::kAsyncEnd),
            1u);
  EXPECT_EQ(w.recorder.CountEvents(obs::SpanCategory::kLifecycle,
                                   "enabled c_buy",
                                   obs::TraceEvent::Phase::kInstant),
            1u);
  EXPECT_GE(w.metrics.histogram("sched.decision_latency_us")->count(), 1u);
  EXPECT_GE(w.metrics.counter("sched.parks")->value(), 1u);
}

TEST(ObsIntegrationTest, ProfiledSchedulerMatchesUnprofiledRun) {
  const std::vector<std::string> script = {"s_buy", "c_book", "c_buy"};
  auto run = [&script](obs::GuardProfiler* profiler) {
    ObsWorld w;
    GuardSchedulerOptions sopts;
    sopts.profiler = profiler;
    GuardScheduler sched(&w.ctx, w.workflow, w.network.get(), sopts);
    w.Drive(&sched, script);
    CDES_CHECK(sched.HistoryConsistent());
    return TraceToString(sched.history(), *w.ctx.alphabet());
  };
  obs::GuardProfiler profiler(/*sample_every=*/1);
  // The profiled evaluation path (per-contribution reduce, then conjoin)
  // must decide exactly what the unprofiled path decides.
  EXPECT_EQ(run(&profiler), run(nullptr));
  // And the profiler actually saw the run: sites registered at Install,
  // evaluations recorded at assimilation, attributable to real events.
  EXPECT_GT(profiler.site_count(), 0u);
  EXPECT_GT(profiler.total_evaluations(), 0u);
  auto hottest = profiler.HottestFor("c_buy");
  ASSERT_TRUE(hottest.has_value());
  EXPECT_GT(hottest->evaluations, 0u);
}

TEST(ObsIntegrationTest, MessageFlowsPairSendToAssimilation) {
  ObsWorld w;
  GuardSchedulerOptions sopts;
  sopts.metrics = &w.metrics;
  sopts.tracer = &w.recorder;
  sopts.trace_id = 42;
  GuardScheduler sched(&w.ctx, w.workflow, w.network.get(), sopts);
  w.Drive(&sched, {"s_buy", "c_book", "c_buy"});
  ASSERT_TRUE(sched.HistoryConsistent());
  // Every runtime message carries a fresh span id: its send is a flow
  // origin and its delivery the matching end, joined on (name, id).
  std::set<std::pair<std::string, uint64_t>> starts, ends;
  for (const obs::TraceEvent& e : w.recorder.events()) {
    if (e.category != obs::SpanCategory::kMessage) continue;
    if (e.phase == obs::TraceEvent::Phase::kFlowStart) {
      EXPECT_TRUE(starts.emplace(e.name, e.id).second) << e.name;
    } else if (e.phase == obs::TraceEvent::Phase::kFlowEnd) {
      EXPECT_TRUE(ends.emplace(e.name, e.id).second) << e.name;
    }
  }
  EXPECT_FALSE(starts.empty());
  EXPECT_EQ(starts, ends);
  // Each delivery also drops an "assimilate <literal>" instant stamped
  // with the trace id, so per-instance filtering works in the viewer.
  size_t assimilates = 0;
  for (const obs::TraceEvent& e : w.recorder.events()) {
    if (e.phase != obs::TraceEvent::Phase::kInstant ||
        !StartsWith(e.name, "assimilate ")) {
      continue;
    }
    ++assimilates;
    bool stamped = false;
    for (const auto& [key, value] : e.args) {
      stamped |= key == "trace" && value == "42";
    }
    EXPECT_TRUE(stamped) << e.name;
  }
  EXPECT_EQ(assimilates, ends.size());
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, PrefixCarriesSimTimeOnlyWhileRegistered) {
  using internal_logging::FormatLogPrefix;
  Simulator sim;
  std::string before = FormatLogPrefix(LogLevel::kInfo, "f.cc", 1);
  EXPECT_EQ(before.find("@"), std::string::npos);
  obs::RegisterGlobalSimulator(&sim);
  std::string during = FormatLogPrefix(LogLevel::kInfo, "f.cc", 1);
  EXPECT_NE(during.find("@0us"), std::string::npos);
  EXPECT_NE(during.find("f.cc:1"), std::string::npos);
  EXPECT_EQ(during[1], 'I');
  sim.ScheduleAt(1234, [] {});
  sim.Run();
  std::string later = FormatLogPrefix(LogLevel::kWarning, "f.cc", 2);
  EXPECT_NE(later.find("@1234us"), std::string::npos);
  EXPECT_EQ(later[1], 'W');
  obs::UnregisterGlobalSimulator(&sim);
  std::string after = FormatLogPrefix(LogLevel::kError, "f.cc", 3);
  EXPECT_EQ(after.find("@"), std::string::npos);
  // Unregistering a never-registered simulator is a safe no-op.
  Simulator other;
  obs::UnregisterGlobalSimulator(&other);
  EXPECT_EQ(obs::GlobalSimulator(), nullptr);
}

}  // namespace
}  // namespace cdes
